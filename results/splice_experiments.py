#!/usr/bin/env python3
"""Splices results/figures.txt into EXPERIMENTS.md's {{FIGn}} placeholders."""
import pathlib
import re

root = pathlib.Path(__file__).resolve().parent.parent
figures = (root / "results" / "figures.txt").read_text()
fig23 = root / "results" / "fig23.txt"
if fig23.exists():
    # Figures 2–3 were rerun after fixes; prefer the rerun output.
    figures += "\n" + fig23.read_text()

sections = {}
current = None
for line in figures.splitlines():
    m = re.match(r"=== (\w+) ===", line)
    if m:
        current = m.group(1)
        sections[current] = []
    elif current and not line.startswith("running "):
        sections[current].append(line)

exp = root / "EXPERIMENTS.md"
text = exp.read_text()
for key in ["FIG1", "FIG2", "FIG3", "FIG4", "PLAN"]:
    body = "\n".join(sections.get(key, ["(not recorded)"])).strip()
    text = text.replace("{{" + key + "}}", body)
exp.write_text(text)
print("spliced", list(sections))
