//! Plan-cache and materialized-view equivalence tests.
//!
//! The plan cache must be a pure performance change: a warm (cached)
//! execution must return bit-identical rows to the cold run that seeded
//! it, across worker counts and schedulers. Materialized-view delta
//! maintenance must be bit-identical to recomputing the defining query
//! from scratch — the test data uses dyadic rationals so float
//! aggregation is exact and "bit-identical" is meaningful.

use lardb::{Database, DatabaseConfig, Response, SchedulerMode, Value};

/// Canonical, bit-exact rendering of a result row: doubles render as
/// their IEEE-754 bit pattern so `0.1 + 0.2`-style drift can't hide
/// behind display rounding.
fn canon_rows(result: &lardb::QueryResult) -> Vec<String> {
    let mut rows: Vec<String> = result
        .rows
        .iter()
        .map(|row| {
            row.values()
                .iter()
                .map(|v| match v {
                    Value::Double(d) => format!("f64:{:016x}", d.to_bits()),
                    other => format!("{other:?}"),
                })
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect();
    rows.sort();
    rows
}

fn config(workers: usize, scheduler: SchedulerMode) -> DatabaseConfig {
    // Pin the capacity: these tests assert hit/miss counters, so they
    // must not inherit a `LARDB_PLAN_CACHE` override from the
    // environment (CI runs the tier-1 suites with the cache forced off
    // and forced tiny).
    DatabaseConfig { workers, scheduler, plan_cache_entries: 256, ..DatabaseConfig::default() }
}

/// A small schema exercised by every test: a fact table with integer
/// keys and dyadic-rational doubles, plus a dimension to join against.
fn seed_db(config: DatabaseConfig) -> Database {
    let db = Database::with_config(config);
    db.execute("CREATE TABLE facts (id INTEGER, g INTEGER, v DOUBLE)").unwrap();
    let mut values = Vec::new();
    for i in 0..200i64 {
        // 0.25 steps: exactly representable, so SUM/AVG are exact.
        values.push(format!("({}, {}, {})", i, i % 5, (i as f64) * 0.25));
    }
    db.execute(&format!("INSERT INTO facts VALUES {}", values.join(", "))).unwrap();
    db.execute("CREATE TABLE dims (g INTEGER, label INTEGER)").unwrap();
    db.execute("INSERT INTO dims VALUES (0, 100), (1, 101), (2, 102), (3, 103), (4, 104)")
        .unwrap();
    db
}

const QUERIES: &[&str] = &[
    "SELECT id, v * 2 AS vv FROM facts WHERE id >= 150",
    "SELECT g, COUNT(*) AS c, SUM(v) AS s FROM facts GROUP BY g",
    "SELECT COUNT(*) AS n, SUM(g) AS sg FROM facts",
    "SELECT f.id, d.label FROM facts AS f, dims AS d WHERE f.g = d.g AND f.id >= 190",
];

#[test]
fn cached_matches_cold_across_schedulers() {
    for workers in [1usize, 4] {
        for scheduler in [SchedulerMode::Pool, SchedulerMode::Spawn] {
            let db = seed_db(config(workers, scheduler));
            for q in QUERIES {
                let cold = db.query(q).unwrap();
                let misses = db.plan_cache_stats().misses;
                let warm = db.query(q).unwrap();
                let stats = db.plan_cache_stats();
                assert_eq!(
                    canon_rows(&cold),
                    canon_rows(&warm),
                    "W={workers} scheduler={scheduler:?} query={q}"
                );
                assert!(stats.hits >= 1, "second run should hit: {q}");
                assert_eq!(stats.misses, misses, "second run re-missed: {q}");
            }
        }
    }
}

#[test]
fn literal_variants_do_not_collide() {
    // Same shape, different literals: both hit the cold path once, and
    // neither is served the other's rows.
    let db = seed_db(config(2, SchedulerMode::Pool));
    let one = db.query("SELECT id FROM facts WHERE id = 1").unwrap();
    let two = db.query("SELECT id FROM facts WHERE id = 2").unwrap();
    assert_eq!(one.rows.len(), 1);
    assert_eq!(two.rows.len(), 1);
    assert_eq!(one.rows[0].value(0).as_integer(), Some(1));
    assert_eq!(two.rows[0].value(0).as_integer(), Some(2));
    // And each variant is independently cached.
    let before = db.plan_cache_stats().hits;
    db.query("SELECT id FROM facts WHERE id = 1").unwrap();
    db.query("SELECT id FROM facts WHERE id = 2").unwrap();
    assert_eq!(db.plan_cache_stats().hits, before + 2);
}

#[test]
fn ddl_invalidates_cached_plans() {
    let db = seed_db(config(2, SchedulerMode::Pool));
    let q = "SELECT g, COUNT(*) AS c FROM facts GROUP BY g";
    db.query(q).unwrap();
    db.query(q).unwrap();
    let warm = db.plan_cache_stats();
    assert!(warm.hits >= 1);
    // DDL bumps the catalog version: the old key is unreachable.
    db.execute("CREATE TABLE unrelated (x INTEGER)").unwrap();
    let misses = db.plan_cache_stats().misses;
    db.query(q).unwrap();
    let stats = db.plan_cache_stats();
    assert_eq!(stats.misses, misses + 1, "post-DDL run must re-plan");
    assert!(stats.invalidations >= 1);
}

#[test]
fn insert_into_unrelated_table_keeps_cached_plans() {
    let db = seed_db(config(2, SchedulerMode::Pool));
    let q = "SELECT g, label FROM dims WHERE g >= 0";
    db.query(q).unwrap(); // seeds the cache with a plan over dims only
    // A write to facts must not invalidate plans that never read facts.
    db.execute("INSERT INTO facts VALUES (950, 3, 1.5)").unwrap();
    let before = db.plan_cache_stats();
    db.query(q).unwrap();
    let after = db.plan_cache_stats();
    assert_eq!(after.hits, before.hits + 1, "unrelated INSERT evicted a dims plan");
    assert_eq!(after.misses, before.misses);
    // A write to dims itself does invalidate, and the re-planned query
    // sees the new row.
    db.execute("INSERT INTO dims VALUES (9, 109)").unwrap();
    let r = db.query(q).unwrap();
    assert_eq!(db.plan_cache_stats().misses, after.misses + 1, "write to dims must re-plan");
    assert_eq!(r.rows.len(), 6);
}

#[test]
fn prepared_statement_reexecution_hits_cache() {
    let db = seed_db(config(2, SchedulerMode::Pool));
    let prepared = db.prepare("SELECT id, v FROM facts WHERE id >= 195").unwrap();
    // Prepare warmed the cache, so even the *first* execute is a hit.
    let before = db.plan_cache_stats();
    let first = match db.execute_prepared(&prepared).unwrap() {
        Response::Rows(r) => r,
        other => panic!("expected rows, got {other:?}"),
    };
    let second = match db.execute_prepared(&prepared).unwrap() {
        Response::Rows(r) => r,
        other => panic!("expected rows, got {other:?}"),
    };
    let stats = db.plan_cache_stats();
    assert_eq!(canon_rows(&first), canon_rows(&second));
    assert_eq!(first.rows.len(), 5);
    assert_eq!(stats.hits, before.hits + 2, "both executions should hit");
    assert_eq!(stats.misses, before.misses, "executions must not re-plan");
}

#[test]
fn explain_analyze_reports_cache_hit() {
    let db = seed_db(config(2, SchedulerMode::Pool));
    let q = "SELECT g, SUM(v) AS s FROM facts GROUP BY g";
    db.query(q).unwrap(); // seeds the cache
    let text = match db.execute(&format!("EXPLAIN ANALYZE {q}")).unwrap() {
        Response::Explained(t) => t,
        other => panic!("expected explain text, got {other:?}"),
    };
    assert!(
        text.contains("plan cache: hit"),
        "EXPLAIN ANALYZE should note the cache hit:\n{text}"
    );
}

#[test]
fn disabled_cache_is_correct_and_silent() {
    let db = seed_db(DatabaseConfig {
        workers: 2,
        plan_cache_entries: 0,
        ..DatabaseConfig::default()
    });
    for q in QUERIES {
        let a = db.query(q).unwrap();
        let b = db.query(q).unwrap();
        assert_eq!(canon_rows(&a), canon_rows(&b), "query={q}");
    }
    let stats = db.plan_cache_stats();
    assert_eq!(stats.hits, 0);
    assert_eq!(stats.misses, 0);
    assert_eq!(stats.entries, 0);
}

/// Every materialized-view shape: after an INSERT into the base table,
/// the maintained MV contents must be bit-identical to recomputing the
/// defining query from the current base data.
#[test]
fn mv_incremental_refresh_matches_recompute() {
    let cases: &[(&str, &str, &str)] = &[
        // Append-only: filter + project distributes over union.
        (
            "mv_append",
            "SELECT id, v * 2 AS vv FROM facts WHERE g = 1",
            "SELECT id, vv FROM mv_append",
        ),
        // Mergeable grouped aggregates: stored rows are merge states.
        (
            "mv_merge",
            "SELECT g, COUNT(*) AS c, SUM(v) AS s, MIN(v) AS lo, MAX(v) AS hi \
             FROM facts GROUP BY g",
            "SELECT g, c, s, lo, hi FROM mv_merge",
        ),
        // Global (group-less) mergeable aggregate.
        (
            "mv_global",
            "SELECT COUNT(*) AS n, SUM(v) AS s FROM facts",
            "SELECT n, s FROM mv_global",
        ),
        // Non-incrementalizable (AVG): falls back to full recompute.
        (
            "mv_avg",
            "SELECT g, AVG(v) AS a FROM facts GROUP BY g",
            "SELECT g, a FROM mv_avg",
        ),
        // Join view: append-able when the base appears once.
        (
            "mv_join",
            "SELECT f.id, d.label FROM facts AS f, dims AS d \
             WHERE f.g = d.g AND f.id >= 150",
            "SELECT id, label FROM mv_join",
        ),
    ];
    let db = seed_db(config(2, SchedulerMode::Pool));
    for (name, defining, _) in cases {
        db.execute(&format!("CREATE MATERIALIZED VIEW {name} AS {defining}")).unwrap();
    }
    // Deltas hit both grouped and filtered shapes: existing groups grow,
    // a brand-new group (g has no 7 yet ⇒ joins produce nothing for it)
    // appears, and dyadic values keep the arithmetic exact.
    db.execute(
        "INSERT INTO facts VALUES \
         (500, 1, 0.5), (501, 1, 128.25), (502, 7, 2.75), (503, 4, 0.125)",
    )
    .unwrap();
    for (name, defining, read_back) in cases {
        let maintained = db.query(read_back).unwrap();
        let recomputed = db.query(defining).unwrap();
        assert_eq!(
            canon_rows(&maintained),
            canon_rows(&recomputed),
            "mv {name} diverged from recompute after INSERT"
        );
    }
    // A second wave, through the non-SQL insert path too.
    db.execute("INSERT INTO facts VALUES (600, 7, 64.5), (601, 0, 0.0625)").unwrap();
    for (name, defining, read_back) in cases {
        let maintained = db.query(read_back).unwrap();
        let recomputed = db.query(defining).unwrap();
        assert_eq!(
            canon_rows(&maintained),
            canon_rows(&recomputed),
            "mv {name} diverged after second INSERT"
        );
    }
}

#[test]
fn refresh_statement_matches_recompute() {
    let db = seed_db(config(2, SchedulerMode::Pool));
    db.execute(
        "CREATE MATERIALIZED VIEW mv_r AS \
         SELECT g, SUM(v) AS s FROM facts GROUP BY g",
    )
    .unwrap();
    db.execute("INSERT INTO facts VALUES (900, 2, 12.5)").unwrap();
    // Explicit REFRESH recomputes from scratch; contents must match both
    // the incremental state and a fresh run of the defining query.
    match db.execute("REFRESH MATERIALIZED VIEW mv_r").unwrap() {
        Response::Inserted(n) => assert!(n >= 1),
        other => panic!("expected row count, got {other:?}"),
    }
    let refreshed = db.query("SELECT g, s FROM mv_r").unwrap();
    let recomputed = db.query("SELECT g, SUM(v) AS s FROM facts GROUP BY g").unwrap();
    assert_eq!(canon_rows(&refreshed), canon_rows(&recomputed));
}

#[test]
fn matview_over_matview_is_rejected() {
    let db = seed_db(config(2, SchedulerMode::Pool));
    db.execute(
        "CREATE MATERIALIZED VIEW mv_base AS \
         SELECT g, SUM(v) AS s FROM facts GROUP BY g",
    )
    .unwrap();
    // Direct lineage: maintenance writes bypass INSERT dispatch, so a
    // view over a view's backing table would silently go stale.
    let err = db
        .execute("CREATE MATERIALIZED VIEW mv_top AS SELECT g FROM mv_base")
        .unwrap_err()
        .to_string();
    assert!(err.contains("mv_base"), "unexpected error: {err}");
    assert!(!db.catalog().has_table("mv_top"), "no orphan backing table");
    // Lineage hidden behind a virtual view is caught too (the binder
    // expands the view, so the bound plan scans mv_base).
    db.execute("CREATE VIEW v_over AS SELECT g, s FROM mv_base").unwrap();
    let err = db
        .execute("CREATE MATERIALIZED VIEW mv_top2 AS SELECT g FROM v_over")
        .unwrap_err()
        .to_string();
    assert!(err.contains("mv_base"), "unexpected error: {err}");
}

#[test]
fn drop_matview_with_dependents_is_refused() {
    let db = seed_db(config(2, SchedulerMode::Pool));
    db.execute("CREATE MATERIALIZED VIEW mv_d AS SELECT id FROM facts WHERE g = 0")
        .unwrap();
    // CREATE rejects matview-over-matview, so fabricate a dependent
    // definition directly in the registry (simulating a legacy catalog):
    // the drop guard must still hold.
    db.catalog()
        .create_matview(
            "dependent",
            lardb::MatViewDef {
                sql: "SELECT id FROM mv_d".into(),
                base_tables: vec!["mv_d".into()],
            },
        )
        .unwrap();
    let err = db.execute("DROP MATERIALIZED VIEW mv_d").unwrap_err().to_string();
    assert!(err.contains("dependent"), "unexpected error: {err}");
    // Releasing the dependent releases the base.
    db.catalog().drop_matview("dependent").unwrap();
    db.execute("DROP MATERIALIZED VIEW mv_d").unwrap();
}

/// Regression test for the drop-then-create replace window: a reader
/// hammering the view while recompute maintenance replaces its backing
/// table must never observe a missing table.
#[test]
fn concurrent_select_during_maintenance_never_fails() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    let db = seed_db(config(2, SchedulerMode::Pool));
    // AVG forces the recompute strategy, which replaces the backing table.
    db.execute(
        "CREATE MATERIALIZED VIEW mv_swap AS \
         SELECT g, AVG(v) AS a FROM facts GROUP BY g",
    )
    .unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let db = db.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut reads = 0u64;
            while !stop.load(Ordering::Relaxed) {
                db.query("SELECT g, a FROM mv_swap")
                    .expect("view must stay queryable during maintenance");
                reads += 1;
            }
            reads
        })
    };
    for i in 0..40i64 {
        db.execute(&format!(
            "INSERT INTO facts VALUES ({}, {}, 0.5)",
            1000 + i,
            i % 5
        ))
        .unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let reads = reader.join().expect("reader must not panic");
    assert!(reads > 0);
}

#[test]
fn drop_guards_protect_matviews_and_bases() {
    let db = seed_db(config(2, SchedulerMode::Pool));
    db.execute("CREATE MATERIALIZED VIEW mv_g AS SELECT id FROM facts WHERE g = 0")
        .unwrap();
    // The backing table is not a plain table.
    let err = db.execute("DROP TABLE mv_g").unwrap_err().to_string();
    assert!(err.contains("MATERIALIZED"), "unexpected error: {err}");
    // The base can't be dropped out from under its dependents.
    let err = db.execute("DROP TABLE facts").unwrap_err().to_string();
    assert!(err.contains("mv_g"), "unexpected error: {err}");
    // Dropping the view releases the base.
    db.execute("DROP MATERIALIZED VIEW mv_g").unwrap();
    db.execute("DROP TABLE facts").unwrap();
}

#[test]
fn cache_and_mv_metrics_surface_in_show_metrics() {
    let db = seed_db(config(2, SchedulerMode::Pool));
    db.execute("CREATE MATERIALIZED VIEW mv_m AS SELECT g, SUM(v) AS s FROM facts GROUP BY g")
        .unwrap();
    db.execute("INSERT INTO facts VALUES (700, 1, 1.5)").unwrap();
    let q = "SELECT COUNT(*) AS n FROM facts";
    db.query(q).unwrap();
    db.query(q).unwrap();
    let r = db.query("SHOW METRICS").unwrap();
    let names: Vec<String> =
        r.rows.iter().map(|row| row.value(0).to_string()).collect();
    for metric in ["cache.hits", "cache.misses", "mv.created", "mv.refresh_rows"] {
        assert!(
            names.iter().any(|n| n == metric),
            "metric {metric} missing from SHOW METRICS: {names:?}"
        );
    }
}
