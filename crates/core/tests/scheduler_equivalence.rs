//! Morsel-scheduler equivalence and determinism tests.
//!
//! The morsel-driven pool scheduler must be a pure performance change:
//! on heavily skewed partitions (one partition holding ~90% of rows),
//! across worker counts and transports, pool-scheduled execution must
//! produce the same relations as the per-partition spawn baseline — and
//! repeated runs over stolen morsels must be bit-for-bit identical.

use lardb::{
    Database, DatabaseConfig, DataType, Partitioning, QueryResult, Row, SchedulerMode,
    Schema, Table, TransportMode, Value,
};

/// Builds a database whose `skew` table hash-partitions 90% of its rows
/// into a single partition, plus a small `dim` table to join against.
fn skewed_db(config: DatabaseConfig) -> Database {
    let workers = config.workers;
    let db = Database::with_config(config);
    let schema = Schema::from_pairs(&[
        ("k", DataType::Integer),
        ("g", DataType::Integer),
        ("v", DataType::Double),
    ]);
    // Hash on `k`: the 900 rows with k = 0 all land in one partition.
    let mut t = Table::new("skew", schema, workers, Partitioning::Hash(0));
    for i in 0..900i64 {
        t.insert(Row::new(vec![
            Value::Integer(0),
            Value::Integer(i % 7),
            Value::Double(i as f64 * 0.25),
        ]))
        .unwrap();
    }
    for i in 0..100i64 {
        t.insert(Row::new(vec![
            Value::Integer(i + 1),
            Value::Integer(i % 7),
            Value::Double(i as f64 * 1.5),
        ]))
        .unwrap();
    }
    db.catalog().create_table(t).unwrap();

    let dim_schema =
        Schema::from_pairs(&[("g", DataType::Integer), ("label", DataType::Integer)]);
    let mut dim = Table::new("dim", dim_schema, workers, Partitioning::Hash(0));
    for g in 0..7i64 {
        dim.insert(Row::new(vec![Value::Integer(g), Value::Integer(g * 100)]))
            .unwrap();
    }
    db.catalog().create_table(dim).unwrap();
    db
}

/// Renders a result as sorted row strings (queries here avoid ORDER BY,
/// so compare as multisets).
fn sorted_rows(r: &QueryResult) -> Vec<String> {
    let mut rows: Vec<String> = r.rows.iter().map(|row| row.to_string()).collect();
    rows.sort();
    rows
}

const QUERIES: &[&str] = &[
    // Scan + filter + project over the skewed partition.
    "SELECT k * 2 AS kk, g FROM skew WHERE k >= 10",
    // Group-by with integer aggregates (exact under any morsel split).
    "SELECT g, COUNT(*) AS c, SUM(k) AS s FROM skew GROUP BY g",
    // Global aggregate.
    "SELECT COUNT(*) AS n, SUM(g) AS sg FROM skew",
    // Hash join build + probe against the skewed probe side.
    "SELECT s.k, d.label FROM skew AS s, dim AS d WHERE s.g = d.g AND s.k >= 990",
];

fn config(
    workers: usize,
    transport: TransportMode,
    scheduler: SchedulerMode,
) -> DatabaseConfig {
    DatabaseConfig {
        workers,
        transport,
        scheduler,
        // Tiny morsels so the 900-row partition splits into dozens of
        // stealable pieces even in a quick test.
        morsel_rows: 16,
        // Oversubscribed dedicated pool: on any core count, preemption
        // forces cross-queue stealing.
        pool_workers: Some(4),
        ..DatabaseConfig::default()
    }
}

#[test]
fn pool_matches_spawn_on_skewed_partitions() {
    for workers in [1usize, 4] {
        for transport in [TransportMode::Pointer, TransportMode::Serialized] {
            let pool_db = skewed_db(config(workers, transport, SchedulerMode::Pool));
            let spawn_db = skewed_db(config(workers, transport, SchedulerMode::Spawn));
            for q in QUERIES {
                let got = pool_db.query(q).unwrap();
                let want = spawn_db.query(q).unwrap();
                assert_eq!(
                    sorted_rows(&got),
                    sorted_rows(&want),
                    "W={workers} transport={transport:?} query={q}"
                );
            }
        }
    }
}

#[test]
fn double_aggregates_match_within_tolerance() {
    // Morsel splitting re-associates float addition; sums must agree with
    // the sequential baseline to rounding error only.
    let pool_db = skewed_db(config(4, TransportMode::Pointer, SchedulerMode::Pool));
    let spawn_db = skewed_db(config(4, TransportMode::Pointer, SchedulerMode::Spawn));
    let q = "SELECT SUM(v) AS s FROM skew";
    let got = pool_db.query(q).unwrap().scalar().unwrap().as_double().unwrap();
    let want = spawn_db.query(q).unwrap().scalar().unwrap().as_double().unwrap();
    assert!(
        (got - want).abs() <= 1e-9 * want.abs().max(1.0),
        "pool {got} vs spawn {want}"
    );
}

#[test]
fn repeated_grouped_aggregation_is_deterministic() {
    // Per-partition partials merge in ascending morsel order no matter
    // which worker ran which morsel, so repeated runs are bit-identical —
    // including float AVG states.
    let db = skewed_db(config(4, TransportMode::Pointer, SchedulerMode::Pool));
    let q = "SELECT g, AVG(v) AS a, SUM(v) AS s, COUNT(*) AS c FROM skew GROUP BY g";
    let first = db.query(q).unwrap();
    let reference: Vec<Vec<Value>> =
        first.rows.iter().map(|r| r.values().to_vec()).collect();
    for run in 1..5 {
        let again = db.query(q).unwrap();
        let rows: Vec<Vec<Value>> =
            again.rows.iter().map(|r| r.values().to_vec()).collect();
        assert_eq!(rows, reference, "run {run} diverged");
    }
}

#[test]
fn pool_metrics_surface_in_show_metrics() {
    let db = skewed_db(config(4, TransportMode::Pointer, SchedulerMode::Pool));
    db.query("SELECT g, COUNT(*) AS c FROM skew GROUP BY g").unwrap();
    let r = db.query("SHOW METRICS").unwrap();
    let names: Vec<String> = r.rows.iter().map(|row| row.value(0).to_string()).collect();
    for metric in
        ["pool.morsels", "pool.steals", "pool.queue_wait_us", "pool.size", "pool.utilization"]
    {
        assert!(
            names.iter().any(|n| n == metric),
            "metric {metric} missing from SHOW METRICS: {names:?}"
        );
    }
    // The query above ran real morsels through the pool.
    let morsels = r
        .rows
        .iter()
        .find(|row| row.value(0).to_string() == "pool.morsels")
        .map(|row| row.value(2).as_double().unwrap())
        .unwrap();
    assert!(morsels >= 1.0, "pool.morsels = {morsels}");
}
