//! Differential tests: the compiled vectorized engine vs the row
//! interpreter.
//!
//! Two layers, matching the engine's correctness argument:
//!
//! * **Bytecode vs tree walker** (proptest): for random expression trees
//!   over random column batches — NULLs, mixed types, zero-length batches
//!   included — whenever the compiled program evaluates a batch
//!   successfully, every lane must be *bit-identical* (`-0.0` and NaN
//!   payloads included) to the interpreter's per-row answer. When the
//!   program errors, the executor replays the chunk through the
//!   interpreter and takes its result, so a program error is never a
//!   wrong answer — which is exactly why success-implies-identical is the
//!   whole invariant at this layer.
//! * **Engine level** (SQL through [`Database`]): the same statements run
//!   under `--expr-engine interpret` and `compiled`, across worker counts
//!   and schedulers, must return bit-identical relations — and failing
//!   statements must fail identically (same error class; at one worker,
//!   the same message), because the per-chunk fallback hands errors to
//!   the interpreter.

use lardb::{
    Database, DatabaseConfig, DataType, ExprEngine, Partitioning, QueryResult, Row,
    SchedulerMode, Schema, Value,
};
use lardb_exec::batch::ColumnBatch;
use lardb_exec::compile::Program;
use lardb_exec::eval::eval;
use lardb_planner::{CmpOp, Expr};
use lardb_storage::ops::ArithOp;
use proptest::prelude::*;

const ARITY: usize = 3;

/// Canonical rendering with exact float bits, so `-0.0 != 0.0` and NaN
/// payloads are compared faithfully.
fn canon(v: &Value) -> String {
    match v {
        Value::Double(d) => format!("D:{:016x}", d.to_bits()),
        other => format!("{other:?}"),
    }
}

// ------------------------------------------------------ unit differential

/// splitmix64: tiny deterministic generator for expression/batch shapes
/// (the vendored proptest provides scalar strategies only).
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn gen_value(g: &mut Gen) -> Value {
    match g.below(9) {
        0 => Value::Null,
        1..=3 => Value::Integer(g.below(13) as i64 - 6),
        4..=6 => Value::Double([0.0, -0.0, 1.5, -3.25, 0.125, f64::NAN][g.below(6) as usize]),
        7 => Value::Boolean(g.below(2) == 0),
        _ => Value::Varchar(["s", "t"][g.below(2) as usize].into()),
    }
}

fn gen_expr(g: &mut Gen, depth: u32) -> Expr {
    if depth == 0 || g.below(3) == 0 {
        return if g.below(2) == 0 {
            Expr::col(g.below(ARITY as u64) as usize)
        } else {
            Expr::lit(gen_value(g))
        };
    }
    let l = gen_expr(g, depth - 1);
    let r = gen_expr(g, depth - 1);
    match g.below(6) {
        0 => Expr::arith(
            [ArithOp::Add, ArithOp::Sub, ArithOp::Mul, ArithOp::Div][g.below(4) as usize],
            l,
            r,
        ),
        1 => Expr::cmp(
            [CmpOp::Eq, CmpOp::NotEq, CmpOp::Lt, CmpOp::LtEq, CmpOp::Gt, CmpOp::GtEq]
                [g.below(6) as usize],
            l,
            r,
        ),
        2 => Expr::And(Box::new(l), Box::new(r)),
        3 => Expr::Or(Box::new(l), Box::new(r)),
        4 => Expr::Not(Box::new(l)),
        _ => Expr::Negate(Box::new(l)),
    }
}

fn gen_rows(g: &mut Gen) -> Vec<Row> {
    let n = g.below(7) as usize; // 0..=6: zero-length batches included
    (0..n).map(|_| Row::new((0..ARITY).map(|_| gen_value(g)).collect())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Compiled success ⇒ bit-identical to the interpreter, lane by lane.
    /// On Err the executor replays the chunk through the interpreter and
    /// takes its result, so a program error is by construction never a
    /// wrong answer — success-implies-identical is the whole invariant.
    #[test]
    fn compiled_success_is_bit_identical(seed in 0u64..u64::MAX) {
        let mut g = Gen(seed);
        let expr = gen_expr(&mut g, 3);
        let rows = gen_rows(&mut g);
        let batch = ColumnBatch::from_rows(&rows).unwrap();
        let prog = Program::compile(&expr);
        let mut scratch = Vec::new();
        if let Ok(col) = prog.eval(batch.cols(), rows.len(), None, &mut scratch) {
            for (i, row) in rows.iter().enumerate() {
                let want = eval(&expr, row).expect(
                    "compiled program succeeded on a batch whose row errors under \
                     the interpreter — the fallback rule cannot mask this",
                );
                let got = canon(&col.value_at(i));
                let want = canon(&want);
                prop_assert!(got == want, "lane {i} of {expr:?}: {got} != {want}");
            }
        }
    }

    /// Selection vectors restrict evaluation to the selected lanes and
    /// stay bit-identical there.
    #[test]
    fn compiled_respects_selection(seed in 0u64..u64::MAX) {
        let mut g = Gen(seed);
        let expr = gen_expr(&mut g, 3);
        let rows = gen_rows(&mut g);
        let batch = ColumnBatch::from_rows(&rows).unwrap();
        let sel: Vec<u32> = (0..rows.len() as u32).step_by(2).collect();
        let prog = Program::compile(&expr);
        let mut scratch = Vec::new();
        if let Ok(col) = prog.eval(batch.cols(), rows.len(), Some(&sel), &mut scratch) {
            for &i in &sel {
                let want = eval(&expr, &rows[i as usize]).expect("fallback masks errors");
                let got = canon(&col.value_at(i as usize));
                let want = canon(&want);
                prop_assert!(got == want, "lane {i} of {expr:?}: {got} != {want}");
            }
        }
    }
}

#[test]
fn zero_length_batch_evaluates_to_empty_column() {
    let rows: Vec<Row> = Vec::new();
    let batch = ColumnBatch::from_rows(&rows).unwrap();
    let e = Expr::arith(ArithOp::Add, Expr::col(0), Expr::lit(1i64));
    let prog = Program::compile(&e);
    let mut scratch = Vec::new();
    // Column 0 is out of range on a zero-arity batch: the program must
    // error (and the executor would fall back), not fabricate lanes.
    assert!(prog.eval(batch.cols(), 0, None, &mut scratch).is_err());
    // A literal-only program over zero lanes succeeds with zero lanes.
    let lit = Expr::lit(2.5f64);
    let prog = Program::compile(&lit);
    let col = prog.eval(batch.cols(), 0, None, &mut scratch).unwrap();
    assert_eq!(col.len(), 0);
}

// ---------------------------------------------------- engine differential

/// Mixed-type table: exact-in-float doubles (halves) so aggregate results
/// are order-independent, NULLs in every column, and a VARCHAR column for
/// type-error statements.
fn seed_db(config: DatabaseConfig) -> Database {
    let db = Database::with_config(config);
    db.create_table(
        "t",
        Schema::from_pairs(&[
            ("id", DataType::Integer),
            ("g", DataType::Integer),
            ("v", DataType::Double),
            ("s", DataType::Varchar),
        ]),
        Partitioning::Hash(0),
    )
    .unwrap();
    let rows = (0..400i64).map(|i| {
        Row::new(vec![
            Value::Integer(i),
            if i % 11 == 0 { Value::Null } else { Value::Integer(i % 7) },
            if i % 13 == 0 { Value::Null } else { Value::Double(i as f64 * 0.5 - 100.0) },
            Value::Varchar(format!("s{}", i % 3).into()),
        ])
    });
    db.insert_rows("t", rows).unwrap();
    db.create_table(
        "empty",
        Schema::from_pairs(&[("x", DataType::Integer), ("y", DataType::Double)]),
        Partitioning::RoundRobin,
    )
    .unwrap();
    db
}

fn config(workers: usize, scheduler: SchedulerMode, engine: ExprEngine) -> DatabaseConfig {
    DatabaseConfig {
        workers,
        scheduler,
        expr_engine: engine,
        // Tiny batches and morsels so even 400 rows cross many chunk and
        // steal boundaries.
        batch_rows: 16,
        morsel_rows: 32,
        pool_workers: Some(4),
        ..DatabaseConfig::default()
    }
}

fn canon_rows(r: &QueryResult) -> Vec<String> {
    let mut rows: Vec<String> = r
        .rows
        .iter()
        .map(|row| {
            row.values().iter().map(canon).collect::<Vec<_>>().join("|")
        })
        .collect();
    rows.sort();
    rows
}

const STATEMENTS: &[&str] = &[
    // Filter + project with arithmetic, NULLs flowing through 3VL.
    "SELECT id * 2, v + 0.5, v * v - id FROM t WHERE v > -50.0 AND id < 350",
    // Eager OR/AND over NULL-bearing predicates.
    "SELECT id FROM t WHERE g = 3 OR v < -90.0",
    "SELECT id, g FROM t WHERE NOT (g = 2) AND v <= 50.0",
    // Highly selective and empty-result filters.
    "SELECT id FROM t WHERE v = 0.0",
    "SELECT id FROM t WHERE v > 1e18",
    // Fused filter→aggregate (halves are exact in f64, so SUM order is
    // immaterial).
    "SELECT g, COUNT(*) AS c, SUM(v) AS sv, MIN(v) AS mn FROM t WHERE id >= 10 GROUP BY g",
    // Global aggregate, and one over an empty input.
    "SELECT COUNT(*) AS n, SUM(v) AS s FROM t WHERE v < -98.0",
    "SELECT COUNT(*) AS n, SUM(y) AS s FROM empty",
    "SELECT x, y * 2.0 FROM empty WHERE x > 0",
    // Projection only (no filter in the chain).
    "SELECT v - 1.0, id + g FROM t",
];

/// Statements that must fail under both engines with the same error.
const FAILING: &[&str] = &[
    // VARCHAR arithmetic: a runtime type error from the shared ops table.
    "SELECT s + 1 FROM t",
    "SELECT id FROM t WHERE s * 2 > 0",
];

#[test]
fn compiled_matches_interpreter_across_configs() {
    for workers in [1usize, 4] {
        for scheduler in [SchedulerMode::Pool, SchedulerMode::Spawn] {
            let compiled = seed_db(config(workers, scheduler, ExprEngine::Compiled));
            let interp = seed_db(config(workers, scheduler, ExprEngine::Interpret));
            for q in STATEMENTS {
                let got = compiled.query(q).unwrap();
                let want = interp.query(q).unwrap();
                assert_eq!(
                    canon_rows(&got),
                    canon_rows(&want),
                    "W={workers} scheduler={scheduler:?} query={q}"
                );
            }
            for q in FAILING {
                let got = compiled.query(q).expect_err("compiled should fail").to_string();
                let want = interp.query(q).expect_err("interpret should fail").to_string();
                if workers == 1 {
                    // Single worker: no sibling race, the error message
                    // must match exactly.
                    assert_eq!(got, want, "W=1 scheduler={scheduler:?} query={q}");
                } else {
                    // Multiple workers race to fail first and the losers
                    // report "query aborted" — identically so for both
                    // engines, but which error surfaces is
                    // timing-dependent. Messages must agree unless one
                    // side lost that race.
                    assert!(
                        got == want
                            || got.contains("query aborted")
                            || want.contains("query aborted"),
                        "W={workers} scheduler={scheduler:?} query={q}: \
                         compiled '{got}' vs interpret '{want}'"
                    );
                }
            }
        }
    }
}

#[test]
fn compiled_engine_is_deterministic_across_runs() {
    let db = seed_db(config(4, SchedulerMode::Pool, ExprEngine::Compiled));
    let q = "SELECT g, AVG(v) AS a, SUM(v) AS s FROM t WHERE id < 390 GROUP BY g";
    let reference = canon_rows(&db.query(q).unwrap());
    for run in 1..5 {
        assert_eq!(canon_rows(&db.query(q).unwrap()), reference, "run {run} diverged");
    }
}

#[test]
fn batch_rows_knob_does_not_change_results() {
    let mut cfgs = Vec::new();
    for rows in [1usize, 7, 64, 4096] {
        let mut c = config(4, SchedulerMode::Pool, ExprEngine::Compiled);
        c.batch_rows = rows;
        cfgs.push((rows, seed_db(c)));
    }
    let q = "SELECT id, v * 2.0 FROM t WHERE v > -80.0 AND g <= 5";
    let reference = canon_rows(&cfgs[0].1.query(q).unwrap());
    for (rows, db) in &cfgs[1..] {
        assert_eq!(canon_rows(&db.query(q).unwrap()), reference, "batch_rows={rows}");
    }
}

#[test]
fn vectorized_counters_surface_in_stats_and_metrics() {
    let db = seed_db(config(4, SchedulerMode::Pool, ExprEngine::Compiled));
    let r = db.query("SELECT id FROM t WHERE v > -50.0").unwrap();
    assert!(r.stats.total_batches() > 0, "vectorized filter should report batches");
    assert!(r.stats.total_kernels() > 0, "vectorized filter should report kernels");
    assert!(
        r.stats.display_table().contains("vec:"),
        "display_table should carry the vec sub-line:\n{}",
        r.stats.display_table()
    );
    let metrics = db.query("SHOW METRICS").unwrap();
    let names: Vec<String> =
        metrics.rows.iter().map(|row| row.value(0).to_string()).collect();
    for metric in ["exec.batch.batches", "exec.batch.rows", "exec.batch.kernels"] {
        assert!(
            names.iter().any(|n| n == metric),
            "metric {metric} missing from SHOW METRICS: {names:?}"
        );
    }
    // The interpreted engine reports no vectorized work.
    let idb = seed_db(config(4, SchedulerMode::Pool, ExprEngine::Interpret));
    let ri = idb.query("SELECT id FROM t WHERE v > -50.0").unwrap();
    assert_eq!(ri.stats.total_batches(), 0);
    assert_eq!(ri.stats.total_kernels(), 0);
}
