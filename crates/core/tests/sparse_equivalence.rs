//! Sparse/dense differential suite: a sparse tile is a storage format,
//! never a semantic one.
//!
//! Every query here runs twice — once against a database whose matrix
//! tiles are stored as CSR sparse values under adaptive dispatch, once
//! against a twin whose tiles are the densified equivalents under
//! forced-dense dispatch — and the results must be **bit-identical**
//! (sparse kernels accumulate each output element over ascending k, the
//! same order as the dense loops, so `==` on float bits is the contract,
//! not a tolerance). The matrix sweeps density {0.1%, 1%, 10%, 50%},
//! W ∈ {1, 4}, both schedulers, both transports, and a 1 MiB spill
//! budget; the iterative PageRank and logistic-regression drivers must
//! follow identical trajectories; and serialized exchanges must ship
//! sparse tiles proportionally to nnz, not rows × cols.
//!
//! Dispatch mode is process-wide, so every test takes `MODE_LOCK` and
//! pins the mode it needs; tests never rely on the ambient default.

use lardb::{
    dispatch, CooBuilder, Database, DatabaseConfig, DataType, DispatchMode,
    Partitioning, QueryResult, Row, SchedulerMode, Schema, SparseMatrix,
    TransportMode, Value, Vector,
};
use std::sync::Mutex;

/// Serializes tests that flip the process-wide dispatch mode.
static MODE_LOCK: Mutex<()> = Mutex::new(());

fn mode_lock() -> std::sync::MutexGuard<'static, ()> {
    MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Tiny deterministic xorshift so tile contents are identical run-to-run
/// and across the sparse/dense twins.
fn rngish(seed: u64) -> impl FnMut() -> u64 {
    let mut s = seed | 1;
    move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    }
}

/// A `rows × cols` CSR tile at roughly the given density. Values are
/// positive 64ths (exactly representable; no cancellation, so stored nnz
/// equals the dense nonzero count and `NNZ()` agrees across twins).
fn sparse_tile(seed: u64, rows: usize, cols: usize, density: f64) -> SparseMatrix {
    let mut rng = rngish(seed);
    let mut b = CooBuilder::new();
    let target = ((rows * cols) as f64 * density).ceil() as usize;
    for _ in 0..target {
        let r = (rng() as usize % rows) as i64;
        let c = (rng() as usize % cols) as i64;
        let v = (rng() % 2000 + 1) as f64 / 64.0;
        b.push(r, c, v).unwrap();
    }
    b.build(rows, cols).unwrap()
}

fn spill_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("lardb-sparse-eq-{}-{tag}", std::process::id()))
}

fn assert_spill_dir_empty(dir: &std::path::Path) {
    if let Ok(entries) = std::fs::read_dir(dir) {
        let left: Vec<_> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
        assert!(left.is_empty(), "spill files leaked in {}: {left:?}", dir.display());
    }
    let _ = std::fs::remove_dir(dir);
}

fn config(
    workers: usize,
    transport: TransportMode,
    scheduler: SchedulerMode,
    mem: Option<u64>,
    mode: DispatchMode,
    tag: &str,
) -> DatabaseConfig {
    DatabaseConfig {
        workers,
        transport,
        scheduler,
        morsel_rows: 64,
        pool_workers: Some(4),
        mem: Some(mem.unwrap_or(0)),
        spill_dir: Some(spill_dir(tag)),
        sparse_dispatch: Some(mode),
        ..DatabaseConfig::default()
    }
}

const TILES: usize = 4;
const TILE: usize = 64;

/// Two tile tables `ta`/`tb` plus a single-row vector table `vt`. The
/// sparse build stores CSR tiles; the dense build stores the densified
/// twins of the *same* tiles.
fn tile_db(cfg: DatabaseConfig, sparse: bool, density: f64) -> Database {
    let db = Database::with_config(cfg);
    let schema = Schema::from_pairs(&[
        ("tr", DataType::Integer),
        ("tc", DataType::Integer),
        ("mat", DataType::Matrix(Some(TILE), Some(TILE))),
    ]);
    for (name, base) in [("ta", 0x5eed_0001u64), ("tb", 0x5eed_0002)] {
        db.create_table(name, schema.clone(), Partitioning::Hash(0)).unwrap();
        let mut rows = Vec::new();
        for tr in 0..TILES as i64 {
            for tc in 0..TILES as i64 {
                let m = sparse_tile(
                    base ^ (tr as u64 * 31 + tc as u64) ^ density.to_bits(),
                    TILE,
                    TILE,
                    density,
                );
                let cell = if sparse {
                    Value::sparse_matrix(m)
                } else {
                    Value::matrix(m.to_dense())
                };
                rows.push(Row::new(vec![
                    Value::Integer(tr),
                    Value::Integer(tc),
                    cell,
                ]));
            }
        }
        db.insert_rows(name, rows.into_iter()).unwrap();
    }
    db.create_table(
        "vt",
        Schema::from_pairs(&[("x", DataType::Vector(Some(TILE)))]),
        Partitioning::Hash(0),
    )
    .unwrap();
    let x = Vector::from_vec((0..TILE).map(|i| (i as f64 + 1.0) / 8.0).collect());
    db.insert_rows("vt", std::iter::once(Row::new(vec![Value::vector(x)])))
        .unwrap();
    db
}

/// The differential query set: tiled SpGEMM + SUM mixing, SpMV, sparse
/// transpose/Gram, elementwise Hadamard, and nnz bookkeeping.
const QUERIES: &[&str] = &[
    "SELECT a.tr, b.tc, SUM(matrix_multiply(a.mat, b.mat)) AS m
     FROM ta AS a, tb AS b WHERE a.tc = b.tr GROUP BY a.tr, b.tc",
    "SELECT a.tr, a.tc, matrix_vector_multiply(a.mat, v.x) AS y
     FROM ta AS a, vt AS v",
    "SELECT a.tr, a.tc, sum_elements(matrix_multiply(trans_matrix(a.mat), a.mat)) AS g
     FROM ta AS a",
    "SELECT a.tr, a.tc, frobenius_norm(a.mat * b.mat) AS f
     FROM ta AS a, tb AS b WHERE a.tr = b.tr AND a.tc = b.tc",
    "SELECT SUM(nnz(a.mat)) AS z, SUM(sum_elements(a.mat)) AS s FROM ta AS a",
];

/// Exact row values. `Value`'s mixed sparse/dense equality makes this
/// representation-agnostic but float-bit-sensitive.
fn exact_rows(r: &QueryResult) -> Vec<Vec<Value>> {
    r.rows.iter().map(|row| row.values().to_vec()).collect()
}

/// Runs a query with the process-wide dispatch mode pinned.
fn run(db: &Database, mode: DispatchMode, q: &str) -> QueryResult {
    dispatch::set_dispatch_mode(mode);
    db.query(q).unwrap_or_else(|e| panic!("mode={} query={q}: {e}", mode.name()))
}

/// The sparse arm's dispatch mode. CI re-runs this suite with
/// `LARDB_SPARSE_DISPATCH` forced to each mode: the differential
/// contract is mode-independent, so the sparse-stored arm must match
/// the forced-dense twin under *any* dispatch policy. Tests whose
/// assertions are representation-specific (wire bytes, EXPLAIN output,
/// `as_sparse_matrix` downcasts) pin their modes instead.
fn sparse_arm_mode() -> DispatchMode {
    std::env::var("LARDB_SPARSE_DISPATCH")
        .ok()
        .and_then(|s| DispatchMode::parse(&s))
        .unwrap_or(DispatchMode::Adaptive)
}

#[test]
fn sparse_matches_dense_across_density_workers_schedulers() {
    let _g = mode_lock();
    let arm = sparse_arm_mode();
    for density in [0.001, 0.01, 0.1, 0.5] {
        for workers in [1usize, 4] {
            for scheduler in [SchedulerMode::Pool, SchedulerMode::Spawn] {
                let tag = format!("d{density}-w{workers}-{scheduler:?}");
                let sparse_db = tile_db(
                    config(workers, TransportMode::Pointer, scheduler, None, arm, &tag),
                    true,
                    density,
                );
                let dense_db = tile_db(
                    config(
                        workers,
                        TransportMode::Pointer,
                        scheduler,
                        None,
                        DispatchMode::Dense,
                        &format!("{tag}-dense"),
                    ),
                    false,
                    density,
                );
                for q in QUERIES {
                    let got = run(&sparse_db, arm, q);
                    let want = run(&dense_db, DispatchMode::Dense, q);
                    assert_eq!(
                        exact_rows(&got),
                        exact_rows(&want),
                        "density={density} W={workers} scheduler={scheduler:?} query={q}"
                    );
                }
            }
        }
    }
    dispatch::set_dispatch_mode(DispatchMode::Adaptive);
}

/// Forced-sparse mode must agree too — skip-zero loops and sparse
/// kernels are exact no-op-skipping rewrites of the dense loops.
#[test]
fn forced_sparse_mode_matches_forced_dense() {
    let _g = mode_lock();
    let sparse_db = tile_db(
        config(
            4,
            TransportMode::Pointer,
            SchedulerMode::Pool,
            None,
            DispatchMode::Sparse,
            "forced-sparse",
        ),
        true,
        0.1,
    );
    let dense_db = tile_db(
        config(
            4,
            TransportMode::Pointer,
            SchedulerMode::Pool,
            None,
            DispatchMode::Dense,
            "forced-sparse-dense",
        ),
        false,
        0.1,
    );
    for q in QUERIES {
        let got = run(&sparse_db, DispatchMode::Sparse, q);
        let want = run(&dense_db, DispatchMode::Dense, q);
        assert_eq!(exact_rows(&got), exact_rows(&want), "query={q}");
    }
    dispatch::set_dispatch_mode(DispatchMode::Adaptive);
}

/// Serialized transport (tag-8 sparse wire frames) + a 1 MiB spill
/// budget compose with sparse tiles: same bits as the unbounded
/// pointer-mode dense twin.
#[test]
fn serialized_budgeted_sparse_matches_unbounded_dense() {
    let _g = mode_lock();
    let arm = sparse_arm_mode();
    for density in [0.01, 0.5] {
        let tag = format!("ser-d{density}");
        let budgeted = tile_db(
            config(
                4,
                TransportMode::Serialized,
                SchedulerMode::Pool,
                Some(1),
                arm,
                &tag,
            ),
            true,
            density,
        );
        let unbounded = tile_db(
            config(
                4,
                TransportMode::Pointer,
                SchedulerMode::Pool,
                None,
                DispatchMode::Dense,
                &format!("{tag}-dense"),
            ),
            false,
            density,
        );
        for q in QUERIES {
            let got = run(&budgeted, arm, q);
            let want = run(&unbounded, DispatchMode::Dense, q);
            assert_eq!(exact_rows(&got), exact_rows(&want), "density={density} query={q}");
        }
        assert_spill_dir_empty(&spill_dir(&tag));
    }
    dispatch::set_dispatch_mode(DispatchMode::Adaptive);
}

/// Serialized exchanges ship sparse tiles proportionally to nnz: the
/// same tile-join at 1% density must move at least 10× fewer wire bytes
/// from the sparse store than from the dense store (a dense 64×64 tile
/// is 32 KiB; its 1% CSR twin is under a kilobyte).
#[test]
fn exchange_bytes_scale_with_nnz_not_shape() {
    let _g = mode_lock();
    let q = QUERIES[0]; // the tile join repartitions both tables' cells
    let sparse_db = tile_db(
        config(
            4,
            TransportMode::Serialized,
            SchedulerMode::Pool,
            None,
            DispatchMode::Adaptive,
            "nnz-sparse",
        ),
        true,
        0.01,
    );
    let dense_db = tile_db(
        config(
            4,
            TransportMode::Serialized,
            SchedulerMode::Pool,
            None,
            DispatchMode::Dense,
            "nnz-dense",
        ),
        false,
        0.01,
    );
    let got = run(&sparse_db, DispatchMode::Adaptive, q);
    let want = run(&dense_db, DispatchMode::Dense, q);
    assert_eq!(exact_rows(&got), exact_rows(&want));
    let (sparse_bytes, dense_bytes) =
        (got.stats.total_bytes_shuffled(), want.stats.total_bytes_shuffled());
    assert!(
        sparse_bytes > 0 && dense_bytes > 0,
        "expected measured wire bytes, got sparse={sparse_bytes} dense={dense_bytes}"
    );
    assert!(
        sparse_bytes * 10 < dense_bytes,
        "sparse exchange not nnz-proportional: {sparse_bytes} vs dense {dense_bytes}"
    );
    dispatch::set_dispatch_mode(DispatchMode::Adaptive);
}

/// `MATRIX_FROM_ENTRIES` over a W=4 edge table: duplicates sum, the
/// result matches a hand-built COO assembly bit-for-bit, forced-dense
/// mode yields the dense representation of the same matrix, and bad
/// coordinates surface as typed errors (never a truncated matrix).
#[test]
fn matrix_from_entries_sql_end_to_end() {
    let _g = mode_lock();
    let db = Database::with_config(config(
        4,
        TransportMode::Pointer,
        SchedulerMode::Pool,
        None,
        DispatchMode::Adaptive,
        "mfe",
    ));
    db.create_table(
        "edges",
        Schema::from_pairs(&[
            ("g", DataType::Integer),
            ("i", DataType::Integer),
            ("j", DataType::Integer),
            ("w", DataType::Double),
        ]),
        Partitioning::Hash(1),
    )
    .unwrap();
    let mut rng = rngish(0xed9e);
    let mut rows = Vec::new();
    let mut expected = CooBuilder::new();
    for _ in 0..500 {
        let (i, j) = ((rng() % 40) as i64, (rng() % 30) as i64);
        let w = (rng() % 1000 + 1) as f64 / 32.0;
        expected.push(i, j, w).unwrap();
        rows.push(Row::new(vec![
            Value::Integer(i % 2),
            Value::Integer(i),
            Value::Integer(j),
            Value::Double(w),
        ]));
    }
    // Pin the corners so the inferred shape is deterministic.
    for (i, j) in [(39i64, 29i64), (0, 0)] {
        expected.push(i, j, 1.0).unwrap();
        rows.push(Row::new(vec![
            Value::Integer(i % 2),
            Value::Integer(i),
            Value::Integer(j),
            Value::Double(1.0),
        ]));
    }
    db.insert_rows("edges", rows.into_iter()).unwrap();
    let expected = expected.build_inferred();
    assert_eq!(expected.shape(), (40, 30));

    dispatch::set_dispatch_mode(DispatchMode::Adaptive);
    let r = db.query("SELECT MATRIX_FROM_ENTRIES(i, j, w) AS m FROM edges").unwrap();
    assert_eq!(r.rows.len(), 1);
    let got = r.rows[0].value(0).as_sparse_matrix().expect("adaptive result is sparse");
    assert_eq!(got.shape(), (40, 30));
    assert_eq!(got.csr_parts(), expected.csr_parts(), "duplicate summation diverged");

    // Forced dense: same matrix, dense representation.
    dispatch::set_dispatch_mode(DispatchMode::Dense);
    let r = db.query("SELECT MATRIX_FROM_ENTRIES(i, j, w) AS m FROM edges").unwrap();
    let dense = r.rows[0].value(0).as_matrix().expect("forced-dense result is dense");
    assert_eq!(dense.as_ref(), &expected.to_dense());
    dispatch::set_dispatch_mode(DispatchMode::Adaptive);

    // Grouped construction splits the same edges into per-group matrices
    // whose sum of entries matches the whole.
    let r = db
        .query("SELECT g, MATRIX_FROM_ENTRIES(i, j, w) AS m FROM edges GROUP BY g")
        .unwrap();
    assert_eq!(r.rows.len(), 2);
    let part_sum: f64 = r
        .rows
        .iter()
        .map(|row| match row.value(1) {
            Value::SparseMatrix(m) => m.sum_elements(),
            Value::Matrix(m) => m.sum_elements(),
            other => panic!("expected a matrix cell, got {other:?}"),
        })
        .sum();
    assert_eq!(part_sum, expected.sum_elements());

    // Out-of-range coordinates are typed errors, not truncations.
    db.execute("INSERT INTO edges VALUES (0, -3, 1, 1.0)").unwrap();
    let err = db
        .query("SELECT MATRIX_FROM_ENTRIES(i, j, w) AS m FROM edges")
        .expect_err("negative coordinate must fail");
    assert!(
        err.to_string().contains("MATRIX_FROM_ENTRIES"),
        "untyped error: {err}"
    );
}

/// Builds a column-stochastic adjacency matrix for a deterministic
/// `n`-node graph where every node has at least one out-edge. Returns
/// the CSR matrix (stored sparse or densified by the caller).
fn stochastic_graph(n: usize) -> SparseMatrix {
    let mut rng = rngish(0x9a9a);
    let mut out: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (src, targets) in out.iter_mut().enumerate() {
        targets.push((src * 7 + 1) % n);
        for _ in 0..(rng() % 4) {
            targets.push(rng() as usize % n);
        }
        targets.sort_unstable();
        targets.dedup();
    }
    let mut b = CooBuilder::new();
    for (src, targets) in out.iter().enumerate() {
        let w = 1.0 / targets.len() as f64;
        for &dst in targets {
            b.push(dst as i64, src as i64, w).unwrap();
        }
    }
    b.build(n, n).unwrap()
}

/// One database holding a single-row `graph(m)` table.
fn graph_db(mode: DispatchMode, sparse: bool, m: &SparseMatrix, tag: &str) -> Database {
    let (n, _) = m.shape();
    let db = Database::with_config(config(
        2,
        TransportMode::Pointer,
        SchedulerMode::Pool,
        None,
        mode,
        tag,
    ));
    db.create_table(
        "graph",
        Schema::from_pairs(&[("m", DataType::Matrix(Some(n), Some(n)))]),
        Partitioning::Hash(0),
    )
    .unwrap();
    let cell =
        if sparse { Value::sparse_matrix(m.clone()) } else { Value::matrix(m.to_dense()) };
    db.insert_rows("graph", std::iter::once(Row::new(vec![cell]))).unwrap();
    db
}

/// One damped PageRank step driven through SQL SpMV: inserts the rank
/// vector as `rank_k(x)`, queries `M · x`, applies damping in the
/// driver, and returns the next vector.
fn pagerank_step(db: &Database, mode: DispatchMode, k: usize, rank: &[f64]) -> Vec<f64> {
    let n = rank.len();
    let table = format!("rank_{k}");
    db.create_table(
        &table,
        Schema::from_pairs(&[("x", DataType::Vector(Some(n)))]),
        Partitioning::Hash(0),
    )
    .unwrap();
    db.insert_rows(
        &table,
        std::iter::once(Row::new(vec![Value::vector(Vector::from_vec(rank.to_vec()))])),
    )
    .unwrap();
    let r = run(
        db,
        mode,
        &format!("SELECT matrix_vector_multiply(g.m, r.x) AS y FROM graph AS g, {table} AS r"),
    );
    assert_eq!(r.rows.len(), 1);
    let y = r.rows[0].value(0).as_vector().expect("SpMV returns a vector");
    y.as_slice().iter().map(|&mv| 0.85 * mv + 0.15 / n as f64).collect()
}

/// PageRank over the sparse store follows the dense trajectory
/// bit-for-bit and converges.
#[test]
fn pagerank_sparse_trajectory_matches_dense() {
    let _g = mode_lock();
    const N: usize = 200;
    let arm = sparse_arm_mode();
    let m = stochastic_graph(N);
    assert!(m.density() < 0.05, "graph should be sparse, got {}", m.density());
    let sparse_db = graph_db(arm, true, &m, "pr-sparse");
    let dense_db = graph_db(DispatchMode::Dense, false, &m, "pr-dense");

    let mut rank_s = vec![1.0 / N as f64; N];
    let mut rank_d = rank_s.clone();
    let mut last_delta = f64::INFINITY;
    for k in 0..60 {
        let next_s = pagerank_step(&sparse_db, arm, k, &rank_s);
        let next_d = pagerank_step(&dense_db, DispatchMode::Dense, k, &rank_d);
        assert_eq!(next_s, next_d, "PageRank diverged at iteration {k}");
        last_delta =
            next_s.iter().zip(&rank_s).map(|(a, b)| (a - b).abs()).sum::<f64>();
        rank_s = next_s;
        rank_d = next_d;
    }
    assert!(last_delta < 1e-8, "PageRank did not converge: L1 delta {last_delta}");
    let total: f64 = rank_s.iter().sum();
    assert!((total - 1.0).abs() < 1e-9, "ranks must stay a distribution: {total}");
    dispatch::set_dispatch_mode(DispatchMode::Adaptive);
}

/// Logistic-regression batch gradient descent: `z = X·w` and the
/// gradient `Xᵀ·r` both run through SQL (SpMV over the sparse feature
/// matrix and its transpose); sigmoid/update steps run in the driver.
/// Sparse and dense stores must produce identical weight trajectories
/// with decreasing loss.
#[test]
fn logreg_sparse_trajectory_matches_dense() {
    let _g = mode_lock();
    const ROWS: usize = 120;
    const FEATS: usize = 16;
    let x = sparse_tile(0x10919, ROWS, FEATS, 0.1);
    let mut rng = rngish(0x1abe1);
    let y: Vec<f64> = (0..ROWS).map(|_| (rng() % 2) as f64).collect();

    let make = |mode, sparse: bool, tag: &str| {
        let db = Database::with_config(config(
            2,
            TransportMode::Pointer,
            SchedulerMode::Pool,
            None,
            mode,
            tag,
        ));
        db.create_table(
            "feats",
            Schema::from_pairs(&[("m", DataType::Matrix(Some(ROWS), Some(FEATS)))]),
            Partitioning::Hash(0),
        )
        .unwrap();
        let cell = if sparse {
            Value::sparse_matrix(x.clone())
        } else {
            Value::matrix(x.to_dense())
        };
        db.insert_rows("feats", std::iter::once(Row::new(vec![cell]))).unwrap();
        db
    };
    let arm = sparse_arm_mode();
    let sparse_db = make(arm, true, "lr-sparse");
    let dense_db = make(DispatchMode::Dense, false, "lr-dense");

    let spmv = |db: &Database, mode, k: usize, tag: &str, v: &[f64], transpose: bool| {
        let table = format!("v_{tag}_{k}");
        db.create_table(
            &table,
            Schema::from_pairs(&[("x", DataType::Vector(Some(v.len())))]),
            Partitioning::Hash(0),
        )
        .unwrap();
        db.insert_rows(
            &table,
            std::iter::once(Row::new(vec![Value::vector(Vector::from_vec(v.to_vec()))])),
        )
        .unwrap();
        let expr = if transpose {
            "matrix_vector_multiply(trans_matrix(f.m), r.x)"
        } else {
            "matrix_vector_multiply(f.m, r.x)"
        };
        let r = run(
            db,
            mode,
            &format!("SELECT {expr} AS y FROM feats AS f, {table} AS r"),
        );
        r.rows[0].value(0).as_vector().unwrap().as_slice().to_vec()
    };

    let sigmoid = |z: f64| 1.0 / (1.0 + (-z).exp());
    let loss = |p: &[f64]| -> f64 {
        p.iter()
            .zip(&y)
            .map(|(&p, &yi)| {
                let p = p.clamp(1e-12, 1.0 - 1e-12);
                -(yi * p.ln() + (1.0 - yi) * (1.0 - p).ln())
            })
            .sum::<f64>()
            / ROWS as f64
    };

    let mut w_s = vec![0.0f64; FEATS];
    let mut w_d = w_s.clone();
    let mut losses = Vec::new();
    for k in 0..25 {
        let z_s = spmv(&sparse_db, arm, k, "z", &w_s, false);
        let z_d = spmv(&dense_db, DispatchMode::Dense, k, "z", &w_d, false);
        assert_eq!(z_s, z_d, "X·w diverged at iteration {k}");
        let p: Vec<f64> = z_s.iter().map(|&z| sigmoid(z)).collect();
        losses.push(loss(&p));
        let resid: Vec<f64> = p.iter().zip(&y).map(|(&p, &yi)| p - yi).collect();
        let g_s = spmv(&sparse_db, arm, k, "g", &resid, true);
        let g_d = spmv(&dense_db, DispatchMode::Dense, k, "g", &resid, true);
        assert_eq!(g_s, g_d, "Xᵀ·r diverged at iteration {k}");
        for i in 0..FEATS {
            w_s[i] -= 0.05 / ROWS as f64 * g_s[i];
            w_d[i] -= 0.05 / ROWS as f64 * g_d[i];
        }
    }
    assert_eq!(w_s, w_d, "weight trajectories diverged");
    assert!(
        losses.last().unwrap() < &losses[0],
        "loss did not decrease: {losses:?}"
    );
    dispatch::set_dispatch_mode(DispatchMode::Adaptive);
}

/// Per-query dispatch attribution surfaces in EXPLAIN ANALYZE and the
/// `la.dispatch.*` SHOW METRICS counters.
#[test]
fn dispatch_choices_surface_in_explain_and_metrics() {
    let _g = mode_lock();
    let db = tile_db(
        config(
            2,
            TransportMode::Pointer,
            SchedulerMode::Pool,
            None,
            DispatchMode::Adaptive,
            "explain",
        ),
        true,
        0.01,
    );
    dispatch::set_dispatch_mode(DispatchMode::Adaptive);
    let out = db.execute(&format!("EXPLAIN ANALYZE {}", QUERIES[0])).unwrap();
    let lardb::database::Response::Explained(text) = out else {
        panic!("EXPLAIN ANALYZE should return Explained");
    };
    let line = text
        .lines()
        .find(|l| l.contains("la dispatch (adaptive):"))
        .unwrap_or_else(|| panic!("no dispatch line in EXPLAIN ANALYZE:\n{text}"));
    assert!(line.contains("spgemm"), "dispatch line lacks kernel counts: {line}");

    let metrics = db.query("SHOW METRICS").unwrap();
    let value_of = |name: &str| -> Option<f64> {
        metrics
            .rows
            .iter()
            .find(|row| row.value(0).to_string() == name)
            .and_then(|row| row.value(2).as_double())
    };
    let spgemm = value_of("la.dispatch.spgemm")
        .unwrap_or_else(|| panic!("la.dispatch.spgemm missing from SHOW METRICS"));
    assert!(spgemm >= 1.0, "la.dispatch.spgemm = {spgemm}");
    dispatch::set_dispatch_mode(DispatchMode::Adaptive);
}
