//! Chaos suite: fault injection must never yield a silent wrong answer.
//!
//! Every combination of fault kind × seed × transport × worker count runs
//! the scheduler-equivalence query set against a deterministic
//! [`FaultPlan`]. The contract under test is exchange protocol v2's core
//! guarantee: a faulted query either returns exactly the fault-free
//! answer (the fault missed, or was harmless like a delay) or a clean
//! `Err` — never a short or corrupted result set. A killed TCP peer in
//! particular must be detected 100% of the time.

use lardb::{
    CooBuilder, Database, DatabaseConfig, DataType, FaultKind, FaultPlan,
    Partitioning, QueryResult, Row, Schema, Table, TransportMode, Value,
};

/// Builds the same skewed database as the scheduler-equivalence suite:
/// 90% of `skew` rows hash into one partition, plus a 7-row `dim` table.
fn skewed_db(config: DatabaseConfig) -> Database {
    let workers = config.workers;
    let db = Database::with_config(config);
    let schema = Schema::from_pairs(&[
        ("k", DataType::Integer),
        ("g", DataType::Integer),
        ("v", DataType::Double),
    ]);
    let mut t = Table::new("skew", schema, workers, Partitioning::Hash(0));
    for i in 0..900i64 {
        t.insert(Row::new(vec![
            Value::Integer(0),
            Value::Integer(i % 7),
            Value::Double(i as f64 * 0.25),
        ]))
        .unwrap();
    }
    for i in 0..100i64 {
        t.insert(Row::new(vec![
            Value::Integer(i + 1),
            Value::Integer(i % 7),
            Value::Double(i as f64 * 1.5),
        ]))
        .unwrap();
    }
    db.catalog().create_table(t).unwrap();

    let dim_schema =
        Schema::from_pairs(&[("g", DataType::Integer), ("label", DataType::Integer)]);
    let mut dim = Table::new("dim", dim_schema, workers, Partitioning::Hash(0));
    for g in 0..7i64 {
        dim.insert(Row::new(vec![Value::Integer(g), Value::Integer(g * 100)]))
            .unwrap();
    }
    db.catalog().create_table(dim).unwrap();

    // A 3×3 grid of sparse 32×32 CSR tiles: their exchange frames take
    // the sparse (tag-8) wire encoding, so drop/truncate/corrupt faults
    // cover the sparse codec path too — a corrupted sparse frame must be
    // a typed error, never a short or silently-densified answer.
    let tile_schema = Schema::from_pairs(&[
        ("tr", DataType::Integer),
        ("tc", DataType::Integer),
        ("mat", DataType::Matrix(Some(32), Some(32))),
    ]);
    let mut stile = Table::new("stile", tile_schema, workers, Partitioning::Hash(0));
    let mut seed = 0x7153u64;
    let mut rng = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    for tr in 0..3i64 {
        for tc in 0..3i64 {
            let mut b = CooBuilder::new();
            for _ in 0..50 {
                b.push((rng() % 32) as i64, (rng() % 32) as i64, (rng() % 100 + 1) as f64 / 16.0)
                    .unwrap();
            }
            stile
                .insert(Row::new(vec![
                    Value::Integer(tr),
                    Value::Integer(tc),
                    Value::sparse_matrix(b.build(32, 32).unwrap()),
                ]))
                .unwrap();
        }
    }
    db.catalog().create_table(stile).unwrap();
    db
}

fn sorted_rows(r: &QueryResult) -> Vec<String> {
    let mut rows: Vec<String> = r.rows.iter().map(|row| row.to_string()).collect();
    rows.sort();
    rows
}

const QUERIES: &[&str] = &[
    "SELECT k * 2 AS kk, g FROM skew WHERE k >= 10",
    "SELECT g, COUNT(*) AS c, SUM(k) AS s FROM skew GROUP BY g",
    "SELECT COUNT(*) AS n, SUM(g) AS sg FROM skew",
    "SELECT s.k, d.label FROM skew AS s, dim AS d WHERE s.g = d.g AND s.k >= 990",
    // Sparse tiles cross the wire twice here: raw CSR cells into the
    // repartitioning join, sparse SUM partials into the final aggregate.
    "SELECT a.tr, b.tc, sum_elements(SUM(matrix_multiply(a.mat, b.mat))) AS s
     FROM stile AS a, stile AS b WHERE a.tc = b.tr GROUP BY a.tr, b.tc",
];

fn config(
    workers: usize,
    transport: TransportMode,
    faults: Option<FaultPlan>,
) -> DatabaseConfig {
    let mut cfg = DatabaseConfig {
        workers,
        transport,
        morsel_rows: 16,
        pool_workers: Some(4),
        ..DatabaseConfig::default()
    };
    cfg.net.faults = faults;
    cfg
}

/// Fault-free answers for every query at this worker count/transport.
fn baselines(workers: usize, transport: TransportMode) -> Vec<Vec<String>> {
    let db = skewed_db(config(workers, transport, None));
    QUERIES.iter().map(|q| sorted_rows(&db.query(q).unwrap())).collect()
}

/// The core chaos matrix: under every fault kind, at three distinct seeds,
/// across both wire transports and W ∈ {1, 4}, each query either matches
/// the fault-free answer exactly or fails with a clean error.
#[test]
fn faults_never_shorten_answers_silently() {
    // Count detections per destructive fault kind: across the whole
    // matrix each kind must be caught at least once, otherwise the
    // injection→detection pipeline is silently disconnected. The fault
    // schedule is pure arithmetic on (seed, channel, frame index), so
    // these counts are deterministic run-to-run.
    let mut detected: std::collections::HashMap<String, usize> =
        std::collections::HashMap::new();
    for workers in [1usize, 4] {
        for transport in [TransportMode::Serialized, TransportMode::Tcp] {
            let want = baselines(workers, transport);
            for kind in FaultKind::ALL {
                for seed in [1u64, 2, 3] {
                    let mut plan = FaultPlan::new(kind, seed);
                    // High enough that multi-frame exchanges almost always
                    // take at least one hit.
                    plan.rate_ppm = 300_000;
                    let db = skewed_db(config(workers, transport, Some(plan)));
                    for (q, base) in QUERIES.iter().zip(&want) {
                        let ctx = format!(
                            "W={workers} transport={transport:?} fault={kind} seed={seed} query={q}"
                        );
                        match db.query(q) {
                            Ok(got) => assert_eq!(
                                &sorted_rows(&got),
                                base,
                                "silent wrong answer under fault: {ctx}"
                            ),
                            Err(e) => {
                                // A clean, typed error is the other
                                // acceptable outcome — but delays must
                                // never fail a query.
                                assert_ne!(
                                    kind,
                                    FaultKind::DelaySend,
                                    "delay fault errored ({e}): {ctx}"
                                );
                                *detected.entry(kind.to_string()).or_default() += 1;
                            }
                        }
                    }
                }
            }
        }
    }
    for kind in [
        FaultKind::DropFrame,
        FaultKind::TruncateFrame,
        FaultKind::CorruptBytes,
        FaultKind::KillSender,
    ] {
        assert!(
            detected.get(&kind.to_string()).copied().unwrap_or(0) >= 1,
            "fault kind {kind} was never detected anywhere in the matrix: {detected:?}"
        );
    }
}

/// A peer killed mid-exchange is detected 100% of the time: with
/// `kill_after = 1` the victim always has more than one frame left to
/// ship on a W=4 hash exchange (three fin frames at minimum), so every
/// seed must produce an error, never a short answer.
#[test]
fn killed_peer_is_always_detected() {
    for transport in [TransportMode::Tcp, TransportMode::Serialized] {
        for seed in [1u64, 2, 3, 4, 5] {
            let mut plan = FaultPlan::new(FaultKind::KillSender, seed);
            plan.kill_after = 1;
            let db = skewed_db(config(4, transport, Some(plan)));
            let q = "SELECT g, COUNT(*) AS c, SUM(k) AS s FROM skew GROUP BY g";
            let err = db.query(q).expect_err(&format!(
                "killed peer went undetected: transport={transport:?} seed={seed}"
            ));
            let msg = err.to_string();
            assert!(
                !msg.is_empty(),
                "empty error for killed peer: transport={transport:?} seed={seed}"
            );
        }
    }
}

/// The fault-tolerance counters surface in SHOW METRICS after chaos runs:
/// injected faults, detected truncations, and query-wide aborts.
#[test]
fn chaos_counters_surface_in_show_metrics() {
    // Guarantee at least one detected truncation + abort in this process.
    let mut plan = FaultPlan::new(FaultKind::KillSender, 7);
    plan.kill_after = 1;
    let db = skewed_db(config(4, TransportMode::Tcp, Some(plan)));
    let _ = db.query("SELECT g, COUNT(*) AS c FROM skew GROUP BY g");

    // Read the process-wide registry through a fault-free database so the
    // metrics query itself can't be chaos-injected.
    let clean = Database::new(2);
    let r = clean.query("SHOW METRICS").unwrap();
    let value_of = |name: &str| -> Option<f64> {
        r.rows
            .iter()
            .find(|row| row.value(0).to_string() == name)
            .and_then(|row| row.value(2).as_double())
    };
    for metric in
        ["net.faults_injected", "exchange.truncations_detected", "query.aborts"]
    {
        let v = value_of(metric).unwrap_or_else(|| {
            panic!("metric {metric} missing from SHOW METRICS")
        });
        assert!(v >= 1.0, "metric {metric} = {v}, expected >= 1");
    }
}

/// Cancellation latency: a KILL delivered mid-flight to a long-running
/// cross join must abort the query promptly (the executor's scan,
/// nested-loop, and fused join-aggregate loops all poll the token), and
/// the governor ledger must return to zero — no leaked reservations.
#[test]
fn cancellation_latency_is_bounded() {
    use std::time::{Duration, Instant};

    let db = Database::with_config(DatabaseConfig {
        workers: 2,
        pool_workers: Some(2),
        mem: Some(8),
        ..DatabaseConfig::default()
    });
    let governor = std::sync::Arc::clone(db.memory().governor());
    db.execute("CREATE TABLE big (a INTEGER, b DOUBLE)").unwrap();
    let vals: Vec<String> =
        (0..600).map(|i| format!("({i}, {}.5)", i % 50)).collect();
    db.execute(&format!("INSERT INTO big VALUES {}", vals.join(", "))).unwrap();

    let cancel = lardb::CancelToken::new();
    let worker_cancel = cancel.clone();
    let worker_db = db.clone();
    let worker = std::thread::spawn(move || {
        worker_db.execute_with_cancel(
            "SELECT COUNT(*) AS n FROM big AS x, big AS y, big AS z \
             WHERE x.b + y.b + z.b < 0.0",
            &worker_cancel,
        )
    });

    // Let the join get going, then kill it and time the unwind.
    std::thread::sleep(Duration::from_millis(300));
    cancel.cancel();
    let killed_at = Instant::now();
    let result = worker.join().unwrap();
    let latency = killed_at.elapsed();

    match result {
        Err(lardb::EngineError::Exec(e)) => {
            assert!(
                e.to_string().contains("cancel") || e.to_string().contains("abort"),
                "expected a cancellation error, got: {e}"
            );
        }
        other => panic!("expected Exec(Cancelled), got {other:?}"),
    }
    // The 600^3 cross join runs for minutes uncancelled; two seconds is
    // generous headroom for the morsel-boundary + in-loop token checks.
    assert!(
        latency < Duration::from_secs(2),
        "cancellation took {latency:?}, expected < 2s"
    );
    assert_eq!(
        governor.reserved(),
        0,
        "governor ledger must be zero after a cancelled query"
    );
}
