//! Out-of-core equivalence tests: a memory budget must be a pure
//! capacity change, never a semantic one.
//!
//! Every query here runs twice — once unbounded, once under a budget
//! small enough that the hash-join build side and the grouped-aggregate
//! state spill to disk — and the budgeted result must be **bit-identical**
//! to the unbounded one (same rows, same order, same float bits), across
//! worker counts, transports, and both schedulers. Spill files must be
//! gone when the query finishes.

use lardb::{
    Database, DatabaseConfig, DataType, Partitioning, QueryResult, Row, SchedulerMode,
    Schema, TransportMode, Value,
};
use lardb_storage::gen::tiled_matrix_rows;

/// A per-test spill directory so emptiness checks don't race across
/// tests in the same binary.
fn spill_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("lardb-spill-eq-{}-{tag}", std::process::id()))
}

fn assert_spill_dir_empty(dir: &std::path::Path) {
    if let Ok(entries) = std::fs::read_dir(dir) {
        let left: Vec<_> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
        assert!(left.is_empty(), "spill files leaked in {}: {left:?}", dir.display());
    }
    let _ = std::fs::remove_dir(dir);
}

/// `mem = Some(1)`: a dedicated 1 MiB governor; `None`: unbounded
/// (dedicated, so this test is immune to `LARDB_MEM_BUDGET_MB` in the
/// environment — `Some(0)` means explicitly unbounded).
fn config(
    workers: usize,
    transport: TransportMode,
    scheduler: SchedulerMode,
    mem: Option<u64>,
    tag: &str,
) -> DatabaseConfig {
    DatabaseConfig {
        workers,
        transport,
        scheduler,
        morsel_rows: 64,
        pool_workers: Some(4),
        mem: Some(mem.unwrap_or(0)),
        spill_dir: Some(spill_dir(tag)),
        ..DatabaseConfig::default()
    }
}

/// A table fat enough that one partition's hash-join build side and the
/// `GROUP BY payload` aggregate state both exceed a 1 MiB budget: 6000
/// rows with a ~140-byte VARCHAR payload (~1.2 MiB footprint), 90% of
/// them hash-skewed into a single partition.
fn fat_db(config: DatabaseConfig) -> Database {
    let db = Database::with_config(config);
    db.create_table(
        "fat",
        Schema::from_pairs(&[
            ("id", DataType::Integer),
            ("k", DataType::Integer),
            ("g", DataType::Integer),
            ("v", DataType::Double),
            ("payload", DataType::Varchar),
        ]),
        Partitioning::Hash(1),
    )
    .unwrap();
    let rows = (0..6000i64).map(|i| {
        let k = if i % 10 != 0 { 0 } else { i };
        Row::new(vec![
            Value::Integer(i),
            Value::Integer(k),
            Value::Integer(i % 7),
            Value::Double(i as f64 * 0.125),
            Value::varchar(format!("payload-{i:0>128}")),
        ])
    });
    db.insert_rows("fat", rows).unwrap();
    db
}

const QUERIES: &[&str] = &[
    // Wide grouped aggregation: 6000 distinct VARCHAR keys, state larger
    // than the budget — exercises the spilling aggregate path.
    "SELECT payload, COUNT(*) AS c FROM fat GROUP BY payload",
    // Self-join on the unique id: the build side is the whole fat table —
    // exercises the Grace-partitioned join path.
    "SELECT a.id, b.v FROM fat AS a, fat AS b WHERE a.id = b.id AND a.k >= 10",
    // Join + float aggregation on top (fused path under the optimizer).
    "SELECT a.g, SUM(a.v * b.v) AS s, COUNT(*) AS c
     FROM fat AS a, fat AS b WHERE a.id = b.id GROUP BY a.g",
    // Small grouped aggregate + global aggregate: must not regress when
    // nothing needs to spill.
    "SELECT g, COUNT(*) AS c, SUM(v) AS s FROM fat GROUP BY g",
    "SELECT COUNT(*) AS n FROM fat",
];

/// Exact row values (order-sensitive, float-bit-sensitive).
fn exact_rows(r: &QueryResult) -> Vec<Vec<Value>> {
    r.rows.iter().map(|row| row.values().to_vec()).collect()
}

#[test]
fn budgeted_queries_match_unbounded_bit_exactly() {
    for workers in [1usize, 4] {
        for scheduler in [SchedulerMode::Pool, SchedulerMode::Spawn] {
            let tag = format!("eq-w{workers}-{scheduler:?}");
            let budgeted = fat_db(config(
                workers,
                TransportMode::Pointer,
                scheduler,
                Some(1),
                &tag,
            ));
            let unbounded = fat_db(config(
                workers,
                TransportMode::Pointer,
                scheduler,
                None,
                &format!("{tag}-unbounded"),
            ));
            let mut spilled_bytes = 0usize;
            for q in QUERIES {
                let got = budgeted.query(q).unwrap();
                let want = unbounded.query(q).unwrap();
                assert_eq!(
                    exact_rows(&got),
                    exact_rows(&want),
                    "W={workers} scheduler={scheduler:?} query={q}"
                );
                spilled_bytes += got.stats.total_spill_bytes();
                assert_eq!(
                    want.stats.total_spill_bytes(),
                    0,
                    "unbounded run must never spill (query={q})"
                );
            }
            // The whole point: the budgeted runs actually went out of core.
            assert!(
                spilled_bytes > 0,
                "W={workers} scheduler={scheduler:?}: no query spilled under 1 MiB"
            );
            assert_spill_dir_empty(&spill_dir(&tag));
            assert_spill_dir_empty(&spill_dir(&format!("{tag}-unbounded")));
        }
    }
}

#[test]
fn budgeted_serialized_transport_matches_pointer() {
    // Transport changes how exchanges move bytes; spilling must compose
    // with both. Compare serialized-budgeted against pointer-unbounded.
    let budgeted = fat_db(config(
        4,
        TransportMode::Serialized,
        SchedulerMode::Pool,
        Some(1),
        "ser",
    ));
    let unbounded = fat_db(config(
        4,
        TransportMode::Pointer,
        SchedulerMode::Pool,
        None,
        "ser-unbounded",
    ));
    for q in QUERIES {
        let got = budgeted.query(q).unwrap();
        let want = unbounded.query(q).unwrap();
        assert_eq!(exact_rows(&got), exact_rows(&want), "query={q}");
    }
    assert_spill_dir_empty(&spill_dir("ser"));
}

/// The paper's §3.4 chunked (tiled) matrix multiply: `SUM(A_ik · B_kj)
/// GROUP BY i, j` over 64×64 tiles. Both the join build side (~1.2 MiB
/// of tiles) and the aggregate state (36 running 64×64 sums) exceed the
/// 1 MiB budget, so the query must finish out-of-core and still produce
/// float-bit-identical tiles.
#[test]
fn chunked_matmul_spills_and_matches_unbounded() {
    const TILES: usize = 6;
    const TILE: usize = 64;
    let schema = Schema::from_pairs(&[
        ("tr", DataType::Integer),
        ("tc", DataType::Integer),
        ("mat", DataType::Matrix(Some(TILE), Some(TILE))),
    ]);
    let query = "SELECT a.tr, b.tc, SUM(matrix_multiply(a.mat, b.mat)) AS m
                 FROM ta AS a, tb AS b WHERE a.tc = b.tr
                 GROUP BY a.tr, b.tc";

    let make = |mem: Option<u64>, tag: &str, workers: usize| {
        let db = Database::with_config(config(
            workers,
            TransportMode::Pointer,
            SchedulerMode::Pool,
            mem,
            tag,
        ));
        for name in ["ta", "tb"] {
            db.create_table(name, schema.clone(), Partitioning::Hash(0)).unwrap();
            let seed = if name == "ta" { 7 } else { 11 };
            db.insert_rows(name, tiled_matrix_rows(seed, TILES, TILE).into_iter())
                .unwrap();
        }
        db
    };

    for workers in [1usize, 4] {
        let tag = format!("matmul-w{workers}");
        let budgeted = make(Some(1), &tag, workers);
        let unbounded = make(None, &format!("{tag}-unbounded"), workers);
        let got = budgeted.query(query).unwrap();
        let want = unbounded.query(query).unwrap();
        assert_eq!(got.rows.len(), TILES * TILES);
        assert_eq!(exact_rows(&got), exact_rows(&want), "W={workers}");
        if workers == 1 {
            // One partition holds the entire 1.2 MiB build side: the spill
            // is deterministic, not a scheduling accident.
            assert!(
                got.stats.total_spill_bytes() > 0,
                "W=1 chunked matmul did not spill under 1 MiB"
            );
        }
        // The budget caps live reservations even while spilling.
        assert_spill_dir_empty(&spill_dir(&tag));
    }
}

#[test]
fn spill_metrics_surface_in_show_metrics() {
    let db = fat_db(config(
        2,
        TransportMode::Pointer,
        SchedulerMode::Pool,
        Some(1),
        "metrics",
    ));
    let r = db
        .query("SELECT payload, COUNT(*) AS c FROM fat GROUP BY payload")
        .unwrap();
    assert!(r.stats.total_spill_bytes() > 0, "query did not spill");

    let metrics = db.query("SHOW METRICS").unwrap();
    let value_of = |name: &str| -> Option<f64> {
        metrics
            .rows
            .iter()
            .find(|row| row.value(0).to_string() == name)
            .map(|row| row.value(2).as_double().unwrap())
    };
    for metric in ["spill.files", "spill.bytes_written", "spill.bytes_read"] {
        let v = value_of(metric)
            .unwrap_or_else(|| panic!("metric {metric} missing from SHOW METRICS"));
        assert!(v > 0.0, "{metric} = {v}");
    }
    assert_spill_dir_empty(&spill_dir("metrics"));
}
