//! # lardb — scalable linear algebra on a relational database system
//!
//! A Rust reproduction of *Scalable Linear Algebra on a Relational Database
//! System* (Luo, Gao, Gubanov, Perez, Jermaine — ICDE 2017). The engine is
//! a parallel, shared-nothing relational database whose relational model is
//! extended with `LABELED_SCALAR`, `VECTOR` and `MATRIX` attribute types,
//! a suite of built-in linear-algebra functions, label-driven construction
//! aggregates (`VECTORIZE`, `ROWMATRIX`, `COLMATRIX`), templated function
//! type signatures with compile-time dimension checking, and an
//! LA-size-aware cost-based optimizer.
//!
//! ## Quick start
//!
//! ```
//! use lardb::Database;
//!
//! let db = Database::new(2); // two simulated workers
//! db.execute("CREATE TABLE points (id INTEGER, x DOUBLE, y DOUBLE)").unwrap();
//! db.execute("INSERT INTO points VALUES (1, 1.0, 2.0), (2, 3.0, 4.0)").unwrap();
//!
//! // Build a vector per point with VECTORIZE, then take the Gram matrix.
//! db.execute(
//!     "CREATE VIEW vecs AS
//!      SELECT VECTORIZE(label_scalar(x, 0) ) AS v0, id FROM points GROUP BY id",
//! ).unwrap();
//!
//! let result = db.query("SELECT COUNT(*) AS n FROM points").unwrap();
//! assert_eq!(result.rows[0].value(0).as_integer(), Some(2));
//! ```
//!
//! The crate re-exports the pieces examples and benchmarks need:
//! [`Vector`], [`Matrix`], [`Value`], [`Row`], [`DataType`],
//! [`Partitioning`], plus the planner/executor layers for advanced use.

pub mod database;
pub mod error;
mod matview;
pub mod plan_cache;
pub mod sessions;

pub use database::{Database, DatabaseConfig, PreparedStatement, QueryResult, Response};
pub use error::{EngineError, Result};
pub use plan_cache::{CacheStats, InvalidationReason, PlanCache};
pub use sessions::{SessionRegistry, SessionSnapshot};

// Re-exports for downstream convenience (examples, benches, tests).
pub use lardb_exec::{
    BatchStats, CancelToken, ChannelStats, Cluster, ExecStats, Executor, ExprEngine,
    FaultKind, FaultPlan, MemoryConfig, NetConfig, OperatorStats, SchedulerMode,
    ShuffleStats, SpillStats, TransportMode,
};
pub use lardb_la::{
    dispatch, CooBuilder, DispatchCounters, DispatchMode, LabeledScalar, Matrix,
    SparseMatrix, Vector,
};
pub use lardb_obs::{
    MetricKind, MetricSample, MetricsRegistry, OperatorProfile, QueryProfile,
    StageTiming,
};
pub use lardb_planner::{LogicalPlan, Optimizer, OptimizerConfig, PhysicalPlan};
pub use lardb_storage::{
    Catalog, Column, DataType, MatViewDef, Partitioning, Row, Schema, Table, Value,
};
