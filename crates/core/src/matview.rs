//! Materialized-view maintenance: delta propagation with a recompute
//! fallback.
//!
//! A materialized view is an ordinary catalog table plus a
//! [`lardb_storage::MatViewDef`] recording the defining SELECT and its
//! lineage (the base tables the bound plan scans). Every INSERT into a
//! base table triggers maintenance of the views over it, choosing per
//! view the cheapest sound strategy:
//!
//! * **Append** — filter/project/join views: the defining query is run
//!   over just the inserted delta (the base table reference is rewritten
//!   to a temporary delta table, keeping its binding alias) and the
//!   results are appended. Sound because these operators distribute over
//!   union: `Q(T ∪ Δ) = Q(T) ∪ Q(Δ)` when `T` appears once.
//! * **Merge** — grouped/global aggregates of SUM/COUNT/MIN/MAX: those
//!   accumulators have single-value merge states equal to their finished
//!   values, so the stored view rows *are* merge states. The defining
//!   query runs over the delta and each delta group is merged into the
//!   stored group through the engine's own
//!   [`lardb_exec::agg::Accumulator::merge_state`] — the same code the
//!   parallel executor uses to combine partial aggregates, so the merge
//!   semantics are identical by construction.
//! * **Recompute** — everything else (self-joins on the inserted table,
//!   lineage through views, DISTINCT / ORDER BY / LIMIT / HAVING, AVG and
//!   the LA construction aggregates, subqueries): rerun the defining
//!   query and replace the stored rows. Always sound, never fast.
//!
//! `REFRESH MATERIALIZED VIEW` forces the recompute path — it is the
//! baseline the incremental paths are checked against in the equivalence
//! suite.
//!
//! Lineage through another materialized view is rejected at CREATE time:
//! maintenance writes to backing tables directly (not through the INSERT
//! dispatch that triggers maintenance), so a view-over-view would never
//! be maintained and would silently serve stale rows.

use std::sync::atomic::{AtomicU64, Ordering};

use lardb_obs::{CollectingSink, QueryProfile};
use lardb_planner::{AggFunc, LogicalPlan};
use lardb_sql::ast::{AstExpr, SelectItem, SelectStatement, Statement, TableRef};
use lardb_sql::{parse_statement, Binder};
use lardb_storage::{Partitioning, Row, Table};

use crate::database::{Database, QueryResult};
use crate::error::{EngineError, Result};

/// Unique suffix for temporary delta tables (process-wide; the tables
/// live only for the duration of one maintenance run).
static DELTA_SEQ: AtomicU64 = AtomicU64::new(0);

/// How one view reacts to an INSERT into one of its base tables.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Strategy {
    /// Run the defining query over the delta and append the results.
    Append,
    /// Run the defining query over the delta and merge aggregate states
    /// into the stored groups. Per output column: `None` = group key,
    /// `Some(f)` = aggregate merged with `f`.
    Merge(Vec<Option<AggFunc>>),
    /// Rerun the defining query from scratch.
    Recompute,
}

/// Lowercased, deduplicated, sorted names of the base tables a bound
/// plan scans (views are already expanded by the binder).
pub(crate) fn scan_tables(plan: &LogicalPlan) -> Vec<String> {
    fn walk(plan: &LogicalPlan, out: &mut Vec<String>) {
        match plan {
            LogicalPlan::Scan { table, .. } => out.push(table.to_ascii_lowercase()),
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. } => walk(input, out),
            LogicalPlan::MultiJoin { inputs, .. } => {
                for i in inputs {
                    walk(i, out);
                }
            }
            LogicalPlan::Join { left, right, .. } => {
                walk(left, out);
                walk(right, out);
            }
        }
    }
    let mut tables = Vec::new();
    walk(plan, &mut tables);
    tables.sort();
    tables.dedup();
    tables
}

/// True when the expression contains an aggregate call at any depth.
fn contains_aggregate(expr: &AstExpr) -> bool {
    match expr {
        AstExpr::Call { name, args, .. } => {
            AggFunc::from_name(name).is_some() || args.iter().any(contains_aggregate)
        }
        AstExpr::Binary { lhs, rhs, .. } => {
            contains_aggregate(lhs) || contains_aggregate(rhs)
        }
        AstExpr::Neg(e) | AstExpr::Not(e) => contains_aggregate(e),
        AstExpr::Column { .. } | AstExpr::Int(_) | AstExpr::Float(_) | AstExpr::Str(_) => {
            false
        }
    }
}

/// An aggregate whose finished value doubles as its 1-ary merge state
/// (see `lardb_exec::agg::state_arity`): the stored view column can be
/// merged with a delta value directly.
fn mergeable(func: AggFunc) -> bool {
    matches!(func, AggFunc::Sum | AggFunc::Count | AggFunc::Min | AggFunc::Max)
}

/// Chooses the maintenance strategy for `sel` when `base` receives new
/// rows. `has_view` reports whether a FROM name is a (virtual) view —
/// views expand at bind time, so a delta rewrite of the raw AST would
/// miss lineage through them.
fn classify(
    sel: &SelectStatement,
    base: &str,
    has_view: impl Fn(&str) -> bool,
) -> Strategy {
    // Structural features delta propagation cannot see through.
    if sel.distinct || sel.having.is_some() || !sel.order_by.is_empty()
        || sel.limit.is_some()
    {
        return Strategy::Recompute;
    }
    let mut base_refs = 0usize;
    for r in &sel.from {
        match r {
            TableRef::Subquery { .. } => return Strategy::Recompute,
            TableRef::Table { name, .. } => {
                if has_view(name) {
                    return Strategy::Recompute; // lineage through a view
                }
                if name.eq_ignore_ascii_case(base) {
                    base_refs += 1;
                }
            }
        }
    }
    if base_refs != 1 {
        // 0: the base is reached some other way; >1: a self-join, where
        // the delta cross-terms (Δ⋈T, T⋈Δ, Δ⋈Δ) are not one rewrite.
        return Strategy::Recompute;
    }
    let has_aggs = !sel.group_by.is_empty()
        || sel.items.iter().any(|i| match i {
            SelectItem::Expr { expr, .. } => contains_aggregate(expr),
            SelectItem::Wildcard => false,
        });
    if !has_aggs {
        return Strategy::Append;
    }
    // Aggregate view: mergeable only when every output column is either a
    // group-by expression (a key we can match stored rows on) or a bare
    // SUM/COUNT/MIN/MAX call, and every group-by expression is an output
    // column (otherwise distinct groups collapse onto one stored row and
    // keys cannot be matched).
    let mut roles = Vec::with_capacity(sel.items.len());
    for item in &sel.items {
        let SelectItem::Expr { expr, .. } = item else {
            return Strategy::Recompute;
        };
        if sel.group_by.contains(expr) {
            roles.push(None);
            continue;
        }
        match expr {
            AstExpr::Call { name, args, .. }
                if AggFunc::from_name(name).map(mergeable) == Some(true)
                    && !args.iter().any(contains_aggregate) =>
            {
                roles.push(AggFunc::from_name(name));
            }
            _ => return Strategy::Recompute,
        }
    }
    for g in &sel.group_by {
        let in_items = sel
            .items
            .iter()
            .any(|i| matches!(i, SelectItem::Expr { expr, .. } if expr == g));
        if !in_items {
            return Strategy::Recompute;
        }
    }
    Strategy::Merge(roles)
}

/// Canonical string for a group-key tuple: `Value` is not `Hash`, and
/// `Debug` of every variant (including float bit-payload distinctions
/// like `-0.0`) round-trips losslessly enough to act as a map key.
fn key_of(row: &Row, roles: &[Option<AggFunc>]) -> String {
    let mut key = String::new();
    for (i, role) in roles.iter().enumerate() {
        if role.is_none() {
            key.push_str(&format!("{:?}|", row.value(i)));
        }
    }
    key
}

impl Database {
    /// Binds and runs a SELECT with a throwaway sink/profile: the
    /// maintenance machinery's internal queries must not disturb
    /// [`Database::last_profile`] or the plan cache.
    pub(crate) fn run_select_internal(&self, sel: &SelectStatement) -> Result<QueryResult> {
        let plan = Binder::new(self.catalog()).bind_select(sel)?;
        let sink = CollectingSink::new();
        let mut profile = QueryProfile::new("<matview maintenance>");
        let (result, _) = self.run_traced(plan, false, None, &sink, &mut profile)?;
        Ok(result)
    }

    /// Parses a materialized view's stored definition.
    fn matview_select(&self, name: &str, sql: &str) -> Result<SelectStatement> {
        match parse_statement(sql)? {
            Statement::Select(sel) => Ok(sel),
            _ => Err(EngineError::Usage(format!(
                "materialized view {name} has a non-SELECT definition"
            ))),
        }
    }

    /// Replaces the backing table of view `name` with `result`. The new
    /// table is built fully first and then swapped through the existing
    /// catalog handle under its write lock: a concurrent SELECT sees
    /// either the old rows or the new, never a missing table, and an
    /// error while building leaves the old rows intact. Cached plans
    /// over the view are invalidated via its per-table stats version.
    fn replace_matview_table(&self, name: &str, result: QueryResult) -> Result<usize> {
        let mut table = Table::new(
            name,
            result.schema.clone(),
            self.workers(),
            Partitioning::RoundRobin,
        );
        let n = result.rows.len();
        table.insert_all(result.rows)?;
        *self.catalog().table(name)?.write() = table;
        self.plan_cache().bump_stats(name);
        Ok(n)
    }

    /// Full recompute of one materialized view from its stored
    /// definition; returns the new row count. `REFRESH MATERIALIZED VIEW`
    /// and the non-incrementalizable maintenance fallback both land here.
    pub(crate) fn recompute_matview(&self, name: &str) -> Result<usize> {
        let def = self.catalog().matview(name).ok_or_else(|| {
            EngineError::Usage(format!("no such materialized view: {name}"))
        })?;
        let sel = self.matview_select(name, &def.sql)?;
        let result = self.run_select_internal(&sel)?;
        let n = self.replace_matview_table(name, result)?;
        let registry = lardb_obs::global();
        registry.counter("mv.refresh.recompute").inc();
        registry.counter("mv.refresh_rows").add(n as u64);
        Ok(n)
    }

    /// Maintains every materialized view whose lineage includes `base`
    /// after `delta` rows were inserted into it. Called with the base
    /// rows already in place (both incremental paths only read the
    /// delta; the recompute fallback reads the updated table).
    pub(crate) fn maintain_matviews_on(&self, base: &str, delta: &[Row]) -> Result<()> {
        for view in self.catalog().matviews_on(base) {
            let Some(def) = self.catalog().matview(&view) else { continue };
            let sel = self.matview_select(&view, &def.sql)?;
            let strategy =
                classify(&sel, base, |name| self.catalog().has_view(name));
            match strategy {
                Strategy::Recompute => {
                    self.recompute_matview(&view)?;
                }
                Strategy::Append => {
                    let rows = self.run_query_over_delta(&sel, base, delta)?.rows;
                    let n = rows.len();
                    self.catalog().table(&view)?.write().insert_all(rows)?;
                    self.plan_cache().bump_stats(&view);
                    let registry = lardb_obs::global();
                    registry.counter("mv.refresh.incremental").inc();
                    registry.counter("mv.refresh_rows").add(n as u64);
                }
                Strategy::Merge(roles) => {
                    let delta_rows = self.run_query_over_delta(&sel, base, delta)?;
                    self.merge_into_matview(&view, &roles, delta_rows)?;
                }
            }
        }
        Ok(())
    }

    /// Runs the defining query with the single `base` reference rewritten
    /// to a temporary table holding only the delta rows. The original
    /// name becomes the alias so every qualified column reference in the
    /// query still binds.
    fn run_query_over_delta(
        &self,
        sel: &SelectStatement,
        base: &str,
        delta: &[Row],
    ) -> Result<QueryResult> {
        let delta_name =
            format!("__lardb_delta_{}", DELTA_SEQ.fetch_add(1, Ordering::Relaxed));
        let schema = self.catalog().table_schema(base)?;
        let mut table =
            Table::new(&delta_name, schema, self.workers(), Partitioning::RoundRobin);
        table.insert_all(delta.iter().cloned())?;
        self.catalog().create_table(table)?;
        let mut rewritten = sel.clone();
        for r in &mut rewritten.from {
            if let TableRef::Table { name, alias } = r {
                if name.eq_ignore_ascii_case(base) {
                    *alias = alias.take().or_else(|| Some(name.clone()));
                    *name = delta_name.clone();
                }
            }
        }
        let result = self.run_select_internal(&rewritten);
        let _ = self.catalog().drop_table(&delta_name);
        result
    }

    /// Merges a delta aggregation result into the stored view rows:
    /// existing groups are combined state-by-state through the engine's
    /// [`lardb_exec::agg::Accumulator`], new groups are appended.
    fn merge_into_matview(
        &self,
        view: &str,
        roles: &[Option<AggFunc>],
        delta: QueryResult,
    ) -> Result<()> {
        use lardb_exec::agg::Accumulator;
        let handle = self.catalog().table(view)?;
        let (schema, mut rows) = {
            let guard = handle.read();
            (
                guard.schema().clone(),
                guard.iter_rows().cloned().collect::<Vec<Row>>(),
            )
        };
        let mut index = std::collections::HashMap::with_capacity(rows.len());
        for (i, row) in rows.iter().enumerate() {
            index.insert(key_of(row, roles), i);
        }
        let n = delta.rows.len();
        for delta_row in delta.rows {
            match index.get(&key_of(&delta_row, roles)).copied() {
                Some(i) => {
                    let mut merged = Vec::with_capacity(roles.len());
                    for (c, role) in roles.iter().enumerate() {
                        match role {
                            None => merged.push(rows[i].value(c).clone()),
                            Some(func) => {
                                let mut acc = Accumulator::new(*func);
                                acc.merge_state(std::slice::from_ref(rows[i].value(c)))?;
                                acc.merge_state(std::slice::from_ref(
                                    delta_row.value(c),
                                ))?;
                                merged.push(acc.finish());
                            }
                        }
                    }
                    rows[i] = Row::new(merged);
                }
                None => {
                    index.insert(key_of(&delta_row, roles), rows.len());
                    rows.push(delta_row);
                }
            }
        }
        self.replace_matview_table(
            view,
            QueryResult { schema, rows, stats: lardb_exec::ExecStats::new() },
        )?;
        let registry = lardb_obs::global();
        registry.counter("mv.refresh.incremental").inc();
        registry.counter("mv.refresh_rows").add(n as u64);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn select(sql: &str) -> SelectStatement {
        match parse_statement(sql).unwrap() {
            Statement::Select(sel) => sel,
            other => panic!("expected SELECT, got {other:?}"),
        }
    }

    fn classify_no_views(sql: &str, base: &str) -> Strategy {
        classify(&select(sql), base, |_| false)
    }

    #[test]
    fn filter_project_joins_append() {
        assert_eq!(
            classify_no_views("SELECT a, b + 1 AS c FROM t WHERE a > 0", "t"),
            Strategy::Append
        );
        assert_eq!(
            classify_no_views(
                "SELECT t.a, o.b FROM t, o WHERE t.k = o.k",
                "t"
            ),
            Strategy::Append
        );
        assert_eq!(classify_no_views("SELECT * FROM t", "t"), Strategy::Append);
    }

    #[test]
    fn mergeable_aggregates_merge() {
        let Strategy::Merge(roles) = classify_no_views(
            "SELECT g, SUM(v) AS s, COUNT(*) AS n, MIN(v) AS lo, MAX(v) AS hi \
             FROM t GROUP BY g",
            "t",
        ) else {
            panic!("expected Merge");
        };
        assert_eq!(
            roles,
            vec![
                None,
                Some(AggFunc::Sum),
                Some(AggFunc::Count),
                Some(AggFunc::Min),
                Some(AggFunc::Max)
            ]
        );
        // Global (no GROUP BY) aggregates merge too.
        assert!(matches!(
            classify_no_views("SELECT SUM(v) AS s FROM t", "t"),
            Strategy::Merge(_)
        ));
    }

    #[test]
    fn non_incrementalizable_shapes_recompute() {
        for sql in [
            "SELECT DISTINCT a FROM t",                       // DISTINCT
            "SELECT a FROM t ORDER BY a",                     // ORDER BY
            "SELECT a FROM t LIMIT 3",                        // LIMIT
            "SELECT g, SUM(v) AS s FROM t GROUP BY g HAVING SUM(v) > 0", // HAVING
            "SELECT x.a FROM t AS x, t AS y WHERE x.a = y.a", // self-join
            "SELECT a FROM (SELECT a FROM t) AS s",           // subquery
            "SELECT g, AVG(v) AS m FROM t GROUP BY g",        // AVG
            "SELECT g, SUM(v) + 1 AS s FROM t GROUP BY g",    // wrapped agg
            "SELECT SUM(v) AS s FROM t GROUP BY g",           // key not output
            "SELECT a FROM other",                            // indirect lineage
        ] {
            assert_eq!(classify_no_views(sql, "t"), Strategy::Recompute, "{sql}");
        }
        // Lineage through a view forces recompute even when the name
        // matches nothing else.
        assert_eq!(
            classify(&select("SELECT a FROM v"), "t", |name| name == "v"),
            Strategy::Recompute
        );
    }
}
