//! Unified engine error.

use lardb_exec::ExecError;
use lardb_planner::PlanError;
use lardb_sql::SqlError;
use lardb_storage::StorageError;

/// Any error the engine can produce, from lexing to execution.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// SQL front-end error (lex/parse/bind).
    Sql(SqlError),
    /// Planner or optimizer error (includes §4.2 dimension mismatches).
    Plan(PlanError),
    /// Runtime error.
    Exec(ExecError),
    /// Catalog/storage error.
    Storage(StorageError),
    /// API misuse (e.g. calling `query` with a DDL statement).
    Usage(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Sql(e) => write!(f, "{e}"),
            EngineError::Plan(e) => write!(f, "{e}"),
            EngineError::Exec(e) => write!(f, "{e}"),
            EngineError::Storage(e) => write!(f, "{e}"),
            EngineError::Usage(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<SqlError> for EngineError {
    fn from(e: SqlError) -> Self {
        EngineError::Sql(e)
    }
}

impl From<PlanError> for EngineError {
    fn from(e: PlanError) -> Self {
        EngineError::Plan(e)
    }
}

impl From<ExecError> for EngineError {
    fn from(e: ExecError) -> Self {
        EngineError::Exec(e)
    }
}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}

/// Result alias for the engine.
pub type Result<T> = std::result::Result<T, EngineError>;
