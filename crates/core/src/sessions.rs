//! The session registry: who is connected, what is running, and how to
//! kill it.
//!
//! One [`SessionRegistry`] is shared by every clone of a [`Database`]
//! (like the catalog), so any session can observe and cancel any other's
//! work: `SHOW SESSIONS` renders the registry as a relation, and
//! `KILL <query-id>` flips the target query's [`CancelToken`] — the same
//! token the executor's morsel loops, nested-loop pairs, scans, and
//! exchange senders already poll.
//!
//! [`Database`]: crate::Database

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use lardb_exec::CancelToken;

/// A snapshot row of one open session, as rendered by `SHOW SESSIONS`.
#[derive(Debug, Clone)]
pub struct SessionSnapshot {
    /// Session id (stable for the connection's lifetime).
    pub session_id: u64,
    /// Tenant the session bills against.
    pub tenant: String,
    /// Peer description (socket address, or `local` for in-process use).
    pub peer: String,
    /// `idle` or `running`.
    pub state: &'static str,
    /// The running query's id, if any.
    pub query_id: Option<u64>,
    /// The running query's SQL text, if any.
    pub sql: Option<String>,
    /// Milliseconds the current query has been running (0 when idle).
    pub elapsed_ms: f64,
}

#[derive(Debug)]
struct RunningQuery {
    query_id: u64,
    sql: String,
    started: Instant,
    cancel: CancelToken,
}

#[derive(Debug)]
struct SessionEntry {
    tenant: String,
    peer: String,
    current: Option<RunningQuery>,
}

/// Process-shared bookkeeping of sessions and their in-flight queries.
#[derive(Debug, Default)]
pub struct SessionRegistry {
    // BTreeMap so SHOW SESSIONS lists sessions in id order.
    sessions: Mutex<BTreeMap<u64, SessionEntry>>,
    next_session: AtomicU64,
    next_query: AtomicU64,
}

impl SessionRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        SessionRegistry::default()
    }

    /// Registers a session; returns its id. Publishes the
    /// `server.sessions_active` gauge and counts `server.sessions_opened`.
    pub fn open(&self, tenant: &str, peer: &str) -> u64 {
        let id = self.next_session.fetch_add(1, Ordering::Relaxed) + 1;
        let mut s = self.lock();
        s.insert(
            id,
            SessionEntry {
                tenant: tenant.to_string(),
                peer: peer.to_string(),
                current: None,
            },
        );
        let m = lardb_obs::global();
        m.counter("server.sessions_opened").inc();
        m.gauge("server.sessions_active").set(s.len() as f64);
        id
    }

    /// Deregisters a session (its running query, if any, stays cancellable
    /// only through its token holder).
    pub fn close(&self, session_id: u64) {
        let mut s = self.lock();
        s.remove(&session_id);
        lardb_obs::global()
            .gauge("server.sessions_active")
            .set(s.len() as f64);
    }

    /// Marks `sql` as running on `session_id` under `cancel`; returns the
    /// query id `KILL` targets. Unknown sessions still get an id (the
    /// query runs; it is just not listed).
    pub fn begin_query(&self, session_id: u64, sql: &str, cancel: &CancelToken) -> u64 {
        let query_id = self.next_query.fetch_add(1, Ordering::Relaxed) + 1;
        let mut s = self.lock();
        if let Some(entry) = s.get_mut(&session_id) {
            entry.current = Some(RunningQuery {
                query_id,
                sql: sql.to_string(),
                started: Instant::now(),
                cancel: cancel.clone(),
            });
        }
        query_id
    }

    /// Clears the running query of `session_id`.
    pub fn end_query(&self, session_id: u64) {
        let mut s = self.lock();
        if let Some(entry) = s.get_mut(&session_id) {
            entry.current = None;
        }
    }

    /// Cancels the query with id `query_id`. Returns `true` when a running
    /// query was found (and counts `server.queries_killed`); `false` when
    /// no such query is running (already finished, or never existed).
    pub fn kill(&self, query_id: u64) -> bool {
        let s = self.lock();
        for entry in s.values() {
            if let Some(q) = &entry.current {
                if q.query_id == query_id {
                    q.cancel.cancel();
                    lardb_obs::global().counter("server.queries_killed").inc();
                    return true;
                }
            }
        }
        false
    }

    /// The tenant and session a query id belongs to, if running.
    pub fn find_query(&self, query_id: u64) -> Option<(u64, String)> {
        let s = self.lock();
        for (sid, entry) in s.iter() {
            if let Some(q) = &entry.current {
                if q.query_id == query_id {
                    return Some((*sid, entry.tenant.clone()));
                }
            }
        }
        None
    }

    /// Number of open sessions.
    pub fn active_sessions(&self) -> usize {
        self.lock().len()
    }

    /// True while `session_id` has a query in flight.
    pub fn is_running(&self, session_id: u64) -> bool {
        self.lock()
            .get(&session_id)
            .is_some_and(|e| e.current.is_some())
    }

    /// One snapshot row per open session, in session-id order.
    pub fn snapshot(&self) -> Vec<SessionSnapshot> {
        let s = self.lock();
        s.iter()
            .map(|(&session_id, entry)| match &entry.current {
                Some(q) => SessionSnapshot {
                    session_id,
                    tenant: entry.tenant.clone(),
                    peer: entry.peer.clone(),
                    state: "running",
                    query_id: Some(q.query_id),
                    sql: Some(q.sql.clone()),
                    elapsed_ms: q.started.elapsed().as_secs_f64() * 1e3,
                },
                None => SessionSnapshot {
                    session_id,
                    tenant: entry.tenant.clone(),
                    peer: entry.peer.clone(),
                    state: "idle",
                    query_id: None,
                    sql: None,
                    elapsed_ms: 0.0,
                },
            })
            .collect()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<u64, SessionEntry>> {
        self.sessions.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_query_kill_close_lifecycle() {
        let reg = SessionRegistry::new();
        let sid = reg.open("acme", "local");
        assert_eq!(reg.active_sessions(), 1);
        assert!(!reg.is_running(sid));

        let cancel = CancelToken::new();
        let qid = reg.begin_query(sid, "SELECT 1", &cancel);
        assert!(reg.is_running(sid));
        assert_eq!(reg.find_query(qid), Some((sid, "acme".to_string())));

        let snap = reg.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].state, "running");
        assert_eq!(snap[0].query_id, Some(qid));
        assert_eq!(snap[0].sql.as_deref(), Some("SELECT 1"));

        assert!(reg.kill(qid), "running query is killable");
        assert!(cancel.is_cancelled(), "kill flips the query's token");

        reg.end_query(sid);
        assert!(!reg.is_running(sid));
        assert!(!reg.kill(qid), "finished query no longer killable");

        reg.close(sid);
        assert_eq!(reg.active_sessions(), 0);
    }

    #[test]
    fn query_ids_are_unique_across_sessions() {
        let reg = SessionRegistry::new();
        let a = reg.open("t1", "local");
        let b = reg.open("t2", "local");
        let qa = reg.begin_query(a, "SELECT 1", &CancelToken::new());
        let qb = reg.begin_query(b, "SELECT 2", &CancelToken::new());
        assert_ne!(qa, qb);
        // Killing one query leaves the other running.
        assert!(reg.kill(qa));
        assert!(reg.is_running(b));
        assert_eq!(reg.find_query(qb), Some((b, "t2".to_string())));
    }

    #[test]
    fn kill_unknown_query_is_a_noop() {
        let reg = SessionRegistry::new();
        assert!(!reg.kill(12345));
    }
}
