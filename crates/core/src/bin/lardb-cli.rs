//! An interactive SQL shell for lardb.
//!
//! ```text
//! cargo run --release -p lardb --bin lardb-cli [-- --workers 8]
//! ```
//!
//! Reads statements terminated by `;` (multi-line input supported).
//! Meta-commands: `\q` quit, `\d` list tables, `\timing` toggle timing,
//! `\explain <select>` show plans, `\metrics` dump the process metrics
//! registry, `\profile` print the last query's profile as JSON, `\help`.

use std::io::{BufRead, Write};

use lardb::{
    Database, DatabaseConfig, FaultKind, FaultPlan, Response, SchedulerMode,
    TransportMode,
};

fn main() {
    let mut config = DatabaseConfig::default();
    let mut fault_kind: Option<FaultKind> = None;
    let mut fault_seed: u64 = 42;
    let mut fault_rate_ppm: Option<u32> = None;
    let mut fault_after: Option<u64> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--workers" => {
                config.workers = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--transport" => {
                config.transport = argv
                    .next()
                    .and_then(|v| TransportMode::parse(&v))
                    .unwrap_or_else(|| usage());
            }
            "--slow-ms" => {
                config.slow_query_ms = Some(
                    argv.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--pool-workers" => {
                config.pool_workers = Some(
                    argv.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--morsel-rows" => {
                config.morsel_rows = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--scheduler" => {
                config.scheduler = argv
                    .next()
                    .and_then(|v| v.parse::<SchedulerMode>().ok())
                    .unwrap_or_else(|| usage());
            }
            "--gemm-par-flops" => {
                config.gemm_parallel_flops = Some(
                    argv.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--net-timeout-ms" => {
                config.net.timeout_ms = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--max-frame-bytes" => {
                config.net.max_frame_bytes = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--fault-kind" => {
                fault_kind = Some(
                    argv.next()
                        .and_then(|v| FaultKind::parse(&v))
                        .unwrap_or_else(|| usage()),
                );
            }
            "--fault-seed" => {
                fault_seed = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--fault-rate-ppm" => {
                fault_rate_ppm = Some(
                    argv.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--fault-after" => {
                fault_after = Some(
                    argv.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--mem-budget-mb" => {
                config.mem = Some(
                    argv.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--spill-dir" => {
                config.spill_dir = Some(
                    argv.next().map(std::path::PathBuf::from).unwrap_or_else(|| usage()),
                );
            }
            _ => usage(),
        }
    }
    if let Some(kind) = fault_kind {
        let mut plan = FaultPlan::new(kind, fault_seed);
        if let Some(ppm) = fault_rate_ppm {
            plan.rate_ppm = ppm;
        }
        if let Some(after) = fault_after {
            plan.kill_after = after;
        }
        config.net.faults = Some(plan);
        eprintln!(
            "[lardb] fault injection armed: {kind} (seed {fault_seed}, \
             rate {} ppm, kill-after {})",
            config.net.faults.as_ref().map(|p| p.rate_ppm).unwrap_or_default(),
            config.net.faults.as_ref().map(|p| p.kill_after).unwrap_or_default(),
        );
    } else if fault_rate_ppm.is_some() || fault_after.is_some() {
        eprintln!("[lardb] --fault-rate-ppm/--fault-after require --fault-kind");
        usage();
    }

    let workers = config.workers;
    let db = Database::with_config(config);
    let mut timing = true;
    let stdin = std::io::stdin();
    let mut buffer = String::new();

    println!("lardb — scalable linear algebra on a relational database");
    println!("{workers} simulated workers; end statements with ';', \\help for help");
    prompt(buffer.is_empty());

    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let trimmed = line.trim();

        // Meta-commands only at the start of a fresh statement.
        if buffer.trim().is_empty() && trimmed.starts_with('\\') {
            buffer.clear();
            let (cmd, rest) = trimmed.split_once(' ').unwrap_or((trimmed, ""));
            match cmd {
                "\\q" | "\\quit" => break,
                "\\d" => {
                    for t in db.catalog().table_names() {
                        let stats = db.catalog().table_stats(&t).unwrap_or_default();
                        let schema = db.catalog().table_schema(&t).unwrap();
                        println!("  {t} {schema}  [{} rows]", stats.num_rows);
                    }
                }
                "\\timing" => {
                    timing = !timing;
                    println!("timing {}", if timing { "on" } else { "off" });
                }
                "\\explain" => match db.explain(rest) {
                    Ok(plan) => println!("{plan}"),
                    Err(e) => println!("error: {e}"),
                },
                "\\metrics" => match db.execute("SHOW METRICS") {
                    Ok(Response::Rows(q)) => print!("{}", q.display_table()),
                    Ok(_) => {}
                    Err(e) => println!("error: {e}"),
                },
                "\\profile" => match db.last_profile() {
                    Some(p) => println!("{}", p.to_json()),
                    None => println!("no query has run yet"),
                },
                "\\help" => {
                    println!("  \\q          quit");
                    println!("  \\d          list tables");
                    println!("  \\timing     toggle per-statement timing");
                    println!("  \\explain Q  show optimized + physical plan for a SELECT");
                    println!("  \\metrics    dump the process-wide metrics registry");
                    println!("  \\profile    print the last query's profile as JSON");
                }
                other => println!("unknown meta-command {other}; try \\help"),
            }
            prompt(true);
            continue;
        }

        buffer.push_str(&line);
        buffer.push('\n');
        // Execute every complete `;`-terminated statement in the buffer.
        while let Some(pos) = buffer.find(';') {
            let stmt: String = buffer.drain(..=pos).collect();
            let stmt = stmt.trim_end_matches(';').trim();
            if stmt.is_empty() {
                continue;
            }
            run_statement(&db, stmt, timing);
        }
        if buffer.trim().is_empty() {
            buffer.clear();
        }
        prompt(buffer.is_empty());
    }
}

fn run_statement(db: &Database, sql: &str, timing: bool) {
    let t0 = std::time::Instant::now();
    match db.execute(sql) {
        Ok(Response::Rows(q)) => {
            print!("{}", q.display_table());
            println!("({} rows)", q.rows.len());
        }
        Ok(Response::Inserted(n)) => println!("inserted {n} rows"),
        Ok(Response::Done) => println!("ok"),
        Ok(Response::Explained(plan)) => println!("{plan}"),
        Err(e) => println!("error: {e}"),
    }
    if timing {
        println!("time: {:.1} ms", t0.elapsed().as_secs_f64() * 1e3);
    }
}

fn prompt(fresh: bool) {
    print!("{}", if fresh { "lardb> " } else { "   ... " });
    let _ = std::io::stdout().flush();
}

fn usage() -> ! {
    eprintln!(
        "usage: lardb-cli [--workers N] [--transport pointer|serialized|tcp] \
         [--slow-ms MS] [--pool-workers N] [--morsel-rows N] \
         [--scheduler pool|spawn] [--gemm-par-flops N] \
         [--net-timeout-ms MS] [--max-frame-bytes N] \
         [--fault-kind drop|truncate|corrupt|delay|kill] [--fault-seed N] \
         [--fault-rate-ppm N] [--fault-after N] \
         [--mem-budget-mb N (0 = unbounded)] [--spill-dir PATH]"
    );
    std::process::exit(2);
}
