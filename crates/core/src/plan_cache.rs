//! Normalized plan cache: repeat statements skip parse/bind/optimize.
//!
//! At production traffic most statements are repeats, so the front half
//! of the lifecycle (parse → bind → optimize) is pure overhead after the
//! first execution. The cache keys on the statement's **shape** — its
//! token stream with literals replaced by `?` and identifiers lowercased
//! — plus the *exact literal values*, a monotonic catalog version, and a
//! fingerprint of the plan-relevant configuration knobs. Keying on the
//! exact literal vector (Oracle-style cursor sharing, narrowed to exact
//! matches) makes reuse sound by construction: a cached optimized
//! [`LogicalPlan`] is only ever replayed for a statement whose literals
//! are identical, so constant folding, `LIMIT` counts and `ORDER BY`
//! ordinals baked into the plan are all still correct.
//!
//! Invalidation is **typed**, never a silent truncation: every DDL or
//! stats-changing event calls [`PlanCache::bump`] with an
//! [`InvalidationReason`], which advances the version (making every older
//! key unreachable) and counts the reason under
//! `cache.invalidations.<reason>`. Stale entries are then recycled by the
//! bounded LRU like any cold entry.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use lardb_planner::LogicalPlan;
use lardb_sql::lexer::{tokenize, Token};

/// Default cache capacity (entries) when `LARDB_PLAN_CACHE` is unset.
pub const DEFAULT_PLAN_CACHE_ENTRIES: usize = 256;

/// A literal value captured during normalization. Floats are stored as
/// raw bits so the key is `Eq + Hash` and `-0.0`/`NaN` variants never
/// alias each other.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Literal {
    /// Integer literal.
    Int(i64),
    /// Float literal, by bit pattern.
    Float(u64),
    /// String literal.
    Str(String),
}

/// Which statement wrapper preceded the SELECT body, so `EXPLAIN ANALYZE
/// SELECT …` shares a shape with the bare `SELECT …` without the hit
/// fast-path short-circuiting non-SELECT responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatementKind {
    /// A bare SELECT: eligible for the full skip-parse/bind/optimize path.
    Select,
    /// `EXPLAIN [ANALYZE|TRACE] SELECT …`: shares the SELECT's shape (for
    /// the cache-hit annotation and optimize reuse) but must still run
    /// the explain machinery.
    Explain,
}

/// A statement shape: the normalized token string plus the captured
/// literal vector, computed **without parsing**.
#[derive(Debug, Clone, PartialEq)]
pub struct NormalizedStatement {
    /// Token shape with literals parameterized as `?`.
    pub shape: String,
    /// The literal values, in token order.
    pub literals: Vec<Literal>,
    /// Bare SELECT or EXPLAIN-wrapped.
    pub kind: StatementKind,
}

/// Normalizes a statement into its cache shape. Returns `None` for
/// statements that are not SELECT-shaped (DDL, INSERT, SHOW, KILL, …) or
/// that fail to tokenize — those always take the full path.
pub fn normalize(sql: &str) -> Option<NormalizedStatement> {
    let tokens = tokenize(sql).ok()?;
    let mut shape = String::with_capacity(sql.len());
    let mut literals = Vec::new();
    let mut it = tokens.iter().map(|s| &s.token).peekable();
    // Strip an EXPLAIN [ANALYZE|TRACE] prefix so the wrapped SELECT
    // shares its shape with the bare statement.
    let mut kind = StatementKind::Select;
    if matches!(it.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case("EXPLAIN")) {
        it.next();
        kind = StatementKind::Explain;
        if matches!(it.peek(), Some(Token::Ident(s))
            if s.eq_ignore_ascii_case("ANALYZE") || s.eq_ignore_ascii_case("TRACE"))
        {
            it.next();
        }
    }
    match it.peek() {
        Some(Token::Ident(s)) if s.eq_ignore_ascii_case("SELECT") => {}
        _ => return None,
    }
    for token in it {
        match token {
            Token::Int(v) => {
                literals.push(Literal::Int(*v));
                shape.push_str("? ");
            }
            Token::Float(v) => {
                literals.push(Literal::Float(v.to_bits()));
                shape.push_str("? ");
            }
            Token::Str(s) => {
                literals.push(Literal::Str(s.clone()));
                shape.push_str("? ");
            }
            Token::Ident(s) => {
                shape.push_str(&s.to_ascii_lowercase());
                shape.push(' ');
            }
            Token::Semicolon => {} // optional trailing `;` is not shape
            other => {
                shape.push_str(symbol(other));
                shape.push(' ');
            }
        }
    }
    Some(NormalizedStatement { shape, literals, kind })
}

fn symbol(t: &Token) -> &'static str {
    match t {
        Token::LParen => "(",
        Token::RParen => ")",
        Token::LBracket => "[",
        Token::RBracket => "]",
        Token::Comma => ",",
        Token::Dot => ".",
        Token::Star => "*",
        Token::Plus => "+",
        Token::Minus => "-",
        Token::Slash => "/",
        Token::Eq => "=",
        Token::NotEq => "<>",
        Token::Lt => "<",
        Token::LtEq => "<=",
        Token::Gt => ">",
        Token::GtEq => ">=",
        // Literals, idents and `;` are handled by the caller.
        Token::Ident(_) | Token::Int(_) | Token::Float(_) | Token::Str(_)
        | Token::Semicolon => "",
    }
}

/// Why the cache version was bumped. Each reason has its own counter so
/// `SHOW METRICS` distinguishes schema changes from stats drift from
/// configuration changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvalidationReason {
    /// Schema change: CREATE/DROP of tables, views or materialized views.
    Ddl,
    /// Statistics change: INSERT / bulk load (cardinalities moved, so a
    /// cached join order may no longer be the optimizer's choice).
    Stats,
    /// Configuration change affecting planning (e.g. optimizer knobs).
    Config,
}

impl InvalidationReason {
    fn metric(self) -> &'static str {
        match self {
            InvalidationReason::Ddl => "cache.invalidations.ddl",
            InvalidationReason::Stats => "cache.invalidations.stats",
            InvalidationReason::Config => "cache.invalidations.config",
        }
    }
}

/// Full cache key: shape + exact literals + catalog version + config
/// fingerprint.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    shape: String,
    literals: Vec<Literal>,
    version: u64,
    fingerprint: u64,
}

struct Entry {
    plan: Arc<LogicalPlan>,
    last_used: u64,
}

/// Point-in-time counters for tests and introspection (per cache, unlike
/// the process-global metrics registry).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a plan.
    pub hits: u64,
    /// Lookups that found nothing (including version/fingerprint misses).
    pub misses: u64,
    /// Entries evicted by the LRU bound.
    pub evictions: u64,
    /// Version bumps, all reasons.
    pub invalidations: u64,
    /// Current live entries (including unreachable stale versions not yet
    /// recycled).
    pub entries: usize,
}

/// A bounded LRU cache of optimized logical plans, shared by every clone
/// of a [`crate::Database`]. Thread-safe; lookups and inserts take one
/// short mutex hold.
pub struct PlanCache {
    capacity: usize,
    version: AtomicU64,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
    entries: Mutex<HashMap<CacheKey, Entry>>,
}

impl PlanCache {
    /// A cache bounded at `capacity` entries; 0 disables caching (every
    /// lookup misses, inserts are dropped).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            capacity,
            version: AtomicU64::new(0),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            entries: Mutex::new(HashMap::new()),
        }
    }

    /// Whether caching is enabled at all.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// The current catalog version (part of every key, so bumping it
    /// makes all older entries unreachable).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Typed invalidation: advances the version and counts the reason.
    pub fn bump(&self, reason: InvalidationReason) {
        self.version.fetch_add(1, Ordering::AcqRel);
        self.invalidations.fetch_add(1, Ordering::Relaxed);
        let registry = lardb_obs::global();
        registry.counter(reason.metric()).inc();
        registry.counter("cache.invalidations").inc();
    }

    fn key(&self, norm: &NormalizedStatement, fingerprint: u64) -> CacheKey {
        CacheKey {
            shape: norm.shape.clone(),
            literals: norm.literals.clone(),
            version: self.version(),
            fingerprint,
        }
    }

    /// Looks up the optimized plan for a normalized statement under the
    /// current version. Counts a hit or miss.
    pub fn lookup(
        &self,
        norm: &NormalizedStatement,
        fingerprint: u64,
    ) -> Option<Arc<LogicalPlan>> {
        if !self.enabled() {
            return None;
        }
        let key = self.key(norm, fingerprint);
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        match entries.get_mut(&key) {
            Some(entry) => {
                entry.last_used = self.tick.fetch_add(1, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                lardb_obs::global().counter("cache.hits").inc();
                Some(Arc::clone(&entry.plan))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                lardb_obs::global().counter("cache.misses").inc();
                None
            }
        }
    }

    /// Inserts an optimized plan under the current version, evicting the
    /// least-recently-used entry when full.
    pub fn insert(
        &self,
        norm: &NormalizedStatement,
        fingerprint: u64,
        plan: Arc<LogicalPlan>,
    ) {
        if !self.enabled() {
            return;
        }
        let key = self.key(norm, fingerprint);
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        if !entries.contains_key(&key) && entries.len() >= self.capacity {
            // Evict the LRU entry. Capacities are small (hundreds), so a
            // linear scan on the rare full-insert beats maintaining an
            // order list on every lookup.
            if let Some(victim) = entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                entries.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                lardb_obs::global().counter("cache.evictions").inc();
            }
        }
        entries.insert(
            key,
            Entry { plan, last_used: self.tick.fetch_add(1, Ordering::Relaxed) },
        );
    }

    /// Counts a statement that could not be cached (non-SELECT shape,
    /// virtual-table reference, bind failure).
    pub fn note_uncacheable(&self) {
        lardb_obs::global().counter("cache.uncacheable").inc();
    }

    /// Point-in-time stats snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            entries: self.entries.lock().unwrap_or_else(|e| e.into_inner()).len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lardb_storage::Schema;

    fn plan() -> Arc<LogicalPlan> {
        Arc::new(LogicalPlan::Scan { table: "t".into(), schema: Schema::default() })
    }

    #[test]
    fn shapes_share_across_whitespace_case_and_explain() {
        let a = normalize("SELECT id FROM t WHERE id = 1").unwrap();
        let b = normalize("select  ID\nfrom T where ID=1 ;").unwrap();
        assert_eq!(a.shape, b.shape);
        assert_eq!(a.literals, b.literals);
        assert_eq!(a.kind, StatementKind::Select);
        let e = normalize("EXPLAIN ANALYZE SELECT id FROM t WHERE id = 1").unwrap();
        assert_eq!(e.shape, a.shape);
        assert_eq!(e.kind, StatementKind::Explain);
    }

    #[test]
    fn literals_discriminate_variants() {
        let a = normalize("SELECT id FROM t WHERE id = 1").unwrap();
        let b = normalize("SELECT id FROM t WHERE id = 2").unwrap();
        assert_eq!(a.shape, b.shape);
        assert_ne!(a.literals, b.literals);
        // Float bit-patterns: 0.0 and -0.0 are distinct variants.
        let p = normalize("SELECT v FROM t WHERE v > 0.0").unwrap();
        let n = normalize("SELECT v FROM t WHERE v > -0.0").unwrap();
        // `-` is a separate token, so the shapes differ too — either way
        // these must never alias.
        assert!(p.shape != n.shape || p.literals != n.literals);
    }

    #[test]
    fn non_selects_do_not_normalize() {
        assert!(normalize("INSERT INTO t VALUES (1)").is_none());
        assert!(normalize("CREATE TABLE t (id INTEGER)").is_none());
        assert!(normalize("SHOW METRICS").is_none());
        assert!(normalize("KILL 3").is_none());
        assert!(normalize("not even ' sql").is_none());
    }

    #[test]
    fn lookup_insert_and_version_bump() {
        let cache = PlanCache::new(4);
        let norm = normalize("SELECT id FROM t").unwrap();
        assert!(cache.lookup(&norm, 7).is_none());
        cache.insert(&norm, 7, plan());
        assert!(cache.lookup(&norm, 7).is_some());
        // A different config fingerprint is a different key.
        assert!(cache.lookup(&norm, 8).is_none());
        // A version bump makes the entry unreachable.
        cache.bump(InvalidationReason::Ddl);
        assert!(cache.lookup(&norm, 7).is_none());
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.invalidations, 1);
    }

    #[test]
    fn lru_eviction_is_bounded() {
        let cache = PlanCache::new(2);
        let a = normalize("SELECT a FROM t").unwrap();
        let b = normalize("SELECT b FROM t").unwrap();
        let c = normalize("SELECT c FROM t").unwrap();
        cache.insert(&a, 0, plan());
        cache.insert(&b, 0, plan());
        assert!(cache.lookup(&a, 0).is_some()); // touch a → b is LRU
        cache.insert(&c, 0, plan());
        assert_eq!(cache.stats().entries, 2);
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.lookup(&b, 0).is_none(), "LRU victim was b");
        assert!(cache.lookup(&a, 0).is_some());
        assert!(cache.lookup(&c, 0).is_some());
    }

    #[test]
    fn zero_capacity_disables() {
        let cache = PlanCache::new(0);
        let norm = normalize("SELECT a FROM t").unwrap();
        cache.insert(&norm, 0, plan());
        assert!(!cache.enabled());
        assert!(cache.lookup(&norm, 0).is_none());
        assert_eq!(cache.stats().entries, 0);
    }
}
