//! Normalized plan cache: repeat statements skip parse/bind/optimize.
//!
//! At production traffic most statements are repeats, so the front half
//! of the lifecycle (parse → bind → optimize) is pure overhead after the
//! first execution. The cache keys on the statement's **shape** — its
//! token stream with literals replaced by `?` and identifiers lowercased
//! — plus the *exact literal values*, a monotonic catalog version, and a
//! fingerprint of the plan-relevant configuration knobs. Keying on the
//! exact literal vector (Oracle-style cursor sharing, narrowed to exact
//! matches) makes reuse sound by construction: a cached optimized
//! [`LogicalPlan`] is only ever replayed for a statement whose literals
//! are identical, so constant folding, `LIMIT` counts and `ORDER BY`
//! ordinals baked into the plan are all still correct.
//!
//! Invalidation is **typed**, never a silent truncation. Schema and
//! config changes call [`PlanCache::bump`] with an
//! [`InvalidationReason`], which advances the global version (making
//! every older key unreachable); stale entries are then recycled by the
//! bounded LRU like any cold entry. Stats changes (INSERT / bulk load)
//! call [`PlanCache::bump_stats`] for just the written table: every
//! entry records, per base table its plan scans, the table's stats
//! version at insert time, and a lookup re-validates those versions — so
//! a write to one table never touches cached plans over others. Every
//! reason counts under `cache.invalidations.<reason>`.
//!
//! Soundness against concurrent DDL: callers capture the version **once,
//! before binding** ([`PlanCache::version`]), and [`PlanCache::insert`]
//! refuses to cache when the version has moved on — a plan is only ever
//! cached under the catalog version it was bound at, never under a
//! post-DDL version it has not seen.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use lardb_planner::LogicalPlan;
use lardb_sql::lexer::{tokenize, Token};

/// Default cache capacity (entries) when `LARDB_PLAN_CACHE` is unset.
pub const DEFAULT_PLAN_CACHE_ENTRIES: usize = 256;

/// A literal value captured during normalization. Floats are stored as
/// raw bits so the key is `Eq + Hash` and `-0.0`/`NaN` variants never
/// alias each other.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Literal {
    /// Integer literal.
    Int(i64),
    /// Float literal, by bit pattern.
    Float(u64),
    /// String literal.
    Str(String),
}

/// Which statement wrapper preceded the SELECT body, so `EXPLAIN ANALYZE
/// SELECT …` shares a shape with the bare `SELECT …` without the hit
/// fast-path short-circuiting non-SELECT responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatementKind {
    /// A bare SELECT: eligible for the full skip-parse/bind/optimize path.
    Select,
    /// `EXPLAIN [ANALYZE|TRACE] SELECT …`: shares the SELECT's shape (for
    /// the cache-hit annotation and optimize reuse) but must still run
    /// the explain machinery.
    Explain,
}

/// A statement shape: the normalized token string plus the captured
/// literal vector, computed **without parsing**.
#[derive(Debug, Clone, PartialEq)]
pub struct NormalizedStatement {
    /// Token shape with literals parameterized as `?`.
    pub shape: String,
    /// The literal values, in token order.
    pub literals: Vec<Literal>,
    /// Bare SELECT or EXPLAIN-wrapped.
    pub kind: StatementKind,
}

/// Normalizes a statement into its cache shape. Returns `None` for
/// statements that are not SELECT-shaped (DDL, INSERT, SHOW, KILL, …) or
/// that fail to tokenize — those always take the full path.
pub fn normalize(sql: &str) -> Option<NormalizedStatement> {
    let tokens = tokenize(sql).ok()?;
    let mut shape = String::with_capacity(sql.len());
    let mut literals = Vec::new();
    let mut it = tokens.iter().map(|s| &s.token).peekable();
    // Strip an EXPLAIN [ANALYZE|TRACE] prefix so the wrapped SELECT
    // shares its shape with the bare statement.
    let mut kind = StatementKind::Select;
    if matches!(it.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case("EXPLAIN")) {
        it.next();
        kind = StatementKind::Explain;
        if matches!(it.peek(), Some(Token::Ident(s))
            if s.eq_ignore_ascii_case("ANALYZE") || s.eq_ignore_ascii_case("TRACE"))
        {
            it.next();
        }
    }
    match it.peek() {
        Some(Token::Ident(s)) if s.eq_ignore_ascii_case("SELECT") => {}
        _ => return None,
    }
    for token in it {
        match token {
            Token::Int(v) => {
                literals.push(Literal::Int(*v));
                shape.push_str("? ");
            }
            Token::Float(v) => {
                literals.push(Literal::Float(v.to_bits()));
                shape.push_str("? ");
            }
            Token::Str(s) => {
                literals.push(Literal::Str(s.clone()));
                shape.push_str("? ");
            }
            Token::Ident(s) => {
                shape.push_str(&s.to_ascii_lowercase());
                shape.push(' ');
            }
            Token::Semicolon => {} // optional trailing `;` is not shape
            other => {
                shape.push_str(symbol(other));
                shape.push(' ');
            }
        }
    }
    Some(NormalizedStatement { shape, literals, kind })
}

fn symbol(t: &Token) -> &'static str {
    match t {
        Token::LParen => "(",
        Token::RParen => ")",
        Token::LBracket => "[",
        Token::RBracket => "]",
        Token::Comma => ",",
        Token::Dot => ".",
        Token::Star => "*",
        Token::Plus => "+",
        Token::Minus => "-",
        Token::Slash => "/",
        Token::Eq => "=",
        Token::NotEq => "<>",
        Token::Lt => "<",
        Token::LtEq => "<=",
        Token::Gt => ">",
        Token::GtEq => ">=",
        // Literals, idents and `;` are handled by the caller.
        Token::Ident(_) | Token::Int(_) | Token::Float(_) | Token::Str(_)
        | Token::Semicolon => "",
    }
}

/// Why the cache version was bumped. Each reason has its own counter so
/// `SHOW METRICS` distinguishes schema changes from stats drift from
/// configuration changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvalidationReason {
    /// Schema change: CREATE/DROP of tables, views or materialized views.
    Ddl,
    /// Statistics change: INSERT / bulk load (cardinalities moved, so a
    /// cached join order may no longer be the optimizer's choice).
    Stats,
    /// Configuration change affecting planning (e.g. optimizer knobs).
    Config,
}

impl InvalidationReason {
    fn metric(self) -> &'static str {
        match self {
            InvalidationReason::Ddl => "cache.invalidations.ddl",
            InvalidationReason::Stats => "cache.invalidations.stats",
            InvalidationReason::Config => "cache.invalidations.config",
        }
    }
}

/// Full cache key: shape + exact literals + catalog version + config
/// fingerprint.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    shape: String,
    literals: Vec<Literal>,
    version: u64,
    fingerprint: u64,
}

struct Entry {
    plan: Arc<LogicalPlan>,
    /// Base tables the plan scans, with each table's stats version at
    /// insert time; a lookup re-validates these so a write to one table
    /// only invalidates the plans that actually read it.
    stats: Vec<(String, u64)>,
    last_used: u64,
}

/// Mutex-protected cache state: the entries plus the per-table stats
/// versions they are validated against. One lock for both, so a
/// `bump_stats` is never interleaved half-way through a lookup.
#[derive(Default)]
struct Inner {
    entries: HashMap<CacheKey, Entry>,
    stats_versions: HashMap<String, u64>,
}

/// Point-in-time counters for tests and introspection (per cache, unlike
/// the process-global metrics registry).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a plan.
    pub hits: u64,
    /// Lookups that found nothing (including version/fingerprint misses).
    pub misses: u64,
    /// Entries evicted by the LRU bound.
    pub evictions: u64,
    /// Version bumps, all reasons.
    pub invalidations: u64,
    /// Inserts dropped because a DDL moved the catalog version between
    /// bind and insert (the plan was bound against a stale catalog).
    pub stale_inserts: u64,
    /// Current live entries (including unreachable stale versions not yet
    /// recycled).
    pub entries: usize,
}

/// A bounded LRU cache of optimized logical plans, shared by every clone
/// of a [`crate::Database`]. Thread-safe; lookups and inserts take one
/// short mutex hold.
pub struct PlanCache {
    capacity: usize,
    version: AtomicU64,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
    stale_inserts: AtomicU64,
    inner: Mutex<Inner>,
}

impl PlanCache {
    /// A cache bounded at `capacity` entries; 0 disables caching (every
    /// lookup misses, inserts are dropped).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            capacity,
            version: AtomicU64::new(0),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            stale_inserts: AtomicU64::new(0),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Whether caching is enabled at all.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// The current catalog version. Callers capture this **once, before
    /// binding**, and pass the captured value to [`PlanCache::lookup`]
    /// and [`PlanCache::insert`] — that is what guarantees a plan is
    /// only ever cached under the version it was bound at.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Typed invalidation for schema/config changes: advances the global
    /// version (making every older key unreachable) and counts the
    /// reason. Stats changes use [`PlanCache::bump_stats`] instead.
    pub fn bump(&self, reason: InvalidationReason) {
        self.version.fetch_add(1, Ordering::AcqRel);
        self.invalidations.fetch_add(1, Ordering::Relaxed);
        let registry = lardb_obs::global();
        registry.counter(reason.metric()).inc();
        registry.counter("cache.invalidations").inc();
    }

    /// Typed invalidation for a statistics change (INSERT / bulk load /
    /// matview refresh) scoped to one table: only cached plans whose
    /// scan set includes `table` become stale; plans over other tables
    /// keep hitting.
    pub fn bump_stats(&self, table: &str) {
        let key = table.to_ascii_lowercase();
        {
            let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            *inner.stats_versions.entry(key).or_insert(0) += 1;
        }
        self.invalidations.fetch_add(1, Ordering::Relaxed);
        let registry = lardb_obs::global();
        registry.counter(InvalidationReason::Stats.metric()).inc();
        registry.counter("cache.invalidations").inc();
    }

    fn key(&self, norm: &NormalizedStatement, fingerprint: u64, version: u64) -> CacheKey {
        CacheKey {
            shape: norm.shape.clone(),
            literals: norm.literals.clone(),
            version,
            fingerprint,
        }
    }

    /// Looks up the optimized plan for a normalized statement under the
    /// caller's captured catalog `version`, re-validating the per-table
    /// stats versions the entry was inserted with. A stats mismatch
    /// removes the entry and counts a miss. Counts a hit or miss.
    pub fn lookup(
        &self,
        norm: &NormalizedStatement,
        fingerprint: u64,
        version: u64,
    ) -> Option<Arc<LogicalPlan>> {
        if !self.enabled() {
            return None;
        }
        let key = self.key(norm, fingerprint, version);
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let Inner { entries, stats_versions } = &mut *inner;
        let fresh = match entries.get_mut(&key) {
            Some(entry) => {
                let fresh = entry.stats.iter().all(|(table, v)| {
                    stats_versions.get(table).copied().unwrap_or(0) == *v
                });
                if fresh {
                    entry.last_used = self.tick.fetch_add(1, Ordering::Relaxed);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    lardb_obs::global().counter("cache.hits").inc();
                    return Some(Arc::clone(&entry.plan));
                }
                false
            }
            None => true, // plain miss; nothing to remove
        };
        if !fresh {
            entries.remove(&key);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        lardb_obs::global().counter("cache.misses").inc();
        None
    }

    /// Inserts an optimized plan under the catalog `version` captured
    /// before the plan was bound, evicting the least-recently-used entry
    /// when full. `tables` are the base tables the plan scans; their
    /// current stats versions are recorded for lookup re-validation. If
    /// a concurrent DDL moved the version since capture, the insert is
    /// **dropped** (counted under `cache.stale_inserts`) — the plan was
    /// bound against a catalog that no longer exists.
    pub fn insert(
        &self,
        norm: &NormalizedStatement,
        fingerprint: u64,
        version: u64,
        tables: &[String],
        plan: Arc<LogicalPlan>,
    ) {
        if !self.enabled() {
            return;
        }
        let key = self.key(norm, fingerprint, version);
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        // Re-check under the lock: a bump after this wins (its version
        // differs from `version`), so the entry could never be served.
        if self.version() != version {
            self.stale_inserts.fetch_add(1, Ordering::Relaxed);
            lardb_obs::global().counter("cache.stale_inserts").inc();
            return;
        }
        let stats = tables
            .iter()
            .map(|t| {
                let t = t.to_ascii_lowercase();
                let v = inner.stats_versions.get(&t).copied().unwrap_or(0);
                (t, v)
            })
            .collect();
        if !inner.entries.contains_key(&key) && inner.entries.len() >= self.capacity {
            // Evict the LRU entry. Capacities are small (hundreds), so a
            // linear scan on the rare full-insert beats maintaining an
            // order list on every lookup.
            if let Some(victim) = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.entries.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                lardb_obs::global().counter("cache.evictions").inc();
            }
        }
        inner.entries.insert(
            key,
            Entry { plan, stats, last_used: self.tick.fetch_add(1, Ordering::Relaxed) },
        );
    }

    /// Counts a statement that could not be cached (non-SELECT shape,
    /// virtual-table reference, bind failure).
    pub fn note_uncacheable(&self) {
        lardb_obs::global().counter("cache.uncacheable").inc();
    }

    /// Point-in-time stats snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            stale_inserts: self.stale_inserts.load(Ordering::Relaxed),
            entries: self
                .inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .entries
                .len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lardb_storage::Schema;

    fn plan() -> Arc<LogicalPlan> {
        Arc::new(LogicalPlan::Scan { table: "t".into(), schema: Schema::default() })
    }

    #[test]
    fn shapes_share_across_whitespace_case_and_explain() {
        let a = normalize("SELECT id FROM t WHERE id = 1").unwrap();
        let b = normalize("select  ID\nfrom T where ID=1 ;").unwrap();
        assert_eq!(a.shape, b.shape);
        assert_eq!(a.literals, b.literals);
        assert_eq!(a.kind, StatementKind::Select);
        let e = normalize("EXPLAIN ANALYZE SELECT id FROM t WHERE id = 1").unwrap();
        assert_eq!(e.shape, a.shape);
        assert_eq!(e.kind, StatementKind::Explain);
    }

    #[test]
    fn literals_discriminate_variants() {
        let a = normalize("SELECT id FROM t WHERE id = 1").unwrap();
        let b = normalize("SELECT id FROM t WHERE id = 2").unwrap();
        assert_eq!(a.shape, b.shape);
        assert_ne!(a.literals, b.literals);
        // Float bit-patterns: 0.0 and -0.0 are distinct variants.
        let p = normalize("SELECT v FROM t WHERE v > 0.0").unwrap();
        let n = normalize("SELECT v FROM t WHERE v > -0.0").unwrap();
        // `-` is a separate token, so the shapes differ too — either way
        // these must never alias.
        assert!(p.shape != n.shape || p.literals != n.literals);
    }

    #[test]
    fn non_selects_do_not_normalize() {
        assert!(normalize("INSERT INTO t VALUES (1)").is_none());
        assert!(normalize("CREATE TABLE t (id INTEGER)").is_none());
        assert!(normalize("SHOW METRICS").is_none());
        assert!(normalize("KILL 3").is_none());
        assert!(normalize("not even ' sql").is_none());
    }

    #[test]
    fn lookup_insert_and_version_bump() {
        let cache = PlanCache::new(4);
        let norm = normalize("SELECT id FROM t").unwrap();
        assert!(cache.lookup(&norm, 7, cache.version()).is_none());
        cache.insert(&norm, 7, cache.version(), &["t".into()], plan());
        assert!(cache.lookup(&norm, 7, cache.version()).is_some());
        // A different config fingerprint is a different key.
        assert!(cache.lookup(&norm, 8, cache.version()).is_none());
        // A version bump makes the entry unreachable.
        cache.bump(InvalidationReason::Ddl);
        assert!(cache.lookup(&norm, 7, cache.version()).is_none());
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.invalidations, 1);
    }

    #[test]
    fn stale_insert_after_concurrent_ddl_is_dropped() {
        let cache = PlanCache::new(4);
        let norm = normalize("SELECT id FROM t").unwrap();
        // Capture the version as the bind would, then a "concurrent" DDL
        // lands before the insert: the plan was bound against a catalog
        // that no longer exists and must not be cached.
        let bind_version = cache.version();
        cache.bump(InvalidationReason::Ddl);
        cache.insert(&norm, 0, bind_version, &["t".into()], plan());
        assert_eq!(cache.stats().entries, 0, "stale insert must be dropped");
        assert_eq!(cache.stats().stale_inserts, 1);
        assert!(cache.lookup(&norm, 0, cache.version()).is_none());
    }

    #[test]
    fn stats_bump_invalidates_only_plans_over_that_table() {
        let cache = PlanCache::new(4);
        let over_t = normalize("SELECT a FROM t").unwrap();
        let over_o = normalize("SELECT a FROM o").unwrap();
        cache.insert(&over_t, 0, cache.version(), &["t".into()], plan());
        cache.insert(&over_o, 0, cache.version(), &["o".into()], plan());
        cache.bump_stats("T"); // case-insensitive, like the catalog
        assert!(
            cache.lookup(&over_t, 0, cache.version()).is_none(),
            "plan over t saw a stats change"
        );
        assert!(
            cache.lookup(&over_o, 0, cache.version()).is_some(),
            "plan over o must survive a write to t"
        );
        // The stale entry was removed on the failed lookup.
        assert_eq!(cache.stats().entries, 1);
        // Re-inserting under the new stats version hits again.
        cache.insert(&over_t, 0, cache.version(), &["t".into()], plan());
        assert!(cache.lookup(&over_t, 0, cache.version()).is_some());
    }

    #[test]
    fn lru_eviction_is_bounded() {
        let cache = PlanCache::new(2);
        let a = normalize("SELECT a FROM t").unwrap();
        let b = normalize("SELECT b FROM t").unwrap();
        let c = normalize("SELECT c FROM t").unwrap();
        let v = cache.version();
        cache.insert(&a, 0, v, &["t".into()], plan());
        cache.insert(&b, 0, v, &["t".into()], plan());
        assert!(cache.lookup(&a, 0, v).is_some()); // touch a → b is LRU
        cache.insert(&c, 0, v, &["t".into()], plan());
        assert_eq!(cache.stats().entries, 2);
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.lookup(&b, 0, v).is_none(), "LRU victim was b");
        assert!(cache.lookup(&a, 0, v).is_some());
        assert!(cache.lookup(&c, 0, v).is_some());
    }

    #[test]
    fn zero_capacity_disables() {
        let cache = PlanCache::new(0);
        let norm = normalize("SELECT a FROM t").unwrap();
        cache.insert(&norm, 0, cache.version(), &[], plan());
        assert!(!cache.enabled());
        assert!(cache.lookup(&norm, 0, cache.version()).is_none());
        assert_eq!(cache.stats().entries, 0);
    }
}
