//! The `Database` façade: the full query path in one object.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use lardb_exec::{
    CancelToken, Cluster, ExecStats, Executor, MemoryConfig, NetConfig, SchedulerMode,
    TransportMode,
};
use lardb_pool::WorkerPool;
use lardb_obs::{CollectingSink, OperatorProfile, QueryProfile, SpanGuard, Stage};
use lardb_planner::physical::PhysicalPlanner;
use lardb_planner::{LogicalPlan, Optimizer, OptimizerConfig, PlanEstimate};
use lardb_sql::ast::{SelectStatement, Statement, TableRef};
use lardb_sql::{parse_statement, Binder};
use lardb_storage::{
    Catalog, DataType, MatViewDef, Partitioning, Row, Schema, Table, Value,
};

use crate::error::{EngineError, Result};
use crate::plan_cache::{
    normalize, CacheStats, InvalidationReason, NormalizedStatement, PlanCache,
    StatementKind, DEFAULT_PLAN_CACHE_ENTRIES,
};
use crate::sessions::SessionRegistry;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct DatabaseConfig {
    /// Number of simulated shared-nothing workers (the paper used 10
    /// machines × 8 cores).
    pub workers: usize,
    /// Optimizer switches (size inference, early projection, DP budget).
    pub optimizer: OptimizerConfig,
    /// How exchange operators move batches between workers: `Pointer`
    /// (in-memory hand-off, estimated bytes), `Serialized` (wire-encoded
    /// over bounded channels, actual bytes), or `Tcp` (wire-encoded over
    /// loopback sockets).
    pub transport: TransportMode,
    /// Slow-query log threshold in milliseconds. Statements that take at
    /// least this long are reported on stderr and counted under the
    /// `db.slow_queries` metric. `None` (the default) disables the log.
    pub slow_query_ms: Option<f64>,
    /// Threads in the persistent worker pool that executes morsels.
    /// `None` (the default) shares the process-wide pool (sized from
    /// `LARDB_POOL_WORKERS` or the machine's core count); `Some(n)` gives
    /// this database a dedicated pool of `n` threads, created once and
    /// reused by every query.
    pub pool_workers: Option<usize>,
    /// Rows per scheduled morsel (default
    /// [`lardb_exec::DEFAULT_MORSEL_ROWS`]). Smaller morsels balance skew
    /// better; larger ones amortize scheduling further.
    pub morsel_rows: usize,
    /// Scheduling strategy: morsel-driven pool (default) or the
    /// one-thread-per-partition-per-operator spawn baseline.
    pub scheduler: SchedulerMode,
    /// Flop-count cutoff above which GEMM/SYRK kernels run pool-parallel;
    /// `Some(0)` keeps all linear algebra inline, `None` (the default)
    /// leaves the kernel's built-in cutoff untouched. Applied process-wide
    /// at database construction.
    pub gemm_parallel_flops: Option<usize>,
    /// Zero-fraction / density threshold steering the density-adaptive
    /// kernel dispatch (skip-zero GEMM inner loops, when sparse products
    /// stay sparse). `None` (the default) honors `LARDB_SPARSE_THRESHOLD`,
    /// falling back to the kernel default
    /// ([`lardb_la::dispatch::DEFAULT_SPARSE_THRESHOLD`]). Applied
    /// process-wide at database construction; clamped to `[0, 1]`.
    pub sparse_threshold: Option<f64>,
    /// Kernel-dispatch mode: `Adaptive` (the default) picks dense or
    /// sparse kernels per tile by measured density; `Dense` / `Sparse`
    /// force one representation everywhere (ablation / debugging).
    /// `None` honors `LARDB_SPARSE_DISPATCH`. Applied process-wide at
    /// database construction.
    pub sparse_dispatch: Option<lardb_la::DispatchMode>,
    /// Network-layer knobs for serialized/TCP exchanges: I/O timeouts, the
    /// maximum accepted frame size, and an optional deterministic fault
    /// injection plan (see `lardb_exec::FaultPlan`) for chaos testing.
    pub net: NetConfig,
    /// Memory budget for pipeline-breaking operators, in MiB. `None`
    /// (the default) shares the process-wide governor sized from
    /// `LARDB_MEM_BUDGET_MB` (unset ⇒ unbounded); `Some(0)` gives this
    /// database a dedicated *unbounded* governor; `Some(n)` gives it a
    /// dedicated `n`-MiB governor. When a hash join or grouped aggregate
    /// cannot reserve its working set it spills partitions to disk and
    /// finishes out-of-core (see `lardb_buf`).
    pub mem: Option<u64>,
    /// Directory for spill files. `None` (the default) uses
    /// `LARDB_SPILL_DIR`, falling back to the OS temp dir. Spill files
    /// are removed as soon as they are drained (and on abort).
    pub spill_dir: Option<std::path::PathBuf>,
    /// Directory where each completed query trace is written as Chrome
    /// trace-event JSON (`trace-<id>.json`, loadable in Perfetto /
    /// `chrome://tracing`). `None` (the default) keeps traces only in the
    /// in-memory flight recorder.
    pub trace_dir: Option<std::path::PathBuf>,
    /// Trace 1 of every `n` queries. `None` leaves the process-wide
    /// flight-recorder sampling untouched (default: every query);
    /// `Some(0)` disables tracing entirely.
    pub trace_sample: Option<u64>,
    /// Completed-trace ring capacity. `None` leaves the process-wide
    /// setting untouched (default 256, or `LARDB_TRACE_CAPACITY`).
    pub trace_capacity: Option<usize>,
    /// Expression engine for scan→filter→project→aggregate pipelines:
    /// `Compiled` (the default) pivots morsels into column batches and
    /// evaluates register bytecode with fused vectorized kernels, falling
    /// back to the row interpreter per chunk on any kernel error;
    /// `Interpret` keeps the row-at-a-time tree walker (the ablation
    /// baseline). Defaults honor `LARDB_EXPR_ENGINE`.
    pub expr_engine: lardb_exec::ExprEngine,
    /// Rows per column batch in the compiled engine (default
    /// [`lardb_exec::DEFAULT_BATCH_ROWS`]; env `LARDB_BATCH_ROWS`).
    /// Smaller batches stay cache-resident; larger ones amortize the
    /// pivot and dispatch further.
    pub batch_rows: usize,
    /// Capacity of the normalized plan cache in entries (default
    /// [`crate::plan_cache::DEFAULT_PLAN_CACHE_ENTRIES`]; env
    /// `LARDB_PLAN_CACHE`). Repeat SELECTs whose shape, literals, catalog
    /// version and optimizer knobs all match a cached entry skip
    /// parse/bind/optimize entirely. `0` disables caching.
    pub plan_cache_entries: usize,
}

impl Default for DatabaseConfig {
    fn default() -> Self {
        DatabaseConfig {
            workers: 4,
            optimizer: OptimizerConfig::default(),
            transport: TransportMode::Pointer,
            slow_query_ms: None,
            pool_workers: None,
            morsel_rows: lardb_exec::DEFAULT_MORSEL_ROWS,
            scheduler: SchedulerMode::default(),
            gemm_parallel_flops: None,
            sparse_threshold: std::env::var("LARDB_SPARSE_THRESHOLD")
                .ok()
                .and_then(|s| s.parse().ok()),
            sparse_dispatch: std::env::var("LARDB_SPARSE_DISPATCH")
                .ok()
                .and_then(|s| lardb_la::DispatchMode::parse(&s)),
            net: NetConfig::default(),
            mem: None,
            spill_dir: None,
            trace_dir: None,
            trace_sample: None,
            trace_capacity: None,
            expr_engine: std::env::var("LARDB_EXPR_ENGINE")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or_default(),
            batch_rows: std::env::var("LARDB_BATCH_ROWS")
                .ok()
                .and_then(|s| s.parse().ok())
                .filter(|&n: &usize| n > 0)
                .unwrap_or(lardb_exec::DEFAULT_BATCH_ROWS),
            plan_cache_entries: std::env::var("LARDB_PLAN_CACHE")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(DEFAULT_PLAN_CACHE_ENTRIES),
        }
    }
}

/// The outcome of a gathered query.
#[derive(Debug)]
pub struct QueryResult {
    /// Output schema.
    pub schema: Schema,
    /// All result rows.
    pub rows: Vec<Row>,
    /// Per-operator execution statistics.
    pub stats: ExecStats,
}

impl QueryResult {
    /// First row, first column — convenient for scalar results.
    pub fn scalar(&self) -> Option<&Value> {
        self.rows.first().map(|r| r.value(0))
    }

    /// Renders the result as a simple table.
    pub fn display_table(&self) -> String {
        let mut out = String::new();
        let names: Vec<String> =
            self.schema.columns().iter().map(|c| c.name.clone()).collect();
        out.push_str(&names.join(" | "));
        out.push('\n');
        for r in &self.rows {
            let vals: Vec<String> = r.values().iter().map(|v| v.to_string()).collect();
            out.push_str(&vals.join(" | "));
            out.push('\n');
        }
        out
    }
}

/// What a statement produced.
#[derive(Debug)]
pub enum Response {
    /// SELECT results.
    Rows(QueryResult),
    /// DDL completed (CREATE/DROP).
    Done,
    /// INSERT (or CREATE TABLE AS) row count.
    Inserted(usize),
    /// EXPLAIN output.
    Explained(String),
}

impl Response {
    /// Unwraps SELECT results.
    pub fn into_rows(self) -> Result<QueryResult> {
        match self {
            Response::Rows(q) => Ok(q),
            other => Err(EngineError::Usage(format!(
                "statement did not produce rows (got {other:?})"
            ))),
        }
    }
}

/// A parallel relational database with the paper's linear-algebra
/// extensions. Cloning shares the catalog (sessions over one store).
///
/// ```
/// use lardb::Database;
/// let db = Database::new(4);
/// db.execute("CREATE TABLE t (id INTEGER, v DOUBLE)").unwrap();
/// db.execute("INSERT INTO t VALUES (1, 0.5), (2, 1.5)").unwrap();
/// let r = db.query("SELECT SUM(v) AS s FROM t").unwrap();
/// assert_eq!(r.scalar().unwrap().as_double(), Some(2.0));
/// ```
#[derive(Clone)]
pub struct Database {
    catalog: Arc<Catalog>,
    config: DatabaseConfig,
    /// The [`QueryProfile`] of the most recent statement that ran a plan
    /// (shared across clones, like the catalog).
    last_profile: Arc<Mutex<Option<QueryProfile>>>,
    /// True when the `metrics` catalog table was auto-materialized by the
    /// engine (and may therefore be refreshed/replaced); a user-created
    /// `metrics` table is never touched.
    metrics_table_auto: Arc<AtomicBool>,
    /// Same auto-materialization marker for the `queries` virtual table
    /// (the flight recorder's in-flight queries).
    queries_table_auto: Arc<AtomicBool>,
    /// Same marker for the `sessions` virtual table (the session
    /// registry, as rendered by `SHOW SESSIONS`).
    sessions_table_auto: Arc<AtomicBool>,
    /// The dedicated worker pool when [`DatabaseConfig::pool_workers`] is
    /// set — created once here and shared by every query's cluster (and
    /// by clones of this database). `None` ⇒ the process-wide pool.
    pool: Option<Arc<WorkerPool>>,
    /// Memory governor + spill directory every query's executor runs
    /// under, built once from [`DatabaseConfig::mem`] /
    /// [`DatabaseConfig::spill_dir`] so reservations and peak tracking
    /// are shared across queries (and clones) of this database.
    mem: MemoryConfig,
    /// Session/query bookkeeping shared across clones: `SHOW SESSIONS`
    /// renders it, `KILL <query-id>` cancels through it. The query server
    /// registers each connection here.
    sessions: Arc<SessionRegistry>,
    /// Label appended to this clone's slow-query log lines (e.g.
    /// `session 3 tenant acme`); per-clone, not shared.
    session_label: Option<String>,
    /// The normalized plan cache, shared across clones like the catalog
    /// (a schema change seen by one session must invalidate them all).
    plan_cache: Arc<PlanCache>,
}

impl Database {
    /// A database with `workers` simulated workers and default optimizer
    /// settings.
    pub fn new(workers: usize) -> Self {
        Database::with_config(DatabaseConfig {
            workers,
            ..DatabaseConfig::default()
        })
    }

    /// A database with explicit configuration.
    pub fn with_config(config: DatabaseConfig) -> Self {
        if let Some(flops) = config.gemm_parallel_flops {
            lardb_la::gemm::set_parallel_flops(flops);
        }
        if let Some(t) = config.sparse_threshold {
            lardb_la::dispatch::set_sparse_threshold(t);
        }
        if let Some(mode) = config.sparse_dispatch {
            lardb_la::dispatch::set_dispatch_mode(mode);
        }
        // Flight-recorder knobs are process-global, like the GEMM cutoff:
        // applied once at construction.
        match config.trace_sample {
            Some(0) => lardb_obs::recorder().set_enabled(false),
            Some(n) => {
                lardb_obs::recorder().set_enabled(true);
                lardb_obs::recorder().set_sample_every(n);
            }
            None => {}
        }
        if let Some(cap) = config.trace_capacity {
            lardb_obs::recorder().set_capacity(cap);
        }
        let pool = config.pool_workers.map(|n| Arc::new(WorkerPool::new(n)));
        let mem = match config.mem {
            None => match &config.spill_dir {
                None => MemoryConfig::shared(),
                Some(dir) => MemoryConfig::shared().with_spill_dir(dir.clone()),
            },
            Some(0) => MemoryConfig::with_budget(None, config.spill_dir.clone()),
            Some(mb) => {
                MemoryConfig::with_budget(Some(mb * 1024 * 1024), config.spill_dir.clone())
            }
        };
        let plan_cache = Arc::new(PlanCache::new(config.plan_cache_entries));
        Database {
            catalog: Arc::new(Catalog::new()),
            config,
            last_profile: Arc::new(Mutex::new(None)),
            metrics_table_auto: Arc::new(AtomicBool::new(false)),
            queries_table_auto: Arc::new(AtomicBool::new(false)),
            sessions_table_auto: Arc::new(AtomicBool::new(false)),
            pool,
            mem,
            sessions: Arc::new(SessionRegistry::new()),
            session_label: None,
            plan_cache,
        }
    }

    /// The cluster every query of this database executes on: the
    /// configured worker count, scheduler, morsel size, and (if
    /// dedicated) worker pool. With `cancel`, the query runs under an
    /// externally-owned token (KILL / disconnect wiring).
    fn cluster(&self, cancel: Option<&CancelToken>) -> Cluster {
        let mut cluster = Cluster::new(self.config.workers)
            .with_scheduler(self.config.scheduler)
            .with_morsel_rows(self.config.morsel_rows);
        if let Some(pool) = &self.pool {
            cluster = cluster.with_pool(Arc::clone(pool));
        }
        if let Some(token) = cancel {
            cluster = cluster.with_cancel_token(token.clone());
        }
        // Attach the statement's flight-recorder trace (if sampled) so
        // morsel workers and exchange channels attribute to the query.
        if let Some(trace) = lardb_obs::trace::current() {
            cluster = cluster.with_trace(trace);
        }
        cluster
    }

    /// The shared catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The session registry shared by every clone of this database (what
    /// `SHOW SESSIONS` renders and `KILL` cancels through).
    pub fn sessions(&self) -> &Arc<SessionRegistry> {
        &self.sessions
    }

    /// The memory configuration (governor + spill directory) this
    /// database's queries execute under.
    pub fn memory(&self) -> &MemoryConfig {
        &self.mem
    }

    /// Replaces the memory configuration (builder style). The query server
    /// uses this to give a clone a *tenant* governor: a sub-budget of the
    /// shared governor, so one tenant's reservations are capped without
    /// losing process-wide accounting. Catalog, pool, profile slot and
    /// session registry stay shared with the original.
    pub fn with_memory_config(mut self, mem: MemoryConfig) -> Self {
        self.mem = mem;
        self
    }

    /// Tags this clone's slow-query log lines with a session label
    /// (builder style), e.g. `session 3 tenant acme`.
    pub fn with_session_label(mut self, label: impl Into<String>) -> Self {
        self.session_label = Some(label.into());
        self
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.config.workers
    }

    /// Sets the exchange transport mode (builder style). `Serialized` and
    /// `Tcp` encode every boundary-crossing batch through the `lardb-net`
    /// wire codec and meter actual encoded bytes.
    pub fn with_transport(mut self, transport: TransportMode) -> Self {
        self.config.transport = transport;
        self
    }

    /// Mutates the exchange transport mode in place.
    pub fn set_transport(&mut self, transport: TransportMode) {
        self.config.transport = transport;
    }

    /// The configured exchange transport mode.
    pub fn transport(&self) -> TransportMode {
        self.config.transport
    }

    /// Sets the expression engine (builder style): `Compiled` vectorized
    /// bytecode over column batches (the default) or the `Interpret`
    /// row-at-a-time baseline — the `expr_engine` ablation axis.
    pub fn with_expr_engine(mut self, engine: lardb_exec::ExprEngine) -> Self {
        self.config.expr_engine = engine;
        self
    }

    /// The configured expression engine.
    pub fn expr_engine(&self) -> lardb_exec::ExprEngine {
        self.config.expr_engine
    }

    /// Sets the compiled engine's rows-per-column-batch (builder style).
    pub fn with_batch_rows(mut self, rows: usize) -> Self {
        self.config.batch_rows = rows.max(1);
        self
    }

    /// Mutates the optimizer configuration (ablation benchmarks flip
    /// [`OptimizerConfig::size_inference`] here). Counts a config
    /// invalidation on the plan cache; the knobs are also part of every
    /// cache key (the fingerprint), so even clones sharing the cache but
    /// not this config change can never see a mismatched plan.
    pub fn set_optimizer_config(&mut self, cfg: OptimizerConfig) {
        if cfg != self.config.optimizer {
            self.plan_cache.bump(InvalidationReason::Config);
        }
        self.config.optimizer = cfg;
    }

    /// Fingerprint of the configuration knobs an optimized plan depends
    /// on — part of every plan-cache key, so clones with diverged
    /// optimizer settings never share entries.
    fn config_fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.config.optimizer.size_inference.hash(&mut h);
        self.config.optimizer.early_projection.hash(&mut h);
        self.config.optimizer.max_dp_inputs.hash(&mut h);
        h.finish()
    }

    /// The shared plan cache (version bumps, stats).
    pub fn plan_cache(&self) -> &PlanCache {
        &self.plan_cache
    }

    /// Point-in-time counters of this database's plan cache. Unlike the
    /// process-global `cache.*` metrics, these are per-cache, so tests
    /// running concurrently don't see each other's traffic.
    pub fn plan_cache_stats(&self) -> CacheStats {
        self.plan_cache.stats()
    }

    /// Enables the slow-query log (builder style): statements taking at
    /// least `ms` milliseconds are reported on stderr and counted under
    /// the `db.slow_queries` metric.
    pub fn with_slow_query_threshold(mut self, ms: f64) -> Self {
        self.config.slow_query_ms = Some(ms);
        self
    }

    /// The [`QueryProfile`] of the most recent statement that ran a plan
    /// (SELECT, EXPLAIN ANALYZE, or CREATE TABLE AS), or `None` if no
    /// plan has run yet. The profile carries all five lifecycle stage
    /// timings plus per-operator estimate-vs-actual records.
    pub fn last_profile(&self) -> Option<QueryProfile> {
        self.last_profile.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Executes one SQL statement.
    ///
    /// ```
    /// # use lardb::{Database, Response};
    /// # let db = Database::new(2);
    /// assert!(matches!(
    ///     db.execute("CREATE TABLE m (mat MATRIX[3][3], vec VECTOR[3])").unwrap(),
    ///     Response::Done
    /// ));
    /// // §3.1: a dimension mismatch is caught before execution.
    /// db.execute("CREATE TABLE bad (mat MATRIX[3][3], vec VECTOR[7])").unwrap();
    /// assert!(db.query("SELECT matrix_vector_multiply(mat, vec) AS x FROM bad").is_err());
    /// ```
    pub fn execute(&self, sql: &str) -> Result<Response> {
        self.execute_cancellable(sql, None)
    }

    /// Executes one SQL statement under an externally-owned cancel token:
    /// flipping `cancel` (from any thread) aborts the statement at the
    /// next morsel/row-batch boundary with `ExecError::Cancelled`. The
    /// query server wires `KILL <query-id>` and client-disconnect
    /// detection to this. A token already cancelled when execution starts
    /// aborts immediately.
    pub fn execute_with_cancel(&self, sql: &str, cancel: &CancelToken) -> Result<Response> {
        self.execute_cancellable(sql, Some(cancel))
    }

    /// Executes one SQL statement under an externally-minted flight
    /// recorder trace. The query server mints the trace *before*
    /// admission (so queue wait is on the trace) and hands it in here;
    /// the statement runs with the trace as the thread-local current
    /// trace, and the trace is finished (frozen into the recorder ring)
    /// when the statement completes.
    pub fn execute_with_trace(
        &self,
        sql: &str,
        cancel: &CancelToken,
        trace: &Arc<lardb_obs::ActiveTrace>,
    ) -> Result<Response> {
        self.execute_inner(sql, Some(cancel), Some(Arc::clone(trace)), None)
    }

    fn execute_cancellable(&self, sql: &str, cancel: Option<&CancelToken>) -> Result<Response> {
        // Embedded entry point: mint a (sampled) trace here; the server
        // path pre-mints via `execute_with_trace` to capture queue wait.
        let trace = lardb_obs::recorder().start(sql, "embedded");
        self.execute_inner(sql, cancel, trace, None)
    }

    /// Parses and validates a statement once, precomputing its plan-cache
    /// shape. Executing the returned handle skips re-parsing; cacheable
    /// SELECT shapes are bound and optimized right here (best-effort), so
    /// the first [`Database::execute_prepared`] is already a cache hit.
    /// Bind errors still surface at execute time, preserving the
    /// prepare-then-create-table workflow.
    pub fn prepare(&self, sql: &str) -> Result<PreparedStatement> {
        let statement = parse_statement(sql)?;
        let norm = if self.plan_cache.enabled() { normalize(sql) } else { None };
        let prepared = PreparedStatement { sql: sql.into(), statement, norm };
        self.warm_plan_cache(&prepared);
        Ok(prepared)
    }

    /// Best-effort bind + optimize of a cacheable prepared SELECT into
    /// the plan cache. Failures are swallowed: they will surface (typed)
    /// when the statement is executed. The catalog version is captured
    /// *before* binding, so a concurrent DDL drops the insert instead of
    /// caching a plan bound against the pre-DDL catalog.
    fn warm_plan_cache(&self, prepared: &PreparedStatement) {
        let Some(norm) = &prepared.norm else { return };
        if norm.kind != StatementKind::Select {
            return;
        }
        let Statement::Select(sel) = &prepared.statement else { return };
        if references_virtual(sel) {
            return;
        }
        let version = self.plan_cache.version();
        let Ok(plan) = Binder::new(&self.catalog).bind_select(sel) else { return };
        let optimizer =
            Optimizer::new(self.catalog.as_ref(), self.config.optimizer.clone());
        let Ok(optimized) = optimizer.optimize(plan) else { return };
        self.plan_cache.insert(
            norm,
            self.config_fingerprint(),
            version,
            &crate::matview::scan_tables(&optimized),
            Arc::new(optimized),
        );
    }

    /// Executes a prepared statement. The stored parse tree is reused and
    /// the precomputed shape key routes SELECTs through the plan cache —
    /// repeat executions skip parse, bind *and* optimize.
    pub fn execute_prepared(&self, prepared: &PreparedStatement) -> Result<Response> {
        let trace = lardb_obs::recorder().start(&prepared.sql, "embedded");
        self.execute_inner(&prepared.sql, None, trace, Some(prepared))
    }

    /// [`Database::execute_prepared`] under an externally-owned cancel
    /// token (sampling decides whether a trace is minted, as in
    /// [`Database::execute_with_cancel`]).
    pub fn execute_prepared_with_cancel(
        &self,
        prepared: &PreparedStatement,
        cancel: &CancelToken,
    ) -> Result<Response> {
        let trace = lardb_obs::recorder().start(&prepared.sql, "embedded");
        self.execute_inner(&prepared.sql, Some(cancel), trace, Some(prepared))
    }

    /// [`Database::execute_prepared`] under an externally-owned cancel
    /// token and pre-minted flight-recorder trace — the query server's
    /// `Execute` message lands here.
    pub fn execute_prepared_with_trace(
        &self,
        prepared: &PreparedStatement,
        cancel: &CancelToken,
        trace: &Arc<lardb_obs::ActiveTrace>,
    ) -> Result<Response> {
        self.execute_inner(
            &prepared.sql,
            Some(cancel),
            Some(Arc::clone(trace)),
            Some(prepared),
        )
    }

    fn execute_inner(
        &self,
        sql: &str,
        cancel: Option<&CancelToken>,
        trace: Option<Arc<lardb_obs::ActiveTrace>>,
        prepared: Option<&PreparedStatement>,
    ) -> Result<Response> {
        let t0 = Instant::now();
        if let Some(t) = &trace {
            t.set_running();
        }
        let cur = trace
            .as_ref()
            .map(|t| lardb_obs::trace::push_current(Some(Arc::clone(t))));
        let sink = CollectingSink::new();
        let mut profile = QueryProfile::new(sql);
        let result = self.execute_traced(sql, cancel, &sink, &mut profile, prepared);
        profile.add_spans(&sink.take());
        if let (Some(t), Ok(Response::Rows(q))) = (&trace, &result) {
            t.add_rows(q.rows.len() as u64);
        }
        drop(cur);
        let trace_ids = trace.as_ref().map(|t| (t.id(), t.query_id()));
        if let Some(t) = trace {
            let err = result.as_ref().err().map(|e| e.to_string());
            let done = lardb_obs::recorder().finish(&t, err.as_deref());
            self.write_trace_file(&done);
        }
        self.finish_statement(sql, t0, result.is_err(), profile, trace_ids);
        result
    }

    /// Best-effort export of one completed trace as Chrome trace-event
    /// JSON under [`DatabaseConfig::trace_dir`]. I/O failures are
    /// swallowed: tracing must never fail a query.
    fn write_trace_file(&self, done: &lardb_obs::CompletedTrace) {
        let Some(dir) = &self.config.trace_dir else { return };
        let _ = std::fs::create_dir_all(dir);
        let _ = std::fs::write(
            dir.join(format!("trace-{}.json", done.id)),
            done.to_chrome_json(),
        );
    }

    /// Bookkeeping for one finished statement: process-wide counters, the
    /// per-query latency histogram, the slow-query log, and publishing the
    /// statement's [`QueryProfile`]. Slow-query log lines carry the
    /// statement's trace and query ids when it ran traced, so a log line
    /// correlates directly with flight-recorder output.
    fn finish_statement(
        &self,
        sql: &str,
        t0: Instant,
        errored: bool,
        profile: QueryProfile,
        trace_ids: Option<(lardb_obs::TraceId, u64)>,
    ) {
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        let registry = lardb_obs::global();
        registry.counter("db.queries").inc();
        registry.histogram("db.query_ms").observe(ms as u64);
        if errored {
            registry.counter("db.errors").inc();
        }
        if let Some(threshold) = self.config.slow_query_ms {
            if ms >= threshold {
                registry.counter("db.slow_queries").inc();
                let ids = match trace_ids {
                    Some((tid, 0)) => format!(" trace {tid}"),
                    Some((tid, qid)) => format!(" trace {tid} query {qid}"),
                    None => String::new(),
                };
                match &self.session_label {
                    Some(label) => eprintln!(
                        "[lardb] slow query ({ms:.1} ms ≥ {threshold:.1} ms) \
                         [{label}]{ids}: {sql}"
                    ),
                    None => eprintln!(
                        "[lardb] slow query ({ms:.1} ms ≥ {threshold:.1} ms){ids}: {sql}"
                    ),
                }
            }
        }
        *self.last_profile.lock().unwrap_or_else(|e| e.into_inner()) = Some(profile);
    }

    /// Statement dispatch with lifecycle spans recorded into `sink` and
    /// per-operator estimate-vs-actual records into `profile`. With
    /// `prepared`, the stored parse tree and shape key are reused instead
    /// of re-deriving them from `sql`.
    fn execute_traced(
        &self,
        sql: &str,
        cancel: Option<&CancelToken>,
        sink: &CollectingSink,
        profile: &mut QueryProfile,
        prepared: Option<&PreparedStatement>,
    ) -> Result<Response> {
        let fingerprint = self.config_fingerprint();
        // Captured once, before any bind: lookups read under it and
        // inserts are keyed (and validity-checked) against it, so a plan
        // is only ever cached under the catalog version it was bound at.
        let cache_version = self.plan_cache.version();
        let norm = match prepared {
            Some(p) => p.norm.clone(),
            None if self.plan_cache.enabled() => normalize(sql),
            None => None,
        };
        // Fast path: a bare SELECT whose shape, literals, catalog version
        // and config fingerprint are all cached skips parse, bind and
        // optimize entirely — their lifecycle stages stay at the
        // profile's pre-seeded zero, which is how the repeat-query bench
        // verifies the elision. Cached shapes never reference virtual
        // tables (gated at insert), so skipping their refresh is sound.
        if let Some(n) = &norm {
            if n.kind == StatementKind::Select {
                if let Some(cached) = self.plan_cache.lookup(n, fingerprint, cache_version) {
                    let (result, _) =
                        self.run_optimized(&cached, true, cancel, sink, profile)?;
                    return Ok(Response::Rows(result));
                }
            }
        }
        let statement = match prepared {
            Some(p) => p.statement.clone(),
            None => {
                let _g = SpanGuard::enter(sink, Stage::Parse, "");
                parse_statement(sql)?
            }
        };
        match statement {
            Statement::CreateTable { name, columns } => {
                let schema = Schema::new(
                    columns
                        .into_iter()
                        .map(|(n, t)| lardb_storage::Column::new(n, t))
                        .collect(),
                );
                self.create_table(&name, schema, Partitioning::RoundRobin)?;
                Ok(Response::Done)
            }
            Statement::CreateTableAs { name, query } => {
                let plan = {
                    let _g = SpanGuard::enter(sink, Stage::Bind, "");
                    Binder::new(&self.catalog).bind_select(&query)?
                };
                let (result, _) =
                    self.run_traced(plan, /*gather=*/ false, cancel, sink, profile)?;
                let mut table = Table::new(
                    &name,
                    result.schema.clone(),
                    self.config.workers,
                    Partitioning::RoundRobin,
                );
                let n = result.rows.len();
                table.insert_all(result.rows)?;
                self.catalog.create_table(table)?;
                self.plan_cache.bump(InvalidationReason::Ddl);
                Ok(Response::Inserted(n))
            }
            Statement::CreateView { name, columns, query, sql } => {
                // Validate now so errors surface at CREATE VIEW time.
                Binder::new(&self.catalog).bind_select(&query)?;
                if let Some(cols) = &columns {
                    let plan = Binder::new(&self.catalog).bind_select(&query)?;
                    if plan.schema().arity() != cols.len() {
                        return Err(EngineError::Usage(format!(
                            "view column list has {} names but query yields {}",
                            cols.len(),
                            plan.schema().arity()
                        )));
                    }
                }
                self.catalog.create_view(&name, sql, columns)?;
                self.plan_cache.bump(InvalidationReason::Ddl);
                Ok(Response::Done)
            }
            Statement::CreateMaterializedView { name, query, sql } => {
                let plan = {
                    let _g = SpanGuard::enter(sink, Stage::Bind, "");
                    Binder::new(&self.catalog).bind_select(&query)?
                };
                // Lineage from the *bound* plan: views are expanded, so
                // these are the base tables whose INSERTs must maintain
                // the view. Lineage through another materialized view is
                // rejected outright: maintenance writes to backing tables
                // directly (not through INSERT dispatch), so a view over
                // a view's backing table would silently go stale.
                let base_tables = crate::matview::scan_tables(&plan);
                if let Some(mv) = base_tables.iter().find(|t| self.catalog.has_matview(t))
                {
                    return Err(EngineError::Usage(format!(
                        "cannot create materialized view {name} over materialized \
                         view {mv}: maintenance does not cascade through \
                         materialized views"
                    )));
                }
                let (result, _) =
                    self.run_traced(plan, /*gather=*/ false, cancel, sink, profile)?;
                let mut table = Table::new(
                    &name,
                    result.schema.clone(),
                    self.config.workers,
                    Partitioning::RoundRobin,
                );
                let n = result.rows.len();
                table.insert_all(result.rows)?;
                self.catalog.create_table(table)?;
                if let Err(e) =
                    self.catalog.create_matview(&name, MatViewDef { sql, base_tables })
                {
                    let _ = self.catalog.drop_table(&name);
                    return Err(e.into());
                }
                self.plan_cache.bump(InvalidationReason::Ddl);
                lardb_obs::global().counter("mv.created").inc();
                Ok(Response::Inserted(n))
            }
            Statement::DropMaterializedView { name } => {
                if !self.catalog.has_matview(&name) {
                    return Err(EngineError::Usage(format!(
                        "no such materialized view: {name}"
                    )));
                }
                // Mirror the DropTable guard: CREATE rejects lineage
                // through materialized views, but a registry that names
                // one anyway (however it got there) must not lose its
                // base out from under it.
                let dependents = self.catalog.matviews_on(&name);
                if !dependents.is_empty() {
                    return Err(EngineError::Usage(format!(
                        "materialized view {name} has dependent materialized \
                         views: {}",
                        dependents.join(", ")
                    )));
                }
                self.catalog.drop_matview(&name)?;
                self.catalog.drop_table(&name)?;
                self.plan_cache.bump(InvalidationReason::Ddl);
                Ok(Response::Done)
            }
            Statement::RefreshMaterializedView { name } => {
                // recompute_matview bumps the view's stats version.
                let n = self.recompute_matview(&name)?;
                Ok(Response::Inserted(n))
            }
            Statement::DropTable { name } => {
                if self.catalog.has_matview(&name) {
                    return Err(EngineError::Usage(format!(
                        "{name} is a materialized view; use DROP MATERIALIZED VIEW"
                    )));
                }
                let dependents = self.catalog.matviews_on(&name);
                if !dependents.is_empty() {
                    return Err(EngineError::Usage(format!(
                        "table {name} has dependent materialized views: {}",
                        dependents.join(", ")
                    )));
                }
                self.catalog.drop_table(&name)?;
                self.plan_cache.bump(InvalidationReason::Ddl);
                Ok(Response::Done)
            }
            Statement::DropView { name } => {
                self.catalog.drop_view(&name)?;
                self.plan_cache.bump(InvalidationReason::Ddl);
                Ok(Response::Done)
            }
            Statement::Insert { table, rows } => {
                let binder = Binder::new(&self.catalog);
                let empty = Schema::default();
                let empty_row = Row::default();
                let mut materialized = Vec::with_capacity(rows.len());
                for r in rows {
                    let mut vals = Vec::with_capacity(r.len());
                    for e in &r {
                        let bound = binder.bind_expr(e, &empty)?;
                        vals.push(lardb_exec::eval::eval(&bound, &empty_row)?);
                    }
                    materialized.push(Row::new(vals));
                }
                let n = materialized.len();
                let handle = self.catalog.table(&table)?;
                // Clone the delta only when some materialized view's
                // lineage includes this table.
                if self.catalog.matviews_on(&table).is_empty() {
                    handle.write().insert_all(materialized)?;
                } else {
                    let delta = materialized.clone();
                    handle.write().insert_all(materialized)?;
                    self.maintain_matviews_on(&table, &delta)?;
                }
                // Per-table: only cached plans reading this table (or a
                // maintained view, bumped during maintenance) go stale.
                self.plan_cache.bump_stats(&table);
                Ok(Response::Inserted(n))
            }
            Statement::Select(sel) => {
                self.refresh_virtual_tables(&sel)?;
                let cacheable = norm
                    .as_ref()
                    .is_some_and(|n| n.kind == StatementKind::Select)
                    && !references_virtual(&sel);
                let plan = {
                    let _g = SpanGuard::enter(sink, Stage::Bind, "");
                    Binder::new(&self.catalog).bind_select(&sel)?
                };
                if cacheable {
                    let optimized = {
                        let _g = SpanGuard::enter(sink, Stage::Optimize, "");
                        let optimizer = Optimizer::new(
                            self.catalog.as_ref(),
                            self.config.optimizer.clone(),
                        );
                        Arc::new(optimizer.optimize(plan)?)
                    };
                    self.plan_cache.insert(
                        norm.as_ref().expect("cacheable implies normalized"),
                        fingerprint,
                        cache_version,
                        &crate::matview::scan_tables(&optimized),
                        Arc::clone(&optimized),
                    );
                    let (result, _) =
                        self.run_optimized(&optimized, true, cancel, sink, profile)?;
                    return Ok(Response::Rows(result));
                }
                if self.plan_cache.enabled() {
                    self.plan_cache.note_uncacheable();
                }
                let (result, _) = self.run_traced(plan, true, cancel, sink, profile)?;
                Ok(Response::Rows(result))
            }
            Statement::Explain { query, analyze, trace } => {
                self.refresh_virtual_tables(&query)?;
                if trace {
                    // EXPLAIN TRACE: run the query under a *forced* trace
                    // (sampling does not apply) and return its Chrome
                    // trace-event JSON instead of the plan text. The
                    // statement was already parsed, so a measured re-parse
                    // stands in for the parse span; bind onward runs live
                    // under the forced trace.
                    let forced = lardb_obs::recorder().start_forced(sql, "explain");
                    forced.set_running();
                    let run = {
                        let _cur = lardb_obs::trace::push_current(Some(Arc::clone(&forced)));
                        let t_parse = Instant::now();
                        let _ = parse_statement(sql);
                        forced.record("parse", "query", t_parse, t_parse.elapsed(), Vec::new());
                        let bound = {
                            let _g = SpanGuard::enter(sink, Stage::Bind, "");
                            Binder::new(&self.catalog).bind_select(&query)
                        };
                        match bound {
                            Ok(plan) => {
                                self.run_traced(plan, true, cancel, sink, profile)
                            }
                            Err(e) => Err(e.into()),
                        }
                    };
                    let err = run.as_ref().err().map(|e| e.to_string());
                    if let Ok((result, _)) = &run {
                        forced.add_rows(result.rows.len() as u64);
                    }
                    let done = lardb_obs::recorder().finish(&forced, err.as_deref());
                    self.write_trace_file(&done);
                    run?;
                    return Ok(Response::Explained(done.to_chrome_json()));
                }
                let plan = {
                    let _g = SpanGuard::enter(sink, Stage::Bind, "");
                    Binder::new(&self.catalog).bind_select(&query)?
                };
                // EXPLAIN shares the wrapped SELECT's cache shape (the
                // prefix is stripped during normalization): a hit reuses
                // the cached optimized plan and says so; a miss seeds the
                // cache for the bare statement.
                let cacheable = norm.is_some() && !references_virtual(&query);
                let (optimized, cache_note) = if cacheable {
                    let n = norm.as_ref().expect("cacheable implies normalized");
                    match self.plan_cache.lookup(n, fingerprint, cache_version) {
                        Some(cached) => (cached, "hit"),
                        None => {
                            let optimized = {
                                let _g = SpanGuard::enter(sink, Stage::Optimize, "");
                                let optimizer = Optimizer::new(
                                    self.catalog.as_ref(),
                                    self.config.optimizer.clone(),
                                );
                                Arc::new(optimizer.optimize(plan)?)
                            };
                            self.plan_cache.insert(
                                n,
                                fingerprint,
                                cache_version,
                                &crate::matview::scan_tables(&optimized),
                                Arc::clone(&optimized),
                            );
                            (optimized, "miss")
                        }
                    }
                } else {
                    let optimized = {
                        let _g = SpanGuard::enter(sink, Stage::Optimize, "");
                        let optimizer = Optimizer::new(
                            self.catalog.as_ref(),
                            self.config.optimizer.clone(),
                        );
                        Arc::new(optimizer.optimize(plan)?)
                    };
                    (optimized, "off")
                };
                let mut text = self.explain_optimized(&optimized)?;
                if !text.ends_with('\n') {
                    text.push('\n');
                }
                text.push_str(&format!("plan cache: {cache_note}\n"));
                if analyze {
                    let (result, operators) =
                        self.run_optimized(&optimized, true, cancel, sink, profile)?;
                    if !text.ends_with('\n') {
                        text.push('\n');
                    }
                    text.push_str(&format!(
                        "== Execution Statistics ==\n{}\
                         total: {} rows shuffled, {} bytes shuffled, \
                         {} frames, blocked {:.3} ms\n",
                        result.stats.display_table(),
                        result.stats.total_rows_shuffled(),
                        result.stats.total_bytes_shuffled(),
                        result.stats.total_frames(),
                        result.stats.total_enqueue_block().as_secs_f64() * 1e3,
                    ));
                    if result.stats.total_batches() > 0
                        || result.stats.total_fallbacks() > 0
                    {
                        text.push_str(&format!(
                            "vectorized: {} batches, {} rows, {} kernel \
                             dispatches, {} interpreter fallbacks\n",
                            result.stats.total_batches(),
                            result.stats.total_batch_rows(),
                            result.stats.total_kernels(),
                            result.stats.total_fallbacks(),
                        ));
                    }
                    let d = result.stats.dispatch;
                    if d.any() {
                        text.push_str(&format!(
                            "la dispatch ({}): {} dense, {} skip-zero, \
                             {} spmv, {} sp×dense, {} spgemm, {} sp-syrk, \
                             {} densified\n",
                            lardb_la::dispatch::dispatch_mode().name(),
                            d.dense,
                            d.skipzero,
                            d.spmv,
                            d.sp_dense,
                            d.spgemm,
                            d.sp_syrk,
                            d.densified,
                        ));
                    }
                    text.push_str(&render_estimate_table(&operators));
                }
                Ok(Response::Explained(text))
            }
            Statement::ShowMetrics => Ok(Response::Rows(metrics_snapshot_result())),
            Statement::ShowSessions => {
                Ok(Response::Rows(sessions_snapshot_result(&self.sessions)))
            }
            Statement::ShowQueries => Ok(Response::Rows(queries_snapshot_result())),
            Statement::Kill { query_id } => {
                if self.sessions.kill(query_id) {
                    Ok(Response::Done)
                } else {
                    Err(EngineError::Usage(format!(
                        "no running query with id {query_id} (see SHOW SESSIONS)"
                    )))
                }
            }
        }
    }

    /// Executes a SELECT and returns its rows.
    pub fn query(&self, sql: &str) -> Result<QueryResult> {
        self.execute(sql)?.into_rows()
    }

    /// EXPLAIN: optimized logical plan plus the physical plan with
    /// exchanges.
    pub fn explain(&self, sql: &str) -> Result<String> {
        match parse_statement(sql)? {
            Statement::Select(sel) | Statement::Explain { query: sel, .. } => {
                let plan = Binder::new(&self.catalog).bind_select(&sel)?;
                self.explain_logical(plan)
            }
            _ => Err(EngineError::Usage("EXPLAIN expects a SELECT".into())),
        }
    }

    fn explain_logical(&self, plan: LogicalPlan) -> Result<String> {
        let optimizer =
            Optimizer::new(self.catalog.as_ref(), self.config.optimizer.clone());
        let optimized = optimizer.optimize(plan)?;
        self.explain_optimized(&optimized)
    }

    /// Renders the EXPLAIN text for an already-optimized plan (the
    /// statement path arrives here with a cached or freshly-optimized
    /// plan in hand).
    fn explain_optimized(&self, optimized: &LogicalPlan) -> Result<String> {
        let mut pp = PhysicalPlanner::new(&self.catalog, self.catalog.as_ref());
        let physical = pp.plan_gathered(optimized)?;
        Ok(format!(
            "== Optimized Logical Plan ==\n{}\n== Physical Plan ==\n{}",
            optimized.display_tree(),
            physical.display_tree()
        ))
    }

    /// Runs a bound logical plan end-to-end (optimize → physical plan →
    /// parallel execute). Exposed for tests and the benchmark harness.
    /// The run's [`QueryProfile`] (with zeroed parse/bind stages, since
    /// the plan arrives pre-bound) is published to [`Database::last_profile`].
    pub fn run_logical(&self, plan: LogicalPlan, gather: bool) -> Result<QueryResult> {
        let sink = CollectingSink::new();
        let mut profile = QueryProfile::new("<logical plan>");
        let result = self.run_traced(plan, gather, None, &sink, &mut profile);
        profile.add_spans(&sink.take());
        *self.last_profile.lock().unwrap_or_else(|e| e.into_inner()) = Some(profile);
        result.map(|(q, _)| q)
    }

    /// The traced query back half: optimize → physical plan → execute,
    /// with one span per stage and per-operator estimate-vs-actual
    /// records appended to `profile`. Also returns the operator records
    /// so EXPLAIN ANALYZE can render them.
    ///
    /// Actual bytes are the metered shuffle bytes for exchanges; other
    /// operators don't move data across workers, so their "actual" bytes
    /// are derived as measured rows × the cost model's row width.
    pub(crate) fn run_traced(
        &self,
        plan: LogicalPlan,
        gather: bool,
        cancel: Option<&CancelToken>,
        sink: &CollectingSink,
        profile: &mut QueryProfile,
    ) -> Result<(QueryResult, Vec<OperatorProfile>)> {
        let optimized = {
            let _g = SpanGuard::enter(sink, Stage::Optimize, "");
            let optimizer =
                Optimizer::new(self.catalog.as_ref(), self.config.optimizer.clone());
            optimizer.optimize(plan)?
        };
        self.run_optimized(&optimized, gather, cancel, sink, profile)
    }

    /// The back half of [`Database::run_traced`] from an already-optimized
    /// plan: physical planning and execution under their spans. Plan-cache
    /// hits enter here directly, which is exactly what makes the
    /// parse/bind/optimize stages disappear from their profiles.
    fn run_optimized(
        &self,
        optimized: &LogicalPlan,
        gather: bool,
        cancel: Option<&CancelToken>,
        sink: &CollectingSink,
        profile: &mut QueryProfile,
    ) -> Result<(QueryResult, Vec<OperatorProfile>)> {
        let (physical, estimates) = {
            let _g = SpanGuard::enter(sink, Stage::Plan, "");
            let mut pp = PhysicalPlanner::new(&self.catalog, self.catalog.as_ref());
            let physical = if gather {
                pp.plan_gathered(optimized)?
            } else {
                pp.plan(optimized)?
            };
            let estimates = pp.estimates(&physical);
            (physical, estimates)
        };
        let dispatch_before = lardb_la::dispatch::dispatch_counters();
        let mut result = {
            let _g = SpanGuard::enter(sink, Stage::Execute, "");
            let executor = Executor::new(&self.catalog, self.cluster(cancel))
                .with_transport(self.config.transport)
                .with_net_config(self.config.net.clone())
                .with_memory(self.mem.clone())
                .with_expr_engine(self.config.expr_engine)
                .with_batch_rows(self.config.batch_rows);
            executor.execute(&physical)?
        };
        // Per-query kernel-dispatch attribution: the delta of the
        // process-wide counters across execution (concurrent queries may
        // bleed into each other's deltas). Also bridged to the global
        // `la.dispatch.*` metrics SHOW METRICS exposes.
        let d = lardb_la::dispatch::dispatch_counters().since(&dispatch_before);
        result.stats.dispatch = d;
        if d.any() {
            let m = lardb_obs::global();
            m.counter("la.dispatch.dense").add(d.dense);
            m.counter("la.dispatch.skipzero").add(d.skipzero);
            m.counter("la.dispatch.spmv").add(d.spmv);
            m.counter("la.dispatch.sp_dense").add(d.sp_dense);
            m.counter("la.dispatch.spgemm").add(d.spgemm);
            m.counter("la.dispatch.sp_syrk").add(d.sp_syrk);
            m.counter("la.dispatch.densified").add(d.densified);
        }
        let operators = join_estimates(&estimates, &result.stats);
        profile.operators.extend(operators.iter().cloned());
        let schema = result.schema.clone();
        let stats = std::mem::take(&mut result.stats);
        Ok((
            QueryResult { schema, rows: result.into_rows(), stats },
            operators,
        ))
    }

    /// Re-materializes the introspection virtual tables (`metrics`,
    /// `queries`, `sessions`) when `sel` references them (directly or in
    /// a subquery), so live engine state can be filtered, joined and
    /// aggregated with ordinary SQL. A user-created table with one of
    /// these names is never touched.
    fn refresh_virtual_tables(&self, sel: &SelectStatement) -> Result<()> {
        if references_table(sel, "metrics") {
            self.refresh_virtual("metrics", &self.metrics_table_auto, || {
                (metrics_schema(), metric_rows())
            })?;
        }
        if references_table(sel, "queries") {
            self.refresh_virtual("queries", &self.queries_table_auto, || {
                (queries_schema(), queries_rows())
            })?;
        }
        if references_table(sel, "sessions") {
            self.refresh_virtual("sessions", &self.sessions_table_auto, || {
                (sessions_schema(), sessions_rows(&self.sessions))
            })?;
        }
        Ok(())
    }

    /// Drops and re-creates one auto-materialized virtual table from a
    /// fresh snapshot. The `auto` flag distinguishes engine-created
    /// tables (refreshable) from a user's table of the same name (never
    /// clobbered).
    fn refresh_virtual(
        &self,
        name: &str,
        auto: &AtomicBool,
        snapshot: impl FnOnce() -> (Schema, Vec<Row>),
    ) -> Result<()> {
        if self.catalog.has_table(name) {
            if !auto.load(Ordering::Acquire) {
                return Ok(()); // the user's own table; never clobber it
            }
            self.catalog.drop_table(name)?;
        }
        let (schema, rows) = snapshot();
        let mut table = Table::new(name, schema, self.config.workers, Partitioning::RoundRobin);
        table.insert_all(rows)?;
        self.catalog.create_table(table)?;
        auto.store(true, Ordering::Release);
        Ok(())
    }

    /// Programmatic table creation with an explicit partitioning scheme
    /// (SQL `CREATE TABLE` defaults to round-robin; benchmark loaders use
    /// hash/replicated placement like the paper's §5 setups).
    pub fn create_table(
        &self,
        name: &str,
        schema: Schema,
        partitioning: Partitioning,
    ) -> Result<()> {
        let table = Table::new(name, schema, self.config.workers, partitioning);
        self.catalog.create_table(table)?;
        self.plan_cache.bump(InvalidationReason::Ddl);
        Ok(())
    }

    /// Programmatic bulk load (used by generators: vectors and matrices
    /// cannot be written as SQL literals). Maintains materialized views
    /// over the table and invalidates the plan cache's stats version,
    /// like SQL `INSERT`.
    pub fn insert_rows(
        &self,
        table: &str,
        rows: impl IntoIterator<Item = Row>,
    ) -> Result<usize> {
        let materialized: Vec<Row> = rows.into_iter().collect();
        let n = materialized.len();
        let handle = self.catalog.table(table)?;
        if self.catalog.matviews_on(table).is_empty() {
            handle.write().insert_all(materialized)?;
        } else {
            let delta = materialized.clone();
            handle.write().insert_all(materialized)?;
            self.maintain_matviews_on(table, &delta)?;
        }
        self.plan_cache.bump_stats(table);
        Ok(n)
    }
}

/// A statement prepared once via [`Database::prepare`]: the parse tree
/// and plan-cache shape key are stored, so executing it never re-parses
/// and SELECT shapes go straight to the plan cache.
#[derive(Debug, Clone)]
pub struct PreparedStatement {
    sql: Arc<str>,
    statement: Statement,
    norm: Option<NormalizedStatement>,
}

impl PreparedStatement {
    /// The original SQL text.
    pub fn sql(&self) -> &str {
        &self.sql
    }
}

/// True when the SELECT references any auto-materialized introspection
/// table. Their contents change between executions (each reference
/// re-snapshots live engine state from the AST), so plans over them must
/// never be served from the cache.
fn references_virtual(sel: &SelectStatement) -> bool {
    ["metrics", "queries", "sessions"]
        .iter()
        .any(|t| references_table(sel, t))
}

/// True when the SELECT references `name` in any FROM clause, including
/// nested subqueries.
fn references_table(sel: &SelectStatement, name: &str) -> bool {
    sel.from.iter().any(|r| match r {
        TableRef::Table { name: t, .. } => t.eq_ignore_ascii_case(name),
        TableRef::Subquery { query, .. } => references_table(query, name),
    })
}

/// Schema of the `metrics` relation: one row per metric, name-sorted.
/// Counters and gauges fill `value`; histograms fill the distribution
/// columns (`count`, `sum`, `p50`, `p90`, `p99`) and leave `value` NULL.
/// `value` stays at column index 2 for backward compatibility.
fn metrics_schema() -> Schema {
    Schema::from_pairs(&[
        ("name", DataType::Varchar),
        ("kind", DataType::Varchar),
        ("value", DataType::Double),
        ("count", DataType::Double),
        ("sum", DataType::Double),
        ("p50", DataType::Double),
        ("p90", DataType::Double),
        ("p99", DataType::Double),
    ])
}

/// The process-wide metrics snapshot, one row per metric (see
/// [`metrics_schema`]).
fn metric_rows() -> Vec<Row> {
    let opt = |v: Option<f64>| v.map_or(Value::Null, Value::Double);
    lardb_obs::global()
        .table_snapshot()
        .into_iter()
        .map(|s| {
            Row::new(vec![
                Value::Varchar(s.name.as_str().into()),
                Value::Varchar(s.kind.label().into()),
                opt(s.value),
                opt(s.count),
                opt(s.sum),
                opt(s.p50),
                opt(s.p90),
                opt(s.p99),
            ])
        })
        .collect()
}

/// Schema of the `sessions` relation (`SHOW SESSIONS`).
fn sessions_schema() -> Schema {
    Schema::from_pairs(&[
        ("session_id", DataType::Integer),
        ("tenant", DataType::Varchar),
        ("peer", DataType::Varchar),
        ("state", DataType::Varchar),
        ("query_id", DataType::Integer),
        ("sql", DataType::Varchar),
        ("elapsed_ms", DataType::Double),
    ])
}

/// One row per open session — idle sessions carry NULL query columns.
fn sessions_rows(sessions: &SessionRegistry) -> Vec<Row> {
    sessions
        .snapshot()
        .into_iter()
        .map(|s| {
            Row::new(vec![
                Value::Integer(s.session_id as i64),
                Value::Varchar(s.tenant.as_str().into()),
                Value::Varchar(s.peer.as_str().into()),
                Value::Varchar(s.state.into()),
                s.query_id.map_or(Value::Null, |q| Value::Integer(q as i64)),
                s.sql.map_or(Value::Null, |q| Value::Varchar(q.as_str().into())),
                Value::Double(s.elapsed_ms),
            ])
        })
        .collect()
}

/// Builds the `SHOW SESSIONS` response relation.
fn sessions_snapshot_result(sessions: &SessionRegistry) -> QueryResult {
    QueryResult {
        schema: sessions_schema(),
        rows: sessions_rows(sessions),
        stats: ExecStats::new(),
    }
}

/// Builds the `SHOW METRICS` response relation.
fn metrics_snapshot_result() -> QueryResult {
    QueryResult {
        schema: metrics_schema(),
        rows: metric_rows(),
        stats: ExecStats::new(),
    }
}

/// Schema of the `queries` relation (`SHOW QUERIES`): one row per
/// in-flight traced query, straight from the flight recorder.
fn queries_schema() -> Schema {
    Schema::from_pairs(&[
        ("query_id", DataType::Integer),
        ("trace_id", DataType::Varchar),
        ("tenant", DataType::Varchar),
        ("state", DataType::Varchar),
        ("sql", DataType::Varchar),
        ("elapsed_ms", DataType::Double),
        ("queue_wait_ms", DataType::Double),
        ("rows", DataType::Integer),
        ("reserved_bytes", DataType::Integer),
        ("spill_bytes", DataType::Integer),
    ])
}

/// One row per in-flight traced query, in trace-id order.
fn queries_rows() -> Vec<Row> {
    lardb_obs::recorder()
        .active_snapshot()
        .into_iter()
        .map(|t| {
            Row::new(vec![
                match t.query_id() {
                    0 => Value::Null,
                    q => Value::Integer(q as i64),
                },
                Value::Varchar(t.id().to_string().into()),
                Value::Varchar(t.tenant().as_str().into()),
                Value::Varchar(t.state().name().into()),
                Value::Varchar(t.sql().into()),
                Value::Double(t.elapsed_ms()),
                Value::Double(t.queue_wait_ms()),
                Value::Integer(t.rows() as i64),
                Value::Integer(t.reserved_bytes()),
                Value::Integer(t.spill_bytes() as i64),
            ])
        })
        .collect()
}

/// Builds the `SHOW QUERIES` response relation.
fn queries_snapshot_result() -> QueryResult {
    QueryResult {
        schema: queries_schema(),
        rows: queries_rows(),
        stats: ExecStats::new(),
    }
}

/// Joins the planner's per-operator estimates against the executor's
/// measured actuals, producing one [`OperatorProfile`] per operator in
/// completion order. Exchange operators report metered shuffle bytes;
/// for all other operators the "actual" bytes are derived (measured rows
/// × the cost model's row width), since nothing was shipped.
fn join_estimates(
    estimates: &HashMap<usize, PlanEstimate>,
    stats: &ExecStats,
) -> Vec<OperatorProfile> {
    stats
        .operators()
        .iter()
        .map(|op| {
            let est = estimates
                .get(&op.id)
                .copied()
                .unwrap_or(PlanEstimate::new(0.0, 0.0));
            let actual_bytes = if op.label.starts_with("Exchange") {
                op.shuffle.bytes as f64
            } else {
                op.rows_out as f64 * est.row_bytes
            };
            OperatorProfile {
                id: op.id,
                label: op.label.clone(),
                est_rows: est.rows,
                actual_rows: op.rows_out as f64,
                est_bytes: est.total_bytes(),
                actual_bytes,
                wall_ms: op.wall.as_secs_f64() * 1e3,
            }
        })
        .collect()
}

/// Renders the EXPLAIN ANALYZE estimate-vs-actual section: est/actual
/// rows and megabytes plus the per-operator q-error of each.
fn render_estimate_table(operators: &[OperatorProfile]) -> String {
    let label_w = operators.iter().map(|o| o.label.len()).max().unwrap_or(0).max(24);
    let mut out = format!(
        "== Estimate vs Actual ==\n{:<5} {:<label_w$} {:>12} {:>12} {:>8} {:>10} {:>10} {:>8}\n",
        "id", "operator", "est_rows", "act_rows", "q_rows", "est_MB", "act_MB", "q_MB",
    );
    for o in operators {
        out.push_str(&format!(
            "{:<5} {:<label_w$} {:>12.0} {:>12.0} {:>8.2} {:>10.3} {:>10.3} {:>8.2}\n",
            o.id,
            o.label,
            o.est_rows,
            o.actual_rows,
            o.q_error_rows(),
            o.est_bytes / 1e6,
            o.actual_bytes / 1e6,
            o.q_error_bytes(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lardb_la::Vector;
    use lardb_storage::DataType;

    #[test]
    fn ddl_insert_query_roundtrip() {
        let db = Database::new(2);
        db.execute("CREATE TABLE t (id INTEGER, v DOUBLE)").unwrap();
        db.execute("INSERT INTO t VALUES (1, 1.5), (2, 2.5), (3, 3.5)").unwrap();
        let r = db.query("SELECT SUM(v) AS s FROM t").unwrap();
        assert_eq!(r.scalar().unwrap().as_double(), Some(7.5));
    }

    #[test]
    fn duplicate_table_rejected() {
        let db = Database::new(2);
        db.execute("CREATE TABLE t (id INTEGER)").unwrap();
        assert!(db.execute("CREATE TABLE t (id INTEGER)").is_err());
    }

    #[test]
    fn view_and_drop() {
        let db = Database::new(2);
        db.execute("CREATE TABLE t (id INTEGER)").unwrap();
        db.execute("INSERT INTO t VALUES (1), (2)").unwrap();
        db.execute("CREATE VIEW big AS SELECT id FROM t WHERE id > 1").unwrap();
        let r = db.query("SELECT COUNT(*) AS n FROM big").unwrap();
        assert_eq!(r.scalar().unwrap().as_integer(), Some(1));
        db.execute("DROP VIEW big").unwrap();
        assert!(db.query("SELECT * FROM big").is_err());
        db.execute("DROP TABLE t").unwrap();
        assert!(db.query("SELECT * FROM t").is_err());
    }

    #[test]
    fn create_table_as() {
        let db = Database::new(2);
        db.execute("CREATE TABLE t (id INTEGER)").unwrap();
        db.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
        let resp = db.execute("CREATE TABLE doubled AS SELECT id + id AS d FROM t").unwrap();
        assert!(matches!(resp, Response::Inserted(3)));
        let r = db.query("SELECT SUM(d) AS s FROM doubled").unwrap();
        assert_eq!(r.scalar().unwrap().as_integer(), Some(12));
    }

    #[test]
    fn programmatic_vectors_and_gram() {
        let db = Database::new(4);
        db.create_table(
            "x",
            Schema::from_pairs(&[("id", DataType::Integer), ("val", DataType::Vector(None))]),
            Partitioning::RoundRobin,
        )
        .unwrap();
        let rows = vec![
            Row::new(vec![Value::Integer(0), Value::vector(Vector::from_slice(&[1.0, 0.0]))]),
            Row::new(vec![Value::Integer(1), Value::vector(Vector::from_slice(&[0.0, 2.0]))]),
        ];
        db.insert_rows("x", rows).unwrap();
        let r = db
            .query("SELECT SUM(outer_product(val, val)) AS g FROM x")
            .unwrap();
        let g = r.scalar().unwrap().as_matrix().unwrap().clone();
        assert_eq!(g.get(0, 0).unwrap(), 1.0);
        assert_eq!(g.get(1, 1).unwrap(), 4.0);
        assert_eq!(g.get(0, 1).unwrap(), 0.0);
    }

    #[test]
    fn explain_shows_plans() {
        let db = Database::new(2);
        db.execute("CREATE TABLE t (id INTEGER)").unwrap();
        let text = db.explain("SELECT id FROM t WHERE id = 1").unwrap();
        assert!(text.contains("Optimized Logical Plan"));
        assert!(text.contains("Physical Plan"));
        assert!(text.contains("TableScan"));
        // The EXPLAIN statement form works too.
        let resp = db.execute("EXPLAIN SELECT id FROM t").unwrap();
        assert!(matches!(resp, Response::Explained(_)));
    }

    #[test]
    fn usage_errors() {
        let db = Database::new(2);
        db.execute("CREATE TABLE t (id INTEGER)").unwrap();
        assert!(db.execute("CREATE TABLE t2 (id INTEGER)").unwrap().into_rows().is_err());
        assert!(db.explain("INSERT INTO t VALUES (1)").is_err());
    }

    #[test]
    fn shared_catalog_across_clones() {
        let db = Database::new(2);
        db.execute("CREATE TABLE t (id INTEGER)").unwrap();
        let session2 = db.clone();
        session2.execute("INSERT INTO t VALUES (42)").unwrap();
        let r = db.query("SELECT COUNT(*) AS n FROM t").unwrap();
        assert_eq!(r.scalar().unwrap().as_integer(), Some(1));
    }

    #[test]
    fn show_metrics_returns_counters() {
        let db = Database::new(2);
        db.execute("CREATE TABLE t (id INTEGER)").unwrap();
        db.execute("INSERT INTO t VALUES (1)").unwrap();
        db.query("SELECT id FROM t").unwrap();
        let r = db.query("SHOW METRICS").unwrap();
        assert_eq!(
            r.schema.columns().iter().map(|c| c.name.as_str()).collect::<Vec<_>>(),
            ["name", "kind", "value", "count", "sum", "p50", "p90", "p99"]
        );
        // Deterministic ordering: rows come out sorted by metric name.
        let names: Vec<String> = r.rows.iter().map(|row| row.value(0).to_string()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "SHOW METRICS must be name-sorted");
        // The registry is process-global and other tests run concurrently,
        // so assert presence and lower bounds, never exact equality.
        let queries = r
            .rows
            .iter()
            .find(|row| row.value(0).to_string().contains("db.queries"))
            .expect("db.queries metric present");
        assert!(queries.value(2).as_double().unwrap() >= 3.0);
    }

    #[test]
    fn metrics_virtual_table_is_queryable_and_refreshed() {
        let db = Database::new(2);
        db.execute("CREATE TABLE t (id INTEGER)").unwrap();
        db.execute("INSERT INTO t VALUES (1)").unwrap();
        db.query("SELECT id FROM t").unwrap();
        let r = db
            .query("SELECT name, value FROM metrics WHERE name = 'exec.plans_run'")
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        let first = r.rows[0].value(1).as_double().unwrap();
        assert!(first >= 1.0);
        // Re-querying refreshes the snapshot: the counter has moved on.
        db.query("SELECT id FROM t").unwrap();
        let r2 = db
            .query("SELECT value FROM metrics WHERE name = 'exec.plans_run'")
            .unwrap();
        assert!(r2.rows[0].value(0).as_double().unwrap() > first);
    }

    #[test]
    fn show_metrics_surfaces_histogram_percentiles() {
        let db = Database::new(2);
        db.execute("CREATE TABLE t (id INTEGER)").unwrap();
        db.execute("INSERT INTO t VALUES (1)").unwrap();
        db.query("SELECT id FROM t").unwrap();
        let r = db.query("SHOW METRICS").unwrap();
        // db.query_ms is a histogram: one row, distribution columns
        // filled, scalar value NULL.
        let h = r
            .rows
            .iter()
            .find(|row| row.value(0).to_string() == "db.query_ms")
            .expect("db.query_ms histogram present");
        assert_eq!(h.value(1).to_string(), "histogram");
        assert!(matches!(h.value(2), Value::Null), "histogram has no scalar value");
        assert!(h.value(3).as_double().unwrap() >= 1.0, "count");
        for idx in [5usize, 6, 7] {
            assert!(h.value(idx).as_double().is_some(), "percentile column {idx}");
        }
    }

    #[test]
    fn show_queries_and_queries_virtual_table() {
        let db = Database::new(2);
        db.execute("CREATE TABLE t (id INTEGER)").unwrap();
        // While a traced query runs, SHOW QUERIES (from another clone)
        // lists it with its trace id and state.
        let trace = lardb_obs::recorder().start_forced("SELECT id FROM t", "acme");
        trace.set_query_id(77);
        let r = db.query("SHOW QUERIES").unwrap();
        assert_eq!(
            r.schema.columns().iter().map(|c| c.name.as_str()).collect::<Vec<_>>(),
            [
                "query_id",
                "trace_id",
                "tenant",
                "state",
                "sql",
                "elapsed_ms",
                "queue_wait_ms",
                "rows",
                "reserved_bytes",
                "spill_bytes"
            ]
        );
        let row = r
            .rows
            .iter()
            .find(|row| row.value(1).to_string() == trace.id().to_string())
            .expect("in-flight trace listed");
        assert_eq!(row.value(0).as_integer(), Some(77));
        assert_eq!(row.value(2).to_string(), "acme");
        // The `queries` virtual table sees the same in-flight query.
        let vt = db
            .query(&format!(
                "SELECT tenant FROM queries WHERE trace_id = '{}'",
                trace.id()
            ))
            .unwrap();
        assert_eq!(vt.rows.len(), 1);
        assert_eq!(vt.rows[0].value(0).to_string(), "acme");
        lardb_obs::recorder().finish(&trace, None);
        // Finished: no longer listed.
        let r = db.query("SHOW QUERIES").unwrap();
        assert!(r
            .rows
            .iter()
            .all(|row| row.value(1).to_string() != trace.id().to_string()));
    }

    #[test]
    fn sessions_virtual_table_is_queryable() {
        let db = Database::new(2);
        let sid = db.sessions().open("acme", "local");
        let r = db
            .query("SELECT tenant, state FROM sessions WHERE tenant = 'acme'")
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0].value(1).to_string(), "idle");
        db.sessions().close(sid);
    }

    #[test]
    fn explain_trace_returns_chrome_json() {
        let db = Database::new(2);
        db.execute("CREATE TABLE t (id INTEGER, v DOUBLE)").unwrap();
        db.execute("INSERT INTO t VALUES (1, 0.5), (2, 1.5)").unwrap();
        let Response::Explained(json) =
            db.execute("EXPLAIN TRACE SELECT SUM(v) AS s FROM t").unwrap()
        else {
            panic!("expected Explained");
        };
        assert!(json.contains("\"traceEvents\""), "{json}");
        for span in ["parse", "bind", "optimize", "plan", "execute"] {
            assert!(json.contains(&format!("\"name\": \"{span}\"")), "missing {span}");
        }
        // The umbrella event carries the SQL and the row count.
        assert!(json.contains("SUM(v)"), "{json}");
    }

    #[test]
    fn embedded_statements_land_in_flight_recorder() {
        let db = Database::new(2);
        db.execute("CREATE TABLE t (id INTEGER)").unwrap();
        db.execute("INSERT INTO t VALUES (1), (2)").unwrap();
        let marker = "SELECT COUNT(*) AS embedded_recorder_probe FROM t";
        db.query(marker).unwrap();
        let done = lardb_obs::recorder()
            .completed_snapshot()
            .into_iter()
            .rev()
            .find(|t| t.sql == marker)
            .expect("embedded query traced");
        assert_eq!(done.rows, 1);
        assert!(done.has_span("execute"), "lifecycle spans recorded");
        assert!(done.error.is_none());
    }

    #[test]
    fn user_metrics_table_is_never_clobbered() {
        let db = Database::new(2);
        db.execute("CREATE TABLE metrics (id INTEGER)").unwrap();
        db.execute("INSERT INTO metrics VALUES (7)").unwrap();
        let r = db.query("SELECT id FROM metrics").unwrap();
        assert_eq!(r.scalar().unwrap().as_integer(), Some(7));
    }

    #[test]
    fn explain_analyze_prints_estimate_vs_actual() {
        let db = Database::new(2);
        db.execute("CREATE TABLE t (id INTEGER, v DOUBLE)").unwrap();
        db.execute("INSERT INTO t VALUES (1, 0.5), (2, 1.5)").unwrap();
        let Response::Explained(text) =
            db.execute("EXPLAIN ANALYZE SELECT SUM(v) AS s FROM t").unwrap()
        else {
            panic!("expected Explained");
        };
        assert!(text.contains("== Estimate vs Actual =="), "{text}");
        assert!(text.contains("est_rows"), "{text}");
        assert!(text.contains("act_rows"), "{text}");
        assert!(text.contains("q_rows"), "{text}");
        assert!(text.contains("q_MB"), "{text}");
    }

    #[test]
    fn last_profile_covers_all_lifecycle_stages() {
        let db = Database::new(2);
        db.execute("CREATE TABLE t (id INTEGER)").unwrap();
        db.execute("INSERT INTO t VALUES (1), (2)").unwrap();
        db.query("SELECT COUNT(*) AS n FROM t").unwrap();
        let p = db.last_profile().expect("profile after a query");
        for stage in ["parse", "bind", "optimize", "plan", "execute"] {
            assert!(p.stage_ms(stage).is_some(), "missing stage {stage}");
        }
        assert!(!p.operators.is_empty());
        assert!(p.operators.iter().all(|o| o.q_error_rows() >= 1.0));
        let json = p.to_json();
        assert!(json.contains("\"stage\": \"execute\""));
    }

    #[test]
    fn slow_query_log_counts_slow_statements() {
        let registry = lardb_obs::global();
        let before = registry.counter("db.slow_queries").get();
        let db = Database::new(2).with_slow_query_threshold(0.0);
        db.execute("CREATE TABLE t (id INTEGER)").unwrap();
        assert!(registry.counter("db.slow_queries").get() > before);
    }

    #[test]
    fn show_sessions_and_kill_statements() {
        let db = Database::new(2);
        // No sessions registered: empty relation with the right shape.
        let r = db.query("SHOW SESSIONS").unwrap();
        assert_eq!(
            r.schema.columns().iter().map(|c| c.name.as_str()).collect::<Vec<_>>(),
            ["session_id", "tenant", "peer", "state", "query_id", "sql", "elapsed_ms"]
        );
        assert!(r.rows.is_empty());
        // A registered session with a running query shows up and is
        // killable by query id.
        let sid = db.sessions().open("acme", "local");
        let cancel = lardb_exec::CancelToken::new();
        let qid = db.sessions().begin_query(sid, "SELECT 1", &cancel);
        let r = db.query("SHOW SESSIONS").unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0].value(1).to_string(), "acme");
        assert_eq!(r.rows[0].value(3).to_string(), "running");
        assert!(matches!(
            db.execute(&format!("KILL {qid}")).unwrap(),
            Response::Done
        ));
        assert!(cancel.is_cancelled());
        // Killing a finished (or unknown) query is a usage error.
        db.sessions().end_query(sid);
        assert!(db.execute(&format!("KILL {qid}")).is_err());
        db.sessions().close(sid);
    }

    #[test]
    fn pre_cancelled_token_aborts_before_execution() {
        let db = Database::new(2);
        db.execute("CREATE TABLE t (id INTEGER)").unwrap();
        db.execute("INSERT INTO t VALUES (1), (2)").unwrap();
        let cancel = lardb_exec::CancelToken::new();
        cancel.cancel();
        let err = db.execute_with_cancel("SELECT id FROM t", &cancel).unwrap_err();
        assert!(
            err.to_string().contains("killed") || err.to_string().contains("cancel"),
            "unexpected error: {err}"
        );
        // The same database still runs uncancelled statements fine.
        assert!(db.query("SELECT id FROM t").is_ok());
    }

    #[test]
    fn references_table_walks_subqueries() {
        let sql = "SELECT * FROM (SELECT name FROM metrics) AS m";
        let Ok(Statement::Select(sel)) = parse_statement(sql) else { panic!() };
        assert!(references_table(&sel, "metrics"));
        assert!(!references_table(&sel, "other"));
    }
}
