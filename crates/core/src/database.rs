//! The `Database` façade: the full query path in one object.

use std::sync::Arc;

use lardb_exec::{Cluster, ExecStats, Executor, TransportMode};
use lardb_planner::physical::PhysicalPlanner;
use lardb_planner::{LogicalPlan, Optimizer, OptimizerConfig};
use lardb_sql::ast::Statement;
use lardb_sql::{parse_statement, Binder};
use lardb_storage::{Catalog, Partitioning, Row, Schema, Table, Value};

use crate::error::{EngineError, Result};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct DatabaseConfig {
    /// Number of simulated shared-nothing workers (the paper used 10
    /// machines × 8 cores).
    pub workers: usize,
    /// Optimizer switches (size inference, early projection, DP budget).
    pub optimizer: OptimizerConfig,
    /// How exchange operators move batches between workers: `Pointer`
    /// (in-memory hand-off, estimated bytes), `Serialized` (wire-encoded
    /// over bounded channels, actual bytes), or `Tcp` (wire-encoded over
    /// loopback sockets).
    pub transport: TransportMode,
}

impl Default for DatabaseConfig {
    fn default() -> Self {
        DatabaseConfig {
            workers: 4,
            optimizer: OptimizerConfig::default(),
            transport: TransportMode::Pointer,
        }
    }
}

/// The outcome of a gathered query.
#[derive(Debug)]
pub struct QueryResult {
    /// Output schema.
    pub schema: Schema,
    /// All result rows.
    pub rows: Vec<Row>,
    /// Per-operator execution statistics.
    pub stats: ExecStats,
}

impl QueryResult {
    /// First row, first column — convenient for scalar results.
    pub fn scalar(&self) -> Option<&Value> {
        self.rows.first().map(|r| r.value(0))
    }

    /// Renders the result as a simple table.
    pub fn display_table(&self) -> String {
        let mut out = String::new();
        let names: Vec<String> =
            self.schema.columns().iter().map(|c| c.name.clone()).collect();
        out.push_str(&names.join(" | "));
        out.push('\n');
        for r in &self.rows {
            let vals: Vec<String> = r.values().iter().map(|v| v.to_string()).collect();
            out.push_str(&vals.join(" | "));
            out.push('\n');
        }
        out
    }
}

/// What a statement produced.
#[derive(Debug)]
pub enum Response {
    /// SELECT results.
    Rows(QueryResult),
    /// DDL completed (CREATE/DROP).
    Done,
    /// INSERT (or CREATE TABLE AS) row count.
    Inserted(usize),
    /// EXPLAIN output.
    Explained(String),
}

impl Response {
    /// Unwraps SELECT results.
    pub fn into_rows(self) -> Result<QueryResult> {
        match self {
            Response::Rows(q) => Ok(q),
            other => Err(EngineError::Usage(format!(
                "statement did not produce rows (got {other:?})"
            ))),
        }
    }
}

/// A parallel relational database with the paper's linear-algebra
/// extensions. Cloning shares the catalog (sessions over one store).
///
/// ```
/// use lardb::Database;
/// let db = Database::new(4);
/// db.execute("CREATE TABLE t (id INTEGER, v DOUBLE)").unwrap();
/// db.execute("INSERT INTO t VALUES (1, 0.5), (2, 1.5)").unwrap();
/// let r = db.query("SELECT SUM(v) AS s FROM t").unwrap();
/// assert_eq!(r.scalar().unwrap().as_double(), Some(2.0));
/// ```
#[derive(Clone)]
pub struct Database {
    catalog: Arc<Catalog>,
    config: DatabaseConfig,
}

impl Database {
    /// A database with `workers` simulated workers and default optimizer
    /// settings.
    pub fn new(workers: usize) -> Self {
        Database::with_config(DatabaseConfig {
            workers,
            ..DatabaseConfig::default()
        })
    }

    /// A database with explicit configuration.
    pub fn with_config(config: DatabaseConfig) -> Self {
        Database { catalog: Arc::new(Catalog::new()), config }
    }

    /// The shared catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.config.workers
    }

    /// Sets the exchange transport mode (builder style). `Serialized` and
    /// `Tcp` encode every boundary-crossing batch through the `lardb-net`
    /// wire codec and meter actual encoded bytes.
    pub fn with_transport(mut self, transport: TransportMode) -> Self {
        self.config.transport = transport;
        self
    }

    /// Mutates the exchange transport mode in place.
    pub fn set_transport(&mut self, transport: TransportMode) {
        self.config.transport = transport;
    }

    /// The configured exchange transport mode.
    pub fn transport(&self) -> TransportMode {
        self.config.transport
    }

    /// Mutates the optimizer configuration (ablation benchmarks flip
    /// [`OptimizerConfig::size_inference`] here).
    pub fn set_optimizer_config(&mut self, cfg: OptimizerConfig) {
        self.config.optimizer = cfg;
    }

    /// Executes one SQL statement.
    ///
    /// ```
    /// # use lardb::{Database, Response};
    /// # let db = Database::new(2);
    /// assert!(matches!(
    ///     db.execute("CREATE TABLE m (mat MATRIX[3][3], vec VECTOR[3])").unwrap(),
    ///     Response::Done
    /// ));
    /// // §3.1: a dimension mismatch is caught before execution.
    /// db.execute("CREATE TABLE bad (mat MATRIX[3][3], vec VECTOR[7])").unwrap();
    /// assert!(db.query("SELECT matrix_vector_multiply(mat, vec) AS x FROM bad").is_err());
    /// ```
    pub fn execute(&self, sql: &str) -> Result<Response> {
        match parse_statement(sql)? {
            Statement::CreateTable { name, columns } => {
                let schema = Schema::new(
                    columns
                        .into_iter()
                        .map(|(n, t)| lardb_storage::Column::new(n, t))
                        .collect(),
                );
                self.create_table(&name, schema, Partitioning::RoundRobin)?;
                Ok(Response::Done)
            }
            Statement::CreateTableAs { name, query } => {
                let plan = Binder::new(&self.catalog).bind_select(&query)?;
                let result = self.run_logical(plan, /*gather=*/ false)?;
                let mut table = Table::new(
                    &name,
                    result.schema.clone(),
                    self.config.workers,
                    Partitioning::RoundRobin,
                );
                let n = result.rows.len();
                table.insert_all(result.rows)?;
                self.catalog.create_table(table)?;
                Ok(Response::Inserted(n))
            }
            Statement::CreateView { name, columns, query, sql } => {
                // Validate now so errors surface at CREATE VIEW time.
                Binder::new(&self.catalog).bind_select(&query)?;
                if let Some(cols) = &columns {
                    let plan = Binder::new(&self.catalog).bind_select(&query)?;
                    if plan.schema().arity() != cols.len() {
                        return Err(EngineError::Usage(format!(
                            "view column list has {} names but query yields {}",
                            cols.len(),
                            plan.schema().arity()
                        )));
                    }
                }
                self.catalog.create_view(&name, sql, columns)?;
                Ok(Response::Done)
            }
            Statement::DropTable { name } => {
                self.catalog.drop_table(&name)?;
                Ok(Response::Done)
            }
            Statement::DropView { name } => {
                self.catalog.drop_view(&name)?;
                Ok(Response::Done)
            }
            Statement::Insert { table, rows } => {
                let binder = Binder::new(&self.catalog);
                let empty = Schema::default();
                let empty_row = Row::default();
                let mut materialized = Vec::with_capacity(rows.len());
                for r in rows {
                    let mut vals = Vec::with_capacity(r.len());
                    for e in &r {
                        let bound = binder.bind_expr(e, &empty)?;
                        vals.push(lardb_exec::eval::eval(&bound, &empty_row)?);
                    }
                    materialized.push(Row::new(vals));
                }
                let n = materialized.len();
                let handle = self.catalog.table(&table)?;
                handle.write().insert_all(materialized)?;
                Ok(Response::Inserted(n))
            }
            Statement::Select(sel) => {
                let plan = Binder::new(&self.catalog).bind_select(&sel)?;
                Ok(Response::Rows(self.run_logical(plan, true)?))
            }
            Statement::Explain { query, analyze } => {
                let plan = Binder::new(&self.catalog).bind_select(&query)?;
                let mut text = self.explain_logical(plan.clone())?;
                if analyze {
                    let result = self.run_logical(plan, true)?;
                    if !text.ends_with('\n') {
                        text.push('\n');
                    }
                    text.push_str(&format!(
                        "== Execution Statistics ==\n{}\
                         total: {} rows shuffled, {} bytes shuffled, \
                         {} frames, blocked {:.3} ms\n",
                        result.stats.display_table(),
                        result.stats.total_rows_shuffled(),
                        result.stats.total_bytes_shuffled(),
                        result.stats.total_frames(),
                        result.stats.total_enqueue_block().as_secs_f64() * 1e3,
                    ));
                }
                Ok(Response::Explained(text))
            }
        }
    }

    /// Executes a SELECT and returns its rows.
    pub fn query(&self, sql: &str) -> Result<QueryResult> {
        self.execute(sql)?.into_rows()
    }

    /// EXPLAIN: optimized logical plan plus the physical plan with
    /// exchanges.
    pub fn explain(&self, sql: &str) -> Result<String> {
        match parse_statement(sql)? {
            Statement::Select(sel) | Statement::Explain { query: sel, .. } => {
                let plan = Binder::new(&self.catalog).bind_select(&sel)?;
                self.explain_logical(plan)
            }
            _ => Err(EngineError::Usage("EXPLAIN expects a SELECT".into())),
        }
    }

    fn explain_logical(&self, plan: LogicalPlan) -> Result<String> {
        let optimizer =
            Optimizer::new(self.catalog.as_ref(), self.config.optimizer.clone());
        let optimized = optimizer.optimize(plan)?;
        let mut pp = PhysicalPlanner::new(&self.catalog, self.catalog.as_ref());
        let physical = pp.plan_gathered(&optimized)?;
        Ok(format!(
            "== Optimized Logical Plan ==\n{}\n== Physical Plan ==\n{}",
            optimized.display_tree(),
            physical.display_tree()
        ))
    }

    /// Runs a bound logical plan end-to-end (optimize → physical plan →
    /// parallel execute). Exposed for tests and the benchmark harness.
    pub fn run_logical(&self, plan: LogicalPlan, gather: bool) -> Result<QueryResult> {
        let optimizer =
            Optimizer::new(self.catalog.as_ref(), self.config.optimizer.clone());
        let optimized = optimizer.optimize(plan)?;
        let mut pp = PhysicalPlanner::new(&self.catalog, self.catalog.as_ref());
        let physical = if gather {
            pp.plan_gathered(&optimized)?
        } else {
            pp.plan(&optimized)?
        };
        let executor = Executor::new(&self.catalog, Cluster::new(self.config.workers))
            .with_transport(self.config.transport);
        let result = executor.execute(&physical)?;
        Ok(QueryResult {
            schema: result.schema.clone(),
            rows: result.rows(),
            stats: result.stats,
        })
    }

    /// Programmatic table creation with an explicit partitioning scheme
    /// (SQL `CREATE TABLE` defaults to round-robin; benchmark loaders use
    /// hash/replicated placement like the paper's §5 setups).
    pub fn create_table(
        &self,
        name: &str,
        schema: Schema,
        partitioning: Partitioning,
    ) -> Result<()> {
        let table = Table::new(name, schema, self.config.workers, partitioning);
        self.catalog.create_table(table)?;
        Ok(())
    }

    /// Programmatic bulk load (used by generators: vectors and matrices
    /// cannot be written as SQL literals).
    pub fn insert_rows(
        &self,
        table: &str,
        rows: impl IntoIterator<Item = Row>,
    ) -> Result<usize> {
        let handle = self.catalog.table(table)?;
        let mut guard = handle.write();
        let mut n = 0;
        for r in rows {
            guard.insert(r)?;
            n += 1;
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lardb_la::Vector;
    use lardb_storage::DataType;

    #[test]
    fn ddl_insert_query_roundtrip() {
        let db = Database::new(2);
        db.execute("CREATE TABLE t (id INTEGER, v DOUBLE)").unwrap();
        db.execute("INSERT INTO t VALUES (1, 1.5), (2, 2.5), (3, 3.5)").unwrap();
        let r = db.query("SELECT SUM(v) AS s FROM t").unwrap();
        assert_eq!(r.scalar().unwrap().as_double(), Some(7.5));
    }

    #[test]
    fn duplicate_table_rejected() {
        let db = Database::new(2);
        db.execute("CREATE TABLE t (id INTEGER)").unwrap();
        assert!(db.execute("CREATE TABLE t (id INTEGER)").is_err());
    }

    #[test]
    fn view_and_drop() {
        let db = Database::new(2);
        db.execute("CREATE TABLE t (id INTEGER)").unwrap();
        db.execute("INSERT INTO t VALUES (1), (2)").unwrap();
        db.execute("CREATE VIEW big AS SELECT id FROM t WHERE id > 1").unwrap();
        let r = db.query("SELECT COUNT(*) AS n FROM big").unwrap();
        assert_eq!(r.scalar().unwrap().as_integer(), Some(1));
        db.execute("DROP VIEW big").unwrap();
        assert!(db.query("SELECT * FROM big").is_err());
        db.execute("DROP TABLE t").unwrap();
        assert!(db.query("SELECT * FROM t").is_err());
    }

    #[test]
    fn create_table_as() {
        let db = Database::new(2);
        db.execute("CREATE TABLE t (id INTEGER)").unwrap();
        db.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
        let resp = db.execute("CREATE TABLE doubled AS SELECT id + id AS d FROM t").unwrap();
        assert!(matches!(resp, Response::Inserted(3)));
        let r = db.query("SELECT SUM(d) AS s FROM doubled").unwrap();
        assert_eq!(r.scalar().unwrap().as_integer(), Some(12));
    }

    #[test]
    fn programmatic_vectors_and_gram() {
        let db = Database::new(4);
        db.create_table(
            "x",
            Schema::from_pairs(&[("id", DataType::Integer), ("val", DataType::Vector(None))]),
            Partitioning::RoundRobin,
        )
        .unwrap();
        let rows = vec![
            Row::new(vec![Value::Integer(0), Value::vector(Vector::from_slice(&[1.0, 0.0]))]),
            Row::new(vec![Value::Integer(1), Value::vector(Vector::from_slice(&[0.0, 2.0]))]),
        ];
        db.insert_rows("x", rows).unwrap();
        let r = db
            .query("SELECT SUM(outer_product(val, val)) AS g FROM x")
            .unwrap();
        let g = r.scalar().unwrap().as_matrix().unwrap().clone();
        assert_eq!(g.get(0, 0).unwrap(), 1.0);
        assert_eq!(g.get(1, 1).unwrap(), 4.0);
        assert_eq!(g.get(0, 1).unwrap(), 0.0);
    }

    #[test]
    fn explain_shows_plans() {
        let db = Database::new(2);
        db.execute("CREATE TABLE t (id INTEGER)").unwrap();
        let text = db.explain("SELECT id FROM t WHERE id = 1").unwrap();
        assert!(text.contains("Optimized Logical Plan"));
        assert!(text.contains("Physical Plan"));
        assert!(text.contains("TableScan"));
        // The EXPLAIN statement form works too.
        let resp = db.execute("EXPLAIN SELECT id FROM t").unwrap();
        assert!(matches!(resp, Response::Explained(_)));
    }

    #[test]
    fn usage_errors() {
        let db = Database::new(2);
        db.execute("CREATE TABLE t (id INTEGER)").unwrap();
        assert!(db.execute("CREATE TABLE t2 (id INTEGER)").unwrap().into_rows().is_err());
        assert!(db.explain("INSERT INTO t VALUES (1)").is_err());
    }

    #[test]
    fn shared_catalog_across_clones() {
        let db = Database::new(2);
        db.execute("CREATE TABLE t (id INTEGER)").unwrap();
        let session2 = db.clone();
        session2.execute("INSERT INTO t VALUES (42)").unwrap();
        let r = db.query("SELECT COUNT(*) AS n FROM t").unwrap();
        assert_eq!(r.scalar().unwrap().as_integer(), Some(1));
    }
}
