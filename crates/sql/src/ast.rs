//! Abstract syntax for the extended SQL dialect.

use lardb_storage::DataType;

/// A binary operator at the AST level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `=`
    Eq,
    /// `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `AND`
    And,
    /// `OR`
    Or,
}

/// An expression as parsed.
#[derive(Debug, Clone, PartialEq)]
pub enum AstExpr {
    /// `name` or `qualifier.name`.
    Column {
        /// Table alias, when written.
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<AstExpr>,
        /// Right operand.
        rhs: Box<AstExpr>,
    },
    /// Unary minus.
    Neg(Box<AstExpr>),
    /// `NOT`.
    Not(Box<AstExpr>),
    /// Function or aggregate call; `star` marks `COUNT(*)`.
    Call {
        /// Function name as written.
        name: String,
        /// Arguments.
        args: Vec<AstExpr>,
        /// True for `f(*)`.
        star: bool,
    },
}

/// One SELECT-list item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `expr [AS alias]`
    Expr {
        /// The expression.
        expr: AstExpr,
        /// Optional alias.
        alias: Option<String>,
    },
}

/// One FROM-clause relation.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// `name [AS alias]` — a table or a view.
    Table {
        /// Catalog name.
        name: String,
        /// Optional alias (defaults to the name).
        alias: Option<String>,
    },
    /// `(SELECT …) AS alias`.
    Subquery {
        /// The nested query.
        query: Box<SelectStatement>,
        /// Mandatory alias.
        alias: String,
    },
}

impl TableRef {
    /// The name this relation is referred to by.
    pub fn binding_name(&self) -> &str {
        match self {
            TableRef::Table { name, alias } => alias.as_deref().unwrap_or(name),
            TableRef::Subquery { alias, .. } => alias,
        }
    }
}

/// A SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStatement {
    /// DISTINCT flag.
    pub distinct: bool,
    /// SELECT list.
    pub items: Vec<SelectItem>,
    /// FROM list (comma-joined, as in all the paper's examples).
    pub from: Vec<TableRef>,
    /// WHERE predicate.
    pub where_clause: Option<AstExpr>,
    /// GROUP BY expressions.
    pub group_by: Vec<AstExpr>,
    /// HAVING predicate (over group keys and aggregates).
    pub having: Option<AstExpr>,
    /// ORDER BY keys with ascending flags.
    pub order_by: Vec<(AstExpr, bool)>,
    /// LIMIT.
    pub limit: Option<usize>,
}

/// A top-level statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE name (col TYPE, …)`.
    CreateTable {
        /// Table name.
        name: String,
        /// Column declarations.
        columns: Vec<(String, DataType)>,
    },
    /// `CREATE TABLE name AS SELECT …` (used by multi-stage workloads).
    CreateTableAs {
        /// Table name.
        name: String,
        /// Source query.
        query: SelectStatement,
    },
    /// `CREATE VIEW name [(cols)] AS SELECT …`.
    CreateView {
        /// View name.
        name: String,
        /// Optional column renames.
        columns: Option<Vec<String>>,
        /// The view body.
        query: SelectStatement,
        /// Original SQL of the body (stored in the catalog).
        sql: String,
    },
    /// `CREATE MATERIALIZED VIEW name AS SELECT …` — the query result is
    /// stored as a table and maintained incrementally on base-table
    /// INSERTs (recompute fallback for non-incrementalizable plans).
    CreateMaterializedView {
        /// View name (also the backing table's name).
        name: String,
        /// The view body.
        query: SelectStatement,
        /// Original SQL of the body (stored in the catalog; refreshes
        /// re-plan from it).
        sql: String,
    },
    /// `DROP MATERIALIZED VIEW name`.
    DropMaterializedView {
        /// View name.
        name: String,
    },
    /// `REFRESH MATERIALIZED VIEW name` — forces a full recompute from
    /// the stored definition (the baseline incremental maintenance is
    /// checked against).
    RefreshMaterializedView {
        /// View name.
        name: String,
    },
    /// `DROP TABLE name`.
    DropTable {
        /// Table name.
        name: String,
    },
    /// `DROP VIEW name`.
    DropView {
        /// View name.
        name: String,
    },
    /// `INSERT INTO name VALUES (…), (…)`.
    Insert {
        /// Target table.
        table: String,
        /// Literal rows.
        rows: Vec<Vec<AstExpr>>,
    },
    /// A query.
    Select(SelectStatement),
    /// `EXPLAIN [ANALYZE|TRACE] SELECT …`. With `analyze` the query is
    /// also executed and per-operator runtime statistics are reported;
    /// with `trace` it is executed under a forced flight-recorder trace
    /// and the Chrome trace-event JSON is returned.
    Explain {
        /// The query to explain.
        query: SelectStatement,
        /// Whether to execute the plan and report observed statistics.
        analyze: bool,
        /// Whether to execute the plan and return its Chrome trace JSON.
        trace: bool,
    },
    /// `SHOW METRICS` — snapshot the process-wide metrics registry as a
    /// relation of `(name, kind, value)`.
    ShowMetrics,
    /// `SHOW SESSIONS` — snapshot the open server sessions (and their
    /// running queries) as a relation.
    ShowSessions,
    /// `SHOW QUERIES` — snapshot the flight recorder's in-flight queries
    /// (query id, trace id, tenant, state, elapsed, queue wait, rows,
    /// reserved and spilled bytes) as a relation.
    ShowQueries,
    /// `KILL <query-id>` — flip the cancel token of a running query, as
    /// listed by `SHOW SESSIONS`.
    Kill {
        /// The target query id.
        query_id: u64,
    },
}
