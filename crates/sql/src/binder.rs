//! Name resolution, view expansion, aggregate analysis and logical-plan
//! construction.
//!
//! Binding is where the paper's compile-time guarantees live: every
//! expression is type-checked as the plan is built, so a dimension mismatch
//! in `matrix_vector_multiply` (§3.1) or a `b` parameter bound to two
//! different sizes (§4.2) is reported before anything executes.

use lardb_planner::{AggExpr, AggFunc, Builtin, Expr, LogicalPlan};
use lardb_storage::ops::ArithOp;
use lardb_storage::{Catalog, Schema, Value};

use crate::ast::{AstExpr, BinOp, SelectItem, SelectStatement, TableRef};
use crate::parser::parse_statement;
use crate::{Result, SqlError};
use lardb_planner::CmpOp;

/// Maximum view-expansion depth (cycle guard).
const MAX_VIEW_DEPTH: usize = 32;

/// Binds parsed statements against a catalog.
pub struct Binder<'a> {
    catalog: &'a Catalog,
}

impl<'a> Binder<'a> {
    /// Creates a binder.
    pub fn new(catalog: &'a Catalog) -> Self {
        Binder { catalog }
    }

    /// Binds a SELECT statement to a logical plan.
    pub fn bind_select(&self, sel: &SelectStatement) -> Result<LogicalPlan> {
        self.bind_select_depth(sel, 0)
    }

    fn bind_select_depth(&self, sel: &SelectStatement, depth: usize) -> Result<LogicalPlan> {
        if depth > MAX_VIEW_DEPTH {
            return Err(SqlError::Bind("view expansion too deep (cycle?)".into()));
        }
        if sel.from.is_empty() {
            return Err(SqlError::Bind("queries need a FROM clause".into()));
        }

        // Bind FROM items.
        let mut inputs = Vec::with_capacity(sel.from.len());
        for tref in &sel.from {
            inputs.push(self.bind_table_ref(tref, depth)?);
        }
        let mut global = Schema::default();
        for i in &inputs {
            global = global.concat(&i.schema());
        }

        // WHERE.
        let where_expr = match &sel.where_clause {
            Some(w) => Some(self.bind_expr(w, &global)?),
            None => None,
        };

        // Aggregate analysis (HAVING implies aggregation).
        let has_aggs = !sel.group_by.is_empty()
            || sel.having.is_some()
            || sel.items.iter().any(|i| match i {
                SelectItem::Expr { expr, .. } => contains_aggregate(expr),
                SelectItem::Wildcard => false,
            });

        let plan = if has_aggs {
            self.bind_aggregate_query(sel, inputs, where_expr, &global)?
        } else {
            self.bind_plain_query(sel, inputs, where_expr, &global)?
        };

        // DISTINCT: deduplicate by grouping on every output column.
        let plan = if sel.distinct {
            let schema = plan.schema();
            let keys: Vec<(Expr, String)> = schema
                .columns()
                .iter()
                .enumerate()
                .map(|(i, c)| (Expr::col(i), c.name.clone()))
                .collect();
            LogicalPlan::aggregate(plan, keys, vec![])?
        } else {
            plan
        };

        // ORDER BY / LIMIT over the projected output.
        let plan = if sel.order_by.is_empty() {
            plan
        } else {
            let out_schema = plan.schema();
            let mut keys = Vec::new();
            for (e, asc) in &sel.order_by {
                let bound = match e {
                    // Positional: ORDER BY 1.
                    AstExpr::Int(n) if *n >= 1 && (*n as usize) <= out_schema.arity() => {
                        Expr::col(*n as usize - 1)
                    }
                    other => self.bind_expr(other, &out_schema)?,
                };
                keys.push((bound, *asc));
            }
            LogicalPlan::Sort { input: Box::new(plan), keys }
        };
        let plan = match sel.limit {
            Some(n) => LogicalPlan::Limit { input: Box::new(plan), n },
            None => plan,
        };
        Ok(plan)
    }

    /// Combines FROM inputs and the WHERE clause into one relational input.
    fn combine_inputs(
        &self,
        inputs: Vec<LogicalPlan>,
        where_expr: Option<Expr>,
    ) -> LogicalPlan {
        if inputs.len() == 1 {
            let input = inputs.into_iter().next().expect("one input");
            match where_expr {
                Some(p) => LogicalPlan::Filter { input: Box::new(input), predicate: p },
                None => input,
            }
        } else {
            let mut predicates = Vec::new();
            if let Some(w) = where_expr {
                w.split_conjunction(&mut predicates);
            }
            LogicalPlan::MultiJoin { inputs, predicates }
        }
    }

    fn bind_plain_query(
        &self,
        sel: &SelectStatement,
        inputs: Vec<LogicalPlan>,
        where_expr: Option<Expr>,
        global: &Schema,
    ) -> Result<LogicalPlan> {
        let input = self.combine_inputs(inputs, where_expr);
        let mut exprs: Vec<(Expr, String)> = Vec::new();
        for (i, item) in sel.items.iter().enumerate() {
            match item {
                SelectItem::Wildcard => {
                    for (j, c) in global.columns().iter().enumerate() {
                        exprs.push((Expr::col(j), c.name.clone()));
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    let bound = self.bind_expr(expr, global)?;
                    let name = output_name(expr, alias.as_deref(), global, &bound, i);
                    exprs.push((bound, name));
                }
            }
        }
        Ok(LogicalPlan::project(input, exprs)?)
    }

    fn bind_aggregate_query(
        &self,
        sel: &SelectStatement,
        inputs: Vec<LogicalPlan>,
        where_expr: Option<Expr>,
        global: &Schema,
    ) -> Result<LogicalPlan> {
        let input = self.combine_inputs(inputs, where_expr);

        // Bind GROUP BY expressions in the global space.
        let mut group_exprs: Vec<Expr> = Vec::new();
        for g in &sel.group_by {
            group_exprs.push(self.bind_expr(g, global)?);
        }

        // Collect aggregates and rewrite each select item over the
        // aggregate's output: [group cols..., agg results...].
        let mut aggs: Vec<AggExpr> = Vec::new();
        let mut post_items: Vec<(Expr, String)> = Vec::new();
        for (i, item) in sel.items.iter().enumerate() {
            let SelectItem::Expr { expr, alias } = item else {
                return Err(SqlError::Bind(
                    "SELECT * cannot be combined with aggregation".into(),
                ));
            };
            let post =
                self.rewrite_agg_item(expr, global, &group_exprs, &mut aggs)?;
            let name = match alias {
                Some(a) => a.clone(),
                None => default_agg_name(expr, i),
            };
            post_items.push((post, name));
        }

        let group_named: Vec<(Expr, String)> = group_exprs
            .iter()
            .enumerate()
            .map(|(i, e)| {
                // Preserve the source column's name where possible so
                // qualified references in ORDER BY still resolve.
                let name = match e {
                    Expr::Column(c) => global.column(*c).name.clone(),
                    _ => format!("__g{i}"),
                };
                (e.clone(), name)
            })
            .collect();

        // HAVING: a predicate over group keys and aggregates; it may
        // introduce aggregates not in the SELECT list (standard SQL), which
        // simply extend the aggregate node.
        let having_pred = match &sel.having {
            Some(h) => Some(self.rewrite_agg_item(h, global, &group_exprs, &mut aggs)?),
            None => None,
        };

        let mut agg_plan = LogicalPlan::aggregate(input, group_named, aggs)?;
        if let Some(pred) = having_pred {
            agg_plan = LogicalPlan::Filter { input: Box::new(agg_plan), predicate: pred };
        }
        Ok(LogicalPlan::project(agg_plan, post_items)?)
    }

    /// Rewrites a select item of an aggregate query into an expression over
    /// the aggregate output. Group expressions map to their key columns;
    /// aggregate calls are registered and map to their result columns;
    /// anything else must be built from those plus literals.
    fn rewrite_agg_item(
        &self,
        ast: &AstExpr,
        global: &Schema,
        group_exprs: &[Expr],
        aggs: &mut Vec<AggExpr>,
    ) -> Result<Expr> {
        // A select item that is exactly a group expression.
        if let Ok(bound) = self.bind_expr(ast, global) {
            if let Some(i) = group_exprs.iter().position(|g| *g == bound) {
                return Ok(Expr::col(i));
            }
        }
        match ast {
            AstExpr::Call { name, args, star } => {
                if let Some(func) = AggFunc::from_name(name) {
                    let arg = if *star {
                        if func != AggFunc::Count {
                            return Err(SqlError::Bind(format!(
                                "{}(*) is not valid; only COUNT(*)",
                                func.name()
                            )));
                        }
                        None
                    } else if func == AggFunc::MatrixFromEntries {
                        // SQL surface is MATRIX_FROM_ENTRIES(row, col, val);
                        // the three arguments are packed into one
                        // sparse_entry carrier so the aggregate machinery
                        // stays single-argument.
                        if args.len() != 3 {
                            return Err(SqlError::Bind(format!(
                                "{} takes exactly three arguments (row, col, val)",
                                func.name()
                            )));
                        }
                        if args.iter().any(contains_aggregate) {
                            return Err(SqlError::Bind(
                                "nested aggregate calls are not allowed".into(),
                            ));
                        }
                        let packed = args
                            .iter()
                            .map(|a| self.bind_expr(a, global))
                            .collect::<Result<Vec<_>>>()?;
                        Some(Expr::Call { func: Builtin::SparseEntry, args: packed })
                    } else {
                        if args.len() != 1 {
                            return Err(SqlError::Bind(format!(
                                "{} takes exactly one argument",
                                func.name()
                            )));
                        }
                        if contains_aggregate(&args[0]) {
                            return Err(SqlError::Bind(
                                "nested aggregate calls are not allowed".into(),
                            ));
                        }
                        Some(self.bind_expr(&args[0], global)?)
                    };
                    // Re-use an identical aggregate if already registered.
                    if let Some(k) =
                        aggs.iter().position(|a| a.func == func && a.arg == arg)
                    {
                        return Ok(Expr::col(group_exprs.len() + k));
                    }
                    let k = aggs.len();
                    aggs.push(AggExpr {
                        func,
                        arg,
                        name: format!("__agg{k}"),
                    });
                    return Ok(Expr::col(group_exprs.len() + k));
                }
                // Scalar function over rewritten children.
                let func = Builtin::from_name(name).ok_or_else(|| {
                    SqlError::Bind(format!("unknown function '{name}'"))
                })?;
                let args = args
                    .iter()
                    .map(|a| self.rewrite_agg_item(a, global, group_exprs, aggs))
                    .collect::<Result<Vec<_>>>()?;
                Ok(Expr::Call { func, args })
            }
            AstExpr::Int(v) => Ok(Expr::lit(*v)),
            AstExpr::Float(v) => Ok(Expr::lit(*v)),
            AstExpr::Str(s) => Ok(Expr::Literal(Value::varchar(s.as_str()))),
            AstExpr::Neg(e) => Ok(Expr::Negate(Box::new(
                self.rewrite_agg_item(e, global, group_exprs, aggs)?,
            ))),
            AstExpr::Not(e) => Ok(Expr::Not(Box::new(
                self.rewrite_agg_item(e, global, group_exprs, aggs)?,
            ))),
            AstExpr::Binary { op, lhs, rhs } => {
                let l = self.rewrite_agg_item(lhs, global, group_exprs, aggs)?;
                let r = self.rewrite_agg_item(rhs, global, group_exprs, aggs)?;
                Ok(combine_binary(*op, l, r))
            }
            AstExpr::Column { qualifier, name } => Err(SqlError::Bind(format!(
                "column {}{} must appear in GROUP BY or inside an aggregate",
                qualifier.as_deref().map(|q| format!("{q}.")).unwrap_or_default(),
                name
            ))),
        }
    }

    fn bind_table_ref(&self, tref: &TableRef, depth: usize) -> Result<LogicalPlan> {
        match tref {
            TableRef::Table { name, alias } => {
                let binding = alias.as_deref().unwrap_or(name);
                if let Some(view) = self.catalog.view(name) {
                    let stmt = parse_statement(&view.sql)?;
                    let crate::ast::Statement::Select(inner) = stmt else {
                        return Err(SqlError::Bind(format!(
                            "view {name} does not contain a SELECT"
                        )));
                    };
                    let plan = self.bind_select_depth(&inner, depth + 1)?;
                    return requalify(plan, binding, view.column_names.as_deref());
                }
                let schema = self.catalog.table_schema(name)?;
                Ok(LogicalPlan::Scan {
                    table: name.clone(),
                    schema: schema.with_qualifier(binding),
                })
            }
            TableRef::Subquery { query, alias } => {
                let plan = self.bind_select_depth(query, depth + 1)?;
                requalify(plan, alias, None)
            }
        }
    }

    /// Binds a scalar expression against a schema. Aggregate calls are
    /// rejected here — they are only legal in the SELECT list and HAVING,
    /// which the aggregate-query rewriting handles separately.
    pub fn bind_expr(&self, ast: &AstExpr, schema: &Schema) -> Result<Expr> {
        match ast {
            AstExpr::Column { qualifier, name } => {
                let idx = schema.resolve(qualifier.as_deref(), name)?;
                Ok(Expr::col(idx))
            }
            AstExpr::Int(v) => Ok(Expr::lit(*v)),
            AstExpr::Float(v) => Ok(Expr::lit(*v)),
            AstExpr::Str(s) => Ok(Expr::Literal(Value::varchar(s.as_str()))),
            AstExpr::Neg(e) => Ok(Expr::Negate(Box::new(self.bind_expr(e, schema)?))),
            AstExpr::Not(e) => Ok(Expr::Not(Box::new(self.bind_expr(e, schema)?))),
            AstExpr::Binary { op, lhs, rhs } => {
                let l = self.bind_expr(lhs, schema)?;
                let r = self.bind_expr(rhs, schema)?;
                Ok(combine_binary(*op, l, r))
            }
            AstExpr::Call { name, args, star } => {
                if AggFunc::from_name(name).is_some() {
                    return Err(SqlError::Bind(format!(
                        "aggregate {name} is not allowed in this context"
                    )));
                }
                if *star {
                    return Err(SqlError::Bind(format!("{name}(*) is not valid")));
                }
                let func = Builtin::from_name(name).ok_or_else(|| {
                    SqlError::Bind(format!("unknown function '{name}'"))
                })?;
                let args = args
                    .iter()
                    .map(|a| self.bind_expr(a, schema))
                    .collect::<Result<Vec<_>>>()?;
                Ok(Expr::Call { func, args })
            }
        }
    }
}

/// Maps an AST binary operator onto the expression IR.
fn combine_binary(op: BinOp, l: Expr, r: Expr) -> Expr {
    match op {
        BinOp::Add => Expr::arith(ArithOp::Add, l, r),
        BinOp::Sub => Expr::arith(ArithOp::Sub, l, r),
        BinOp::Mul => Expr::arith(ArithOp::Mul, l, r),
        BinOp::Div => Expr::arith(ArithOp::Div, l, r),
        BinOp::Eq => Expr::cmp(CmpOp::Eq, l, r),
        BinOp::NotEq => Expr::cmp(CmpOp::NotEq, l, r),
        BinOp::Lt => Expr::cmp(CmpOp::Lt, l, r),
        BinOp::LtEq => Expr::cmp(CmpOp::LtEq, l, r),
        BinOp::Gt => Expr::cmp(CmpOp::Gt, l, r),
        BinOp::GtEq => Expr::cmp(CmpOp::GtEq, l, r),
        BinOp::And => Expr::And(Box::new(l), Box::new(r)),
        BinOp::Or => Expr::Or(Box::new(l), Box::new(r)),
    }
}

/// True when the AST contains an aggregate call.
fn contains_aggregate(e: &AstExpr) -> bool {
    match e {
        AstExpr::Call { name, args, .. } => {
            AggFunc::from_name(name).is_some() || args.iter().any(contains_aggregate)
        }
        AstExpr::Binary { lhs, rhs, .. } => {
            contains_aggregate(lhs) || contains_aggregate(rhs)
        }
        AstExpr::Neg(e) | AstExpr::Not(e) => contains_aggregate(e),
        _ => false,
    }
}

/// Output column name for a select item.
fn output_name(
    ast: &AstExpr,
    alias: Option<&str>,
    schema: &Schema,
    bound: &Expr,
    index: usize,
) -> String {
    if let Some(a) = alias {
        return a.to_string();
    }
    match (ast, bound) {
        (_, Expr::Column(i)) => schema.column(*i).name.clone(),
        (AstExpr::Call { name, .. }, _) => name.to_ascii_lowercase(),
        _ => format!("col{index}"),
    }
}

/// Default name for an aggregate-query select item.
fn default_agg_name(ast: &AstExpr, index: usize) -> String {
    match ast {
        AstExpr::Call { name, .. } => name.to_ascii_lowercase(),
        AstExpr::Column { name, .. } => name.clone(),
        _ => format!("col{index}"),
    }
}

/// Wraps a plan so its columns carry the alias `binding` (and optionally
/// new names) — how views and subqueries expose their output.
fn requalify(
    plan: LogicalPlan,
    binding: &str,
    new_names: Option<&[String]>,
) -> Result<LogicalPlan> {
    let schema = plan.schema();
    if let Some(names) = new_names {
        if names.len() != schema.arity() {
            return Err(SqlError::Bind(format!(
                "view column list has {} names but query produces {} columns",
                names.len(),
                schema.arity()
            )));
        }
    }
    let exprs: Vec<(Expr, String)> = schema
        .columns()
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let name = match new_names {
                Some(names) => names[i].clone(),
                None => c.name.clone(),
            };
            (Expr::col(i), name)
        })
        .collect();
    let projected = LogicalPlan::project(plan, exprs)?;
    // Re-qualify every output column with the binding name.
    match projected {
        LogicalPlan::Project { input, exprs, schema } => Ok(LogicalPlan::Project {
            input,
            exprs,
            schema: strip_and_qualify(schema, binding),
        }),
        other => Ok(other),
    }
}

fn strip_and_qualify(schema: Schema, binding: &str) -> Schema {
    Schema::new(
        schema
            .columns()
            .iter()
            .map(|c| lardb_storage::Column::qualified(binding, c.name.clone(), c.dtype))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lardb_storage::{DataType, Partitioning, Table};

    fn catalog() -> Catalog {
        let c = Catalog::new();
        c.create_table(Table::new(
            "data",
            Schema::from_pairs(&[
                ("pointID", DataType::Integer),
                ("val", DataType::Vector(Some(10))),
            ]),
            2,
            Partitioning::RoundRobin,
        ))
        .unwrap();
        c.create_table(Table::new(
            "matrixA",
            Schema::from_pairs(&[("val", DataType::Matrix(Some(10), Some(10)))]),
            2,
            Partitioning::RoundRobin,
        ))
        .unwrap();
        c.create_table(Table::new(
            "m",
            Schema::from_pairs(&[
                ("mat", DataType::Matrix(Some(10), Some(10))),
                ("vec", DataType::Vector(Some(100))),
            ]),
            2,
            Partitioning::RoundRobin,
        ))
        .unwrap();
        c
    }

    fn bind(c: &Catalog, sql: &str) -> Result<LogicalPlan> {
        let stmt = parse_statement(sql)?;
        let crate::ast::Statement::Select(sel) = stmt else { panic!("not a select") };
        Binder::new(c).bind_select(&sel)
    }

    #[test]
    fn bind_simple_projection() {
        let c = catalog();
        let plan = bind(&c, "SELECT pointID FROM data").unwrap();
        assert_eq!(plan.schema().arity(), 1);
        assert_eq!(plan.schema().column(0).dtype, DataType::Integer);
    }

    #[test]
    fn bind_wildcard() {
        let c = catalog();
        let plan = bind(&c, "SELECT * FROM data").unwrap();
        assert_eq!(plan.schema().arity(), 2);
    }

    #[test]
    fn paper_size_mismatch_is_compile_error() {
        // §3.1: matrix_vector_multiply(m.mat, m.vec) with MATRIX[10][10]
        // and VECTOR[100] "will not compile".
        let c = catalog();
        let err = bind(&c, "SELECT matrix_vector_multiply(m.mat, m.vec) AS res FROM m");
        assert!(matches!(err, Err(SqlError::Plan(_))), "{err:?}");
    }

    #[test]
    fn paper_riemannian_query_binds() {
        // §2.3's extended-SQL distance query.
        let c = catalog();
        let plan = bind(
            &c,
            "SELECT x2.pointID,
                    inner_product(
                        matrix_vector_multiply(a.val, x1.val - x2.val),
                        x1.val - x2.val) AS value
             FROM data AS x1, data AS x2, matrixA AS a
             WHERE x1.pointID = 1",
        )
        .unwrap();
        let schema = plan.schema();
        assert_eq!(schema.arity(), 2);
        assert_eq!(schema.column(1).dtype, DataType::Double);
    }

    #[test]
    fn bind_gram_aggregate() {
        let c = catalog();
        let plan = bind(
            &c,
            "SELECT SUM(outer_product(x.val, x.val)) AS g FROM data AS x",
        )
        .unwrap();
        assert_eq!(plan.schema().column(0).dtype, DataType::Matrix(Some(10), Some(10)));
    }

    #[test]
    fn group_by_with_key_in_select() {
        let c = catalog();
        let plan = bind(
            &c,
            "SELECT pointID, COUNT(*) AS n, MIN(inner_product(val, val)) AS d
             FROM data GROUP BY pointID",
        )
        .unwrap();
        let s = plan.schema();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.column(0).dtype, DataType::Integer);
        assert_eq!(s.column(1).dtype, DataType::Integer);
        assert_eq!(s.column(2).dtype, DataType::Double);
    }

    #[test]
    fn non_grouped_column_rejected() {
        let c = catalog();
        let err = bind(&c, "SELECT pointID, COUNT(*) AS n FROM data");
        assert!(matches!(err, Err(SqlError::Bind(_))), "{err:?}");
    }

    #[test]
    fn aggregate_in_where_rejected() {
        let c = catalog();
        let err = bind(&c, "SELECT pointID FROM data WHERE SUM(pointID) > 1");
        assert!(matches!(err, Err(SqlError::Bind(_))));
    }

    #[test]
    fn unknown_names_rejected() {
        let c = catalog();
        assert!(bind(&c, "SELECT nope FROM data").is_err());
        assert!(bind(&c, "SELECT pointID FROM nope").is_err());
        assert!(bind(&c, "SELECT shazam(pointID) FROM data").is_err());
    }

    #[test]
    fn ambiguous_self_join_column_rejected() {
        let c = catalog();
        let err = bind(&c, "SELECT val FROM data AS x1, data AS x2");
        assert!(matches!(err, Err(SqlError::Storage(_))), "{err:?}");
        // Qualified succeeds.
        assert!(bind(&c, "SELECT x1.val FROM data AS x1, data AS x2").is_ok());
    }

    #[test]
    fn view_expansion() {
        let c = catalog();
        c.create_view("ids", "SELECT pointID FROM data", None).unwrap();
        let plan = bind(&c, "SELECT i.pointID FROM ids AS i").unwrap();
        assert_eq!(plan.schema().arity(), 1);
        // With renamed columns.
        c.create_view("renamed", "SELECT pointID FROM data", Some(vec!["pid".into()]))
            .unwrap();
        let plan = bind(&c, "SELECT renamed.pid FROM renamed").unwrap();
        assert_eq!(plan.schema().column(0).name, "pid");
    }

    #[test]
    fn subquery_in_from() {
        let c = catalog();
        let plan = bind(
            &c,
            "SELECT q.d FROM (SELECT inner_product(val, val) AS d FROM data) AS q",
        )
        .unwrap();
        assert_eq!(plan.schema().column(0).dtype, DataType::Double);
    }

    #[test]
    fn order_by_and_limit() {
        let c = catalog();
        let plan = bind(&c, "SELECT pointID FROM data ORDER BY pointID DESC LIMIT 2")
            .unwrap();
        assert!(matches!(plan, LogicalPlan::Limit { .. }));
    }

    #[test]
    fn duplicate_aggregates_share_computation() {
        let c = catalog();
        let plan = bind(
            &c,
            "SELECT SUM(pointID) + SUM(pointID) AS twice FROM data",
        )
        .unwrap();
        // Only one aggregate should be registered under the project.
        fn count_aggs(p: &LogicalPlan) -> usize {
            match p {
                LogicalPlan::Aggregate { aggs, .. } => aggs.len(),
                _ => p.children().iter().map(|c| count_aggs(c)).sum(),
            }
        }
        assert_eq!(count_aggs(&plan), 1);
    }

    #[test]
    fn vectorize_chain_binds() {
        // §3.3's vector-building query.
        let c = catalog();
        c.create_table(Table::new(
            "y",
            Schema::from_pairs(&[("i", DataType::Integer), ("y_i", DataType::Double)]),
            2,
            Partitioning::RoundRobin,
        ))
        .unwrap();
        let plan =
            bind(&c, "SELECT VECTORIZE(label_scalar(y_i, i)) AS v FROM y").unwrap();
        assert_eq!(plan.schema().column(0).dtype, DataType::Vector(None));
    }
}
