//! Recursive-descent parser for the extended SQL dialect.

use lardb_storage::DataType;

use crate::ast::*;
use crate::lexer::{tokenize, Spanned, Token};
use crate::{Result, SqlError};

/// Parses exactly one statement (an optional trailing `;` is allowed).
pub fn parse_statement(input: &str) -> Result<Statement> {
    let tokens = tokenize(input)?;
    let mut p = Parser { input, tokens, pos: 0 };
    let stmt = p.statement()?;
    p.accept(&Token::Semicolon);
    if let Some(t) = p.peek() {
        return Err(p.err_at(t.position, "unexpected trailing tokens"));
    }
    Ok(stmt)
}

struct Parser<'a> {
    input: &'a str,
    tokens: Vec<Spanned>,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Spanned> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Spanned> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err_here(&self, message: &str) -> SqlError {
        let position = self.peek().map(|t| t.position).unwrap_or(self.input.len());
        SqlError::Parse { position, message: message.into() }
    }

    fn err_at(&self, position: usize, message: &str) -> SqlError {
        SqlError::Parse { position, message: message.into() }
    }

    /// Consumes `t` if it is next; returns whether it did.
    fn accept(&mut self, t: &Token) -> bool {
        if self.peek().map(|s| &s.token) == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token, what: &str) -> Result<()> {
        if self.accept(t) {
            Ok(())
        } else {
            Err(self.err_here(&format!("expected {what}")))
        }
    }

    /// Case-insensitive keyword check without consuming.
    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Spanned { token: Token::Ident(s), .. })
            if s.eq_ignore_ascii_case(kw))
    }

    /// Consumes a keyword if present.
    fn accept_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.accept_kw(kw) {
            Ok(())
        } else {
            Err(self.err_here(&format!("expected {kw}")))
        }
    }

    /// Consumes any identifier (keywords allowed as names except a few
    /// reserved ones in expression position).
    fn ident(&mut self, what: &str) -> Result<String> {
        match self.next() {
            Some(Spanned { token: Token::Ident(s), .. }) => Ok(s),
            Some(Spanned { position, .. }) => {
                Err(self.err_at(position, &format!("expected {what}")))
            }
            None => Err(self.err_here(&format!("expected {what}"))),
        }
    }

    fn statement(&mut self) -> Result<Statement> {
        if self.accept_kw("EXPLAIN") {
            let analyze = self.accept_kw("ANALYZE");
            let trace = !analyze && self.accept_kw("TRACE");
            return Ok(Statement::Explain { query: self.select()?, analyze, trace });
        }
        if self.accept_kw("SHOW") {
            if self.accept_kw("METRICS") {
                return Ok(Statement::ShowMetrics);
            }
            if self.accept_kw("SESSIONS") {
                return Ok(Statement::ShowSessions);
            }
            if self.accept_kw("QUERIES") {
                return Ok(Statement::ShowQueries);
            }
            return Err(self.err_here("expected METRICS, SESSIONS or QUERIES after SHOW"));
        }
        if self.accept_kw("KILL") {
            let query_id = match self.peek() {
                Some(Spanned { token: Token::Int(v), .. }) => {
                    let v = *v;
                    self.pos += 1;
                    if v < 0 {
                        return Err(self.err_here("negative query id"));
                    }
                    v as u64
                }
                _ => return Err(self.err_here("expected a query id after KILL")),
            };
            return Ok(Statement::Kill { query_id });
        }
        if self.accept_kw("CREATE") {
            if self.accept_kw("TABLE") {
                let name = self.ident("table name")?;
                if self.accept_kw("AS") {
                    return Ok(Statement::CreateTableAs { name, query: self.select()? });
                }
                self.expect(&Token::LParen, "'('")?;
                let mut columns = Vec::new();
                loop {
                    let col = self.ident("column name")?;
                    let dtype = self.type_decl()?;
                    columns.push((col, dtype));
                    if !self.accept(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RParen, "')'")?;
                return Ok(Statement::CreateTable { name, columns });
            }
            if self.accept_kw("MATERIALIZED") {
                self.expect_kw("VIEW")?;
                let name = self.ident("view name")?;
                self.expect_kw("AS")?;
                let body_start =
                    self.peek().map(|t| t.position).unwrap_or(self.input.len());
                let query = self.select()?;
                let body_end = self
                    .peek()
                    .map(|t| t.position)
                    .unwrap_or(self.input.len());
                let sql = self.input[body_start..body_end].trim().to_string();
                return Ok(Statement::CreateMaterializedView { name, query, sql });
            }
            if self.accept_kw("VIEW") {
                let name = self.ident("view name")?;
                let columns = if self.accept(&Token::LParen) {
                    let mut cols = Vec::new();
                    loop {
                        cols.push(self.ident("column name")?);
                        if !self.accept(&Token::Comma) {
                            break;
                        }
                    }
                    self.expect(&Token::RParen, "')'")?;
                    Some(cols)
                } else {
                    None
                };
                self.expect_kw("AS")?;
                // Record the body's original SQL for the catalog.
                let body_start =
                    self.peek().map(|t| t.position).unwrap_or(self.input.len());
                let query = self.select()?;
                let body_end = self
                    .peek()
                    .map(|t| t.position)
                    .unwrap_or(self.input.len());
                let sql = self.input[body_start..body_end].trim().to_string();
                return Ok(Statement::CreateView { name, columns, query, sql });
            }
            return Err(self.err_here("expected TABLE, VIEW or MATERIALIZED VIEW after CREATE"));
        }
        if self.accept_kw("DROP") {
            if self.accept_kw("TABLE") {
                return Ok(Statement::DropTable { name: self.ident("table name")? });
            }
            if self.accept_kw("MATERIALIZED") {
                self.expect_kw("VIEW")?;
                return Ok(Statement::DropMaterializedView {
                    name: self.ident("view name")?,
                });
            }
            if self.accept_kw("VIEW") {
                return Ok(Statement::DropView { name: self.ident("view name")? });
            }
            return Err(self.err_here("expected TABLE, VIEW or MATERIALIZED VIEW after DROP"));
        }
        if self.accept_kw("REFRESH") {
            self.expect_kw("MATERIALIZED")?;
            self.expect_kw("VIEW")?;
            return Ok(Statement::RefreshMaterializedView {
                name: self.ident("view name")?,
            });
        }
        if self.accept_kw("INSERT") {
            self.expect_kw("INTO")?;
            let table = self.ident("table name")?;
            self.expect_kw("VALUES")?;
            let mut rows = Vec::new();
            loop {
                self.expect(&Token::LParen, "'('")?;
                let mut row = Vec::new();
                loop {
                    row.push(self.expr()?);
                    if !self.accept(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RParen, "')'")?;
                rows.push(row);
                if !self.accept(&Token::Comma) {
                    break;
                }
            }
            return Ok(Statement::Insert { table, rows });
        }
        if self.peek_kw("SELECT") {
            return Ok(Statement::Select(self.select()?));
        }
        Err(self.err_here("expected a statement"))
    }

    fn type_decl(&mut self) -> Result<DataType> {
        let name = self.ident("type name")?.to_ascii_uppercase();
        match name.as_str() {
            "INTEGER" | "INT" => Ok(DataType::Integer),
            "DOUBLE" | "FLOAT" | "REAL" => Ok(DataType::Double),
            "BOOLEAN" | "BOOL" => Ok(DataType::Boolean),
            "VARCHAR" | "TEXT" | "STRING" => Ok(DataType::Varchar),
            "LABELED_SCALAR" => Ok(DataType::LabeledScalar),
            "VECTOR" => {
                let n = self.bracket_dim()?;
                Ok(DataType::Vector(n))
            }
            "MATRIX" => {
                let r = self.bracket_dim()?;
                let c = self.bracket_dim()?;
                Ok(DataType::Matrix(r, c))
            }
            other => Err(self.err_here(&format!("unknown type '{other}'"))),
        }
    }

    /// Parses `[n]` or `[]`.
    fn bracket_dim(&mut self) -> Result<Option<usize>> {
        self.expect(&Token::LBracket, "'['")?;
        let n = match self.peek() {
            Some(Spanned { token: Token::Int(v), .. }) => {
                let v = *v;
                self.pos += 1;
                if v < 0 {
                    return Err(self.err_here("negative dimension"));
                }
                Some(v as usize)
            }
            _ => None,
        };
        self.expect(&Token::RBracket, "']'")?;
        Ok(n)
    }

    fn select(&mut self) -> Result<SelectStatement> {
        self.expect_kw("SELECT")?;
        let distinct = self.accept_kw("DISTINCT");
        let mut items = Vec::new();
        loop {
            if self.accept(&Token::Star) {
                items.push(SelectItem::Wildcard);
            } else {
                let expr = self.expr()?;
                let alias = if self.accept_kw("AS") {
                    Some(self.ident("alias")?)
                } else if let Some(Spanned { token: Token::Ident(s), .. }) = self.peek() {
                    // bare alias, unless it's a clause keyword
                    if is_clause_keyword(s) {
                        None
                    } else {
                        let a = s.clone();
                        self.pos += 1;
                        Some(a)
                    }
                } else {
                    None
                };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.accept(&Token::Comma) {
                break;
            }
        }
        self.expect_kw("FROM")?;
        let mut from = Vec::new();
        loop {
            from.push(self.table_ref()?);
            if !self.accept(&Token::Comma) {
                break;
            }
        }
        let where_clause =
            if self.accept_kw("WHERE") { Some(self.expr()?) } else { None };
        let mut group_by = Vec::new();
        if self.accept_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.expr()?);
                if !self.accept(&Token::Comma) {
                    break;
                }
            }
        }
        let having = if self.accept_kw("HAVING") { Some(self.expr()?) } else { None };
        let mut order_by = Vec::new();
        if self.accept_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let e = self.expr()?;
                let asc = if self.accept_kw("DESC") {
                    false
                } else {
                    self.accept_kw("ASC");
                    true
                };
                order_by.push((e, asc));
                if !self.accept(&Token::Comma) {
                    break;
                }
            }
        }
        let limit = if self.accept_kw("LIMIT") {
            match self.next() {
                Some(Spanned { token: Token::Int(n), .. }) if n >= 0 => Some(n as usize),
                _ => return Err(self.err_here("expected row count after LIMIT")),
            }
        } else {
            None
        };
        Ok(SelectStatement { distinct, items, from, where_clause, group_by, having, order_by, limit })
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        if self.accept(&Token::LParen) {
            let query = Box::new(self.select()?);
            self.expect(&Token::RParen, "')'")?;
            self.accept_kw("AS");
            let alias = self.ident("subquery alias")?;
            return Ok(TableRef::Subquery { query, alias });
        }
        let name = self.ident("table name")?;
        let alias = if self.accept_kw("AS") {
            Some(self.ident("alias")?)
        } else if let Some(Spanned { token: Token::Ident(s), .. }) = self.peek() {
            if is_clause_keyword(s) {
                None
            } else {
                let a = s.clone();
                self.pos += 1;
                Some(a)
            }
        } else {
            None
        };
        Ok(TableRef::Table { name, alias })
    }

    // Expression precedence: OR < AND < NOT < comparison < add < mul < unary.
    fn expr(&mut self) -> Result<AstExpr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<AstExpr> {
        let mut lhs = self.and_expr()?;
        while self.accept_kw("OR") {
            let rhs = self.and_expr()?;
            lhs = AstExpr::Binary { op: BinOp::Or, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<AstExpr> {
        let mut lhs = self.not_expr()?;
        while self.accept_kw("AND") {
            let rhs = self.not_expr()?;
            lhs = AstExpr::Binary { op: BinOp::And, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<AstExpr> {
        if self.accept_kw("NOT") {
            return Ok(AstExpr::Not(Box::new(self.not_expr()?)));
        }
        self.cmp_expr()
    }

    fn cmp_expr(&mut self) -> Result<AstExpr> {
        let lhs = self.add_expr()?;
        let op = match self.peek().map(|s| &s.token) {
            Some(Token::Eq) => Some(BinOp::Eq),
            Some(Token::NotEq) => Some(BinOp::NotEq),
            Some(Token::Lt) => Some(BinOp::Lt),
            Some(Token::LtEq) => Some(BinOp::LtEq),
            Some(Token::Gt) => Some(BinOp::Gt),
            Some(Token::GtEq) => Some(BinOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let rhs = self.add_expr()?;
            return Ok(AstExpr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) });
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<AstExpr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek().map(|s| &s.token) {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.mul_expr()?;
            lhs = AstExpr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<AstExpr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek().map(|s| &s.token) {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.unary_expr()?;
            lhs = AstExpr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<AstExpr> {
        if self.accept(&Token::Minus) {
            return Ok(AstExpr::Neg(Box::new(self.unary_expr()?)));
        }
        if self.accept(&Token::Plus) {
            return self.unary_expr();
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<AstExpr> {
        match self.next() {
            Some(Spanned { token: Token::Int(v), .. }) => Ok(AstExpr::Int(v)),
            Some(Spanned { token: Token::Float(v), .. }) => Ok(AstExpr::Float(v)),
            Some(Spanned { token: Token::Str(s), .. }) => Ok(AstExpr::Str(s)),
            Some(Spanned { token: Token::LParen, .. }) => {
                let e = self.expr()?;
                self.expect(&Token::RParen, "')'")?;
                Ok(e)
            }
            Some(Spanned { token: Token::Ident(name), position }) => {
                // Function call?
                if self.accept(&Token::LParen) {
                    if self.accept(&Token::Star) {
                        self.expect(&Token::RParen, "')'")?;
                        return Ok(AstExpr::Call { name, args: vec![], star: true });
                    }
                    let mut args = Vec::new();
                    if !self.accept(&Token::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.accept(&Token::Comma) {
                                break;
                            }
                        }
                        self.expect(&Token::RParen, "')'")?;
                    }
                    return Ok(AstExpr::Call { name, args, star: false });
                }
                // Qualified column?
                if self.accept(&Token::Dot) {
                    let col = self.ident("column name")?;
                    return Ok(AstExpr::Column { qualifier: Some(name), name: col });
                }
                if is_clause_keyword(&name) {
                    return Err(self.err_at(position, "unexpected keyword in expression"));
                }
                Ok(AstExpr::Column { qualifier: None, name })
            }
            Some(Spanned { position, .. }) => Err(self.err_at(position, "expected expression")),
            None => Err(self.err_here("expected expression")),
        }
    }
}

/// Keywords that end an expression / alias position.
fn is_clause_keyword(s: &str) -> bool {
    const KW: &[&str] = &[
        "SELECT", "FROM", "WHERE", "GROUP", "BY", "ORDER", "LIMIT", "AND", "OR", "NOT",
        "AS", "ASC", "DESC", "INTO", "VALUES", "CREATE", "DROP", "TABLE", "VIEW",
        "INSERT", "EXPLAIN", "HAVING", "DISTINCT",
    ];
    KW.iter().any(|k| s.eq_ignore_ascii_case(k))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_select() {
        let s = parse_statement("SELECT a, b AS bee FROM t WHERE a = 1;").unwrap();
        let Statement::Select(sel) = s else { panic!("expected select") };
        assert_eq!(sel.items.len(), 2);
        assert!(sel.where_clause.is_some());
        assert_eq!(sel.from.len(), 1);
    }

    #[test]
    fn parse_paper_gram_query() {
        // Directly from §5's tuple-based Gram matrix code.
        let sql = "SELECT x1.col_index, x2.col_index, SUM(x1.value * x2.value)
                   FROM x AS x1, x AS x2
                   WHERE x1.row_index = x2.row_index
                   GROUP BY x1.col_index, x2.col_index";
        let Statement::Select(sel) = parse_statement(sql).unwrap() else { panic!() };
        assert_eq!(sel.from.len(), 2);
        assert_eq!(sel.group_by.len(), 2);
        assert!(matches!(
            &sel.items[2],
            SelectItem::Expr { expr: AstExpr::Call { name, .. }, .. } if name == "SUM"
        ));
    }

    #[test]
    fn parse_show_metrics() {
        assert!(matches!(
            parse_statement("SHOW METRICS").unwrap(),
            Statement::ShowMetrics
        ));
        assert!(matches!(
            parse_statement("show metrics;").unwrap(),
            Statement::ShowMetrics
        ));
        assert!(parse_statement("SHOW TABLES").is_err());
    }

    #[test]
    fn parse_show_sessions_and_kill() {
        assert!(matches!(
            parse_statement("SHOW SESSIONS").unwrap(),
            Statement::ShowSessions
        ));
        assert!(matches!(
            parse_statement("show sessions;").unwrap(),
            Statement::ShowSessions
        ));
        assert!(matches!(
            parse_statement("SHOW QUERIES").unwrap(),
            Statement::ShowQueries
        ));
        assert!(matches!(
            parse_statement("show queries;").unwrap(),
            Statement::ShowQueries
        ));
        assert!(matches!(
            parse_statement("KILL 42").unwrap(),
            Statement::Kill { query_id: 42 }
        ));
        assert!(matches!(
            parse_statement("kill 0;").unwrap(),
            Statement::Kill { query_id: 0 }
        ));
        assert!(parse_statement("KILL").is_err());
        assert!(parse_statement("KILL abc").is_err());
        assert!(parse_statement("KILL -3").is_err());
    }

    #[test]
    fn parse_create_table_with_la_types() {
        // §3.1's example declaration.
        let s = parse_statement("CREATE TABLE m (mat MATRIX[10][10], vec VECTOR[100])")
            .unwrap();
        let Statement::CreateTable { name, columns } = s else { panic!() };
        assert_eq!(name, "m");
        assert_eq!(columns[0].1, DataType::Matrix(Some(10), Some(10)));
        assert_eq!(columns[1].1, DataType::Vector(Some(100)));
    }

    #[test]
    fn parse_unsized_types() {
        let s = parse_statement("CREATE TABLE x (v VECTOR[], m MATRIX[10][])").unwrap();
        let Statement::CreateTable { columns, .. } = s else { panic!() };
        assert_eq!(columns[0].1, DataType::Vector(None));
        assert_eq!(columns[1].1, DataType::Matrix(Some(10), None));
    }

    #[test]
    fn parse_view_with_group_by() {
        // §3.3's vecs view.
        let sql = "CREATE VIEW vecs AS
                   SELECT VECTORIZE(label_scalar(val, col)) AS vec, row
                   FROM mat
                   GROUP BY row";
        let Statement::CreateView { name, query, sql: body, .. } =
            parse_statement(sql).unwrap()
        else {
            panic!()
        };
        assert_eq!(name, "vecs");
        assert_eq!(query.group_by.len(), 1);
        assert!(body.starts_with("SELECT"));
    }

    #[test]
    fn parse_materialized_view_statements() {
        let sql = "CREATE MATERIALIZED VIEW totals AS
                   SELECT g, SUM(v) AS s FROM t GROUP BY g";
        let Statement::CreateMaterializedView { name, query, sql: body } =
            parse_statement(sql).unwrap()
        else {
            panic!()
        };
        assert_eq!(name, "totals");
        assert_eq!(query.group_by.len(), 1);
        assert!(body.starts_with("SELECT"));
        assert!(matches!(
            parse_statement("DROP MATERIALIZED VIEW totals").unwrap(),
            Statement::DropMaterializedView { name } if name == "totals"
        ));
        assert!(matches!(
            parse_statement("refresh materialized view totals;").unwrap(),
            Statement::RefreshMaterializedView { name } if name == "totals"
        ));
        // MATERIALIZED requires VIEW; REFRESH requires the full phrase.
        assert!(parse_statement("CREATE MATERIALIZED TABLE x AS SELECT a FROM t").is_err());
        assert!(parse_statement("REFRESH VIEW v").is_err());
        assert!(parse_statement("DROP MATERIALIZED TABLE t").is_err());
    }

    #[test]
    fn parse_subquery_in_from() {
        // The shape of §2.2's nested distance query.
        let sql = "SELECT x.pointID, SUM(firstPart.value * x.value)
                   FROM (SELECT pointID AS pointID FROM xDiff) AS firstPart, xDiff AS x
                   WHERE firstPart.pointID = x.pointID
                   GROUP BY x.pointID";
        let Statement::Select(sel) = parse_statement(sql).unwrap() else { panic!() };
        assert!(matches!(&sel.from[0], TableRef::Subquery { alias, .. } if alias == "firstPart"));
    }

    #[test]
    fn parse_count_star_and_order() {
        let sql = "SELECT COUNT(*) FROM t ORDER BY 1 DESC LIMIT 5";
        let Statement::Select(sel) = parse_statement(sql).unwrap() else { panic!() };
        assert!(matches!(&sel.items[0], SelectItem::Expr { expr: AstExpr::Call { star: true, .. }, .. }));
        assert_eq!(sel.order_by.len(), 1);
        assert!(!sel.order_by[0].1);
        assert_eq!(sel.limit, Some(5));
    }

    #[test]
    fn parse_insert() {
        let s = parse_statement("INSERT INTO t VALUES (1, 2.5), (2, -3.0)").unwrap();
        let Statement::Insert { table, rows } = s else { panic!() };
        assert_eq!(table, "t");
        assert_eq!(rows.len(), 2);
        assert!(matches!(rows[1][1], AstExpr::Neg(_)));
    }

    #[test]
    fn parse_create_table_as_and_explain() {
        assert!(matches!(
            parse_statement("CREATE TABLE g AS SELECT a FROM t").unwrap(),
            Statement::CreateTableAs { .. }
        ));
        assert!(matches!(
            parse_statement("EXPLAIN SELECT a FROM t").unwrap(),
            Statement::Explain { analyze: false, trace: false, .. }
        ));
        assert!(matches!(
            parse_statement("EXPLAIN ANALYZE SELECT a FROM t").unwrap(),
            Statement::Explain { analyze: true, trace: false, .. }
        ));
        assert!(matches!(
            parse_statement("EXPLAIN TRACE SELECT a FROM t").unwrap(),
            Statement::Explain { analyze: false, trace: true, .. }
        ));
        assert!(matches!(
            parse_statement("DROP VIEW v").unwrap(),
            Statement::DropView { .. }
        ));
    }

    #[test]
    fn precedence_and_parens() {
        let Statement::Select(sel) =
            parse_statement("SELECT a + b * c FROM t").unwrap()
        else {
            panic!()
        };
        let SelectItem::Expr { expr, .. } = &sel.items[0] else { panic!() };
        // a + (b * c)
        let AstExpr::Binary { op: BinOp::Add, rhs, .. } = expr else { panic!("{expr:?}") };
        assert!(matches!(**rhs, AstExpr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn parse_having_and_distinct() {
        let Statement::Select(sel) =
            parse_statement("SELECT DISTINCT g FROM t GROUP BY g HAVING COUNT(*) > 2").unwrap()
        else {
            panic!()
        };
        assert!(sel.distinct);
        assert!(sel.having.is_some());
        let Statement::Select(sel) = parse_statement("SELECT g FROM t").unwrap() else {
            panic!()
        };
        assert!(!sel.distinct);
        assert!(sel.having.is_none());
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert!(parse_statement("select a from t where a = 1 group by a").is_ok());
        assert!(parse_statement("CrEaTe TaBlE t (x InTeGeR)").is_ok());
    }

    #[test]
    fn nested_function_calls_parse() {
        let sql = "SELECT matrix_vector_multiply(matrix_inverse(SUM(outer_product(x, x))), SUM(x * y)) FROM t";
        assert!(parse_statement(sql).is_ok());
    }

    #[test]
    fn deeply_parenthesized_expression() {
        let sql = "SELECT ((((a + 1)))) FROM t WHERE ((a > 0) AND (NOT (a = 3)))";
        assert!(parse_statement(sql).is_ok());
    }

    #[test]
    fn empty_arg_function_call() {
        let Statement::Select(sel) = parse_statement("SELECT f() FROM t").unwrap() else {
            panic!()
        };
        assert!(matches!(
            &sel.items[0],
            SelectItem::Expr { expr: AstExpr::Call { args, star: false, .. }, .. } if args.is_empty()
        ));
    }

    #[test]
    fn errors_are_positioned() {
        let err = parse_statement("SELECT FROM t").unwrap_err();
        assert!(matches!(err, SqlError::Parse { .. }));
        let err = parse_statement("SELECT a FROM t WHERE").unwrap_err();
        assert!(matches!(err, SqlError::Parse { .. }));
        let err = parse_statement("SELECT a FROM t extra garbage ,").unwrap_err();
        assert!(matches!(err, SqlError::Parse { .. }));
    }
}
