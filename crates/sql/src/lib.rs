//! # lardb-sql — the extended-SQL front end
//!
//! Implements the SQL surface of the paper: ordinary `SELECT`-`FROM`-
//! `WHERE`-`GROUP BY` SQL extended with
//!
//! * the `LABELED_SCALAR`, `VECTOR[n]` and `MATRIX[r][c]` column types in
//!   `CREATE TABLE` (§3.1),
//! * the built-in linear-algebra functions and the overloaded arithmetic
//!   operators (§3.2),
//! * the construction aggregates `VECTORIZE`, `ROWMATRIX`, `COLMATRIX` and
//!   the label functions (§3.3),
//! * views and subqueries in `FROM` (the paper's examples lean on both).
//!
//! Pipeline: [`lexer`] → [`parser`] → [`binder`]. The binder resolves
//! names, expands views, and produces a [`lardb_planner::LogicalPlan`]
//! whose construction runs the templated-signature type checker — so a
//! query like `matrix_vector_multiply(m.mat, m.vec)` over `MATRIX[10][10]`
//! and `VECTOR[100]` **fails to compile**, exactly as §3.1 prescribes.

pub mod ast;
pub mod binder;
pub mod lexer;
pub mod parser;

pub use ast::{AstExpr, SelectItem, SelectStatement, Statement, TableRef};
pub use binder::Binder;
pub use parser::parse_statement;

use lardb_planner::PlanError;
use lardb_storage::StorageError;

/// Errors raised by the SQL front end.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Lexical error (bad character, unterminated string, …).
    Lex {
        /// Byte offset in the input.
        position: usize,
        /// What went wrong.
        message: String,
    },
    /// Syntax error.
    Parse {
        /// Byte offset of the offending token.
        position: usize,
        /// What went wrong.
        message: String,
    },
    /// Semantic error (unknown name, type error, misuse of aggregates…).
    Bind(String),
    /// Error from planning machinery (includes §4.2 dimension errors).
    Plan(PlanError),
    /// Error from the catalog.
    Storage(StorageError),
}

impl std::fmt::Display for SqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SqlError::Lex { position, message } => {
                write!(f, "lex error at byte {position}: {message}")
            }
            SqlError::Parse { position, message } => {
                write!(f, "parse error at byte {position}: {message}")
            }
            SqlError::Bind(m) => write!(f, "bind error: {m}"),
            SqlError::Plan(e) => write!(f, "{e}"),
            SqlError::Storage(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<PlanError> for SqlError {
    fn from(e: PlanError) -> Self {
        SqlError::Plan(e)
    }
}

impl From<StorageError> for SqlError {
    fn from(e: StorageError) -> Self {
        SqlError::Storage(e)
    }
}

/// Result alias for the SQL front end.
pub type Result<T> = std::result::Result<T, SqlError>;
