//! Tokenizer for the extended SQL dialect.

use crate::{Result, SqlError};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (keywords are recognized case-insensitively by
    /// the parser; the lexer keeps the original spelling).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semicolon,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `=`
    Eq,
    /// `<>` or `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
}

/// A token with its byte position (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Byte offset in the source.
    pub position: usize,
}

/// Tokenizes `input`. Supports `--` line comments.
pub fn tokenize(input: &str) -> Result<Vec<Spanned>> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        // Whitespace
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Line comments
        if c == '-' && bytes.get(i + 1) == Some(&b'-') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        let start = i;
        let push = |out: &mut Vec<Spanned>, t: Token| {
            out.push(Spanned { token: t, position: start })
        };
        match c {
            '(' => {
                push(&mut out, Token::LParen);
                i += 1;
            }
            ')' => {
                push(&mut out, Token::RParen);
                i += 1;
            }
            '[' => {
                push(&mut out, Token::LBracket);
                i += 1;
            }
            ']' => {
                push(&mut out, Token::RBracket);
                i += 1;
            }
            ',' => {
                push(&mut out, Token::Comma);
                i += 1;
            }
            '.' => {
                push(&mut out, Token::Dot);
                i += 1;
            }
            ';' => {
                push(&mut out, Token::Semicolon);
                i += 1;
            }
            '*' => {
                push(&mut out, Token::Star);
                i += 1;
            }
            '+' => {
                push(&mut out, Token::Plus);
                i += 1;
            }
            '-' => {
                push(&mut out, Token::Minus);
                i += 1;
            }
            '/' => {
                push(&mut out, Token::Slash);
                i += 1;
            }
            '=' => {
                push(&mut out, Token::Eq);
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push(&mut out, Token::NotEq);
                    i += 2;
                } else {
                    return Err(SqlError::Lex {
                        position: i,
                        message: "unexpected '!'".into(),
                    });
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(&b'=') => {
                    push(&mut out, Token::LtEq);
                    i += 2;
                }
                Some(&b'>') => {
                    push(&mut out, Token::NotEq);
                    i += 2;
                }
                _ => {
                    push(&mut out, Token::Lt);
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push(&mut out, Token::GtEq);
                    i += 2;
                } else {
                    push(&mut out, Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(SqlError::Lex {
                                position: start,
                                message: "unterminated string literal".into(),
                            })
                        }
                        Some(&b'\'') => {
                            if bytes.get(i + 1) == Some(&b'\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                push(&mut out, Token::Str(s));
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                let mut is_float = false;
                while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                    j += 1;
                }
                // Fractional part: a dot followed by a digit (a bare dot is
                // left alone so `x.id/1000` lexes correctly).
                if j < bytes.len()
                    && bytes[j] == b'.'
                    && j + 1 < bytes.len()
                    && (bytes[j + 1] as char).is_ascii_digit()
                {
                    is_float = true;
                    j += 1;
                    while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                        j += 1;
                    }
                }
                // Exponent
                if j < bytes.len() && (bytes[j] == b'e' || bytes[j] == b'E') {
                    let mut k = j + 1;
                    if k < bytes.len() && (bytes[k] == b'+' || bytes[k] == b'-') {
                        k += 1;
                    }
                    if k < bytes.len() && (bytes[k] as char).is_ascii_digit() {
                        is_float = true;
                        j = k;
                        while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                            j += 1;
                        }
                    }
                }
                let text = &input[i..j];
                if is_float {
                    let v: f64 = text.parse().map_err(|_| SqlError::Lex {
                        position: start,
                        message: format!("bad float literal '{text}'"),
                    })?;
                    push(&mut out, Token::Float(v));
                } else {
                    let v: i64 = text.parse().map_err(|_| SqlError::Lex {
                        position: start,
                        message: format!("bad integer literal '{text}'"),
                    })?;
                    push(&mut out, Token::Int(v));
                }
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i;
                while j < bytes.len() {
                    let ch = bytes[j] as char;
                    if ch.is_ascii_alphanumeric() || ch == '_' {
                        j += 1;
                    } else {
                        break;
                    }
                }
                push(&mut out, Token::Ident(input[i..j].to_string()));
                i = j;
            }
            other => {
                return Err(SqlError::Lex {
                    position: i,
                    message: format!("unexpected character '{other}'"),
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Token> {
        tokenize(s).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn basic_select() {
        let t = toks("SELECT x.id, 3.5 FROM t WHERE a <> b AND c <= 2");
        assert!(t.contains(&Token::Ident("SELECT".into())));
        assert!(t.contains(&Token::Float(3.5)));
        assert!(t.contains(&Token::NotEq));
        assert!(t.contains(&Token::LtEq));
    }

    #[test]
    fn qualified_and_integer_division() {
        // `x.id/1000` must lex as ident dot ident slash int
        let t = toks("x.id/1000");
        assert_eq!(
            t,
            vec![
                Token::Ident("x".into()),
                Token::Dot,
                Token::Ident("id".into()),
                Token::Slash,
                Token::Int(1000),
            ]
        );
    }

    #[test]
    fn matrix_type_brackets() {
        let t = toks("MATRIX[10][10]");
        assert_eq!(
            t,
            vec![
                Token::Ident("MATRIX".into()),
                Token::LBracket,
                Token::Int(10),
                Token::RBracket,
                Token::LBracket,
                Token::Int(10),
                Token::RBracket,
            ]
        );
    }

    #[test]
    fn strings_and_escapes() {
        assert_eq!(toks("'it''s'"), vec![Token::Str("it's".into())]);
        assert!(tokenize("'open").is_err());
    }

    #[test]
    fn comments_skipped() {
        let t = toks("SELECT 1 -- trailing comment\n, 2");
        assert_eq!(
            t,
            vec![
                Token::Ident("SELECT".into()),
                Token::Int(1),
                Token::Comma,
                Token::Int(2)
            ]
        );
    }

    #[test]
    fn float_with_exponent() {
        assert_eq!(toks("1e3"), vec![Token::Float(1000.0)]);
        assert_eq!(toks("2.5e-1"), vec![Token::Float(0.25)]);
    }

    #[test]
    fn negative_numbers_lex_as_minus_then_literal() {
        assert_eq!(
            toks("-3.5"),
            vec![Token::Minus, Token::Float(3.5)]
        );
    }

    #[test]
    fn adjacent_operators() {
        assert_eq!(
            toks("a<=b>=c<>d"),
            vec![
                Token::Ident("a".into()),
                Token::LtEq,
                Token::Ident("b".into()),
                Token::GtEq,
                Token::Ident("c".into()),
                Token::NotEq,
                Token::Ident("d".into()),
            ]
        );
    }

    #[test]
    fn bad_character() {
        assert!(matches!(tokenize("a ? b"), Err(SqlError::Lex { .. })));
    }
}
