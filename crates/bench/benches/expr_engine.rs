//! Expression-engine ablation: compiled vectorized bytecode over column
//! batches vs the row-at-a-time tree interpreter.
//!
//! Two shapes from the vectorized-execution design notes:
//!   * a **filter-heavy** selective scan — predicate plus arithmetic
//!     projection over a wide numeric table, the case fused morsel
//!     kernels exist for;
//!   * a **filter→aggregate** pipeline — the scan→filter→partial-agg
//!     segment the compiled engine fuses into one pass per morsel.
//!
//! With `--profile-json PATH` the harness re-times the filter-heavy case
//! once per engine and writes the compiled-vs-interpret comparison (plus
//! the compiled engine's batch/kernel/fallback counters) as JSON — CI
//! asserts both arms are present and uploads the document.

use criterion::{criterion_group, Criterion};
use lardb::{
    DataType, Database, DatabaseConfig, ExprEngine, Partitioning, Row, Schema, Value,
};

const ROWS: usize = 60_000;
const GROUPS: i64 = 32;

fn engine_db(engine: ExprEngine) -> Database {
    let db = Database::with_config(DatabaseConfig {
        workers: 4,
        expr_engine: engine,
        pool_workers: Some(4),
        ..DatabaseConfig::default()
    });
    db.create_table(
        "points",
        Schema::from_pairs(&[
            ("id", DataType::Integer),
            ("g", DataType::Integer),
            ("a", DataType::Double),
            ("b", DataType::Double),
        ]),
        Partitioning::RoundRobin,
    )
    .unwrap();
    let rows = (0..ROWS as i64).map(|i| {
        Row::new(vec![
            Value::Integer(i),
            Value::Integer(i % GROUPS),
            Value::Double(i as f64 * 0.125),
            Value::Double((i % 97) as f64 - 48.0),
        ])
    });
    db.insert_rows("points", rows).unwrap();
    db
}

/// Filter-heavy: selective predicate + arithmetic projection, no
/// aggregate — wall time is dominated by expression evaluation.
const FILTER_QUERY: &str =
    "SELECT id, a * b + a, a - b FROM points WHERE a * 2.0 + b > 100.0 AND id >= 0";

/// Fused scan→filter→partial-agg segment.
const AGG_QUERY: &str =
    "SELECT g, COUNT(*) AS c, SUM(a * b + a) AS s FROM points WHERE b > -40.0 GROUP BY g";

fn bench_engines(c: &mut Criterion) {
    let mut g = c.benchmark_group("expr_engine");
    g.sample_size(10);
    for engine in [ExprEngine::Compiled, ExprEngine::Interpret] {
        let db = engine_db(engine);
        g.bench_function(format!("filter/{engine}"), |b| {
            b.iter(|| db.query(FILTER_QUERY).unwrap())
        });
        g.bench_function(format!("agg/{engine}"), |b| {
            b.iter(|| db.query(AGG_QUERY).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_engines);

fn profile_json_path() -> Option<String> {
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        if flag == "--profile-json" {
            return argv.next();
        }
    }
    None
}

/// Median wall time of `runs` executions, in milliseconds.
fn time_ms(db: &Database, sql: &str, runs: usize) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t0 = std::time::Instant::now();
            db.query(sql).unwrap();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|x, y| x.total_cmp(y));
    samples[samples.len() / 2]
}

fn main() {
    benches();
    if let Some(path) = profile_json_path() {
        let compiled = engine_db(ExprEngine::Compiled);
        let interp = engine_db(ExprEngine::Interpret);
        let compiled_ms = time_ms(&compiled, FILTER_QUERY, 5);
        let interp_ms = time_ms(&interp, FILTER_QUERY, 5);
        let compiled_agg_ms = time_ms(&compiled, AGG_QUERY, 5);
        let interp_agg_ms = time_ms(&interp, AGG_QUERY, 5);
        // One metered run for the vectorized counters (per-query stats,
        // not the process-wide registry, so the interpret arm can't
        // contribute).
        let stats = compiled.query(FILTER_QUERY).unwrap().stats;
        let doc = format!(
            "{{\"bench\":\"expr_engine\",\"case\":\"filter_heavy_w4\",\
             \"compiled_ms\":{compiled_ms:.3},\"interpret_ms\":{interp_ms:.3},\
             \"speedup\":{:.3},\
             \"agg_compiled_ms\":{compiled_agg_ms:.3},\
             \"agg_interpret_ms\":{interp_agg_ms:.3},\
             \"agg_speedup\":{:.3},\
             \"batches\":{},\"batch_rows\":{},\"kernels\":{},\"fallbacks\":{}}}",
            interp_ms / compiled_ms,
            interp_agg_ms / compiled_agg_ms,
            stats.total_batches(),
            stats.total_batch_rows(),
            stats.total_kernels(),
            stats.total_fallbacks(),
        );
        match std::fs::write(&path, &doc) {
            Ok(()) => println!("wrote expr_engine profile to {path}: {doc}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
