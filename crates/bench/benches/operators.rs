//! Criterion benchmarks over the engine's physical layer: the per-tuple
//! fixed cost the paper's whole argument rests on, join strategies, the
//! construction aggregates, and shuffle overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lardb::{DataType, Database, Partitioning, Schema};
use lardb_storage::gen;

/// One database per (n, dims) with both representations loaded.
fn setup(n: usize, dims: usize, workers: usize) -> Database {
    let db = Database::new(workers);
    db.create_table(
        "x_vm",
        Schema::from_pairs(&[("id", DataType::Integer), ("value", DataType::Vector(Some(dims)))]),
        Partitioning::RoundRobin,
    )
    .unwrap();
    db.insert_rows("x_vm", gen::vector_rows(7, n, dims)).unwrap();
    db.create_table(
        "x",
        Schema::from_pairs(&[
            ("row_index", DataType::Integer),
            ("col_index", DataType::Integer),
            ("value", DataType::Double),
        ]),
        Partitioning::RoundRobin,
    )
    .unwrap();
    db.insert_rows("x", gen::tuple_rows(7, n, dims)).unwrap();
    db
}

/// The paper's core claim in microcosm: SUM over n vectors vs SUM over
/// n·d tuples — same numbers, orders of magnitude apart.
fn bench_tuple_vs_vector_aggregation(c: &mut Criterion) {
    let mut g = c.benchmark_group("sum_aggregate");
    g.sample_size(10);
    for &dims in &[10usize, 50] {
        let db = setup(2000, dims, 4);
        g.bench_with_input(BenchmarkId::new("vector", dims), &dims, |b, _| {
            b.iter(|| db.query("SELECT SUM(value * value) AS s FROM x_vm").unwrap())
        });
        g.bench_with_input(BenchmarkId::new("tuple", dims), &dims, |b, _| {
            b.iter(|| {
                db.query("SELECT col_index, SUM(value * value) AS s FROM x GROUP BY col_index")
                    .unwrap()
            })
        });
    }
    g.finish();
}

fn bench_join_strategies(c: &mut Criterion) {
    let mut g = c.benchmark_group("join");
    g.sample_size(10);
    let db = setup(2000, 10, 4);
    g.bench_function("hash_self_join", |b| {
        b.iter(|| {
            db.query(
                "SELECT COUNT(*) AS n FROM x_vm AS a, x_vm AS b WHERE a.id = b.id",
            )
            .unwrap()
        })
    });
    let small = setup(100, 10, 4);
    g.bench_function("cross_join_100x100", |b| {
        b.iter(|| {
            small
                .query("SELECT COUNT(*) AS n FROM x_vm AS a, x_vm AS b")
                .unwrap()
        })
    });
    g.finish();
}

fn bench_construction_aggregates(c: &mut Criterion) {
    let mut g = c.benchmark_group("construction");
    g.sample_size(10);
    let db = setup(5000, 20, 4);
    g.bench_function("vectorize_5000", |b| {
        b.iter(|| {
            db.query(
                "SELECT VECTORIZE(label_scalar(value, row_index)) AS v
                 FROM x WHERE col_index = 0",
            )
            .unwrap()
        })
    });
    g.bench_function("rowmatrix_blocks", |b| {
        b.iter(|| {
            db.query(
                "SELECT ROWMATRIX(label_vector(value, id - (id/100)*100)) AS m, id/100 AS blk
                 FROM x_vm GROUP BY id/100",
            )
            .unwrap()
        })
    });
    g.finish();
}

fn bench_worker_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("gram_workers");
    g.sample_size(10);
    for &w in &[1usize, 2, 4, 8] {
        let db = setup(4000, 50, w);
        g.bench_with_input(BenchmarkId::from_parameter(w), &w, |b, _| {
            b.iter(|| {
                db.query("SELECT SUM(outer_product(value, value)) AS g FROM x_vm")
                    .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_tuple_vs_vector_aggregation,
    bench_join_strategies,
    bench_construction_aggregates,
    bench_worker_scaling
);
criterion_main!(benches);
