//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! LA-size-aware costing vs blind (§4.1), early projection on/off, and
//! join→aggregate fusion on/off.
//!
//! With `--profile-json PATH` the harness additionally runs the RST query
//! once on the size-aware configuration and writes its query-lifecycle
//! profile (stage timings + per-operator estimate-vs-actual records) as
//! JSON.

use criterion::{criterion_group, Criterion};
use lardb::{
    Cluster, DataType, Database, DatabaseConfig, Executor, Matrix, OptimizerConfig,
    Partitioning, Row, Schema, Value,
};
use lardb_planner::physical::PhysicalPlanner;
use lardb_sql::{parse_statement, Binder, Statement};
use lardb_storage::gen;

fn rst_db(config: OptimizerConfig) -> Database {
    let db = Database::with_config(DatabaseConfig {
        workers: 4,
        optimizer: config,
        ..DatabaseConfig::default()
    });
    db.create_table(
        "R",
        Schema::from_pairs(&[
            ("r_rid", DataType::Integer),
            ("r_matrix", DataType::Matrix(Some(2), Some(1000))),
        ]),
        Partitioning::RoundRobin,
    )
    .unwrap();
    db.create_table(
        "S",
        Schema::from_pairs(&[
            ("s_sid", DataType::Integer),
            ("s_matrix", DataType::Matrix(Some(1000), Some(2))),
        ]),
        Partitioning::RoundRobin,
    )
    .unwrap();
    db.create_table(
        "T",
        Schema::from_pairs(&[("t_rid", DataType::Integer), ("t_sid", DataType::Integer)]),
        Partitioning::RoundRobin,
    )
    .unwrap();
    for i in 0..50i64 {
        db.insert_rows(
            "R",
            [Row::new(vec![
                Value::Integer(i),
                Value::matrix(Matrix::filled(2, 1000, 0.5)),
            ])],
        )
        .unwrap();
        db.insert_rows(
            "S",
            [Row::new(vec![
                Value::Integer(i),
                Value::matrix(Matrix::filled(1000, 2, 0.5)),
            ])],
        )
        .unwrap();
    }
    for k in 0..1000i64 {
        db.insert_rows("T", [Row::new(vec![Value::Integer(k % 50), Value::Integer((k * 3) % 50)])])
            .unwrap();
    }
    db
}

const RST: &str = "SELECT matrix_multiply(r_matrix, s_matrix) AS prod
 FROM R, S, T WHERE r_rid = t_rid AND s_sid = t_sid";

/// §4.1: size-aware plan vs blind plan, measured end to end.
fn bench_size_inference(c: &mut Criterion) {
    let mut g = c.benchmark_group("optimizer_41");
    g.sample_size(10);
    let smart = rst_db(OptimizerConfig::default());
    g.bench_function("size_aware", |b| b.iter(|| smart.query(RST).unwrap()));
    let blind = rst_db(OptimizerConfig { size_inference: false, ..Default::default() });
    g.bench_function("blind", |b| b.iter(|| blind.query(RST).unwrap()));
    let no_early =
        rst_db(OptimizerConfig { early_projection: false, ..Default::default() });
    g.bench_function("no_early_projection", |b| b.iter(|| no_early.query(RST).unwrap()));
    g.finish();
}

/// Join→aggregate fusion: tuple-based Gram with and without the pipelined
/// path (without it, the join output materializes).
fn bench_fusion(c: &mut Criterion) {
    let mut g = c.benchmark_group("fusion");
    g.sample_size(10);
    let db = Database::new(4);
    db.create_table(
        "x",
        Schema::from_pairs(&[
            ("row_index", DataType::Integer),
            ("col_index", DataType::Integer),
            ("value", DataType::Double),
        ]),
        Partitioning::RoundRobin,
    )
    .unwrap();
    db.insert_rows("x", gen::tuple_rows(3, 2000, 20)).unwrap();

    let sql = "SELECT x1.col_index, x2.col_index, SUM(x1.value * x2.value) AS v
               FROM x AS x1, x AS x2
               WHERE x1.row_index = x2.row_index
               GROUP BY x1.col_index, x2.col_index";
    let Statement::Select(sel) = parse_statement(sql).unwrap() else { unreachable!() };
    let logical = Binder::new(db.catalog()).bind_select(&sel).unwrap();
    let optimizer = lardb::Optimizer::with_defaults(db.catalog());
    let optimized = optimizer.optimize(logical).unwrap();
    let mut pp = PhysicalPlanner::new(db.catalog(), db.catalog());
    let physical = pp.plan_gathered(&optimized).unwrap();

    for fuse in [true, false] {
        let name = if fuse { "fused" } else { "materialized" };
        g.bench_function(name, |b| {
            b.iter(|| {
                let exec = Executor::new(db.catalog(), Cluster::new(4)).with_fusion(fuse);
                exec.execute(&physical).unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_size_inference, bench_fusion);

/// `--profile-json PATH` from argv, ignoring the flags `cargo bench`
/// itself forwards (`--bench`, filters, ...).
fn profile_json_path() -> Option<String> {
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        if flag == "--profile-json" {
            return argv.next();
        }
    }
    None
}

fn main() {
    benches();
    if let Some(path) = profile_json_path() {
        let db = rst_db(OptimizerConfig::default());
        db.query(RST).expect("RST query runs");
        let profile = db.last_profile().expect("query stores a profile");
        let doc = format!("{{\"bench\":\"ablations\",\"profile\":{}}}", profile.to_json());
        match std::fs::write(&path, doc) {
            Ok(()) => println!("wrote query profile to {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
