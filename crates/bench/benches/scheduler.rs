//! Scheduler ablation: morsel-driven persistent pool vs per-partition
//! thread spawning.
//!
//! Three axes from the scheduling design notes:
//!   * pool vs spawn on **uniform** partitions — pool should at least
//!     match spawn (no regression from queueing overhead);
//!   * pool vs spawn on **skewed** partitions (one partition holding 90%
//!     of the rows) — work stealing should beat the straggler-bound
//!     spawn baseline;
//!   * the 100-blocks-on-80-cores shape — a GEMM whose output tiles into
//!     100 cache blocks scheduled onto an 80-worker pool, the classic
//!     fragmentation case where static 1-block-per-thread assignment
//!     leaves 20 workers idle for the second wave.
//!
//! With `--profile-json PATH` the harness re-times the skewed case once
//! per scheduler and writes the pool-vs-spawn comparison (plus the pool's
//! morsel/steal counters) as JSON.

use criterion::{criterion_group, Criterion};
use lardb::{
    DataType, Database, DatabaseConfig, Matrix, Partitioning, Row, SchedulerMode,
    Schema, Value,
};
use lardb_la::gemm::{gemm_acc_dense, gemm_acc_pooled};
use lardb_pool::WorkerPool;

const SKEWED_ROWS: usize = 40_000;
const GROUPS: i64 = 32;

/// `skew = true` hashes 90% of rows onto one key (one hot partition);
/// otherwise keys are spread evenly across partitions.
fn scheduler_db(scheduler: SchedulerMode, skew: bool) -> Database {
    let db = Database::with_config(DatabaseConfig {
        workers: 4,
        scheduler,
        morsel_rows: 512,
        pool_workers: Some(4),
        ..DatabaseConfig::default()
    });
    db.create_table(
        "events",
        Schema::from_pairs(&[
            ("k", DataType::Integer),
            ("g", DataType::Integer),
            ("v", DataType::Double),
        ]),
        Partitioning::Hash(0),
    )
    .unwrap();
    let rows = (0..SKEWED_ROWS as i64).map(|i| {
        let k = if skew && i % 10 != 0 { 0 } else { i };
        Row::new(vec![
            Value::Integer(k),
            Value::Integer(i % GROUPS),
            Value::Double(i as f64 * 0.125),
        ])
    });
    db.insert_rows("events", rows).unwrap();
    db
}

const QUERY: &str =
    "SELECT g, COUNT(*) AS c, SUM(v * v + v) AS s FROM events WHERE k >= 0 GROUP BY g";

fn bench_pool_vs_spawn(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduler");
    g.sample_size(10);
    for (label, skew) in [("uniform", false), ("skewed", true)] {
        for mode in [SchedulerMode::Pool, SchedulerMode::Spawn] {
            let db = scheduler_db(mode, skew);
            g.bench_function(format!("{label}/{mode:?}"), |b| {
                b.iter(|| db.query(QUERY).unwrap())
            });
        }
    }
    g.finish();
}

/// 100 output blocks on an 80-worker pool: C (1280×1280) += A·B tiles
/// into a 10×10 grid of 128×128 morsels. Spawn-style static assignment
/// would strand 20 workers during the remainder wave; the shared deque
/// keeps them fed.
fn bench_gemm_blocks(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm_blocks");
    g.sample_size(10);
    let m = 1280;
    let k = 48;
    let a: Vec<f64> = (0..m * k).map(|i| (i % 17) as f64 * 0.5).collect();
    let b: Vec<f64> = (0..k * m).map(|i| (i % 13) as f64 * 0.25).collect();
    let am = Matrix::from_vec(m, k, a).unwrap();
    let bm = Matrix::from_vec(k, m, b).unwrap();

    g.bench_function("inline", |bch| {
        bch.iter(|| {
            let mut out = Matrix::zeros(m, m);
            gemm_acc_dense(&am, &bm, &mut out);
            out
        })
    });
    let pool = WorkerPool::new(80);
    g.bench_function("pool80", |bch| {
        bch.iter(|| {
            let mut out = Matrix::zeros(m, m);
            gemm_acc_pooled(&pool, &am, &bm, &mut out);
            out
        })
    });
    g.finish();
}

criterion_group!(benches, bench_pool_vs_spawn, bench_gemm_blocks);

fn profile_json_path() -> Option<String> {
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        if flag == "--profile-json" {
            return argv.next();
        }
    }
    None
}

/// Median wall time of `runs` executions, in milliseconds.
fn time_ms(db: &Database, runs: usize) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t0 = std::time::Instant::now();
            db.query(QUERY).unwrap();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|x, y| x.total_cmp(y));
    samples[samples.len() / 2]
}

fn main() {
    benches();
    if let Some(path) = profile_json_path() {
        let pool_db = scheduler_db(SchedulerMode::Pool, true);
        let spawn_db = scheduler_db(SchedulerMode::Spawn, true);
        let pool_ms = time_ms(&pool_db, 5);
        let spawn_ms = time_ms(&spawn_db, 5);
        let counters: std::collections::HashMap<String, f64> = lardb_obs::global()
            .snapshot()
            .into_iter()
            .map(|s| (s.name, s.value))
            .collect();
        let doc = format!(
            "{{\"bench\":\"scheduler\",\"case\":\"skewed_90_10_w4\",\
             \"pool_ms\":{pool_ms:.3},\"spawn_ms\":{spawn_ms:.3},\
             \"speedup\":{:.3},\"pool_morsels\":{},\"pool_steals\":{}}}",
            spawn_ms / pool_ms,
            counters.get("pool.morsels").copied().unwrap_or(0.0),
            counters.get("pool.steals").copied().unwrap_or(0.0),
        );
        match std::fs::write(&path, &doc) {
            Ok(()) => println!("wrote scheduler profile to {path}: {doc}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
