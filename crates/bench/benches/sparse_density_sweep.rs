//! Sparse-kernel density sweep: SpMV and GEMM wall time as density
//! shrinks, dense baseline vs density-adaptive dispatch, plus the two
//! end-to-end iterative workloads (PageRank over an edge-built graph,
//! logistic-regression batch gradient descent) driven through SQL.
//!
//! The interesting curve is the crossover: at 50% density the adaptive
//! path stays near the dense loops, while at ≤1% the sparse kernels
//! must win by at least 5× (the CI artifact check). Both arms compute
//! the same float bits — `sparse_equivalence.rs` owns correctness; this
//! harness owns the speedup and the nnz-proportional byte evidence.
//!
//! With `--profile-json PATH` the harness re-times every arm once and
//! writes `{op, n, density, dense_ms, adaptive_ms, speedup}` records as
//! JSON (the CI artifact), plus shuffled-byte counts for the SQL arms.

use criterion::{criterion_group, Criterion};
use lardb::{
    dispatch, CooBuilder, DataType, Database, DatabaseConfig, DispatchMode, Matrix,
    Partitioning, Row, Schema, SchedulerMode, SparseMatrix, TransportMode, Value,
    Vector,
};

const DENSITIES: &[f64] = &[0.001, 0.01, 0.1, 0.5];
/// SpMV operand side (dense baseline: ~2.4M multiply-adds per run).
const SPMV_N: usize = 1536;
/// GEMM operand side (dense baseline: ~56M multiply-adds per run).
const GEMM_N: usize = 384;

fn rngish(seed: u64) -> impl FnMut() -> u64 {
    let mut s = seed | 1;
    move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    }
}

/// A `rows × cols` CSR matrix at roughly the given density, positive
/// 64ths so there is no cancellation.
fn sparse_matrix(seed: u64, rows: usize, cols: usize, density: f64) -> SparseMatrix {
    let mut rng = rngish(seed);
    let mut b = CooBuilder::new();
    let target = ((rows * cols) as f64 * density).ceil() as usize;
    for _ in 0..target {
        b.push(
            (rng() as usize % rows) as i64,
            (rng() as usize % cols) as i64,
            (rng() % 2000 + 1) as f64 / 64.0,
        )
        .unwrap();
    }
    b.build(rows, cols).unwrap()
}

fn dense_vector(n: usize) -> Vector {
    Vector::from_vec((0..n).map(|i| (i as f64 + 1.0) / 8.0).collect())
}

/// One SpMV the way the engine dispatches it: sparse kernel when the
/// dispatch layer keeps the tile sparse, densify-then-dense otherwise.
fn spmv_arm(m: &SparseMatrix, dense: &Matrix, x: &Vector, mode: DispatchMode) -> f64 {
    dispatch::set_dispatch_mode(mode);
    let y = if dispatch::keep_sparse(m.density()) {
        m.spmv(x).unwrap()
    } else {
        dense.matrix_vector_multiply(x).unwrap()
    };
    y.as_slice()[0]
}

fn gemm_arm(
    a: &SparseMatrix,
    b: &SparseMatrix,
    ad: &Matrix,
    bd: &Matrix,
    mode: DispatchMode,
) -> f64 {
    dispatch::set_dispatch_mode(mode);
    if dispatch::keep_sparse(a.density()) {
        a.multiply_sparse(b).unwrap().sum_elements()
    } else {
        ad.multiply(bd).unwrap().sum_elements()
    }
}

fn median_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = std::time::Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|x, y| x.total_cmp(y));
    samples[samples.len() / 2]
}

fn bench_density_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("sparse_density_sweep");
    g.sample_size(10);
    let x = dense_vector(SPMV_N);
    for &density in DENSITIES {
        let m = sparse_matrix(0x5eed ^ density.to_bits(), SPMV_N, SPMV_N, density);
        let md = m.to_dense();
        g.bench_function(format!("spmv/dense/d{density}"), |b| {
            b.iter(|| spmv_arm(&m, &md, &x, DispatchMode::Dense))
        });
        g.bench_function(format!("spmv/adaptive/d{density}"), |b| {
            b.iter(|| spmv_arm(&m, &md, &x, DispatchMode::Adaptive))
        });

        let a = sparse_matrix(0xa ^ density.to_bits(), GEMM_N, GEMM_N, density);
        let b2 = sparse_matrix(0xb ^ density.to_bits(), GEMM_N, GEMM_N, density);
        let (ad, bd) = (a.to_dense(), b2.to_dense());
        g.bench_function(format!("gemm/dense/d{density}"), |b| {
            b.iter(|| gemm_arm(&a, &b2, &ad, &bd, DispatchMode::Dense))
        });
        g.bench_function(format!("gemm/adaptive/d{density}"), |b| {
            b.iter(|| gemm_arm(&a, &b2, &ad, &bd, DispatchMode::Adaptive))
        });
    }
    g.finish();
    dispatch::set_dispatch_mode(DispatchMode::Adaptive);
}

criterion_group!(benches, bench_density_sweep);

// ---------------------------------------------------------------------
// End-to-end iterative workloads, driven through SQL.
// ---------------------------------------------------------------------

fn workload_db(mode: DispatchMode, tag: &str) -> Database {
    Database::with_config(DatabaseConfig {
        workers: 2,
        scheduler: SchedulerMode::Pool,
        transport: TransportMode::Serialized,
        pool_workers: Some(4),
        mem: Some(0),
        spill_dir: Some(std::env::temp_dir().join(format!(
            "lardb-bench-sparse-{tag}-{}",
            std::process::id()
        ))),
        sparse_dispatch: Some(mode),
        ..DatabaseConfig::default()
    })
}

/// Column-stochastic adjacency for a deterministic graph with average
/// out-degree ~4 (density ≈ 4/n).
fn stochastic_graph(n: usize) -> SparseMatrix {
    let mut rng = rngish(0x9a9a);
    let mut out: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (src, targets) in out.iter_mut().enumerate() {
        targets.push((src * 7 + 1) % n);
        for _ in 0..(rng() % 6) {
            targets.push(rng() as usize % n);
        }
        targets.sort_unstable();
        targets.dedup();
    }
    let mut b = CooBuilder::new();
    for (src, targets) in out.iter().enumerate() {
        let w = 1.0 / targets.len() as f64;
        for &dst in targets {
            b.push(dst as i64, src as i64, w).unwrap();
        }
    }
    b.build(n, n).unwrap()
}

/// Runs `iters` damped PageRank steps through SQL SpMV. Returns
/// (wall ms, shuffled bytes, final L1 delta).
fn pagerank_run(
    m: &SparseMatrix,
    sparse: bool,
    mode: DispatchMode,
    iters: usize,
) -> (f64, usize, f64) {
    let n = m.rows();
    let db = workload_db(mode, if sparse { "pr-s" } else { "pr-d" });
    db.create_table(
        "graph",
        Schema::from_pairs(&[("m", DataType::Matrix(Some(n), Some(n)))]),
        Partitioning::Hash(0),
    )
    .unwrap();
    let cell =
        if sparse { Value::sparse_matrix(m.clone()) } else { Value::matrix(m.to_dense()) };
    db.insert_rows("graph", std::iter::once(Row::new(vec![cell]))).unwrap();

    dispatch::set_dispatch_mode(mode);
    let mut rank = vec![1.0 / n as f64; n];
    let mut delta = f64::INFINITY;
    let mut shuffled = 0usize;
    let t0 = std::time::Instant::now();
    for k in 0..iters {
        let table = format!("rank_{k}");
        db.create_table(
            &table,
            Schema::from_pairs(&[("x", DataType::Vector(Some(n)))]),
            Partitioning::Hash(0),
        )
        .unwrap();
        db.insert_rows(
            &table,
            std::iter::once(Row::new(vec![Value::vector(Vector::from_vec(rank.clone()))])),
        )
        .unwrap();
        let r = db
            .query(&format!(
                "SELECT matrix_vector_multiply(g.m, r.x) AS y FROM graph AS g, {table} AS r"
            ))
            .unwrap();
        shuffled += r.stats.total_bytes_shuffled();
        let y = r.rows[0].value(0).as_vector().unwrap();
        let next: Vec<f64> =
            y.as_slice().iter().map(|&mv| 0.85 * mv + 0.15 / n as f64).collect();
        delta = next.iter().zip(&rank).map(|(a, b)| (a - b).abs()).sum();
        rank = next;
    }
    (t0.elapsed().as_secs_f64() * 1e3, shuffled, delta)
}

/// Runs `iters` logistic-regression gradient steps (`z = X·w`,
/// `g = Xᵀ·(σ(z) − y)`) through SQL. Returns (wall ms, final loss).
fn logreg_run(
    x: &SparseMatrix,
    y: &[f64],
    sparse: bool,
    mode: DispatchMode,
    iters: usize,
) -> (f64, f64) {
    let (rows, feats) = x.shape();
    let db = workload_db(mode, if sparse { "lr-s" } else { "lr-d" });
    db.create_table(
        "feats",
        Schema::from_pairs(&[("m", DataType::Matrix(Some(rows), Some(feats)))]),
        Partitioning::Hash(0),
    )
    .unwrap();
    let cell =
        if sparse { Value::sparse_matrix(x.clone()) } else { Value::matrix(x.to_dense()) };
    db.insert_rows("feats", std::iter::once(Row::new(vec![cell]))).unwrap();

    dispatch::set_dispatch_mode(mode);
    let spmv = |k: usize, tag: &str, v: &[f64], transpose: bool| -> Vec<f64> {
        let table = format!("v_{tag}_{k}");
        db.create_table(
            &table,
            Schema::from_pairs(&[("x", DataType::Vector(Some(v.len())))]),
            Partitioning::Hash(0),
        )
        .unwrap();
        db.insert_rows(
            &table,
            std::iter::once(Row::new(vec![Value::vector(Vector::from_vec(v.to_vec()))])),
        )
        .unwrap();
        let expr = if transpose {
            "matrix_vector_multiply(trans_matrix(f.m), r.x)"
        } else {
            "matrix_vector_multiply(f.m, r.x)"
        };
        let r = db
            .query(&format!("SELECT {expr} AS y FROM feats AS f, {table} AS r"))
            .unwrap();
        r.rows[0].value(0).as_vector().unwrap().as_slice().to_vec()
    };

    let sigmoid = |z: f64| 1.0 / (1.0 + (-z).exp());
    let mut w = vec![0.0f64; feats];
    let mut last_loss = f64::INFINITY;
    let t0 = std::time::Instant::now();
    for k in 0..iters {
        let z = spmv(k, "z", &w, false);
        let p: Vec<f64> = z.iter().map(|&z| sigmoid(z)).collect();
        last_loss = p
            .iter()
            .zip(y)
            .map(|(&p, &yi)| {
                let p = p.clamp(1e-12, 1.0 - 1e-12);
                -(yi * p.ln() + (1.0 - yi) * (1.0 - p).ln())
            })
            .sum::<f64>()
            / rows as f64;
        let resid: Vec<f64> = p.iter().zip(y).map(|(&p, &yi)| p - yi).collect();
        let g = spmv(k, "g", &resid, true);
        for i in 0..feats {
            w[i] -= 0.05 / rows as f64 * g[i];
        }
    }
    (t0.elapsed().as_secs_f64() * 1e3, last_loss)
}

fn profile_json_path() -> Option<String> {
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        if flag == "--profile-json" {
            return argv.next();
        }
    }
    None
}

fn main() {
    benches();
    let Some(path) = profile_json_path() else { return };
    let mut records = Vec::new();

    // Kernel arms: dense baseline vs adaptive dispatch per density.
    let x = dense_vector(SPMV_N);
    for &density in DENSITIES {
        let m = sparse_matrix(0x5eed ^ density.to_bits(), SPMV_N, SPMV_N, density);
        let md = m.to_dense();
        let dense_ms = median_ms(7, || {
            std::hint::black_box(spmv_arm(&m, &md, &x, DispatchMode::Dense));
        });
        let adaptive_ms = median_ms(7, || {
            std::hint::black_box(spmv_arm(&m, &md, &x, DispatchMode::Adaptive));
        });
        records.push(format!(
            "{{\"op\":\"spmv\",\"n\":{SPMV_N},\"density\":{density},\"nnz\":{},\
             \"dense_ms\":{dense_ms:.4},\"adaptive_ms\":{adaptive_ms:.4},\
             \"speedup\":{:.2}}}",
            m.nnz(),
            dense_ms / adaptive_ms.max(1e-9),
        ));

        let a = sparse_matrix(0xa ^ density.to_bits(), GEMM_N, GEMM_N, density);
        let b = sparse_matrix(0xb ^ density.to_bits(), GEMM_N, GEMM_N, density);
        let (ad, bd) = (a.to_dense(), b.to_dense());
        let dense_ms = median_ms(5, || {
            std::hint::black_box(gemm_arm(&a, &b, &ad, &bd, DispatchMode::Dense));
        });
        let adaptive_ms = median_ms(5, || {
            std::hint::black_box(gemm_arm(&a, &b, &ad, &bd, DispatchMode::Adaptive));
        });
        records.push(format!(
            "{{\"op\":\"gemm\",\"n\":{GEMM_N},\"density\":{density},\"nnz\":{},\
             \"dense_ms\":{dense_ms:.4},\"adaptive_ms\":{adaptive_ms:.4},\
             \"speedup\":{:.2}}}",
            a.nnz(),
            dense_ms / adaptive_ms.max(1e-9),
        ));
    }

    // Exchange-byte arm: the tiled matmul repartitions both tables' tile
    // cells over a serialized transport, so the shuffled-byte counters
    // are the nnz-proportionality evidence — at 1% density the sparse
    // store must ship far fewer wire bytes than the dense twin.
    let (sparse_bytes, dense_bytes) = {
        let tile_join = |sparse: bool, mode: DispatchMode| -> usize {
            let db = workload_db(mode, if sparse { "tj-s" } else { "tj-d" });
            let schema = Schema::from_pairs(&[
                ("tr", DataType::Integer),
                ("tc", DataType::Integer),
                ("mat", DataType::Matrix(Some(64), Some(64))),
            ]);
            for (name, base) in [("ta", 0x71a0u64), ("tb", 0x71b0)] {
                db.create_table(name, schema.clone(), Partitioning::Hash(0)).unwrap();
                let mut rows = Vec::new();
                for tr in 0..4i64 {
                    for tc in 0..4i64 {
                        let t = sparse_matrix(
                            base ^ (tr as u64 * 31 + tc as u64),
                            64,
                            64,
                            0.01,
                        );
                        let cell = if sparse {
                            Value::sparse_matrix(t)
                        } else {
                            Value::matrix(t.to_dense())
                        };
                        rows.push(Row::new(vec![
                            Value::Integer(tr),
                            Value::Integer(tc),
                            cell,
                        ]));
                    }
                }
                db.insert_rows(name, rows.into_iter()).unwrap();
            }
            dispatch::set_dispatch_mode(mode);
            let r = db
                .query(
                    "SELECT a.tr, b.tc, SUM(matrix_multiply(a.mat, b.mat)) AS m
                     FROM ta AS a, tb AS b WHERE a.tc = b.tr GROUP BY a.tr, b.tc",
                )
                .unwrap();
            r.stats.total_bytes_shuffled()
        };
        (tile_join(true, DispatchMode::Adaptive), tile_join(false, DispatchMode::Dense))
    };
    records.push(format!(
        "{{\"op\":\"tile_join_shuffle\",\"tiles\":\"4x4x64\",\"density\":0.01,\
         \"sparse_shuffle_bytes\":{sparse_bytes},\
         \"dense_shuffle_bytes\":{dense_bytes},\
         \"bytes_ratio\":{:.1}}}",
        dense_bytes as f64 / (sparse_bytes as f64).max(1.0),
    ));

    // End-to-end arms: same trajectories, different representations.
    let m = stochastic_graph(1200);
    let iters = 12;
    let (dense_ms, dense_bytes, delta_d) =
        pagerank_run(&m, false, DispatchMode::Dense, iters);
    let (adaptive_ms, sparse_bytes, delta_s) =
        pagerank_run(&m, true, DispatchMode::Adaptive, iters);
    assert_eq!(delta_d, delta_s, "PageRank arms diverged");
    records.push(format!(
        "{{\"op\":\"pagerank\",\"n\":{},\"density\":{:.6},\"iters\":{iters},\
         \"dense_ms\":{dense_ms:.3},\"adaptive_ms\":{adaptive_ms:.3},\
         \"speedup\":{:.2},\"dense_shuffle_bytes\":{dense_bytes},\
         \"sparse_shuffle_bytes\":{sparse_bytes},\"l1_delta\":{delta_s:.3e}}}",
        m.rows(),
        m.density(),
        dense_ms / adaptive_ms.max(1e-9),
    ));

    let xm = sparse_matrix(0x10919, 2000, 64, 0.01);
    let mut rng = rngish(0x1abe1);
    let y: Vec<f64> = (0..2000).map(|_| (rng() % 2) as f64).collect();
    let lr_iters = 8;
    let (dense_ms, loss_d) = logreg_run(&xm, &y, false, DispatchMode::Dense, lr_iters);
    let (adaptive_ms, loss_s) =
        logreg_run(&xm, &y, true, DispatchMode::Adaptive, lr_iters);
    assert_eq!(loss_d, loss_s, "logreg arms diverged");
    records.push(format!(
        "{{\"op\":\"logreg\",\"rows\":2000,\"feats\":64,\"density\":0.01,\
         \"iters\":{lr_iters},\"dense_ms\":{dense_ms:.3},\
         \"adaptive_ms\":{adaptive_ms:.3},\"speedup\":{:.2},\
         \"loss\":{loss_s:.6}}}",
        dense_ms / adaptive_ms.max(1e-9),
    ));

    dispatch::set_dispatch_mode(DispatchMode::Adaptive);
    let doc = format!(
        "{{\"bench\":\"sparse_density_sweep\",\"densities\":[0.001,0.01,0.1,0.5],\
         \"runs\":[{}]}}",
        records.join(",")
    );
    match std::fs::write(&path, &doc) {
        Ok(()) => println!("wrote sparse density sweep profile to {path}: {doc}"),
        Err(e) => {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
    }
}
