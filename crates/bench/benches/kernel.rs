//! Criterion micro-benchmarks for the linear-algebra kernel — the
//! "BLAS/LAPACK stand-in" whose constants every higher-level number rests
//! on, including the cache-blocking ablation called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lardb_la::gemm::{gemm_acc_dense, gemm_acc_skipzero, gemm_naive};
use lardb_la::{Matrix, Vector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_matrix(seed: u64, r: usize, c: usize) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(r, c, |_, _| rng.gen_range(-1.0..1.0))
}

/// A matrix with roughly `zero_pct`% zero entries (the sparse-tile shape
/// the skip-zero inner loop is for).
fn sparse_matrix(seed: u64, r: usize, c: usize, zero_pct: u32) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(r, c, |_, _| {
        if rng.gen_range(0u32..100) < zero_pct {
            0.0
        } else {
            rng.gen_range(-1.0..1.0)
        }
    })
}

fn bench_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm");
    for &n in &[64usize, 128, 256] {
        let a = random_matrix(1, n, n);
        let b = random_matrix(2, n, n);
        g.bench_with_input(BenchmarkId::new("blocked", n), &n, |bch, _| {
            bch.iter(|| a.multiply(&b).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("naive", n), &n, |bch, _| {
            bch.iter(|| gemm_naive(&a, &b))
        });
    }
    g.finish();
}

/// Density ablation: the branch-free dense inner loop vs the zero-skip
/// (branchy) one, on dense and ~60%-zero operands. Motivates the density
/// heuristic in `gemm_acc`: skipping wins on sparse tiles and loses on
/// dense ones.
fn bench_gemm_density(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm_density");
    let n = 128usize;
    let b = random_matrix(20, n, n);
    for (label, a) in
        [("dense", random_matrix(21, n, n)), ("sparse60", sparse_matrix(22, n, n, 60))]
    {
        g.bench_with_input(BenchmarkId::new(format!("{label}_branchfree"), n), &n, |bch, _| {
            bch.iter(|| {
                let mut out = Matrix::zeros(n, n);
                gemm_acc_dense(&a, &b, &mut out);
                out
            })
        });
        g.bench_with_input(BenchmarkId::new(format!("{label}_skipzero"), n), &n, |bch, _| {
            bch.iter(|| {
                let mut out = Matrix::zeros(n, n);
                gemm_acc_skipzero(&a, &b, &mut out);
                out
            })
        });
    }
    g.finish();
}

fn bench_gram_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("gram");
    for &d in &[10usize, 100] {
        let x = random_matrix(3, 1000, d);
        // syrk (exploits symmetry) vs explicit transpose-multiply
        g.bench_with_input(BenchmarkId::new("syrk", d), &d, |bch, _| {
            bch.iter(|| x.gram())
        });
        g.bench_with_input(BenchmarkId::new("t_mul", d), &d, |bch, _| {
            bch.iter(|| x.transpose().multiply(&x).unwrap())
        });
        // the per-row path the vector-based SQL takes
        let rows: Vec<Vector> = (0..x.rows()).map(|i| x.row_vector(i).unwrap()).collect();
        g.bench_with_input(BenchmarkId::new("outer_sum", d), &d, |bch, _| {
            bch.iter(|| {
                let mut acc = Matrix::zeros(d, d);
                for r in &rows {
                    r.outer_product_into(r, &mut acc).unwrap();
                }
                acc
            })
        });
    }
    g.finish();
}

fn bench_solvers(c: &mut Criterion) {
    let mut g = c.benchmark_group("solve");
    for &n in &[10usize, 100] {
        let b = random_matrix(4, n, n);
        let spd = b.multiply(&b.transpose()).unwrap().add(&Matrix::identity(n).scalar_mul(n as f64)).unwrap();
        let rhs = Vector::from_fn(n, |i| i as f64);
        g.bench_with_input(BenchmarkId::new("lu_inverse", n), &n, |bch, _| {
            bch.iter(|| spd.inverse().unwrap())
        });
        g.bench_with_input(BenchmarkId::new("lu_solve", n), &n, |bch, _| {
            bch.iter(|| spd.solve(&rhs).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("cholesky_solve", n), &n, |bch, _| {
            bch.iter(|| {
                lardb_la::CholeskyDecomposition::new(&spd).unwrap().solve(&rhs).unwrap()
            })
        });
    }
    g.finish();
}

fn bench_elementwise(c: &mut Criterion) {
    let v1 = Vector::from_fn(1000, |i| i as f64);
    let v2 = Vector::from_fn(1000, |i| (i * 2) as f64);
    c.bench_function("inner_product_1000", |b| {
        b.iter(|| v1.inner_product(&v2).unwrap())
    });
    let m = random_matrix(5, 512, 512);
    c.bench_function("transpose_512", |b| b.iter(|| m.transpose()));
    c.bench_function("matrix_add_in_place_512", |b| {
        let mut acc = Matrix::zeros(512, 512);
        b.iter(|| acc.add_in_place(&m).unwrap())
    });
}

criterion_group!(
    benches,
    bench_gemm,
    bench_gemm_density,
    bench_gram_kernels,
    bench_solvers,
    bench_elementwise
);
criterion_main!(benches);
