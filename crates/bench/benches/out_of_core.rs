//! Out-of-core ablation: the §3.4 chunked (tiled) matrix multiply under
//! shrinking memory budgets.
//!
//! The same `SUM(matrix_multiply(A_ik, B_kj)) GROUP BY i, j` query runs
//! with an unbounded governor and under 256 MiB and 64 MiB budgets that
//! force the hash-join build side and the running tile sums through the
//! Grace-partitioned spill path. The interesting numbers are the
//! slowdown-per-budget curve and the spill volume, not the absolute
//! times.
//!
//! With `--profile-json PATH` the harness re-times each budget once and
//! writes `{budget_mb, median_ms, spill_bytes, spill_files}` records as
//! JSON (the CI artifact).

use criterion::{criterion_group, Criterion};
use lardb::{
    DataType, Database, DatabaseConfig, Partitioning, Schema, SchedulerMode,
    TransportMode,
};
use lardb_storage::gen::tiled_matrix_rows;

/// 8×8 grid of 96×96 tiles: each table holds 64 tiles × 72 KiB ≈ 4.7 MiB,
/// so a 64 MiB budget leaves headroom while per-query concurrent
/// reservations (build side + 64 running 96×96 sums across 4 partitions)
/// still cross the line under contention; the tiny budget in
/// `spill_equivalence.rs` covers guaranteed spilling — here the point is
/// timing realistic budget pressure.
const TILES: usize = 8;
const TILE: usize = 96;

const QUERY: &str = "SELECT a.tr, b.tc, SUM(matrix_multiply(a.mat, b.mat)) AS m
                     FROM ta AS a, tb AS b WHERE a.tc = b.tr
                     GROUP BY a.tr, b.tc";

/// Budgets to sweep: unbounded, two comfortable budgets that only pay
/// governor accounting (the working set here is ~10 MiB), and a 4 MiB
/// budget under which the build side and tile sums genuinely spill.
/// `None` maps to `Some(0)` in `DatabaseConfig.mem` (explicitly
/// unbounded, dedicated governor), so the sweep ignores
/// `LARDB_MEM_BUDGET_MB` in the environment.
const BUDGETS_MB: &[(&str, Option<u64>)] = &[
    ("unbounded", None),
    ("256mb", Some(256)),
    ("64mb", Some(64)),
    ("4mb", Some(4)),
];

fn matmul_db(mem: Option<u64>) -> Database {
    let db = Database::with_config(DatabaseConfig {
        workers: 4,
        scheduler: SchedulerMode::Pool,
        transport: TransportMode::Pointer,
        pool_workers: Some(4),
        mem: Some(mem.unwrap_or(0)),
        spill_dir: Some(std::env::temp_dir().join(format!(
            "lardb-bench-ooc-{}",
            std::process::id()
        ))),
        ..DatabaseConfig::default()
    });
    let schema = Schema::from_pairs(&[
        ("tr", DataType::Integer),
        ("tc", DataType::Integer),
        ("mat", DataType::Matrix(Some(TILE), Some(TILE))),
    ]);
    for (name, seed) in [("ta", 7u64), ("tb", 11)] {
        db.create_table(name, schema.clone(), Partitioning::Hash(0)).unwrap();
        db.insert_rows(name, tiled_matrix_rows(seed, TILES, TILE))
            .unwrap();
    }
    db
}

fn bench_budget_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("out_of_core");
    g.sample_size(10);
    for &(label, mem) in BUDGETS_MB {
        let db = matmul_db(mem);
        g.bench_function(format!("chunked_matmul/{label}"), |b| {
            b.iter(|| db.query(QUERY).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_budget_sweep);

fn profile_json_path() -> Option<String> {
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        if flag == "--profile-json" {
            return argv.next();
        }
    }
    None
}

fn main() {
    benches();
    if let Some(path) = profile_json_path() {
        let mut records = Vec::new();
        for &(label, mem) in BUDGETS_MB {
            let db = matmul_db(mem);
            let mut samples = Vec::new();
            let mut spill_bytes = 0usize;
            let mut spill_files = 0usize;
            for _ in 0..5 {
                let t0 = std::time::Instant::now();
                let r = db.query(QUERY).unwrap();
                samples.push(t0.elapsed().as_secs_f64() * 1e3);
                spill_bytes = r.stats.total_spill_bytes();
                spill_files = r.stats.total_spill_files();
            }
            samples.sort_by(|x, y| x.total_cmp(y));
            let median_ms = samples[samples.len() / 2];
            records.push(format!(
                "{{\"budget\":\"{label}\",\"budget_mb\":{},\"median_ms\":{median_ms:.3},\
                 \"spill_bytes\":{spill_bytes},\"spill_files\":{spill_files}}}",
                mem.map_or(0, |m| m),
            ));
        }
        let doc = format!(
            "{{\"bench\":\"out_of_core\",\"case\":\"chunked_matmul_{TILES}x{TILES}x{TILE}\",\
             \"runs\":[{}]}}",
            records.join(",")
        );
        match std::fs::write(&path, &doc) {
            Ok(()) => println!("wrote out-of-core profile to {path}: {doc}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
