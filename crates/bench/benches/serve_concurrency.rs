//! Server concurrency ablation: query latency under 1 / 8 / 64
//! concurrent TCP clients, with a uniform and a skewed query mix.
//!
//! Each wave starts a fresh in-process server (loopback TCP, port 0),
//! spins up N client connections, and has every client run a fixed
//! number of queries. *Uniform* clients all run the same medium
//! aggregate; in the *skewed* mix every fourth client runs a heavy join
//! while the rest run cheap point lookups — the interesting question is
//! how much the heavy tail inflates the cheap queries' p99 once
//! admission control is the only thing between them and the worker pool.
//!
//! With `--profile-json PATH` the harness runs the full
//! clients × mix matrix once and writes
//! `{clients, mix, queries, p50_ms, p99_ms, rejected}` records as JSON
//! (the CI artifact). Saturated rejections are *counted*, not retried:
//! the admission queue is deliberately small so the 64-client skewed
//! wave shows typed backpressure instead of unbounded queueing.
//!
//! The profile also bounds the flight recorder's cost: an 8-client
//! uniform wave is run once with tracing disabled and once tracing
//! every query, and the two medians land in the JSON as `tracing`
//! records plus a top-level `tracing_overhead_pct`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, Criterion};
use lardb::{Database, DatabaseConfig};
use lardb_server::{Client, Server, ServerConfig, ServerError};

const ROWS: usize = 2_000;
const QUERIES_PER_CLIENT: usize = 4;

const CHEAP: &str = "SELECT v FROM pts WHERE id = 977";
const MEDIUM: &str = "SELECT grp, COUNT(*) AS n, SUM(v) AS s FROM pts GROUP BY grp";
const HEAVY: &str = "SELECT COUNT(*) AS n FROM pts AS a, pts AS b \
                     WHERE a.grp = b.grp AND a.v + b.v > 1.0e12";

fn seeded_db() -> Database {
    let db = Database::with_config(DatabaseConfig {
        workers: 4,
        pool_workers: Some(4),
        ..DatabaseConfig::default()
    });
    db.execute("CREATE TABLE pts (id INTEGER, grp INTEGER, v DOUBLE)").unwrap();
    let rows: Vec<String> = (0..ROWS)
        .map(|i| format!("({i}, {}, {})", i % 50, (i % 997) as f64 * 0.25))
        .collect();
    for chunk in rows.chunks(500) {
        db.execute(&format!("INSERT INTO pts VALUES {}", chunk.join(", "))).unwrap();
    }
    db
}

fn start_server() -> Server {
    Server::start(
        seeded_db(),
        ServerConfig {
            max_sessions: 80,
            max_concurrent: 4,
            queue_depth: 32,
            queue_wait_ms: 10_000,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback server")
}

/// One wave: `clients` connections, each running its mix-assigned query
/// `QUERIES_PER_CLIENT` times. Returns per-query latencies (ms) and the
/// number of Saturated rejections.
fn run_wave(addr: &str, clients: usize, skewed: bool) -> (Vec<f64>, usize) {
    let rejected = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let addr = addr.to_string();
            let rejected = Arc::clone(&rejected);
            let sql = if skewed {
                if c % 4 == 0 { HEAVY } else { CHEAP }
            } else {
                MEDIUM
            };
            std::thread::spawn(move || {
                let mut client =
                    Client::connect(&addr, &format!("t{}", c % 8), "").unwrap();
                let mut latencies = Vec::with_capacity(QUERIES_PER_CLIENT);
                for _ in 0..QUERIES_PER_CLIENT {
                    let t0 = Instant::now();
                    match client.query(sql) {
                        Ok(_) => latencies.push(t0.elapsed().as_secs_f64() * 1e3),
                        Err(ServerError::Saturated { .. }) => {
                            rejected.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("query failed under load: {e}"),
                    }
                }
                let _ = client.close();
                latencies
            })
        })
        .collect();
    let mut all = Vec::new();
    for h in handles {
        all.extend(h.join().expect("client thread panicked"));
    }
    (all, rejected.load(Ordering::Relaxed))
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn bench_client_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("serve_concurrency");
    g.sample_size(10);
    for &clients in &[1usize, 8] {
        for &(mix, skewed) in &[("uniform", false), ("skewed", true)] {
            let server = start_server();
            let addr = server.local_addr().to_string();
            g.bench_function(format!("wave/{clients}clients/{mix}"), |b| {
                b.iter(|| run_wave(&addr, clients, skewed))
            });
            server.shutdown();
        }
    }
    g.finish();
}

criterion_group!(benches, bench_client_sweep);

fn profile_json_path() -> Option<String> {
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        if flag == "--profile-json" {
            return argv.next();
        }
    }
    None
}

fn main() {
    benches();
    if let Some(path) = profile_json_path() {
        let mut records = Vec::new();
        for &clients in &[1usize, 8, 64] {
            for &(mix, skewed) in &[("uniform", false), ("skewed", true)] {
                let server = start_server();
                let addr = server.local_addr().to_string();
                let (mut latencies, rejected) = run_wave(&addr, clients, skewed);
                server.shutdown();
                latencies.sort_by(|x, y| x.total_cmp(y));
                let p50 = percentile(&latencies, 0.50);
                let p99 = percentile(&latencies, 0.99);
                records.push(format!(
                    "{{\"clients\":{clients},\"mix\":\"{mix}\",\
                     \"queries\":{},\"p50_ms\":{p50:.3},\"p99_ms\":{p99:.3},\
                     \"rejected\":{rejected}}}",
                    latencies.len(),
                ));
                println!(
                    "serve_concurrency {clients} clients {mix}: \
                     p50 {p50:.1} ms, p99 {p99:.1} ms, {rejected} rejected"
                );
            }
        }
        // Flight-recorder overhead: the same 8-client uniform wave with
        // tracing off, then tracing every query (sample 1). One warmup
        // wave each so connection setup doesn't pollute the medians.
        let rec = lardb_obs::recorder();
        let was_enabled = rec.enabled();
        let was_sample = rec.sample_every();
        let mut medians = Vec::new();
        for &(label, on) in &[("off", false), ("every-query", true)] {
            rec.set_enabled(on);
            rec.set_sample_every(1);
            let server = start_server();
            let addr = server.local_addr().to_string();
            let _ = run_wave(&addr, 8, false);
            let (mut latencies, _) = run_wave(&addr, 8, false);
            server.shutdown();
            latencies.sort_by(|x, y| x.total_cmp(y));
            let p50 = percentile(&latencies, 0.50);
            let p99 = percentile(&latencies, 0.99);
            records.push(format!(
                "{{\"clients\":8,\"mix\":\"uniform\",\"tracing\":\"{label}\",\
                 \"queries\":{},\"p50_ms\":{p50:.3},\"p99_ms\":{p99:.3},\
                 \"rejected\":0}}",
                latencies.len(),
            ));
            println!("serve_concurrency tracing {label}: p50 {p50:.1} ms, p99 {p99:.1} ms");
            medians.push(p50);
        }
        rec.set_enabled(was_enabled);
        rec.set_sample_every(was_sample);
        let overhead_pct = if medians[0] > 0.0 {
            (medians[1] / medians[0] - 1.0) * 100.0
        } else {
            0.0
        };
        println!("serve_concurrency tracing overhead: {overhead_pct:.1}% on p50");

        let doc = format!(
            "{{\"bench\":\"serve_concurrency\",\"queries_per_client\":{QUERIES_PER_CLIENT},\
             \"tracing_overhead_pct\":{overhead_pct:.2},\
             \"runs\":[{}]}}",
            records.join(",")
        );
        match std::fs::write(&path, &doc) {
            Ok(()) => println!("wrote serve-concurrency profile to {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
