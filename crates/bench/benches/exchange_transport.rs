//! Transport ablation: what does real serialization cost?
//!
//! The simulation's `pointer` exchanges hand `Arc` pointers between
//! threads and only *estimate* shuffle bytes; `serialized` mode encodes
//! every boundary-crossing batch through the `lardb-net` wire codec and
//! ships it over bounded channels, metering actual bytes. This bench
//! runs the vector-based Gram computation (`SUM(outer_product(x, x))`)
//! at the paper's three dimensionalities under both modes, isolating the
//! codec + channel overhead the simulation otherwise abstracts away.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lardb::{DataType, Database, Partitioning, Schema, TransportMode};
use lardb_storage::gen;

const N: usize = 400;
const WORKERS: usize = 4;

fn gram_db(dims: usize, transport: TransportMode) -> Database {
    let db = Database::new(WORKERS).with_transport(transport);
    db.create_table(
        "x_vm",
        Schema::from_pairs(&[
            ("id", DataType::Integer),
            ("value", DataType::Vector(Some(dims))),
        ]),
        Partitioning::RoundRobin,
    )
    .unwrap();
    db.insert_rows("x_vm", gen::vector_rows(42, N, dims)).unwrap();
    db
}

fn bench_exchange_transport(c: &mut Criterion) {
    let mut group = c.benchmark_group("exchange_transport");
    group.sample_size(10);
    for dims in [10usize, 100, 1000] {
        for transport in [TransportMode::Pointer, TransportMode::Serialized] {
            let db = gram_db(dims, transport);
            group.bench_with_input(
                BenchmarkId::new(format!("gram_{}", transport.label()), dims),
                &dims,
                |b, _| {
                    b.iter(|| {
                        db.query(
                            "SELECT SUM(outer_product(x.value, x.value)) AS g \
                             FROM x_vm AS x",
                        )
                        .unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_exchange_transport);
criterion_main!(benches);
