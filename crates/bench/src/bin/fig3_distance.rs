//! Figure 3 — the distance computation, six platforms × dims.
//!
//! The paper reports "Fail" for tuple-based SimSQL at every
//! dimensionality; our harness instead runs the tuple formulation at a
//! reduced row count when the full size would blow the materialization
//! budget, and marks the cell. Block size for block-based SQL follows the
//! paper's 1000 unless `--block` overrides it; for small `--n-dist` the
//! harness shrinks it so there are enough blocks to distribute.
//!
//! ```text
//! cargo run --release -p lardb-bench --bin fig3_distance [-- --n-dist 1500 --dims 10,100,1000]
//! ```

use lardb_bench::{platforms, print_figure_table, Args, Workload, ALL_PLATFORMS};

fn main() {
    let args = Args::from_env();
    // Ensure several blocks exist even at laptop scale.
    let block = args.block.min((args.n_dist / 8).max(1));
    println!(
        "Figure 3: Distance computation (n = {}, workers = {}, block = {block}, seed = {})",
        args.n_dist, args.workers, args.seed
    );
    let rows: Vec<_> = ALL_PLATFORMS
        .iter()
        .map(|&p| {
            let outcomes: Vec<_> = args
                .dims
                .iter()
                .map(|&d| {
                    eprintln!("running {:?} at {d} dims …", p);
                    platforms::run_with_opts(
                        p,
                        Workload::Distance,
                        args.n_dist,
                        d,
                        block,
                        args.workers,
                        args.seed,
                        args.engine_opts(),
                    )
                })
                .collect();
            (p, outcomes)
        })
        .collect();
    print_figure_table("Distance Computation", &args.dims, &rows);
}
