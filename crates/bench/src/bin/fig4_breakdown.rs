//! Figure 4 — per-operation breakdown of the Gram computation, tuple-based
//! vs vector-based.
//!
//! The paper's Figure 4 shows that in the tuple-based computation the
//! *aggregation* (not the join) dominates: 5×10⁵ thousand-dimensional
//! points explode into 5×10¹¹ joined tuples that all flow into the
//! GROUP BY. This harness re-runs both formulations and prints wall time
//! attributed to scans, joins, aggregation and exchanges from the
//! executor's per-operator statistics.
//!
//! ```text
//! cargo run --release -p lardb-bench --bin fig4_breakdown [-- --n 20k --dims 100]
//! ```
//!
//! With `--profile-json PATH` the harness also writes a machine-readable
//! JSON document containing, per platform, the merged query-lifecycle
//! profile (parse/bind/optimize/plan/execute stage timings plus
//! per-operator estimate-vs-actual records).

use std::time::Duration;

use lardb_bench::{format_duration, platforms, Args, Platform, Workload};

fn bucket(label: &str) -> &'static str {
    if label.starts_with("TableScan") {
        "scan"
    } else if label.contains("Join") {
        "join"
    } else if label.starts_with("HashAggregate") {
        "aggregation"
    } else if label.starts_with("Exchange") {
        "exchange"
    } else {
        "other"
    }
}

fn main() {
    let args = Args::from_env();
    // Figure 4 used 1000-dimensional data on a five-machine cluster; the
    // default here uses the sweep's largest dims value.
    let dims = args.dims.iter().copied().max().unwrap_or(100);
    println!(
        "Figure 4: Gram computation per-operation breakdown (n = {}, dims = {dims}, workers = {})",
        args.n, args.workers
    );

    // (platform label, QueryProfile JSON) pairs for --profile-json.
    let mut profiles: Vec<(String, String)> = Vec::new();
    for platform in [Platform::TupleSimSql, Platform::VectorSimSql] {
        let out = platforms::run_with_transport(
            platform,
            Workload::Gram,
            args.n,
            dims,
            args.block,
            args.workers,
            args.seed,
            args.transport,
        );
        let Some(total) = out.duration else {
            println!("\n{}: Fail ({:?})", platform.label(), out.note);
            continue;
        };
        if let Some(profile) = &out.profile {
            profiles.push((platform.label().to_string(), profile.to_json()));
        }
        println!(
            "\n{} — total {}{}",
            platform.label(),
            format_duration(total),
            out.note.as_deref().map(|n| format!("  [{n}]")).unwrap_or_default()
        );
        let Some(stats) = out.stats else { continue };
        let mut buckets: std::collections::BTreeMap<&str, Duration> = Default::default();
        for (label, wall) in stats.time_by_label() {
            *buckets.entry(bucket(&label)).or_default() += wall;
        }
        let sum: Duration = buckets.values().sum();
        for (b, wall) in &buckets {
            let pct = if sum.as_nanos() > 0 {
                wall.as_secs_f64() / sum.as_secs_f64() * 100.0
            } else {
                0.0
            };
            println!("  {b:<12} {:>14}  {pct:5.1}%", format!("{:.1} ms", wall.as_secs_f64() * 1e3));
        }
        println!(
            "  rows shuffled: {}   bytes shuffled: {:.2} MB",
            stats.total_rows_shuffled(),
            stats.total_bytes_shuffled() as f64 / 1e6
        );
    }

    println!(
        "\nPaper's observation to check: in the tuple-based run the dominant cost is the \
         aggregation, not the join (§5, Figure 4)."
    );

    if let Some(path) = &args.profile_json {
        let runs: Vec<String> = profiles
            .iter()
            .map(|(label, json)| format!("{{\"platform\":\"{label}\",\"profile\":{json}}}"))
            .collect();
        let doc = format!("{{\"bench\":\"fig4_breakdown\",\"runs\":[{}]}}", runs.join(","));
        match std::fs::write(path, doc) {
            Ok(()) => println!("wrote query profiles to {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
