//! Figure 4 — per-operation breakdown of the Gram computation, tuple-based
//! vs vector-based.
//!
//! The paper's Figure 4 shows that in the tuple-based computation the
//! *aggregation* (not the join) dominates: 5×10⁵ thousand-dimensional
//! points explode into 5×10¹¹ joined tuples that all flow into the
//! GROUP BY. This harness re-runs both formulations and prints wall time
//! attributed to scans, joins, aggregation and exchanges from the
//! executor's per-operator statistics.
//!
//! ```text
//! cargo run --release -p lardb-bench --bin fig4_breakdown [-- --n 20k --dims 100]
//! ```
//!
//! With `--profile-json PATH` the harness also writes a machine-readable
//! JSON document containing, per platform, the merged query-lifecycle
//! profile (parse/bind/optimize/plan/execute stage timings plus
//! per-operator estimate-vs-actual records).
//!
//! The harness additionally runs a **filter-heavy segment ablation**: a
//! nearest-centroid prefilter executed under both expression engines
//! (`compiled` vectorized bytecode vs the row-at-a-time `interpret`
//! tree walker), comparing the Filter operator's attributed wall time.
//! The comparison is printed and included in the profile JSON under
//! `filter_segment`.

use std::time::Duration;

use lardb::{
    DataType, Database, DatabaseConfig, ExprEngine, Partitioning, Row, Schema, Value,
};
use lardb_bench::{format_duration, platforms, Args, Platform, Workload};

fn bucket(label: &str) -> &'static str {
    if label.starts_with("TableScan") {
        "scan"
    } else if label.contains("Join") {
        "join"
    } else if label.starts_with("HashAggregate") {
        "aggregation"
    } else if label.starts_with("Exchange") {
        "exchange"
    } else {
        "other"
    }
}

/// Rows in the filter-ablation table. Fixed (not tied to `--n`) so the
/// segment timing is comparable across sweep configurations.
const ABLATION_ROWS: i64 = 60_000;

/// Filter-heavy probe: a k-means-style nearest-centroid prefilter —
/// squared distance to each of four centroids, OR'd. Expression
/// evaluation dominates the Filter operator's wall time, which is the
/// segment the compiled engine's fused morsel kernels target.
const ABLATION_QUERY: &str = "SELECT id FROM points \
     WHERE (a - 120.0) * (a - 120.0) + (b - -30.0) * (b - -30.0) < 2500.0 \
        OR (a - 900.0) * (a - 900.0) + (b - 10.0) * (b - 10.0) < 2500.0 \
        OR (a - 2400.0) * (a - 2400.0) + (b - 40.0) * (b - 40.0) < 2500.0 \
        OR (a - 5100.0) * (a - 5100.0) + (b - -12.0) * (b - -12.0) < 2500.0";

fn ablation_db(engine: ExprEngine, args: &Args) -> Database {
    let db = Database::with_config(DatabaseConfig {
        workers: args.workers,
        expr_engine: engine,
        batch_rows: args.batch_rows.unwrap_or_else(|| DatabaseConfig::default().batch_rows),
        ..DatabaseConfig::default()
    });
    db.create_table(
        "points",
        Schema::from_pairs(&[
            ("id", DataType::Integer),
            ("a", DataType::Double),
            ("b", DataType::Double),
        ]),
        Partitioning::RoundRobin,
    )
    .unwrap();
    let rows = (0..ABLATION_ROWS).map(|i| {
        Row::new(vec![
            Value::Integer(i),
            Value::Double(i as f64 * 0.125),
            Value::Double((i % 97) as f64 - 48.0),
        ])
    });
    db.insert_rows("points", rows).unwrap();
    db
}

/// Best-of-`runs` wall time of the Filter segment (all operators whose
/// label starts with `Filter`), in milliseconds. Best-of rather than
/// median: the segment is the quantity under test, and min is the most
/// noise-robust estimator of its intrinsic cost.
fn filter_segment_ms(db: &Database, runs: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let out = db.query(ABLATION_QUERY).unwrap();
        let seg: Duration = out
            .stats
            .time_by_label()
            .into_iter()
            .filter(|(label, _)| label.starts_with("Filter"))
            .map(|(_, wall)| wall)
            .sum();
        best = best.min(seg.as_secs_f64() * 1e3);
    }
    best
}

fn main() {
    let args = Args::from_env();
    // Figure 4 used 1000-dimensional data on a five-machine cluster; the
    // default here uses the sweep's largest dims value.
    let dims = args.dims.iter().copied().max().unwrap_or(100);
    let engine = args
        .expr_engine
        .map(|e| format!(", engine = {e}"))
        .unwrap_or_default();
    println!(
        "Figure 4: Gram computation per-operation breakdown (n = {}, dims = {dims}, workers = {}{engine})",
        args.n, args.workers
    );

    // (platform label, QueryProfile JSON) pairs for --profile-json.
    let mut profiles: Vec<(String, String)> = Vec::new();
    for platform in [Platform::TupleSimSql, Platform::VectorSimSql] {
        let out = platforms::run_with_opts(
            platform,
            Workload::Gram,
            args.n,
            dims,
            args.block,
            args.workers,
            args.seed,
            args.engine_opts(),
        );
        let Some(total) = out.duration else {
            println!("\n{}: Fail ({:?})", platform.label(), out.note);
            continue;
        };
        if let Some(profile) = &out.profile {
            profiles.push((platform.label().to_string(), profile.to_json()));
        }
        println!(
            "\n{} — total {}{}",
            platform.label(),
            format_duration(total),
            out.note.as_deref().map(|n| format!("  [{n}]")).unwrap_or_default()
        );
        let Some(stats) = out.stats else { continue };
        let mut buckets: std::collections::BTreeMap<&str, Duration> = Default::default();
        for (label, wall) in stats.time_by_label() {
            *buckets.entry(bucket(&label)).or_default() += wall;
        }
        let sum: Duration = buckets.values().sum();
        for (b, wall) in &buckets {
            let pct = if sum.as_nanos() > 0 {
                wall.as_secs_f64() / sum.as_secs_f64() * 100.0
            } else {
                0.0
            };
            println!("  {b:<12} {:>14}  {pct:5.1}%", format!("{:.1} ms", wall.as_secs_f64() * 1e3));
        }
        println!(
            "  rows shuffled: {}   bytes shuffled: {:.2} MB",
            stats.total_rows_shuffled(),
            stats.total_bytes_shuffled() as f64 / 1e6
        );
    }

    println!(
        "\nPaper's observation to check: in the tuple-based run the dominant cost is the \
         aggregation, not the join (§5, Figure 4)."
    );

    // Expression-engine ablation on a filter-heavy segment: the same
    // nearest-centroid prefilter, compiled vectorized bytecode vs the
    // row-at-a-time interpreter, comparing only the Filter operator's
    // attributed wall time.
    let compiled_ms = filter_segment_ms(&ablation_db(ExprEngine::Compiled, &args), 7);
    let interpret_ms = filter_segment_ms(&ablation_db(ExprEngine::Interpret, &args), 7);
    let speedup = interpret_ms / compiled_ms;
    println!(
        "\nFilter-heavy segment ablation ({ABLATION_ROWS} rows, nearest-centroid prefilter):\n  \
         compiled  {compiled_ms:8.3} ms\n  \
         interpret {interpret_ms:8.3} ms\n  \
         speedup   {speedup:8.2}x"
    );

    if let Some(path) = &args.profile_json {
        let runs: Vec<String> = profiles
            .iter()
            .map(|(label, json)| format!("{{\"platform\":\"{label}\",\"profile\":{json}}}"))
            .collect();
        let doc = format!(
            "{{\"bench\":\"fig4_breakdown\",\
             \"filter_segment\":{{\"rows\":{ABLATION_ROWS},\
             \"compiled_ms\":{compiled_ms:.3},\"interpret_ms\":{interpret_ms:.3},\
             \"speedup\":{speedup:.3}}},\
             \"runs\":[{}]}}",
            runs.join(",")
        );
        match std::fs::write(path, doc) {
            Ok(()) => println!("wrote query profiles to {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
