//! Repeat-query ablation — plan-cache hit path vs cold planning.
//!
//! Runs a small workload of SELECT shapes once cold and then several
//! warm repeats against the same database. On a warm repeat the plan
//! cache serves the optimized plan directly, so the parse, bind and
//! optimize lifecycle stages are skipped entirely: their stage timings
//! stay at the profile's pre-seeded zero. The harness prints the
//! front-end (parse + bind + optimize) wall time per run and the cache
//! counters, and with `--profile-json PATH` writes a machine-readable
//! document the CI job asserts against (warm front-end must be exactly
//! zero — elided, not merely fast).
//!
//! ```text
//! cargo run --release -p lardb-bench --bin plan_cache_repeat [-- --quick]
//! ```

use lardb::{
    DataType, Database, DatabaseConfig, Partitioning, QueryProfile, Row, Schema, Value,
};
use lardb_bench::Args;

/// Warm repeats per query after the cold seeding run.
const WARM_RUNS: usize = 5;

const QUERIES: &[&str] = &[
    "SELECT id, v * 2 AS vv FROM facts WHERE id >= 100",
    "SELECT g, COUNT(*) AS c, SUM(v) AS s FROM facts GROUP BY g",
    "SELECT f.id, d.label FROM facts AS f, dims AS d WHERE f.g = d.g AND f.id < 50",
];

fn build_db(args: &Args) -> Database {
    // Pin the capacity: the ablation asserts hit counts, so it must not
    // inherit a `LARDB_PLAN_CACHE` override from the environment.
    let db = Database::with_config(DatabaseConfig {
        workers: args.workers,
        plan_cache_entries: 256,
        ..DatabaseConfig::default()
    });
    db.create_table(
        "facts",
        Schema::from_pairs(&[
            ("id", DataType::Integer),
            ("g", DataType::Integer),
            ("v", DataType::Double),
        ]),
        Partitioning::Hash(0),
    )
    .unwrap();
    let n = args.n as i64;
    db.insert_rows(
        "facts",
        (0..n).map(|i| {
            Row::new(vec![
                Value::Integer(i),
                Value::Integer(i % 16),
                Value::Double(i as f64 * 0.25),
            ])
        }),
    )
    .unwrap();
    db.create_table(
        "dims",
        Schema::from_pairs(&[("g", DataType::Integer), ("label", DataType::Integer)]),
        Partitioning::Hash(0),
    )
    .unwrap();
    db.insert_rows(
        "dims",
        (0..16i64).map(|g| Row::new(vec![Value::Integer(g), Value::Integer(g * 100)])),
    )
    .unwrap();
    db
}

/// Parse + bind + optimize wall time — the work a cache hit elides.
fn front_end_ms(profile: &QueryProfile) -> f64 {
    ["parse", "bind", "optimize"]
        .iter()
        .map(|s| profile.stage_ms(s).unwrap_or(0.0))
        .sum()
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let args = Args::from_env();
    let db = build_db(&args);
    println!(
        "plan-cache repeat-query ablation: {} rows, {} workers, {} warm runs\n",
        args.n, args.workers, WARM_RUNS
    );

    let mut runs_json = Vec::new();
    for q in QUERIES {
        let cold_rows = db.query(q).unwrap().rows.len();
        let cold = db.last_profile().expect("statement just ran");
        let cold_ms = front_end_ms(&cold);

        let mut warm_profiles = Vec::new();
        for run in 0..WARM_RUNS {
            let rows = db.query(q).unwrap().rows.len();
            assert_eq!(rows, cold_rows, "warm run {run} changed the result");
            warm_profiles.push(db.last_profile().expect("statement just ran"));
        }
        let warm_ms: f64 =
            warm_profiles.iter().map(front_end_ms).sum::<f64>() / WARM_RUNS as f64;
        println!("  {q}");
        println!(
            "    cold front-end {cold_ms:8.3} ms   warm front-end {warm_ms:8.3} ms   \
             ({cold_rows} rows)"
        );

        let warm_json: Vec<String> =
            warm_profiles.iter().map(|p| p.to_json()).collect();
        runs_json.push(format!(
            "{{\"query\":\"{}\",\"rows\":{cold_rows},\
             \"cold_front_end_ms\":{cold_ms:.6},\"warm_front_end_ms\":{warm_ms:.6},\
             \"cold\":{},\"warm\":[{}]}}",
            json_escape(q),
            cold.to_json(),
            warm_json.join(","),
        ));
    }

    let stats = db.plan_cache_stats();
    println!(
        "\ncache: {} hits, {} misses, {} entries, {} evictions, {} invalidations",
        stats.hits, stats.misses, stats.entries, stats.evictions, stats.invalidations
    );
    assert_eq!(
        stats.hits as usize,
        QUERIES.len() * WARM_RUNS,
        "every warm repeat must be a cache hit"
    );

    if let Some(path) = &args.profile_json {
        let doc = format!(
            "{{\"bench\":\"plan_cache_repeat\",\"warm_runs\":{WARM_RUNS},\
             \"cache\":{{\"hits\":{},\"misses\":{},\"entries\":{},\
             \"evictions\":{},\"invalidations\":{}}},\
             \"runs\":[{}]}}",
            stats.hits,
            stats.misses,
            stats.entries,
            stats.evictions,
            stats.invalidations,
            runs_json.join(","),
        );
        match std::fs::write(path, doc) {
            Ok(()) => println!("wrote repeat-query profiles to {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
