//! §4.1 — the optimizer's plan choice on the R/S/T example, with and
//! without LA-size inference, including measured shuffle volumes.
//!
//! ```text
//! cargo run --release -p lardb-bench --bin plan_example
//! ```

use lardb::{
    DataType, Database, DatabaseConfig, Matrix, OptimizerConfig, Partitioning, Row, Schema,
    Value,
};

/// Builds the §4.1 schema at laptop scale: declared matrix shapes keep the
/// 80 GB vs 80 MB *ratio* story while fitting in RAM.
fn setup(db: &Database, r_cols: usize) {
    db.create_table(
        "R",
        Schema::from_pairs(&[
            ("r_rid", DataType::Integer),
            ("r_matrix", DataType::Matrix(Some(4), Some(r_cols))),
        ]),
        Partitioning::RoundRobin,
    )
    .expect("fresh db");
    db.create_table(
        "S",
        Schema::from_pairs(&[
            ("s_sid", DataType::Integer),
            ("s_matrix", DataType::Matrix(Some(r_cols), Some(4))),
        ]),
        Partitioning::RoundRobin,
    )
    .expect("fresh db");
    db.create_table(
        "T",
        Schema::from_pairs(&[("t_rid", DataType::Integer), ("t_sid", DataType::Integer)]),
        Partitioning::RoundRobin,
    )
    .expect("fresh db");
    for i in 0..100i64 {
        db.insert_rows(
            "R",
            [Row::new(vec![
                Value::Integer(i),
                Value::matrix(Matrix::filled(4, r_cols, 1e-3 * (i + 1) as f64)),
            ])],
        )
        .expect("load");
        db.insert_rows(
            "S",
            [Row::new(vec![
                Value::Integer(i),
                Value::matrix(Matrix::filled(r_cols, 4, 1e-3 * (i + 1) as f64)),
            ])],
        )
        .expect("load");
    }
    for k in 0..10_000i64 {
        db.insert_rows(
            "T",
            [Row::new(vec![Value::Integer(k % 100), Value::Integer((k * 13) % 100)])],
        )
        .expect("load");
    }
}

const QUERY: &str = "SELECT matrix_multiply(r_matrix, s_matrix) AS prod
 FROM R, S, T
 WHERE r_rid = t_rid AND s_sid = t_sid";

fn main() {
    let r_cols = 2000; // r_matrix 4×2000 = 64 KB, product 4×4 = 128 B
    println!("§4.1 optimizer example (|R|=|S|=100, |T|=10000, matrices 4x{r_cols} / {r_cols}x4)");
    println!(
        "The decisive metric is metered shuffle volume: this process simulates the\n\
         network, so rows cross \"machines\" as shared pointers and wall time does\n\
         not charge for the bytes a real cluster would move.\n"
    );

    for (name, size_inference) in [("LA-size-aware (the paper's §4)", true), ("blind (ablation)", false)] {
        let db = Database::with_config(DatabaseConfig {
            workers: 8,
            optimizer: OptimizerConfig { size_inference, ..Default::default() },
            ..DatabaseConfig::default()
        });
        setup(&db, r_cols);
        println!("=== {name} ===");
        println!("{}", db.explain(QUERY).expect("plan"));
        let t0 = std::time::Instant::now();
        let out = db.query(QUERY).expect("run");
        println!(
            "rows: {}   time: {:.1} ms   bytes shuffled: {:.2} MB\n",
            out.rows.len(),
            t0.elapsed().as_secs_f64() * 1e3,
            out.stats.total_bytes_shuffled() as f64 / 1e6,
        );
    }
}
