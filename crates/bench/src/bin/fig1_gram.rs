//! Figure 1 — Gram matrix computation, six platforms × dims {10,100,1000}.
//!
//! ```text
//! cargo run --release -p lardb-bench --bin fig1_gram [-- --n 20k --dims 10,100,1000 --workers 8]
//! ```

use lardb_bench::{platforms, print_figure_table, Args, Workload, ALL_PLATFORMS};

fn main() {
    let args = Args::from_env();
    println!(
        "Figure 1: Gram matrix (n = {}, workers = {}, block = {}, seed = {})",
        args.n, args.workers, args.block, args.seed
    );
    let rows: Vec<_> = ALL_PLATFORMS
        .iter()
        .map(|&p| {
            let outcomes: Vec<_> = args
                .dims
                .iter()
                .map(|&d| {
                    eprintln!("running {:?} at {d} dims …", p);
                    platforms::run_with_opts(
                        p,
                        Workload::Gram,
                        args.n,
                        d,
                        args.block,
                        args.workers,
                        args.seed,
                        args.engine_opts(),
                    )
                })
                .collect();
            (p, outcomes)
        })
        .collect();
    print_figure_table("Gram Matrix Computation", &args.dims, &rows);
}
