//! # lardb-bench — the §5 experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation:
//!
//! | target | paper | binary |
//! |---|---|---|
//! | Figure 1 | Gram matrix, 6 platforms × dims {10,100,1000} | `fig1_gram` |
//! | Figure 2 | linear regression, same grid | `fig2_linreg` |
//! | Figure 3 | distance computation, same grid | `fig3_distance` |
//! | Figure 4 | per-operation breakdown, tuple vs vector Gram | `fig4_breakdown` |
//! | §4.1 | optimizer plan choice + shuffle volumes | `plan_example` |
//!
//! The "platforms" are lardb itself in the paper's three SQL styles
//! (tuple-based, vector-based, block-based) and the three miniature
//! comparator engines from `lardb-baselines`. Scales are CLI-tunable and
//! default far below the paper's 10-machine EC2 runs — the *shape* of the
//! results (who wins, by roughly what factor, where the crossovers are) is
//! the reproduction target, not absolute times. Cells that must run at a
//! reduced row count to stay inside a laptop budget are marked with the
//! count used.

pub mod args;
pub mod platforms;
pub mod report;

pub use args::Args;
pub use platforms::{Platform, RunOutcome, Workload, ALL_PLATFORMS};
pub use report::{format_duration, print_figure_table};
