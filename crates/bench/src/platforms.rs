//! Uniform runners for the six §5 platforms × three workloads.

use std::time::{Duration, Instant};

use lardb::{
    DataType, Database, ExecStats, ExprEngine, Matrix, Partitioning, QueryProfile, Row,
    Schema, TransportMode, Value,
};
use lardb_baselines::{scidb_like, spark_like, systemml_like, WorkloadData};
use lardb_storage::gen;

/// One of the paper's three computations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// `G = XᵀX` (Figure 1).
    Gram,
    /// `β̂ = (XᵀX)⁻¹Xᵀy` (Figure 2).
    Regression,
    /// min-distance / argmax (Figure 3).
    Distance,
}

/// One of the six platforms of Figures 1–3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Platform {
    /// lardb, pure-tuple SQL (the unmodified-RDBMS strawman).
    TupleSimSql,
    /// lardb, one VECTOR per data point.
    VectorSimSql,
    /// lardb, 1000-row blocks built with ROWMATRIX (blocking time counted).
    BlockSimSql,
    /// Miniature SystemML (block map/reduce).
    SystemMlLike,
    /// Miniature Spark mllib (RDD + BlockMatrix, allocating combines).
    SparkLike,
    /// Miniature SciDB (chunked arrays + gemm).
    SciDbLike,
}

/// All six, in the paper's row order.
pub const ALL_PLATFORMS: [Platform; 6] = [
    Platform::TupleSimSql,
    Platform::VectorSimSql,
    Platform::BlockSimSql,
    Platform::SystemMlLike,
    Platform::SparkLike,
    Platform::SciDbLike,
];

impl Platform {
    /// Row label, matching the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            Platform::TupleSimSql => "Tuple SimSQL (lardb)",
            Platform::VectorSimSql => "Vector SimSQL (lardb)",
            Platform::BlockSimSql => "Block SimSQL (lardb)",
            Platform::SystemMlLike => "SystemML-like",
            Platform::SparkLike => "Spark mllib-like",
            Platform::SciDbLike => "SciDB-like",
        }
    }
}

/// Result of one benchmark cell.
#[derive(Debug)]
pub struct RunOutcome {
    /// Wall time; `None` means the run was skipped as infeasible (the
    /// paper's "Fail").
    pub duration: Option<Duration>,
    /// Annotation, e.g. a reduced row count.
    pub note: Option<String>,
    /// Operator statistics (lardb platforms only; used by Figure 4).
    pub stats: Option<ExecStats>,
    /// Merged query-lifecycle profile (lardb platforms only): stage
    /// timings plus per-operator estimate-vs-actual records, exported as
    /// JSON by `--profile-json`.
    pub profile: Option<QueryProfile>,
}

impl RunOutcome {
    fn timed(d: Duration) -> Self {
        RunOutcome { duration: Some(d), note: None, stats: None, profile: None }
    }

    fn fail(reason: &str) -> Self {
        RunOutcome { duration: None, note: Some(reason.into()), stats: None, profile: None }
    }
}

/// Budget for materialization-heavy tuple-based runs: the cap on
/// (estimated) joined tuples pushed through the plan. Runs needing more
/// re-run at a reduced `n`, noted in the output. 4×10⁷ keeps the resident
/// set of the exchanged tuple streams well inside a 16 GB machine.
const TUPLE_ROW_BUDGET: usize = 40_000_000;

/// Runs one cell of Figures 1–3 with the default (pointer) transport.
pub fn run(
    platform: Platform,
    workload: Workload,
    n: usize,
    dims: usize,
    block: usize,
    workers: usize,
    seed: u64,
) -> RunOutcome {
    run_with_transport(
        platform,
        workload,
        n,
        dims,
        block,
        workers,
        seed,
        TransportMode::Pointer,
    )
}

/// Engine knobs shared by the lardb platforms. Baselines ignore them —
/// they have neither exchange operators nor SQL expressions.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineOpts {
    /// Exchange transport for boundary-crossing batches.
    pub transport: TransportMode,
    /// Expression engine override; `None` inherits the database default
    /// (compiled, or `LARDB_EXPR_ENGINE`).
    pub expr_engine: Option<ExprEngine>,
    /// Rows per column batch override; `None` inherits the default.
    pub batch_rows: Option<usize>,
}

/// Runs one cell of Figures 1–3 under an explicit exchange transport.
#[allow(clippy::too_many_arguments)]
pub fn run_with_transport(
    platform: Platform,
    workload: Workload,
    n: usize,
    dims: usize,
    block: usize,
    workers: usize,
    seed: u64,
    transport: TransportMode,
) -> RunOutcome {
    let opts = EngineOpts { transport, ..EngineOpts::default() };
    run_with_opts(platform, workload, n, dims, block, workers, seed, opts)
}

/// Runs one cell of Figures 1–3 under explicit engine options.
#[allow(clippy::too_many_arguments)]
pub fn run_with_opts(
    platform: Platform,
    workload: Workload,
    n: usize,
    dims: usize,
    block: usize,
    workers: usize,
    seed: u64,
    opts: EngineOpts,
) -> RunOutcome {
    match platform {
        Platform::TupleSimSql | Platform::VectorSimSql | Platform::BlockSimSql => {
            run_lardb(platform, workload, n, dims, block, workers, seed, opts)
        }
        _ => run_baseline(platform, workload, n, dims, block, workers, seed),
    }
}

// ------------------------------------------------------------- baselines

fn baseline_data(workload: Workload, n: usize, dims: usize, seed: u64) -> WorkloadData {
    let rows = gen::vector_rows(seed, n, dims);
    let mut x = Matrix::zeros(n, dims);
    for (i, r) in rows.iter().enumerate() {
        x.row_mut(i).copy_from_slice(r.value(1).as_vector().expect("vector").as_slice());
    }
    let y = match workload {
        Workload::Regression => gen::regression_targets(seed, n, dims, 0.01)
            .iter()
            .map(|r| r.value(1).as_double().expect("double"))
            .collect(),
        _ => Vec::new(),
    };
    let a = match workload {
        Workload::Distance => gen::spd_matrix(seed ^ 7, dims),
        _ => Matrix::identity(dims),
    };
    WorkloadData { x, y, a }
}

fn run_baseline(
    platform: Platform,
    workload: Workload,
    n: usize,
    dims: usize,
    block: usize,
    workers: usize,
    seed: u64,
) -> RunOutcome {
    let data = baseline_data(workload, n, dims, seed);
    let t0 = Instant::now();
    match (platform, workload) {
        (Platform::SystemMlLike, Workload::Gram) => {
            std::hint::black_box(systemml_like::Engine::new(workers).gram(&data));
        }
        (Platform::SystemMlLike, Workload::Regression) => {
            std::hint::black_box(systemml_like::Engine::new(workers).linear_regression(&data));
        }
        (Platform::SystemMlLike, Workload::Distance) => {
            std::hint::black_box(systemml_like::Engine::new(workers).distance_argmax(&data));
        }
        (Platform::SciDbLike, Workload::Gram) => {
            std::hint::black_box(scidb_like::Engine::new(workers).gram(&data));
        }
        (Platform::SciDbLike, Workload::Regression) => {
            std::hint::black_box(scidb_like::Engine::new(workers).linear_regression(&data));
        }
        (Platform::SciDbLike, Workload::Distance) => {
            std::hint::black_box(scidb_like::Engine::new(workers).distance_argmax(&data));
        }
        (Platform::SparkLike, Workload::Gram) => {
            std::hint::black_box(spark_like::Engine::new(workers).gram(&data));
        }
        (Platform::SparkLike, Workload::Regression) => {
            std::hint::black_box(spark_like::Engine::new(workers).linear_regression(&data));
        }
        (Platform::SparkLike, Workload::Distance) => {
            std::hint::black_box(
                spark_like::Engine::with_block(workers, block).distance_argmax(&data),
            );
        }
        _ => unreachable!("lardb platforms handled elsewhere"),
    }
    RunOutcome::timed(t0.elapsed())
}

// ----------------------------------------------------------------- lardb

#[allow(clippy::too_many_arguments)]
fn run_lardb(
    platform: Platform,
    workload: Workload,
    n: usize,
    dims: usize,
    block: usize,
    workers: usize,
    seed: u64,
    opts: EngineOpts,
) -> RunOutcome {
    // Budget check for tuple-based plans; rerun at reduced n when needed.
    let (n_used, note) = if platform == Platform::TupleSimSql {
        tuple_cap(workload, n, dims)
    } else {
        (n, None)
    };

    let mut db = Database::new(workers).with_transport(opts.transport);
    if let Some(engine) = opts.expr_engine {
        db = db.with_expr_engine(engine);
    }
    if let Some(rows) = opts.batch_rows {
        db = db.with_batch_rows(rows);
    }
    load_lardb_data(&db, platform, workload, n_used, dims, block, seed);

    let result = match (platform, workload) {
        (Platform::TupleSimSql, Workload::Gram) => gram_tuple(&db),
        (Platform::VectorSimSql, Workload::Gram) => gram_vector(&db),
        (Platform::BlockSimSql, Workload::Gram) => gram_block(&db),
        (Platform::TupleSimSql, Workload::Regression) => regression_tuple(&db),
        (Platform::VectorSimSql, Workload::Regression) => regression_vector(&db),
        (Platform::BlockSimSql, Workload::Regression) => regression_block(&db),
        (Platform::TupleSimSql, Workload::Distance) => distance_tuple(&db),
        (Platform::VectorSimSql, Workload::Distance) => distance_vector(&db),
        (Platform::BlockSimSql, Workload::Distance) => distance_block(&db, block),
        _ => unreachable!(),
    };
    match result {
        Ok((duration, stats, profile)) => RunOutcome {
            duration: Some(duration),
            note,
            stats: Some(stats),
            profile: Some(profile),
        },
        Err(e) => RunOutcome::fail(&e),
    }
}

fn load_lardb_data(
    db: &Database,
    platform: Platform,
    workload: Workload,
    n: usize,
    dims: usize,
    block: usize,
    seed: u64,
) {
    match platform {
        Platform::TupleSimSql => {
            db.create_table(
                "x",
                Schema::from_pairs(&[
                    ("row_index", DataType::Integer),
                    ("col_index", DataType::Integer),
                    ("value", DataType::Double),
                ]),
                Partitioning::RoundRobin,
            )
            .expect("fresh db");
            db.insert_rows("x", gen::tuple_rows(seed, n, dims)).expect("load");
        }
        _ => {
            db.create_table(
                "x_vm",
                Schema::from_pairs(&[
                    ("id", DataType::Integer),
                    ("value", DataType::Vector(Some(dims))),
                ]),
                Partitioning::RoundRobin,
            )
            .expect("fresh db");
            db.insert_rows("x_vm", gen::vector_rows(seed, n, dims)).expect("load");
        }
    }
    if workload == Workload::Regression {
        db.create_table(
            "y",
            Schema::from_pairs(&[("i", DataType::Integer), ("y_i", DataType::Double)]),
            Partitioning::RoundRobin,
        )
        .expect("fresh db");
        db.insert_rows("y", gen::regression_targets(seed, n, dims, 0.01)).expect("load");
    }
    if workload == Workload::Distance {
        db.create_table(
            "matrixA",
            Schema::from_pairs(&[("val", DataType::Matrix(Some(dims), Some(dims)))]),
            Partitioning::Replicated,
        )
        .expect("fresh db");
        db.insert_rows(
            "matrixA",
            [Row::new(vec![Value::matrix(gen::spd_matrix(seed ^ 7, dims))])],
        )
        .expect("load");
        if platform == Platform::TupleSimSql {
            load_label_table(db, dims);
        }
    }
    if platform == Platform::BlockSimSql {
        // block_index + the §5 blocking views (blocking work itself runs
        // inside the timed queries, as the paper counts it).
        let nblocks = n.div_ceil(block);
        db.execute("CREATE TABLE block_index (mi INTEGER)").expect("ddl");
        db.insert_rows(
            "block_index",
            (0..nblocks as i64).map(|b| Row::new(vec![Value::Integer(b)])),
        )
        .expect("load");
        db.execute(&format!(
            "CREATE VIEW MLX AS
             SELECT ROWMATRIX(label_vector(x.value, x.id - ind.mi*{block})) AS m
             FROM x_vm AS x, block_index AS ind
             WHERE x.id/{block} = ind.mi
             GROUP BY ind.mi"
        ))
        .expect("ddl");
        db.execute(&format!(
            "CREATE VIEW MLXI AS
             SELECT ROWMATRIX(label_vector(x.value, x.id - ind.mi*{block})) AS m,
                    ind.mi AS mi
             FROM x_vm AS x, block_index AS ind
             WHERE x.id/{block} = ind.mi
             GROUP BY ind.mi"
        ))
        .expect("ddl");
        if workload == Workload::Regression {
            db.execute(&format!(
                "CREATE VIEW YB AS
                 SELECT VECTORIZE(label_scalar(y.y_i, y.i - ind.mi*{block})) AS yv,
                        ind.mi AS mi
                 FROM y, block_index AS ind
                 WHERE y.i/{block} = ind.mi
                 GROUP BY ind.mi"
            ))
            .expect("ddl");
        }
    }
}

/// Reduced row count (plus annotation) keeping a tuple-based run inside
/// the materialization budget.
fn tuple_cap(workload: Workload, n: usize, dims: usize) -> (usize, Option<String>) {
    let per_point = match workload {
        Workload::Gram | Workload::Regression => dims * dims,
        // all-pairs join: ≈ n·dims joined tuples per data point
        Workload::Distance => n.saturating_mul(dims),
    };
    let est = n.saturating_mul(per_point.max(1));
    if est > TUPLE_ROW_BUDGET {
        let cap = (TUPLE_ROW_BUDGET / per_point.max(1)).max(8);
        (cap, Some(format!("n={cap} (reduced from {n})")))
    } else {
        (n, None)
    }
}

type Timed = Result<(Duration, ExecStats, QueryProfile), String>;

fn timed_queries(db: &Database, sqls: &[&str]) -> Timed {
    let t0 = Instant::now();
    let mut stats = ExecStats::new();
    let mut profile = QueryProfile::new("workload");
    for sql in sqls {
        match db.execute(sql) {
            Ok(lardb::database::Response::Rows(q)) => stats.merge(&q.stats),
            Ok(_) => {}
            Err(e) => return Err(e.to_string()),
        }
        if let Some(p) = db.last_profile() {
            profile.merge(&p);
        }
    }
    Ok((t0.elapsed(), stats, profile))
}

fn gram_tuple(db: &Database) -> Timed {
    timed_queries(
        db,
        &["SELECT x1.col_index, x2.col_index, SUM(x1.value * x2.value) AS v
           FROM x AS x1, x AS x2
           WHERE x1.row_index = x2.row_index
           GROUP BY x1.col_index, x2.col_index"],
    )
}

fn gram_vector(db: &Database) -> Timed {
    timed_queries(db, &["SELECT SUM(outer_product(x.value, x.value)) AS g FROM x_vm AS x"])
}

fn gram_block(db: &Database) -> Timed {
    timed_queries(
        db,
        &["SELECT SUM(matrix_multiply(trans_matrix(mlx.m), mlx.m)) AS g FROM mlx"],
    )
}

fn regression_vector(db: &Database) -> Timed {
    timed_queries(
        db,
        &["SELECT matrix_vector_multiply(
               matrix_inverse(SUM(outer_product(x.value, x.value))),
               SUM(x.value * y.y_i)) AS beta
           FROM x_vm AS x, y
           WHERE x.id = y.i"],
    )
}

fn regression_block(db: &Database) -> Timed {
    timed_queries(
        db,
        &["SELECT matrix_vector_multiply(
               matrix_inverse(SUM(matrix_multiply(trans_matrix(b.m), b.m))),
               SUM(matrix_vector_multiply(trans_matrix(b.m), t.yv))) AS beta
           FROM mlxi AS b, yb AS t
           WHERE b.mi = t.mi"],
    )
}

fn regression_tuple(db: &Database) -> Timed {
    timed_queries(
        db,
        &[
            "CREATE TABLE xtx AS
             SELECT x1.col_index AS r, x2.col_index AS c, SUM(x1.value * x2.value) AS v
             FROM x AS x1, x AS x2
             WHERE x1.row_index = x2.row_index
             GROUP BY x1.col_index, x2.col_index",
            "CREATE TABLE xty AS
             SELECT x.col_index AS c, SUM(x.value * y.y_i) AS v
             FROM x, y
             WHERE x.row_index = y.i
             GROUP BY x.col_index",
            "SELECT solve(a.m, b.vec) AS beta
             FROM (SELECT ROWMATRIX(label_vector(q.vec, q.r)) AS m
                   FROM (SELECT VECTORIZE(label_scalar(v, c)) AS vec, r
                         FROM xtx GROUP BY r) AS q) AS a,
                  (SELECT VECTORIZE(label_scalar(v, c)) AS vec FROM xty) AS b",
        ],
    )
}

fn distance_vector(db: &Database) -> Timed {
    timed_queries(
        db,
        &[
            "CREATE TABLE mx AS
             SELECT x.id AS id, matrix_vector_multiply(a.val, x.value) AS mx_data
             FROM x_vm AS x, matrixA AS a",
            "CREATE TABLE distancesm AS
             SELECT a.id AS id, MIN(inner_product(mxx.mx_data, a.value)) AS dist
             FROM x_vm AS a, mx AS mxx
             WHERE a.id <> mxx.id
             GROUP BY a.id",
            "SELECT d.id FROM distancesm AS d,
                    (SELECT MAX(dist) AS mx FROM distancesm) AS m
             WHERE d.dist = m.mx",
        ],
    )
}

fn distance_block(db: &Database, block: usize) -> Timed {
    let _ = block;
    let sql1 = "CREATE TABLE crossmins AS
         SELECT q.id1 AS bid, MIN(q.v) AS mv
         FROM (SELECT mxx.mi AS id1,
                      row_min(matrix_multiply(mxx.m,
                          matrix_multiply(mp.val, trans_matrix(mx.m)))) AS v
               FROM mlxi AS mx, mlxi AS mxx, matrixA AS mp
               WHERE mxx.mi <> mx.mi) AS q
         GROUP BY q.id1";
    // Self-pair distances; the +infinity diagonal mask is sized from the
    // block itself (the last block may be ragged).
    let sql2a = "CREATE TABLE selfdm AS
         SELECT mxx.mi AS bid,
                matrix_multiply(mxx.m,
                    matrix_multiply(mp.val, trans_matrix(mxx.m))) AS dm
         FROM mlxi AS mxx, matrixA AS mp";
    let sql2b = "CREATE TABLE selfmins AS
         SELECT bid, row_min(dm + diag_matrix(diag(dm) * 0.0 + 1e300)) AS mv
         FROM selfdm";
    let sql3 = "SELECT a.bid AS bid, a.mv AS self_mv, b.mv AS cross_mv
         FROM selfmins AS a, crossmins AS b
         WHERE a.bid = b.bid";
    let t0 = Instant::now();
    let mut stats = ExecStats::new();
    let mut profile = QueryProfile::new("workload");
    for sql in [sql1, sql2a, sql2b] {
        match db.execute(sql) {
            Ok(lardb::database::Response::Rows(q)) => stats.merge(&q.stats),
            Ok(_) => {}
            Err(e) => return Err(e.to_string()),
        }
        if let Some(p) = db.last_profile() {
            profile.merge(&p);
        }
    }
    let combined = db.query(sql3).map_err(|e| e.to_string())?;
    stats.merge(&combined.stats);
    if let Some(p) = db.last_profile() {
        profile.merge(&p);
    }
    // Driver epilogue: per-point min(self, cross), then global argmax —
    // "a series of operations on matrices" (§5).
    let mut best = f64::NEG_INFINITY;
    for row in &combined.rows {
        let s = row.value(1).as_vector().ok_or("self_mv not a vector")?;
        let c = row.value(2).as_vector().ok_or("cross_mv not a vector")?;
        for k in 0..s.len() {
            let v = s.get(k).map_err(|e| e.to_string())?.min(
                c.get(k).map_err(|e| e.to_string())?,
            );
            if v > best {
                best = v;
            }
        }
    }
    std::hint::black_box(best);
    Ok((t0.elapsed(), stats, profile))
}

fn distance_tuple(db: &Database) -> Timed {
    timed_queries(
        db,
        &[
            "CREATE TABLE amat AS
             SELECT label.id AS r, label2.id AS c,
                    get_entry(a.val, label.id, label2.id) AS v
             FROM matrixA AS a, lbl AS label, lbl AS label2",
            "CREATE TABLE ax AS
             SELECT x.row_index AS pid, amat.r AS dim, SUM(amat.v * x.value) AS v
             FROM amat, x
             WHERE amat.c = x.col_index
             GROUP BY x.row_index, amat.r",
            "CREATE TABLE d AS
             SELECT xi.row_index AS i, axj.pid AS j, SUM(xi.value * axj.v) AS d
             FROM x AS xi, ax AS axj
             WHERE xi.col_index = axj.dim AND xi.row_index <> axj.pid
             GROUP BY xi.row_index, axj.pid",
            "CREATE TABLE mins AS SELECT i, MIN(d) AS md FROM d GROUP BY i",
            "SELECT mins.i FROM mins, (SELECT MAX(md) AS mx FROM mins) AS q
             WHERE mins.md = q.mx",
        ],
    )
}

/// Loads the `lbl` helper table (0..dims) the tuple distance run needs to
/// normalize the replicated metric matrix.
pub fn load_label_table(db: &Database, dims: usize) {
    db.execute("CREATE TABLE lbl (id INTEGER)").expect("ddl");
    db.insert_rows("lbl", (0..dims as i64).map(|i| Row::new(vec![Value::Integer(i)])))
        .expect("load");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_cells_run_at_toy_scale() {
        for platform in ALL_PLATFORMS {
            for workload in [Workload::Gram, Workload::Regression, Workload::Distance] {
                let n = if workload == Workload::Distance { 24 } else { 40 };
                let out = run(platform, workload, n, 4, 8, 2, 99);
                assert!(
                    out.duration.is_some(),
                    "{platform:?}/{workload:?} failed: {:?}",
                    out.note
                );
            }
        }
    }

    #[test]
    fn lardb_cells_run_under_every_transport() {
        for transport in TransportMode::ALL {
            let out = run_with_transport(
                Platform::VectorSimSql,
                Workload::Gram,
                40,
                4,
                8,
                2,
                99,
                transport,
            );
            assert!(out.duration.is_some(), "{transport:?} failed: {:?}", out.note);
            let stats = out.stats.expect("lardb platforms report stats");
            if transport.is_serialized() {
                assert!(
                    stats.total_frames() > 0,
                    "{transport:?} should ship encoded frames"
                );
            } else {
                assert_eq!(stats.total_frames(), 0);
            }
        }
    }

    #[test]
    fn tuple_budget_reduces_n() {
        // dims² × n far over budget → capped with a note.
        let (n, note) = tuple_cap(Workload::Gram, 100_000, 1_000);
        assert_eq!(n, TUPLE_ROW_BUDGET / 1_000_000);
        assert!(note.unwrap().contains("reduced"));
        // within budget → untouched
        let (n, note) = tuple_cap(Workload::Gram, 20_000, 10);
        assert_eq!(n, 20_000);
        assert!(note.is_none());
        // distance scales with n·dims per point
        let (n, note) = tuple_cap(Workload::Distance, 10_000, 100);
        assert!(n < 10_000);
        assert!(note.is_some());
    }
}
