//! Tiny argument parser for the harness binaries (no external deps).

use lardb::{ExprEngine, TransportMode};

/// Common harness options.
#[derive(Debug, Clone)]
pub struct Args {
    /// Data points per run for Gram/regression (paper: 1e5 per machine).
    pub n: usize,
    /// Data points per run for the distance workload (paper: 1e4/machine).
    pub n_dist: usize,
    /// Dimensionalities to sweep (paper: 10, 100, 1000).
    pub dims: Vec<usize>,
    /// Simulated workers (paper: 10 machines × 8 cores).
    pub workers: usize,
    /// Rows per block for block-based SQL (paper: 1000).
    pub block: usize,
    /// RNG seed.
    pub seed: u64,
    /// Quick mode: tiny sizes, for smoke-testing the harness.
    pub quick: bool,
    /// Exchange transport: `pointer` (estimated shuffle bytes),
    /// `serialized` (wire-encoded over channels), or `tcp` (loopback
    /// sockets).
    pub transport: TransportMode,
    /// When set, write a machine-readable `QueryProfile` JSON (lifecycle
    /// stage timings + per-operator estimate-vs-actual records) to this
    /// path at the end of the run.
    pub profile_json: Option<String>,
    /// Memory budget for pipeline-breaking operators, in MiB. `None` =
    /// inherit the process default (`LARDB_MEM_BUDGET_MB` or unbounded);
    /// `Some(0)` = explicitly unbounded; `Some(n)` = spill past `n` MiB.
    pub mem_budget_mb: Option<u64>,
    /// Spill directory override (default: `LARDB_SPILL_DIR` or OS temp).
    pub spill_dir: Option<String>,
    /// Expression engine override: `compiled` (vectorized bytecode) or
    /// `interpret` (row-at-a-time baseline). `None` inherits the engine
    /// default (compiled, or `LARDB_EXPR_ENGINE`).
    pub expr_engine: Option<ExprEngine>,
    /// Rows per column batch for the compiled engine; `None` inherits
    /// the default (or `LARDB_BATCH_ROWS`).
    pub batch_rows: Option<usize>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            n: 20_000,
            n_dist: 1_500,
            dims: vec![10, 100, 1000],
            workers: 8,
            block: 1000,
            seed: 20170419, // ICDE 2017
            quick: false,
            transport: TransportMode::Pointer,
            profile_json: None,
            mem_budget_mb: None,
            spill_dir: None,
            expr_engine: None,
            batch_rows: None,
        }
    }
}

impl Args {
    /// Parses `--key value` style arguments; unknown keys abort with usage.
    pub fn parse(argv: impl Iterator<Item = String>) -> Args {
        let mut args = Args::default();
        let mut it = argv.peekable();
        while let Some(flag) = it.next() {
            let mut value = |what: &str| -> String {
                it.next().unwrap_or_else(|| {
                    eprintln!("missing value for {what}");
                    std::process::exit(2);
                })
            };
            match flag.as_str() {
                "--n" => args.n = parse_num(&value("--n")),
                "--n-dist" => args.n_dist = parse_num(&value("--n-dist")),
                "--dims" => {
                    args.dims = value("--dims")
                        .split(',')
                        .map(|s| parse_num(s.trim()))
                        .collect();
                }
                "--workers" => args.workers = parse_num(&value("--workers")),
                "--block" => args.block = parse_num(&value("--block")),
                "--seed" => args.seed = parse_num(&value("--seed")) as u64,
                "--quick" => args.quick = true,
                "--transport" => {
                    let v = value("--transport");
                    args.transport = TransportMode::parse(&v).unwrap_or_else(|| {
                        eprintln!("bad --transport '{v}' (pointer|serialized|tcp)");
                        std::process::exit(2);
                    });
                }
                "--profile-json" => args.profile_json = Some(value("--profile-json")),
                "--mem-budget-mb" => {
                    args.mem_budget_mb =
                        Some(parse_num(&value("--mem-budget-mb")) as u64);
                }
                "--spill-dir" => args.spill_dir = Some(value("--spill-dir")),
                "--expr-engine" => {
                    let v = value("--expr-engine");
                    args.expr_engine = Some(v.parse().unwrap_or_else(|_| {
                        eprintln!("bad --expr-engine '{v}' (compiled|interpret)");
                        std::process::exit(2);
                    }));
                }
                "--batch-rows" => {
                    args.batch_rows = Some(parse_num(&value("--batch-rows")).max(1));
                }
                "--help" | "-h" => {
                    eprintln!(
                        "options: --n N --n-dist N --dims 10,100,1000 --workers W \
                         --block B --seed S --transport pointer|serialized|tcp \
                         --profile-json PATH --mem-budget-mb N --spill-dir PATH \
                         --expr-engine compiled|interpret --batch-rows N \
                         --quick"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown flag {other}; try --help");
                    std::process::exit(2);
                }
            }
        }
        if args.quick {
            args.n = args.n.min(2_000);
            args.n_dist = args.n_dist.min(300);
            args.dims = args.dims.iter().map(|&d| d.min(100)).collect();
            args.block = args.block.min(100);
        }
        args
    }

    /// Parses from the process environment.
    pub fn from_env() -> Args {
        Args::parse(std::env::args().skip(1))
    }

    /// The engine knobs these args select, ready for
    /// [`crate::platforms::run_with_opts`].
    pub fn engine_opts(&self) -> crate::platforms::EngineOpts {
        crate::platforms::EngineOpts {
            transport: self.transport,
            expr_engine: self.expr_engine,
            batch_rows: self.batch_rows,
        }
    }
}

fn parse_num(s: &str) -> usize {
    // Allow 10_000 / 10k / 1m shorthands.
    let s = s.replace('_', "");
    let (mult, digits) = if let Some(d) = s.strip_suffix(['k', 'K']) {
        (1_000usize, d.to_string())
    } else if let Some(d) = s.strip_suffix(['m', 'M']) {
        (1_000_000usize, d.to_string())
    } else {
        (1, s)
    };
    digits.parse::<usize>().map(|v| v * mult).unwrap_or_else(|_| {
        eprintln!("bad numeric argument '{digits}'");
        std::process::exit(2);
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> Args {
        Args::parse(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]);
        assert_eq!(a.dims, vec![10, 100, 1000]);
        assert_eq!(a.workers, 8);
    }

    #[test]
    fn overrides_and_shorthand() {
        let a = parse(&["--n", "5k", "--dims", "10,50", "--workers", "4", "--seed", "7"]);
        assert_eq!(a.n, 5000);
        assert_eq!(a.dims, vec![10, 50]);
        assert_eq!(a.workers, 4);
        assert_eq!(a.seed, 7);
    }

    #[test]
    fn transport_flag() {
        assert_eq!(parse(&[]).transport, TransportMode::Pointer);
        assert_eq!(
            parse(&["--transport", "serialized"]).transport,
            TransportMode::Serialized
        );
        assert_eq!(parse(&["--transport", "TCP"]).transport, TransportMode::Tcp);
    }

    #[test]
    fn profile_json_flag() {
        assert_eq!(parse(&[]).profile_json, None);
        assert_eq!(
            parse(&["--profile-json", "out.json"]).profile_json,
            Some("out.json".to_string())
        );
    }

    #[test]
    fn memory_flags() {
        let a = parse(&[]);
        assert_eq!(a.mem_budget_mb, None);
        assert_eq!(a.spill_dir, None);
        let a = parse(&["--mem-budget-mb", "64", "--spill-dir", "/tmp/sp"]);
        assert_eq!(a.mem_budget_mb, Some(64));
        assert_eq!(a.spill_dir, Some("/tmp/sp".to_string()));
    }

    #[test]
    fn engine_flags() {
        let a = parse(&[]);
        assert_eq!(a.expr_engine, None);
        assert_eq!(a.batch_rows, None);
        let a = parse(&["--expr-engine", "interpret", "--batch-rows", "512"]);
        assert_eq!(a.expr_engine, Some(ExprEngine::Interpret));
        assert_eq!(a.batch_rows, Some(512));
        let opts = a.engine_opts();
        assert_eq!(opts.expr_engine, Some(ExprEngine::Interpret));
        assert_eq!(opts.batch_rows, Some(512));
        assert_eq!(
            parse(&["--expr-engine", "compiled"]).expr_engine,
            Some(ExprEngine::Compiled)
        );
    }

    #[test]
    fn quick_caps_sizes() {
        let a = parse(&["--n", "1m", "--quick"]);
        assert!(a.n <= 2_000);
        assert!(a.dims.iter().all(|&d| d <= 100));
    }
}
