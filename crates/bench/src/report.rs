//! Table formatting for the figure harness, matching the paper's layout.

use std::time::Duration;

use crate::platforms::{Platform, RunOutcome};

/// Formats a duration the way the paper's tables do (`HH:MM:SS`), with
/// millisecond precision appended for sub-second laptop-scale runs.
pub fn format_duration(d: Duration) -> String {
    let total = d.as_secs();
    let (h, m, s) = (total / 3600, (total % 3600) / 60, total % 60);
    if d < Duration::from_secs(10) {
        format!("{:02}:{:02}:{:02} ({:.0} ms)", h, m, s, d.as_secs_f64() * 1e3)
    } else {
        format!("{:02}:{:02}:{:02}", h, m, s)
    }
}

/// Prints one of the paper's Figure 1–3 tables: platforms × dims.
pub fn print_figure_table(
    title: &str,
    dims: &[usize],
    rows: &[(Platform, Vec<RunOutcome>)],
) {
    println!("\n{title}");
    let mut header = format!("{:<24}", "Platform");
    for d in dims {
        header.push_str(&format!(" | {:>20}", format!("{d} dims")));
    }
    println!("{header}");
    println!("{}", "-".repeat(header.len()));
    let mut notes: Vec<String> = Vec::new();
    for (platform, outcomes) in rows {
        let mut line = format!("{:<24}", platform.label());
        for out in outcomes {
            let cell = match out.duration {
                Some(d) => {
                    let mut c = format_duration(d);
                    if out.note.is_some() {
                        c.push('*');
                    }
                    c
                }
                None => "Fail".to_string(),
            };
            line.push_str(&format!(" | {cell:>20}"));
            if let Some(note) = &out.note {
                notes.push(format!("* {}: {}", platform.label(), note));
            }
        }
        println!("{line}");
    }
    for n in notes {
        println!("{n}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_secs(3_725)), "01:02:05");
        assert!(format_duration(Duration::from_millis(250)).contains("250 ms"));
        assert_eq!(format_duration(Duration::from_secs(59)), "00:00:59");
    }
}
