//! Disk-backed row batches with end-to-end integrity checking.
//!
//! File format: a sequence of `[u32 le length][wire frame]` records — zero or
//! more rows frames followed by exactly one fin frame carrying the frame
//! count, row count and running FNV-1a-64 checksum of every rows frame, in
//! order (the same protocol-v2 discipline the exchange channels use). A file
//! that ends before its fin frame is [`BufError::Truncated`]; a file whose
//! contents disagree with the fin, or that has bytes after it, is
//! [`BufError::Corrupt`].
//!
//! Both [`SpillWriter`] (before `finish`) and [`SpillFile`] delete their file
//! on drop, so neither a completed query nor an abort mid-spill leaves
//! anything behind in the spill directory.

use crate::{BufError, Result};
use lardb_net::codec::{
    checksum_update, decode_frame, encode_fin_frame, encode_rows_frame, FinSummary, Frame,
    CHECKSUM_SEED,
};
use lardb_storage::Row;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Rows per encoded frame — matches the exchange transports' batch size.
const ROWS_PER_FRAME: usize = 256;

/// Refuse to allocate for a frame whose length prefix exceeds this. Spill
/// frames hold ≤256 rows; anything near this size is corruption, not data.
const MAX_SPILL_FRAME_BYTES: u32 = 256 * 1024 * 1024;

static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

fn io_err(path: &Path, op: &'static str, e: std::io::Error) -> BufError {
    BufError::Io {
        path: path.to_path_buf(),
        op,
        err: e.to_string(),
    }
}

fn stale_writer(op: &'static str) -> BufError {
    BufError::Io {
        path: PathBuf::new(),
        op,
        err: "spill writer already finished".to_string(),
    }
}

/// An open spill file being written. Call [`finish`](SpillWriter::finish) to
/// seal it with a fin frame and obtain the readable [`SpillFile`]; dropping
/// an unfinished writer deletes the partial file.
#[derive(Debug)]
pub struct SpillWriter {
    // `None` only after `finish` has consumed the writer's state.
    inner: Option<WriterInner>,
}

#[derive(Debug)]
struct WriterInner {
    out: BufWriter<File>,
    path: PathBuf,
    fin: FinSummary,
    rows: u64,
    bytes: u64,
    started: Instant,
}

impl SpillWriter {
    /// Create a fresh, uniquely named spill file under `dir` (created if
    /// missing). `label` goes into the file name for debuggability.
    pub fn create(dir: &Path, label: &str) -> Result<SpillWriter> {
        std::fs::create_dir_all(dir).map_err(|e| io_err(dir, "create spill dir", e))?;
        let seq = SPILL_SEQ.fetch_add(1, Ordering::Relaxed);
        let path = dir.join(format!(
            "lardb-spill-{}-{}-{}.spl",
            std::process::id(),
            seq,
            label
        ));
        let file = File::create(&path).map_err(|e| io_err(&path, "create", e))?;
        lardb_obs::global().counter("spill.files").inc();
        Ok(SpillWriter {
            inner: Some(WriterInner {
                out: BufWriter::new(file),
                path,
                fin: FinSummary {
                    frames: 0,
                    rows: 0,
                    checksum: CHECKSUM_SEED,
                },
                rows: 0,
                bytes: 0,
                started: Instant::now(),
            }),
        })
    }

    /// Append `rows`, encoded as ≤256-row wire frames.
    pub fn write_rows(&mut self, rows: &[Row]) -> Result<()> {
        // `finish()` consumes the writer, so `inner` is always present
        // here; stay panic-free anyway and surface a typed error.
        let Some(w) = self.inner.as_mut() else {
            return Err(stale_writer("write"));
        };
        for chunk in rows.chunks(ROWS_PER_FRAME) {
            let frame = encode_rows_frame(chunk);
            w.out
                .write_all(&(frame.len() as u32).to_le_bytes())
                .and_then(|()| w.out.write_all(&frame))
                .map_err(|e| io_err(&w.path, "write", e))?;
            w.fin.frames += 1;
            w.fin.rows += chunk.len() as u64;
            w.fin.checksum = checksum_update(w.fin.checksum, &frame);
            w.rows += chunk.len() as u64;
            w.bytes += 4 + frame.len() as u64;
        }
        Ok(())
    }

    /// Rows written so far.
    pub fn rows(&self) -> u64 {
        self.inner.as_ref().map_or(0, |w| w.rows)
    }

    /// Seal the file with its fin frame and flush it to disk.
    pub fn finish(mut self) -> Result<SpillFile> {
        let Some(mut w) = self.inner.take() else {
            return Err(stale_writer("finish"));
        };
        let fin = encode_fin_frame(&w.fin);
        let r = w
            .out
            .write_all(&(fin.len() as u32).to_le_bytes())
            .and_then(|()| w.out.write_all(&fin))
            .and_then(|()| w.out.flush());
        if let Err(e) = r {
            let err = io_err(&w.path, "finish", e);
            drop(w.out);
            let _ = std::fs::remove_file(&w.path);
            return Err(err);
        }
        w.bytes += 4 + fin.len() as u64;
        let m = lardb_obs::global();
        m.counter("spill.bytes_written").add(w.bytes);
        // Attribute the spill to the query tracing this thread, if any.
        if let Some(t) = lardb_obs::trace::current() {
            t.add_spill_written(w.bytes);
            t.record(
                "spill.write",
                "spill",
                w.started,
                w.started.elapsed(),
                vec![
                    ("path", w.path.display().to_string()),
                    ("rows", w.rows.to_string()),
                    ("bytes", w.bytes.to_string()),
                ],
            );
        }
        Ok(SpillFile {
            path: w.path,
            rows: w.rows,
            bytes: w.bytes,
        })
    }
}

impl Drop for SpillWriter {
    fn drop(&mut self) {
        if let Some(w) = self.inner.take() {
            drop(w.out);
            let _ = std::fs::remove_file(&w.path);
        }
    }
}

/// A sealed spill file; deleted from disk when dropped.
#[derive(Debug)]
pub struct SpillFile {
    path: PathBuf,
    rows: u64,
    bytes: u64,
}

impl SpillFile {
    /// Path of the backing file (for diagnostics).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Rows stored in the file.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Bytes on disk, including framing and the fin frame.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Read the whole file back, verifying every frame and the fin summary.
    /// Any mismatch — short file, bad bytes, wrong counts or checksum,
    /// trailing garbage — is a typed error, never silently wrong rows.
    pub fn read_rows(&self) -> Result<Vec<Row>> {
        let t0 = Instant::now();
        let file = File::open(&self.path).map_err(|e| io_err(&self.path, "open", e))?;
        let mut r = BufReader::new(file);
        let mut rows: Vec<Row> = Vec::with_capacity(self.rows as usize);
        let mut running = FinSummary {
            frames: 0,
            rows: 0,
            checksum: CHECKSUM_SEED,
        };
        let mut bytes_read: u64 = 0;
        loop {
            let mut len_buf = [0u8; 4];
            match read_exact_or_eof(&mut r, &mut len_buf) {
                Ok(false) => {
                    return Err(BufError::Truncated {
                        path: self.path.clone(),
                        detail: format!(
                            "ended after {} frames ({} rows) with no fin frame",
                            running.frames, running.rows
                        ),
                    });
                }
                Ok(true) => {}
                Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                    return Err(BufError::Truncated {
                        path: self.path.clone(),
                        detail: format!(
                            "mid-length-prefix EOF after {} complete frames",
                            running.frames
                        ),
                    });
                }
                Err(e) => return Err(io_err(&self.path, "read", e)),
            }
            let len = u32::from_le_bytes(len_buf);
            if len > MAX_SPILL_FRAME_BYTES {
                return Err(BufError::Corrupt {
                    path: self.path.clone(),
                    detail: format!("frame length prefix {len} exceeds spill frame cap"),
                });
            }
            let mut frame = vec![0u8; len as usize];
            r.read_exact(&mut frame).map_err(|e| {
                if e.kind() == std::io::ErrorKind::UnexpectedEof {
                    BufError::Truncated {
                        path: self.path.clone(),
                        detail: format!(
                            "mid-frame EOF after {} complete frames",
                            running.frames
                        ),
                    }
                } else {
                    io_err(&self.path, "read", e)
                }
            })?;
            bytes_read += 4 + len as u64;
            match decode_frame(&frame)? {
                Frame::Rows(batch) => {
                    running.frames += 1;
                    running.rows += batch.len() as u64;
                    running.checksum = checksum_update(running.checksum, &frame);
                    rows.extend(batch);
                }
                Frame::Schema(_) => {
                    return Err(BufError::Corrupt {
                        path: self.path.clone(),
                        detail: "unexpected schema frame in spill file".to_string(),
                    });
                }
                Frame::Trace(_) => {
                    return Err(BufError::Corrupt {
                        path: self.path.clone(),
                        detail: "unexpected trace frame in spill file".to_string(),
                    });
                }
                Frame::Fin(fin) => {
                    if fin != running {
                        return Err(BufError::Corrupt {
                            path: self.path.clone(),
                            detail: format!(
                                "fin mismatch: fin says {} frames/{} rows/checksum {:#x}, \
                                 file has {} frames/{} rows/checksum {:#x}",
                                fin.frames,
                                fin.rows,
                                fin.checksum,
                                running.frames,
                                running.rows,
                                running.checksum
                            ),
                        });
                    }
                    // Exactly one fin, and nothing after it.
                    let mut trailing = [0u8; 1];
                    match read_exact_or_eof(&mut r, &mut trailing) {
                        Ok(false) => {}
                        Ok(true) => {
                            return Err(BufError::Corrupt {
                                path: self.path.clone(),
                                detail: "bytes after fin frame".to_string(),
                            });
                        }
                        Err(e) => return Err(io_err(&self.path, "read", e)),
                    }
                    lardb_obs::global().counter("spill.bytes_read").add(bytes_read);
                    if let Some(t) = lardb_obs::trace::current() {
                        t.add_spill_read(bytes_read);
                        t.record(
                            "spill.read",
                            "spill",
                            t0,
                            t0.elapsed(),
                            vec![
                                ("path", self.path.display().to_string()),
                                ("rows", rows.len().to_string()),
                                ("bytes", bytes_read.to_string()),
                            ],
                        );
                    }
                    return Ok(rows);
                }
            }
        }
    }
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// `Ok(true)` if `buf` was filled, `Ok(false)` on clean EOF at offset 0.
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> std::io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "eof mid-record",
                ));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lardb_storage::Value;

    fn test_dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("lardb-buf-test-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&d).expect("test dir");
        d
    }

    fn sample_rows(n: usize) -> Vec<Row> {
        (0..n)
            .map(|i| {
                Row::new(vec![
                    Value::Integer(i as i64),
                    Value::Double(i as f64 * 0.5),
                    Value::varchar(format!("row-{i}")),
                ])
            })
            .collect()
    }

    #[test]
    fn roundtrip_multi_frame() {
        let dir = test_dir("roundtrip");
        let rows = sample_rows(700); // 3 frames at 256 rows/frame
        let mut w = SpillWriter::create(&dir, "rt").expect("create");
        w.write_rows(&rows[..300]).expect("write");
        w.write_rows(&rows[300..]).expect("write");
        assert_eq!(w.rows(), 700);
        let f = w.finish().expect("finish");
        assert_eq!(f.rows(), 700);
        assert!(f.bytes() > 0);
        let back = f.read_rows().expect("read");
        assert_eq!(back.len(), rows.len());
        for (a, b) in rows.iter().zip(&back) {
            assert_eq!(a.values().len(), b.values().len());
            for (x, y) in a.values().iter().zip(b.values()) {
                assert!(lardb_net::codec::wire_eq(x, y));
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_file_roundtrips() {
        let dir = test_dir("empty");
        let w = SpillWriter::create(&dir, "empty").expect("create");
        let f = w.finish().expect("finish");
        assert_eq!(f.read_rows().expect("read").len(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unfinished_writer_removes_file_on_drop() {
        let dir = test_dir("drop-writer");
        let mut w = SpillWriter::create(&dir, "d").expect("create");
        w.write_rows(&sample_rows(10)).expect("write");
        let path = w.inner.as_ref().expect("open").path.clone();
        drop(w);
        assert!(!path.exists(), "partial spill file must be deleted");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spill_file_removed_on_drop() {
        let dir = test_dir("drop-file");
        let mut w = SpillWriter::create(&dir, "d").expect("create");
        w.write_rows(&sample_rows(10)).expect("write");
        let f = w.finish().expect("finish");
        let path = f.path().to_path_buf();
        assert!(path.exists());
        drop(f);
        assert!(!path.exists(), "sealed spill file must be deleted on drop");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_file_is_typed_error() {
        let dir = test_dir("trunc");
        let mut w = SpillWriter::create(&dir, "t").expect("create");
        w.write_rows(&sample_rows(600)).expect("write");
        let f = w.finish().expect("finish");
        let full = std::fs::read(f.path()).expect("slurp");
        for cut in [full.len() - 1, full.len() - 20, full.len() / 2, 3, 0] {
            std::fs::write(f.path(), &full[..cut]).expect("truncate");
            match f.read_rows() {
                Err(BufError::Truncated { .. }) => {}
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trailing_bytes_are_corrupt() {
        let dir = test_dir("trailing");
        let mut w = SpillWriter::create(&dir, "t").expect("create");
        w.write_rows(&sample_rows(5)).expect("write");
        let f = w.finish().expect("finish");
        let mut full = std::fs::read(f.path()).expect("slurp");
        full.push(0x00);
        std::fs::write(f.path(), &full).expect("append");
        match f.read_rows() {
            Err(BufError::Corrupt { detail, .. }) => {
                assert!(detail.contains("after fin"), "detail: {detail}")
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_io_error() {
        let dir = test_dir("missing");
        let mut w = SpillWriter::create(&dir, "m").expect("create");
        w.write_rows(&sample_rows(3)).expect("write");
        let f = w.finish().expect("finish");
        std::fs::remove_file(f.path()).expect("remove");
        match f.read_rows() {
            Err(BufError::Io { op, .. }) => assert_eq!(op, "open"),
            other => panic!("expected Io, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
