//! Byte-accounted memory reservations with RAII release.
//!
//! Operators call [`MemoryGovernor::try_reserve`] before materialising large
//! state. A `None` answer is the backpressure signal: the operator must take
//! its out-of-core path (spill) instead of growing the heap. Reservations
//! release their bytes on drop, so an abort mid-query cannot leak budget.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A byte-budget accountant. `budget = None` means unbounded: every
/// reservation succeeds and the governor only tracks usage for metrics.
#[derive(Debug)]
pub struct MemoryGovernor {
    budget: Option<u64>,
    reserved: AtomicU64,
    peak: AtomicU64,
}

impl MemoryGovernor {
    pub fn new(budget: Option<u64>) -> Self {
        MemoryGovernor {
            budget,
            reserved: AtomicU64::new(0),
            peak: AtomicU64::new(0),
        }
    }

    /// The configured budget in bytes, if any.
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    /// Bytes currently reserved.
    pub fn reserved(&self) -> u64 {
        self.reserved.load(Ordering::Relaxed)
    }

    /// High-water mark of reserved bytes.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// Try to reserve `bytes`. Returns `None` (and counts a denial) if the
    /// reservation would exceed the budget. Zero-byte reservations always
    /// succeed and are useful as growable anchors.
    pub fn try_reserve(self: &Arc<Self>, bytes: u64) -> Option<MemoryReservation> {
        if self.try_add(bytes) {
            Some(MemoryReservation {
                gov: Arc::clone(self),
                bytes,
            })
        } else {
            lardb_obs::global().counter("mem.denials").inc();
            None
        }
    }

    /// Reserve `bytes` unconditionally, even past the budget. Used at the
    /// recursion floor of the grace join (a bucket that will not shrink no
    /// matter how often we re-partition it): better to overcommit and finish
    /// than to loop forever. Counts `mem.overcommits` when it actually
    /// exceeds the budget.
    pub fn force_reserve(self: &Arc<Self>, bytes: u64) -> MemoryReservation {
        let prev = self.reserved.fetch_add(bytes, Ordering::Relaxed);
        if let Some(b) = self.budget {
            if prev + bytes > b {
                lardb_obs::global().counter("mem.overcommits").inc();
            }
        }
        self.after_change(prev + bytes);
        MemoryReservation {
            gov: Arc::clone(self),
            bytes,
        }
    }

    /// CAS loop: add `bytes` iff the result stays within budget.
    fn try_add(&self, bytes: u64) -> bool {
        let mut cur = self.reserved.load(Ordering::Relaxed);
        loop {
            let next = match cur.checked_add(bytes) {
                Some(n) => n,
                None => return false,
            };
            if let Some(b) = self.budget {
                if next > b {
                    return false;
                }
            }
            match self
                .reserved
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => {
                    self.after_change(next);
                    return true;
                }
                Err(actual) => cur = actual,
            }
        }
    }

    fn release(&self, bytes: u64) {
        let prev = self.reserved.fetch_sub(bytes, Ordering::Relaxed);
        self.after_change(prev.saturating_sub(bytes));
    }

    fn after_change(&self, now: u64) {
        self.peak.fetch_max(now, Ordering::Relaxed);
        let m = lardb_obs::global();
        m.gauge("mem.reserved_bytes").set(now as f64);
        m.gauge("mem.peak_bytes")
            .set(self.peak.load(Ordering::Relaxed) as f64);
    }
}

/// An RAII byte reservation; releases its bytes back to the governor on drop.
#[derive(Debug)]
pub struct MemoryReservation {
    gov: Arc<MemoryGovernor>,
    bytes: u64,
}

impl MemoryReservation {
    /// Bytes currently held by this reservation.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Try to grow (or shrink) the reservation to `new_bytes`. On a denied
    /// grow the reservation keeps its current size and `false` is returned —
    /// the caller should spill. Shrinks always succeed.
    pub fn try_resize(&mut self, new_bytes: u64) -> bool {
        if new_bytes >= self.bytes {
            let delta = new_bytes - self.bytes;
            if delta > 0 && !self.gov.try_add(delta) {
                lardb_obs::global().counter("mem.denials").inc();
                return false;
            }
        } else {
            self.gov.release(self.bytes - new_bytes);
        }
        self.bytes = new_bytes;
        true
    }
}

impl Drop for MemoryReservation {
    fn drop(&mut self) {
        self.gov.release(self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_always_grants() {
        let g = Arc::new(MemoryGovernor::new(None));
        let r = g.try_reserve(u64::MAX / 4).expect("unbounded grant");
        assert_eq!(r.bytes(), u64::MAX / 4);
        assert_eq!(g.reserved(), u64::MAX / 4);
        drop(r);
        assert_eq!(g.reserved(), 0);
    }

    #[test]
    fn budget_denies_past_limit_and_releases_on_drop() {
        let g = Arc::new(MemoryGovernor::new(Some(1000)));
        let a = g.try_reserve(600).expect("first fits");
        assert!(g.try_reserve(600).is_none(), "would exceed budget");
        let b = g.try_reserve(400).expect("exactly fills");
        assert_eq!(g.reserved(), 1000);
        drop(a);
        assert_eq!(g.reserved(), 400);
        let c = g.try_reserve(600).expect("freed bytes reusable");
        drop(b);
        drop(c);
        assert_eq!(g.reserved(), 0);
        assert_eq!(g.peak(), 1000);
    }

    #[test]
    fn resize_grows_shrinks_and_denies() {
        let g = Arc::new(MemoryGovernor::new(Some(1000)));
        let mut r = g.try_reserve(100).expect("grant");
        assert!(r.try_resize(900));
        assert_eq!(g.reserved(), 900);
        assert!(!r.try_resize(1001), "grow past budget denied");
        assert_eq!(r.bytes(), 900, "denied grow keeps old size");
        assert_eq!(g.reserved(), 900);
        assert!(r.try_resize(200), "shrink always succeeds");
        assert_eq!(g.reserved(), 200);
        drop(r);
        assert_eq!(g.reserved(), 0);
    }

    #[test]
    fn force_reserve_overcommits() {
        let g = Arc::new(MemoryGovernor::new(Some(100)));
        let a = g.try_reserve(80).expect("fits");
        let b = g.force_reserve(80);
        assert_eq!(g.reserved(), 160, "forced past budget");
        drop(a);
        drop(b);
        assert_eq!(g.reserved(), 0);
    }

    #[test]
    fn concurrent_reservations_never_exceed_budget() {
        let g = Arc::new(MemoryGovernor::new(Some(10_000)));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let g = Arc::clone(&g);
                s.spawn(move || {
                    for _ in 0..1000 {
                        if let Some(r) = g.try_reserve(7) {
                            assert!(g.reserved() <= 10_000);
                            drop(r);
                        }
                    }
                });
            }
        });
        assert_eq!(g.reserved(), 0);
        assert!(g.peak() <= 10_000);
    }
}
