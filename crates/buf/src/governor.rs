//! Byte-accounted memory reservations with RAII release.
//!
//! Operators call [`MemoryGovernor::try_reserve`] before materialising large
//! state. A `None` answer is the backpressure signal: the operator must take
//! its out-of-core path (spill) instead of growing the heap. Reservations
//! release their bytes on drop, so an abort mid-query cannot leak budget.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A byte-budget accountant. `budget = None` means unbounded: every
/// reservation succeeds and the governor only tracks usage for metrics.
///
/// Governors form a tree: a *child* governor (see [`MemoryGovernor::child`])
/// charges every byte against its own budget **and** its parent's, so a
/// tenant's sub-budget can never grant memory the process-wide governor
/// does not have. Releases cascade the same way, keeping both ledgers
/// consistent no matter which side aborts.
#[derive(Debug)]
pub struct MemoryGovernor {
    budget: Option<u64>,
    reserved: AtomicU64,
    peak: AtomicU64,
    /// Every reservation here is mirrored in the parent (sub-budget
    /// semantics); `None` for root governors.
    parent: Option<Arc<MemoryGovernor>>,
    /// Metric prefix this governor publishes gauges under. Root governors
    /// use the historical `mem.*` names; labeled children (tenant
    /// sub-budgets) publish `{label}.reserved_bytes` / `{label}.peak_bytes`
    /// instead so they never fight the root's gauges.
    label: Option<String>,
}

impl MemoryGovernor {
    pub fn new(budget: Option<u64>) -> Self {
        MemoryGovernor {
            budget,
            reserved: AtomicU64::new(0),
            peak: AtomicU64::new(0),
            parent: None,
            label: None,
        }
    }

    /// A sub-budget of `self`: reservations are granted only when both this
    /// child's `budget` and every ancestor's budget admit them. `label` is
    /// the metric prefix the child publishes its gauges under (e.g.
    /// `server.tenant.acme` → `server.tenant.acme.reserved_bytes`).
    pub fn child(
        self: &Arc<Self>,
        budget: Option<u64>,
        label: impl Into<String>,
    ) -> Arc<MemoryGovernor> {
        Arc::new(MemoryGovernor {
            budget,
            reserved: AtomicU64::new(0),
            peak: AtomicU64::new(0),
            parent: Some(Arc::clone(self)),
            label: Some(label.into()),
        })
    }

    /// The parent this governor mirrors reservations into, if any.
    pub fn parent(&self) -> Option<&Arc<MemoryGovernor>> {
        self.parent.as_ref()
    }

    /// The configured budget in bytes, if any.
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    /// Bytes currently reserved.
    pub fn reserved(&self) -> u64 {
        self.reserved.load(Ordering::Relaxed)
    }

    /// High-water mark of reserved bytes.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// Try to reserve `bytes`. Returns `None` (and counts a denial) if the
    /// reservation would exceed the budget. Zero-byte reservations always
    /// succeed and are useful as growable anchors.
    pub fn try_reserve(self: &Arc<Self>, bytes: u64) -> Option<MemoryReservation> {
        if self.try_add(bytes) {
            Some(MemoryReservation::attributed(Arc::clone(self), bytes))
        } else {
            lardb_obs::global().counter("mem.denials").inc();
            None
        }
    }

    /// Reserve `bytes` unconditionally, even past the budget. Used at the
    /// recursion floor of the grace join (a bucket that will not shrink no
    /// matter how often we re-partition it): better to overcommit and finish
    /// than to loop forever. Counts `mem.overcommits` when it actually
    /// exceeds the budget.
    pub fn force_reserve(self: &Arc<Self>, bytes: u64) -> MemoryReservation {
        self.add_forced(bytes);
        MemoryReservation::attributed(Arc::clone(self), bytes)
    }

    /// Unconditional add, cascading to ancestors.
    fn add_forced(&self, bytes: u64) {
        let prev = self.reserved.fetch_add(bytes, Ordering::Relaxed);
        if let Some(b) = self.budget {
            if prev + bytes > b {
                lardb_obs::global().counter("mem.overcommits").inc();
            }
        }
        self.after_change(prev + bytes);
        if let Some(p) = &self.parent {
            p.add_forced(bytes);
        }
    }

    /// CAS loop: add `bytes` iff the result stays within budget — here
    /// *and* in every ancestor. A grant denied upstream is rolled back
    /// locally, so a failed reservation leaves all ledgers untouched.
    fn try_add(&self, bytes: u64) -> bool {
        let mut cur = self.reserved.load(Ordering::Relaxed);
        loop {
            let next = match cur.checked_add(bytes) {
                Some(n) => n,
                None => return false,
            };
            if let Some(b) = self.budget {
                if next > b {
                    return false;
                }
            }
            match self
                .reserved
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => {
                    if let Some(p) = &self.parent {
                        if !p.try_add(bytes) {
                            self.sub_local(bytes);
                            return false;
                        }
                    }
                    self.after_change(self.reserved.load(Ordering::Relaxed));
                    return true;
                }
                Err(actual) => cur = actual,
            }
        }
    }

    fn sub_local(&self, bytes: u64) {
        let prev = self.reserved.fetch_sub(bytes, Ordering::Relaxed);
        self.after_change(prev.saturating_sub(bytes));
    }

    fn release(&self, bytes: u64) {
        self.sub_local(bytes);
        if let Some(p) = &self.parent {
            p.release(bytes);
        }
    }

    fn after_change(&self, now: u64) {
        self.peak.fetch_max(now, Ordering::Relaxed);
        let m = lardb_obs::global();
        match &self.label {
            None => {
                m.gauge("mem.reserved_bytes").set(now as f64);
                m.gauge("mem.peak_bytes")
                    .set(self.peak.load(Ordering::Relaxed) as f64);
            }
            Some(l) => {
                m.gauge(&format!("{l}.reserved_bytes")).set(now as f64);
                m.gauge(&format!("{l}.peak_bytes"))
                    .set(self.peak.load(Ordering::Relaxed) as f64);
            }
        }
    }
}

/// An RAII byte reservation; releases its bytes back to the governor on drop.
///
/// If the reserving thread was running under an end-to-end query trace,
/// the reservation remembers it and keeps the trace's live
/// reserved-bytes attribution in sync through resizes and the final
/// release (which may happen on a different thread).
#[derive(Debug)]
pub struct MemoryReservation {
    gov: Arc<MemoryGovernor>,
    bytes: u64,
    trace: Option<Arc<lardb_obs::ActiveTrace>>,
}

impl MemoryReservation {
    fn attributed(gov: Arc<MemoryGovernor>, bytes: u64) -> MemoryReservation {
        let trace = lardb_obs::trace::current();
        if let Some(t) = &trace {
            t.add_reserved(bytes as i64);
        }
        MemoryReservation { gov, bytes, trace }
    }

    /// Bytes currently held by this reservation.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Try to grow (or shrink) the reservation to `new_bytes`. On a denied
    /// grow the reservation keeps its current size and `false` is returned —
    /// the caller should spill. Shrinks always succeed.
    pub fn try_resize(&mut self, new_bytes: u64) -> bool {
        if new_bytes >= self.bytes {
            let delta = new_bytes - self.bytes;
            if delta > 0 && !self.gov.try_add(delta) {
                lardb_obs::global().counter("mem.denials").inc();
                return false;
            }
        } else {
            self.gov.release(self.bytes - new_bytes);
        }
        if let Some(t) = &self.trace {
            t.add_reserved(new_bytes as i64 - self.bytes as i64);
        }
        self.bytes = new_bytes;
        true
    }
}

impl Drop for MemoryReservation {
    fn drop(&mut self) {
        self.gov.release(self.bytes);
        if let Some(t) = &self.trace {
            t.add_reserved(-(self.bytes as i64));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_always_grants() {
        let g = Arc::new(MemoryGovernor::new(None));
        let r = g.try_reserve(u64::MAX / 4).expect("unbounded grant");
        assert_eq!(r.bytes(), u64::MAX / 4);
        assert_eq!(g.reserved(), u64::MAX / 4);
        drop(r);
        assert_eq!(g.reserved(), 0);
    }

    #[test]
    fn budget_denies_past_limit_and_releases_on_drop() {
        let g = Arc::new(MemoryGovernor::new(Some(1000)));
        let a = g.try_reserve(600).expect("first fits");
        assert!(g.try_reserve(600).is_none(), "would exceed budget");
        let b = g.try_reserve(400).expect("exactly fills");
        assert_eq!(g.reserved(), 1000);
        drop(a);
        assert_eq!(g.reserved(), 400);
        let c = g.try_reserve(600).expect("freed bytes reusable");
        drop(b);
        drop(c);
        assert_eq!(g.reserved(), 0);
        assert_eq!(g.peak(), 1000);
    }

    #[test]
    fn resize_grows_shrinks_and_denies() {
        let g = Arc::new(MemoryGovernor::new(Some(1000)));
        let mut r = g.try_reserve(100).expect("grant");
        assert!(r.try_resize(900));
        assert_eq!(g.reserved(), 900);
        assert!(!r.try_resize(1001), "grow past budget denied");
        assert_eq!(r.bytes(), 900, "denied grow keeps old size");
        assert_eq!(g.reserved(), 900);
        assert!(r.try_resize(200), "shrink always succeeds");
        assert_eq!(g.reserved(), 200);
        drop(r);
        assert_eq!(g.reserved(), 0);
    }

    #[test]
    fn force_reserve_overcommits() {
        let g = Arc::new(MemoryGovernor::new(Some(100)));
        let a = g.try_reserve(80).expect("fits");
        let b = g.force_reserve(80);
        assert_eq!(g.reserved(), 160, "forced past budget");
        drop(a);
        drop(b);
        assert_eq!(g.reserved(), 0);
    }

    #[test]
    fn child_charges_both_ledgers() {
        let root = Arc::new(MemoryGovernor::new(Some(1000)));
        let child = root.child(Some(400), "server.tenant.a");
        let r = child.try_reserve(300).expect("fits both budgets");
        assert_eq!(child.reserved(), 300);
        assert_eq!(root.reserved(), 300, "parent mirrors the child's bytes");
        drop(r);
        assert_eq!(child.reserved(), 0);
        assert_eq!(root.reserved(), 0, "release cascades");
    }

    #[test]
    fn child_denied_by_own_budget() {
        let root = Arc::new(MemoryGovernor::new(None));
        let child = root.child(Some(100), "server.tenant.b");
        assert!(child.try_reserve(101).is_none(), "child budget enforced");
        assert_eq!(root.reserved(), 0, "denied grant leaves parent untouched");
    }

    #[test]
    fn child_denied_by_parent_rolls_back() {
        let root = Arc::new(MemoryGovernor::new(Some(100)));
        let hog = root.try_reserve(90).expect("fits");
        let child = root.child(Some(1000), "server.tenant.c");
        assert!(child.try_reserve(50).is_none(), "parent budget enforced");
        assert_eq!(child.reserved(), 0, "local grant rolled back");
        assert_eq!(root.reserved(), 90);
        drop(hog);
        let r = child.try_reserve(50).expect("parent freed");
        assert_eq!(root.reserved(), 50);
        drop(r);
    }

    #[test]
    fn sibling_children_compete_for_parent() {
        let root = Arc::new(MemoryGovernor::new(Some(100)));
        let a = root.child(Some(80), "server.tenant.a");
        let b = root.child(Some(80), "server.tenant.b");
        let ra = a.try_reserve(80).expect("first tenant fits");
        assert!(b.try_reserve(80).is_none(), "parent pool exhausted");
        let rb = b.try_reserve(20).expect("remainder fits");
        drop(ra);
        drop(rb);
        assert_eq!(root.reserved(), 0);
        assert_eq!(a.reserved(), 0);
        assert_eq!(b.reserved(), 0);
    }

    #[test]
    fn child_force_reserve_cascades() {
        let root = Arc::new(MemoryGovernor::new(Some(100)));
        let child = root.child(Some(50), "server.tenant.d");
        let r = child.force_reserve(200);
        assert_eq!(child.reserved(), 200);
        assert_eq!(root.reserved(), 200);
        drop(r);
        assert_eq!(child.reserved(), 0);
        assert_eq!(root.reserved(), 0);
    }

    #[test]
    fn child_resize_keeps_ledgers_consistent() {
        let root = Arc::new(MemoryGovernor::new(Some(1000)));
        let child = root.child(Some(500), "server.tenant.e");
        let mut r = child.try_reserve(100).expect("grant");
        assert!(r.try_resize(400));
        assert_eq!(root.reserved(), 400);
        assert!(!r.try_resize(600), "grow past child budget denied");
        assert_eq!(root.reserved(), 400, "denied grow leaves parent unchanged");
        assert!(r.try_resize(50));
        assert_eq!(root.reserved(), 50);
        drop(r);
        assert_eq!(root.reserved(), 0);
    }

    #[test]
    fn concurrent_reservations_never_exceed_budget() {
        let g = Arc::new(MemoryGovernor::new(Some(10_000)));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let g = Arc::clone(&g);
                s.spawn(move || {
                    for _ in 0..1000 {
                        if let Some(r) = g.try_reserve(7) {
                            assert!(g.reserved() <= 10_000);
                            drop(r);
                        }
                    }
                });
            }
        });
        assert_eq!(g.reserved(), 0);
        assert!(g.peak() <= 10_000);
    }
}
