//! Memory governor and disk-backed spill files for out-of-core execution.
//!
//! This crate gives the executor two primitives:
//!
//! * [`MemoryGovernor`] — a process-wide (or per-database) accountant that
//!   operators ask for byte reservations before materialising large state
//!   (hash-join build tables, aggregation maps). A denied reservation is the
//!   backpressure signal that flips an operator into its out-of-core path.
//! * [`SpillWriter`] / [`SpillFile`] — row batches serialized to temp files
//!   through the `lardb-net` wire codec with the protocol-v2 fin discipline
//!   (frame count, row count, FNV-1a-64 checksum), so a truncated or
//!   corrupted spill file surfaces as a typed [`BufError`], never as silently
//!   wrong rows.
//!
//! Governor and spill activity is reported through `lardb-obs` as the
//! `mem.*` and `spill.*` metrics.

pub mod governor;
pub mod spill;

pub use governor::{MemoryGovernor, MemoryReservation};
pub use spill::{SpillFile, SpillWriter};

use lardb_net::codec::CodecError;
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

/// Errors from the spill subsystem. IO errors carry the path and operation so
/// a failed spill names the file that broke; integrity failures distinguish
/// truncation (EOF before the fin frame) from corruption (bad bytes,
/// checksum/count mismatch, or trailing data).
#[derive(Debug, Clone, PartialEq)]
pub enum BufError {
    /// An OS-level IO failure; `op` is what we were doing (create/write/read/...).
    Io {
        path: PathBuf,
        op: &'static str,
        err: String,
    },
    /// The wire codec rejected a frame (bad magic, version, kind, length...).
    Codec(CodecError),
    /// The file ended before its fin frame: the writer died mid-spill.
    Truncated { path: PathBuf, detail: String },
    /// The file is structurally complete but its contents are wrong:
    /// checksum/count mismatch, or bytes after the fin frame.
    Corrupt { path: PathBuf, detail: String },
}

impl std::fmt::Display for BufError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BufError::Io { path, op, err } => {
                write!(f, "spill io error ({op} {}): {err}", path.display())
            }
            BufError::Codec(e) => write!(f, "spill codec error: {e}"),
            BufError::Truncated { path, detail } => {
                write!(f, "spill file truncated ({}): {detail}", path.display())
            }
            BufError::Corrupt { path, detail } => {
                write!(f, "spill file corrupt ({}): {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for BufError {}

impl From<CodecError> for BufError {
    fn from(e: CodecError) -> Self {
        BufError::Codec(e)
    }
}

/// Result alias for the spill subsystem.
pub type Result<T> = std::result::Result<T, BufError>;

/// The process-wide governor, sized by `LARDB_MEM_BUDGET_MB` (unset or `0`
/// means unbounded). Databases without an explicit `mem` config share this
/// instance, so a single env var turns on spilling for a whole test suite.
pub fn global() -> &'static Arc<MemoryGovernor> {
    static GLOBAL: OnceLock<Arc<MemoryGovernor>> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let budget = std::env::var("LARDB_MEM_BUDGET_MB")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .filter(|&mb| mb > 0)
            .map(|mb| mb * 1024 * 1024);
        Arc::new(MemoryGovernor::new(budget))
    })
}

/// Where spill files go: `LARDB_SPILL_DIR` if set and non-empty, else the
/// OS temp dir. Callers with an explicit `--spill-dir` bypass this.
pub fn default_spill_dir() -> PathBuf {
    match std::env::var("LARDB_SPILL_DIR") {
        Ok(d) if !d.trim().is_empty() => PathBuf::from(d),
        _ => std::env::temp_dir(),
    }
}
