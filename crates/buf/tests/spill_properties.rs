//! Property tests for the spill subsystem: spill → reload is identity for
//! arbitrary row batches (every `Value` variant, NaN doubles, empty
//! vectors/matrices included), and any single flipped byte in the spill
//! file is detected as a typed error — never silently wrong rows.

use std::path::PathBuf;
use std::sync::Arc;

use lardb_buf::{BufError, SpillWriter};
use lardb_la::{LabeledScalar, Matrix, Vector};
use lardb_net::codec::wire_eq;
use lardb_storage::{Row, Value};
use proptest::collection::vec;
use proptest::prelude::*;

/// Doubles over the full bit space, with the edge cases (NaN, ±0.0,
/// ±∞, subnormals) forced in often enough that every run sees them.
fn arb_f64() -> impl Strategy<Value = f64> {
    (0usize..12, i64::MIN..=i64::MAX).prop_map(|(sel, bits)| match sel {
        0 => f64::NAN,
        1 => -0.0,
        2 => 0.0,
        3 => f64::INFINITY,
        4 => f64::NEG_INFINITY,
        5 => f64::MIN_POSITIVE / 2.0, // subnormal
        _ => f64::from_bits(bits as u64),
    })
}

/// Strings from a palette that includes multi-byte UTF-8; empty often.
fn arb_string() -> impl Strategy<Value = String> {
    const PALETTE: &[char] = &['a', 'Z', '0', ' ', '_', 'é', 'β', '☃', '—', '\n'];
    vec(0usize..PALETTE.len(), 0..12)
        .prop_map(|idx| idx.into_iter().map(|i| PALETTE[i]).collect())
}

/// Any `Value` variant, matching the codec property suite's coverage.
fn arb_value() -> impl Strategy<Value = Value> {
    (
        0usize..8,
        i64::MIN..=i64::MAX,
        arb_f64(),
        vec(arb_f64(), 0..18),
        (0usize..4, 0usize..4),
        arb_string(),
    )
        .prop_map(|(variant, int, x, data, (r, c), s)| match variant {
            0 => Value::Null,
            1 => Value::Integer(int),
            2 => Value::Double(x),
            3 => Value::Boolean(int % 2 == 0),
            4 => Value::Varchar(Arc::from(s.as_str())),
            5 => Value::LabeledScalar(LabeledScalar::new(x, int)),
            6 => {
                let mut v = Vector::from_vec(data);
                v.set_label(int);
                Value::vector(v)
            }
            _ => {
                let m = Matrix::from_fn(r, c, |i, j| {
                    if data.is_empty() { x } else { data[(i * c + j) % data.len()] }
                });
                Value::matrix(m)
            }
        })
}

fn arb_rows() -> impl Strategy<Value = Vec<Row>> {
    vec(vec(arb_value(), 0..5).prop_map(Row::new), 0..40)
}

fn test_dir(tag: u64) -> PathBuf {
    std::env::temp_dir().join(format!("lardb-buf-prop-{}-{tag}", std::process::id()))
}

fn rows_wire_eq(a: &[Row], b: &[Row]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.arity() == y.arity()
                && x.values().iter().zip(y.values()).all(|(p, q)| wire_eq(p, q))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Spill then reload is the identity, bit-exactly, for arbitrary batches.
    #[test]
    fn spill_reload_is_identity(rows in arb_rows(), split in 0usize..40) {
        let dir = test_dir(1);
        let mut w = SpillWriter::create(&dir, "prop").expect("create");
        let cut = split.min(rows.len());
        w.write_rows(&rows[..cut]).expect("write");
        w.write_rows(&rows[cut..]).expect("write");
        let f = w.finish().expect("finish");
        prop_assert_eq!(f.rows(), rows.len() as u64);
        let back = f.read_rows().expect("read");
        prop_assert!(rows_wire_eq(&rows, &back));
        drop(f);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Every single-byte flip anywhere in the file is caught: the read
    /// either errors (typed) or — if it somehow decodes — cannot produce
    /// the original rows with a matching fin. It must never panic.
    #[test]
    fn flipped_byte_is_detected(rows in arb_rows(), pos_sel in 0usize..10_000, flip in 1u8..=255) {
        let dir = test_dir(2);
        let mut w = SpillWriter::create(&dir, "flip").expect("create");
        w.write_rows(&rows).expect("write");
        let f = w.finish().expect("finish");
        let mut bytes = std::fs::read(f.path()).expect("slurp");
        let pos = pos_sel % bytes.len();
        bytes[pos] ^= flip;
        std::fs::write(f.path(), &bytes).expect("rewrite");
        match f.read_rows() {
            Err(BufError::Codec(_))
            | Err(BufError::Corrupt { .. })
            | Err(BufError::Truncated { .. })
            | Err(BufError::Io { .. }) => {}
            Ok(back) => {
                // A flip confined to a value's payload bytes can decode to a
                // frame of the same length whose checksum... no: the fin
                // checksum covers every rows-frame byte, so a flip in a rows
                // frame always trips it, and a flip in the fin frame trips
                // the comparison. The only undetectable position would be a
                // flip that leaves all bytes equal — impossible with a
                // nonzero mask. Reaching here means detection failed.
                prop_assert!(false, "flip at {pos} undetected ({} rows returned)", back.len());
            }
        }
        drop(f);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
