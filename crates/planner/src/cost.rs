//! Cardinality and data-volume estimation.
//!
//! The paper's optimizer story (§4.1) is entirely about *data volume*: the
//! rows flowing through a plan, times per-row width — where the width of an
//! LA attribute comes from the dimension inference of §4.2 (an intermediate
//! `MATRIX[100000][100]` weighs 80 MB). Plan cost here is the classic
//! "sum of intermediate result volumes", which is exactly the quantity the
//! paper reasons with (80 GB vs 80 MB for the two §4.1 plans).

use lardb_storage::Schema;

/// Estimated size of a plan node's output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanEstimate {
    /// Estimated row count.
    pub rows: f64,
    /// Estimated bytes per row (LA columns priced via inferred dims).
    pub row_bytes: f64,
}

impl PlanEstimate {
    /// Creates an estimate.
    pub fn new(rows: f64, row_bytes: f64) -> Self {
        PlanEstimate { rows, row_bytes }
    }

    /// Total output volume in bytes.
    pub fn total_bytes(&self) -> f64 {
        self.rows * self.row_bytes
    }

    /// Row width implied by a schema's declared/inferred types.
    pub fn row_bytes_of(schema: &Schema) -> f64 {
        schema.estimated_row_bytes() as f64
    }
}

/// Bytes charged per COO entry of a `MATRIX_FROM_ENTRIES` aggregate —
/// (row, col, val) coordinates plus CSR overhead. Matches the wire
/// format's nnz-proportional sizing.
pub const COO_ENTRY_BYTES: f64 = 16.0;

/// Makes aggregate output widths nnz-aware: each `MATRIX_FROM_ENTRIES`
/// column is priced at `input_rows × COO_ENTRY_BYTES` (one COO entry per
/// input row) instead of the unknown-dims dense guess the schema carries,
/// which overstates a sparse tile by orders of magnitude.
pub fn sparse_agg_width(base: f64, n_sparse_aggs: usize, input_rows: f64) -> f64 {
    if n_sparse_aggs == 0 {
        return base;
    }
    let dense_guess =
        lardb_storage::DataType::Matrix(None, None).estimated_byte_width() as f64;
    let adjusted =
        base + n_sparse_aggs as f64 * (input_rows * COO_ENTRY_BYTES - dense_guess);
    adjusted.max(8.0)
}

/// Default selectivity of an equality predicate between two columns
/// (an equi-join): 1 / max cardinality side, the textbook Selinger
/// assumption with unknown distinct counts.
pub fn equi_join_selectivity(left_rows: f64, right_rows: f64) -> f64 {
    1.0 / left_rows.max(right_rows).max(1.0)
}

/// Default selectivity of a single-table predicate.
pub fn predicate_selectivity(is_equality: bool) -> f64 {
    if is_equality {
        0.1
    } else {
        1.0 / 3.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lardb_storage::DataType;

    #[test]
    fn volume_math() {
        let e = PlanEstimate::new(1000.0, 80.0);
        assert_eq!(e.total_bytes(), 80_000.0);
    }

    #[test]
    fn row_bytes_prices_matrices() {
        let s = Schema::from_pairs(&[
            ("id", DataType::Integer),
            ("m", DataType::Matrix(Some(100_000), Some(100))),
        ]);
        assert_eq!(PlanEstimate::row_bytes_of(&s), 8.0 + 80_000_000.0);
    }

    #[test]
    fn sparse_agg_width_is_nnz_proportional() {
        let dense = DataType::Matrix(None, None).estimated_byte_width() as f64;
        // No sparse aggs: untouched.
        assert_eq!(sparse_agg_width(100.0, 0, 1e6), 100.0);
        // One sparse agg over 10k entries replaces the dense guess.
        let w = sparse_agg_width(dense + 8.0, 1, 10_000.0);
        assert_eq!(w, 8.0 + 10_000.0 * COO_ENTRY_BYTES);
        assert!(w < dense / 10.0, "sparse estimate far below dense guess");
        // Never collapses below a scalar's width.
        assert_eq!(sparse_agg_width(8.0, 1, 0.0), 8.0);
    }

    #[test]
    fn selectivities_sane() {
        assert_eq!(equi_join_selectivity(100.0, 1000.0), 1e-3);
        assert!(predicate_selectivity(true) < predicate_selectivity(false));
        assert_eq!(equi_join_selectivity(0.0, 0.0), 1.0);
    }
}
