//! Cardinality and data-volume estimation.
//!
//! The paper's optimizer story (§4.1) is entirely about *data volume*: the
//! rows flowing through a plan, times per-row width — where the width of an
//! LA attribute comes from the dimension inference of §4.2 (an intermediate
//! `MATRIX[100000][100]` weighs 80 MB). Plan cost here is the classic
//! "sum of intermediate result volumes", which is exactly the quantity the
//! paper reasons with (80 GB vs 80 MB for the two §4.1 plans).

use lardb_storage::Schema;

/// Estimated size of a plan node's output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanEstimate {
    /// Estimated row count.
    pub rows: f64,
    /// Estimated bytes per row (LA columns priced via inferred dims).
    pub row_bytes: f64,
}

impl PlanEstimate {
    /// Creates an estimate.
    pub fn new(rows: f64, row_bytes: f64) -> Self {
        PlanEstimate { rows, row_bytes }
    }

    /// Total output volume in bytes.
    pub fn total_bytes(&self) -> f64 {
        self.rows * self.row_bytes
    }

    /// Row width implied by a schema's declared/inferred types.
    pub fn row_bytes_of(schema: &Schema) -> f64 {
        schema.estimated_row_bytes() as f64
    }
}

/// Default selectivity of an equality predicate between two columns
/// (an equi-join): 1 / max cardinality side, the textbook Selinger
/// assumption with unknown distinct counts.
pub fn equi_join_selectivity(left_rows: f64, right_rows: f64) -> f64 {
    1.0 / left_rows.max(right_rows).max(1.0)
}

/// Default selectivity of a single-table predicate.
pub fn predicate_selectivity(is_equality: bool) -> f64 {
    if is_equality {
        0.1
    } else {
        1.0 / 3.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lardb_storage::DataType;

    #[test]
    fn volume_math() {
        let e = PlanEstimate::new(1000.0, 80.0);
        assert_eq!(e.total_bytes(), 80_000.0);
    }

    #[test]
    fn row_bytes_prices_matrices() {
        let s = Schema::from_pairs(&[
            ("id", DataType::Integer),
            ("m", DataType::Matrix(Some(100_000), Some(100))),
        ]);
        assert_eq!(PlanEstimate::row_bytes_of(&s), 8.0 + 80_000_000.0);
    }

    #[test]
    fn selectivities_sane() {
        assert_eq!(equi_join_selectivity(100.0, 1000.0), 1e-3);
        assert!(predicate_selectivity(true) < predicate_selectivity(false));
        assert_eq!(equi_join_selectivity(0.0, 0.0), 1.0);
    }
}
