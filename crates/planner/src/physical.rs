//! Physical plans: the executable operator tree.
//!
//! Physical planning turns an optimized [`LogicalPlan`] into operators the
//! executor interprets, inserting **exchange** operators where data must
//! move between the simulated cluster's workers. Exchange placement uses
//! the classic distribution-property framework: each operator reports how
//! its output is partitioned, and a join/aggregation only shuffles when the
//! requirement is not already met — which is exactly the paper's §2.1
//! observation that when `R` is already partitioned on the join key, only
//! `L` needs to be shuffled, "the sort of decision a modern query optimizer
//! makes with total transparency".

use lardb_storage::{Catalog, Column, DataType, Partitioning, Schema};

use crate::cost::PlanEstimate;
use crate::error::{PlanError, Result};
use crate::expr::{CmpOp, Expr};
use crate::functions::AggFunc;
use crate::logical::{AggExpr, JoinKind, LogicalPlan};
use crate::optimizer::StatsSource;
use crate::Optimizer;

/// How an exchange moves rows.
#[derive(Debug, Clone, PartialEq)]
pub enum ExchangeKind {
    /// Repartition by hash of the key expressions.
    Hash(Vec<Expr>),
    /// Replicate every row to every partition.
    Broadcast,
    /// Concentrate all rows in partition 0.
    Gather,
    /// Keep one replica (partition 0) of a replicated input and drop the
    /// copies; no data actually moves.
    GatherReplica,
}

/// Aggregation phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggMode {
    /// Per-partition pre-aggregation emitting mergeable state (the
    /// MapReduce "combiner" SimSQL relies on).
    Partial,
    /// Merges partial states into final values.
    Final,
    /// Single-phase aggregation (input already on one partition or already
    /// partitioned by the group key).
    Complete,
}

/// Which join side is replicated for a nested-loop join.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BroadcastSide {
    /// Left side replicated.
    Left,
    /// Right side replicated.
    Right,
}

/// A physical operator. Every node has a stable `id` used by the executor
/// to attribute per-operator runtime statistics (Figure 4 is generated
/// from those).
#[derive(Debug, Clone, PartialEq)]
pub enum PhysicalPlan {
    /// Scan of a catalog table.
    TableScan {
        /// Operator id.
        id: usize,
        /// Table name.
        table: String,
        /// Output schema.
        schema: Schema,
    },
    /// Row filter.
    Filter {
        /// Operator id.
        id: usize,
        /// Input.
        input: Box<PhysicalPlan>,
        /// Predicate.
        predicate: Expr,
    },
    /// Expression projection.
    Project {
        /// Operator id.
        id: usize,
        /// Input.
        input: Box<PhysicalPlan>,
        /// Output expressions.
        exprs: Vec<Expr>,
        /// Output schema.
        schema: Schema,
    },
    /// Partitioned hash join (both sides co-partitioned on the keys).
    HashJoin {
        /// Operator id.
        id: usize,
        /// Build side.
        left: Box<PhysicalPlan>,
        /// Probe side.
        right: Box<PhysicalPlan>,
        /// Key expressions over the left schema.
        left_keys: Vec<Expr>,
        /// Key expressions over the right schema.
        right_keys: Vec<Expr>,
        /// Residual predicate over the concatenated schema.
        residual: Option<Expr>,
        /// Output schema.
        schema: Schema,
    },
    /// Nested-loop join; one side has been broadcast.
    NestedLoopJoin {
        /// Operator id.
        id: usize,
        /// Left input.
        left: Box<PhysicalPlan>,
        /// Right input.
        right: Box<PhysicalPlan>,
        /// Residual predicate over the concatenated schema.
        residual: Option<Expr>,
        /// Which side was broadcast (the other side stays partitioned).
        broadcast: BroadcastSide,
        /// Output schema.
        schema: Schema,
    },
    /// Hash aggregation.
    HashAggregate {
        /// Operator id.
        id: usize,
        /// Input.
        input: Box<PhysicalPlan>,
        /// Group-key expressions over the input schema (for `Final`,
        /// these are leading input columns).
        group_by: Vec<Expr>,
        /// The aggregates.
        aggs: Vec<AggExpr>,
        /// Phase.
        mode: AggMode,
        /// Output schema.
        schema: Schema,
    },
    /// Data movement between workers.
    Exchange {
        /// Operator id.
        id: usize,
        /// Input.
        input: Box<PhysicalPlan>,
        /// Movement kind.
        kind: ExchangeKind,
    },
    /// Total-order sort (single partition).
    Sort {
        /// Operator id.
        id: usize,
        /// Input.
        input: Box<PhysicalPlan>,
        /// Sort keys with ascending flags.
        keys: Vec<(Expr, bool)>,
    },
    /// Row limit.
    Limit {
        /// Operator id.
        id: usize,
        /// Input.
        input: Box<PhysicalPlan>,
        /// Maximum rows.
        n: usize,
    },
}

impl PhysicalPlan {
    /// The operator's id.
    pub fn id(&self) -> usize {
        match self {
            PhysicalPlan::TableScan { id, .. }
            | PhysicalPlan::Filter { id, .. }
            | PhysicalPlan::Project { id, .. }
            | PhysicalPlan::HashJoin { id, .. }
            | PhysicalPlan::NestedLoopJoin { id, .. }
            | PhysicalPlan::HashAggregate { id, .. }
            | PhysicalPlan::Exchange { id, .. }
            | PhysicalPlan::Sort { id, .. }
            | PhysicalPlan::Limit { id, .. } => *id,
        }
    }

    /// Output schema.
    pub fn schema(&self) -> Schema {
        match self {
            PhysicalPlan::TableScan { schema, .. } => schema.clone(),
            PhysicalPlan::Filter { input, .. } => input.schema(),
            PhysicalPlan::Project { schema, .. } => schema.clone(),
            PhysicalPlan::HashJoin { schema, .. } => schema.clone(),
            PhysicalPlan::NestedLoopJoin { schema, .. } => schema.clone(),
            PhysicalPlan::HashAggregate { schema, .. } => schema.clone(),
            PhysicalPlan::Exchange { input, .. } => input.schema(),
            PhysicalPlan::Sort { input, .. } => input.schema(),
            PhysicalPlan::Limit { input, .. } => input.schema(),
        }
    }

    /// Children.
    pub fn children(&self) -> Vec<&PhysicalPlan> {
        match self {
            PhysicalPlan::TableScan { .. } => vec![],
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::HashAggregate { input, .. }
            | PhysicalPlan::Exchange { input, .. }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::Limit { input, .. } => vec![input],
            PhysicalPlan::HashJoin { left, right, .. }
            | PhysicalPlan::NestedLoopJoin { left, right, .. } => vec![left, right],
        }
    }

    /// Human-readable operator label (used in EXPLAIN and runtime stats).
    pub fn label(&self) -> String {
        match self {
            PhysicalPlan::TableScan { table, .. } => format!("TableScan({table})"),
            PhysicalPlan::Filter { .. } => "Filter".into(),
            PhysicalPlan::Project { .. } => "Project".into(),
            PhysicalPlan::HashJoin { .. } => "HashJoin".into(),
            PhysicalPlan::NestedLoopJoin { .. } => "NestedLoopJoin".into(),
            PhysicalPlan::HashAggregate { mode, .. } => format!("HashAggregate({mode:?})"),
            PhysicalPlan::Exchange { kind, .. } => match kind {
                ExchangeKind::Hash(_) => "Exchange(Hash)".into(),
                ExchangeKind::Broadcast => "Exchange(Broadcast)".into(),
                ExchangeKind::Gather => "Exchange(Gather)".into(),
                ExchangeKind::GatherReplica => "Exchange(GatherReplica)".into(),
            },
            PhysicalPlan::Sort { .. } => "Sort".into(),
            PhysicalPlan::Limit { .. } => "Limit".into(),
        }
    }

    /// Pretty-prints the plan as an indented tree (EXPLAIN output).
    pub fn display_tree(&self) -> String {
        let mut out = String::new();
        self.fmt_tree(0, &mut out);
        out
    }

    fn fmt_tree(&self, indent: usize, out: &mut String) {
        let pad = "  ".repeat(indent);
        let detail = match self {
            PhysicalPlan::Filter { predicate, input, .. } => {
                let s = input.schema();
                format!(": {}", predicate.display(Some(&s)))
            }
            PhysicalPlan::Project { exprs, input, schema, .. } => {
                let s = input.schema();
                let items: Vec<String> = exprs
                    .iter()
                    .zip(schema.columns())
                    .map(|(e, c)| format!("{} AS {}", e.display(Some(&s)), c.name))
                    .collect();
                format!(": {}", items.join(", "))
            }
            PhysicalPlan::HashJoin { left_keys, right_keys, left, right, .. } => {
                let (ls, rs) = (left.schema(), right.schema());
                let keys: Vec<String> = left_keys
                    .iter()
                    .zip(right_keys)
                    .map(|(l, r)| {
                        format!("{} = {}", l.display(Some(&ls)), r.display(Some(&rs)))
                    })
                    .collect();
                format!(" on {}", keys.join(", "))
            }
            PhysicalPlan::NestedLoopJoin { broadcast, residual, .. } => {
                let mut d = format!(" (broadcast {:?})", broadcast);
                if let Some(r) = residual {
                    d.push_str(&format!(" filter {}", r.display(None)));
                }
                d
            }
            PhysicalPlan::HashAggregate { group_by, aggs, input, .. } => {
                let s = input.schema();
                let gb: Vec<String> = group_by.iter().map(|g| g.display(Some(&s))).collect();
                let ag: Vec<String> = aggs
                    .iter()
                    .map(|a| {
                        let arg = a
                            .arg
                            .as_ref()
                            .map(|e| e.display(Some(&s)))
                            .unwrap_or_else(|| "*".into());
                        format!("{}({})", a.func.name(), arg)
                    })
                    .collect();
                format!(" group=[{}] aggs=[{}]", gb.join(", "), ag.join(", "))
            }
            PhysicalPlan::Exchange { kind: ExchangeKind::Hash(keys), input, .. } => {
                let s = input.schema();
                let ks: Vec<String> = keys.iter().map(|k| k.display(Some(&s))).collect();
                format!(" by [{}]", ks.join(", "))
            }
            PhysicalPlan::Limit { n, .. } => format!(" {n}"),
            _ => String::new(),
        };
        out.push_str(&format!("{pad}{}{detail}\n", self.label()));
        for c in self.children() {
            c.fmt_tree(indent + 1, out);
        }
    }
}

/// How an operator's output is spread across workers.
#[derive(Debug, Clone, PartialEq)]
enum Distribution {
    /// No known structure.
    Arbitrary,
    /// Co-partitioned by hash of these expressions (over the node's output
    /// schema).
    Hash(Vec<Expr>),
    /// Entirely on partition 0.
    Single,
    /// Replicated on every worker.
    Replicated,
}

/// Per-aggregate partial-state column types; the executor's accumulators
/// encode/decode this layout.
pub fn partial_state_types(func: AggFunc, input: DataType) -> Vec<DataType> {
    match func {
        AggFunc::Sum | AggFunc::Min | AggFunc::Max => vec![input],
        AggFunc::Count => vec![DataType::Integer],
        AggFunc::Avg => vec![input, DataType::Integer],
        AggFunc::Vectorize => vec![DataType::Vector(None), DataType::Vector(None)],
        AggFunc::RowMatrix | AggFunc::ColMatrix => {
            vec![DataType::Matrix(None, None), DataType::Vector(None)]
        }
        // COO coordinate stream: (rows, cols, vals) as parallel vectors,
        // so partial states stay nnz-proportional.
        AggFunc::MatrixFromEntries => {
            vec![DataType::Vector(None), DataType::Vector(None), DataType::Vector(None)]
        }
    }
}

/// Translates optimized logical plans into physical plans.
pub struct PhysicalPlanner<'a> {
    catalog: &'a Catalog,
    stats: &'a dyn StatsSource,
    next_id: usize,
}

impl<'a> PhysicalPlanner<'a> {
    /// Creates a planner. `stats` is used for broadcast-side decisions; it
    /// is usually the same catalog.
    pub fn new(catalog: &'a Catalog, stats: &'a dyn StatsSource) -> Self {
        PhysicalPlanner { catalog, stats, next_id: 0 }
    }

    fn id(&mut self) -> usize {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Plans a logical tree. The result's rows may live on any partition;
    /// callers wanting a single result stream should wrap with
    /// [`PhysicalPlanner::plan_gathered`].
    pub fn plan(&mut self, logical: &LogicalPlan) -> Result<PhysicalPlan> {
        Ok(self.plan_dist(logical)?.0)
    }

    /// Plans and gathers the final result onto one partition.
    pub fn plan_gathered(&mut self, logical: &LogicalPlan) -> Result<PhysicalPlan> {
        let (plan, dist) = self.plan_dist(logical)?;
        Ok(self.gather(plan, dist))
    }

    /// Concentrates a plan's output on partition 0, choosing the cheapest
    /// correct movement for its current distribution.
    fn gather(&mut self, plan: PhysicalPlan, dist: Distribution) -> PhysicalPlan {
        let kind = match dist {
            Distribution::Single => return plan,
            Distribution::Replicated => ExchangeKind::GatherReplica,
            _ => ExchangeKind::Gather,
        };
        PhysicalPlan::Exchange { id: self.id(), input: Box::new(plan), kind }
    }

    fn plan_dist(&mut self, logical: &LogicalPlan) -> Result<(PhysicalPlan, Distribution)> {
        match logical {
            LogicalPlan::Scan { table, schema } => {
                let dist = match self.catalog.table(table) {
                    Ok(t) => match t.read().partitioning() {
                        Partitioning::Hash(col) => Distribution::Hash(vec![Expr::col(*col)]),
                        Partitioning::Replicated => Distribution::Replicated,
                        Partitioning::RoundRobin => Distribution::Arbitrary,
                    },
                    Err(_) => Distribution::Arbitrary,
                };
                let plan = PhysicalPlan::TableScan {
                    id: self.id(),
                    table: table.clone(),
                    schema: schema.clone(),
                };
                Ok((plan, dist))
            }
            LogicalPlan::Filter { input, predicate } => {
                let (child, dist) = self.plan_dist(input)?;
                let plan = PhysicalPlan::Filter {
                    id: self.id(),
                    input: Box::new(child),
                    predicate: predicate.clone(),
                };
                Ok((plan, dist))
            }
            LogicalPlan::Project { input, exprs, schema } => {
                let (child, dist) = self.plan_dist(input)?;
                let dist = remap_distribution(dist, exprs);
                let plan = PhysicalPlan::Project {
                    id: self.id(),
                    input: Box::new(child),
                    exprs: exprs.clone(),
                    schema: schema.clone(),
                };
                Ok((plan, dist))
            }
            LogicalPlan::Join { left, right, kind, equi, residual } => {
                self.plan_join(left, right, *kind, equi, residual, logical.schema())
            }
            LogicalPlan::Aggregate { input, group_by, aggs, schema } => {
                self.plan_aggregate(input, group_by, aggs, schema)
            }
            LogicalPlan::Sort { input, keys } => {
                let (child, dist) = self.plan_dist(input)?;
                let gathered = self.gather(child, dist);
                let plan = PhysicalPlan::Sort {
                    id: self.id(),
                    input: Box::new(gathered),
                    keys: keys.clone(),
                };
                Ok((plan, Distribution::Single))
            }
            LogicalPlan::Limit { input, n } => {
                let (child, dist) = self.plan_dist(input)?;
                let gathered = self.gather(child, dist);
                let plan =
                    PhysicalPlan::Limit { id: self.id(), input: Box::new(gathered), n: *n };
                Ok((plan, Distribution::Single))
            }
            LogicalPlan::MultiJoin { .. } => Err(PlanError::Internal(
                "MultiJoin must be optimized before physical planning".into(),
            )),
        }
    }

    fn plan_join(
        &mut self,
        left: &LogicalPlan,
        right: &LogicalPlan,
        kind: JoinKind,
        equi: &[(Expr, Expr)],
        residual: &Option<Expr>,
        schema: Schema,
    ) -> Result<(PhysicalPlan, Distribution)> {
        let (lp, ld) = self.plan_dist(left)?;
        let (rp, rd) = self.plan_dist(right)?;

        if kind == JoinKind::Inner && !equi.is_empty() {
            let left_keys: Vec<Expr> = equi.iter().map(|(l, _)| l.clone()).collect();
            let right_keys: Vec<Expr> = equi.iter().map(|(_, r)| r.clone()).collect();

            // A replicated side satisfies any partitioning requirement as
            // long as the other side is properly partitioned (classic
            // broadcast join) — but not both, or outputs would duplicate.
            let l_ok = ld == Distribution::Hash(left_keys.clone());
            let r_ok = rd == Distribution::Hash(right_keys.clone());
            let l_rep = ld == Distribution::Replicated;
            let r_rep = rd == Distribution::Replicated;

            // Cost-based broadcast: when one side is tiny and the other is
            // neither pre-partitioned nor replicated, replicating the tiny
            // build side beats hashing both (one small broadcast instead
            // of two full shuffles) — the classic small-dimension-table
            // join, e.g. the distance workload's metric matrix.
            if !(l_ok || l_rep || r_ok || r_rep) {
                let opt = Optimizer::with_defaults(self.stats);
                let l_bytes = opt.estimate(left).total_bytes();
                let r_bytes = opt.estimate(right).total_bytes();
                let threshold = BROADCAST_THRESHOLD_BYTES;
                if l_bytes.min(r_bytes) <= threshold
                    && l_bytes.max(r_bytes) > 4.0 * l_bytes.min(r_bytes)
                {
                    let broadcast_left = l_bytes <= r_bytes;
                    let (lp, rp, out_dist) = if broadcast_left {
                        let lb = PhysicalPlan::Exchange {
                            id: self.id(),
                            input: Box::new(lp),
                            kind: ExchangeKind::Broadcast,
                        };
                        (lb, rp, Distribution::Arbitrary)
                    } else {
                        let rb = PhysicalPlan::Exchange {
                            id: self.id(),
                            input: Box::new(rp),
                            kind: ExchangeKind::Broadcast,
                        };
                        (lp, rb, Distribution::Arbitrary)
                    };
                    let plan = PhysicalPlan::HashJoin {
                        id: self.id(),
                        left: Box::new(lp),
                        right: Box::new(rp),
                        left_keys,
                        right_keys,
                        residual: residual.clone(),
                        schema,
                    };
                    return Ok((plan, out_dist));
                }
            }

            let (lp, rp) = match (l_ok || l_rep, r_ok || r_rep, l_rep && r_rep) {
                (true, true, false) => (lp, rp),
                (true, false, false) => {
                    (lp, self.hash_exchange(rp, right_keys.clone()))
                }
                (false, true, false) => (self.hash_exchange(lp, left_keys.clone()), rp),
                _ => {
                    // Includes the both-replicated case: drop the extra
                    // replicas first, or hashing would emit duplicates.
                    let lp = if l_rep { self.gather(lp, Distribution::Replicated) } else { lp };
                    let rp = if r_rep { self.gather(rp, Distribution::Replicated) } else { rp };
                    (
                        self.hash_exchange(lp, left_keys.clone()),
                        self.hash_exchange(rp, right_keys.clone()),
                    )
                }
            };

            let out_dist = if ld == Distribution::Replicated && rd != Distribution::Replicated
            {
                // Left never moved; output follows the probe side's keys.
                Distribution::Hash(
                    right_keys
                        .iter()
                        .map(|k| k.remap_columns(&|i| i + left_keys_base(&lp)))
                        .collect(),
                )
            } else {
                Distribution::Hash(left_keys.clone())
            };
            let plan = PhysicalPlan::HashJoin {
                id: self.id(),
                left: Box::new(lp),
                right: Box::new(rp),
                left_keys,
                right_keys,
                residual: residual.clone(),
                schema,
            };
            return Ok((plan, out_dist));
        }

        // Cross join (or inner with residual only): broadcast the smaller
        // side, keep the bigger side partitioned.
        let opt = Optimizer::with_defaults(self.stats);
        let l_bytes = opt.estimate(left).total_bytes();
        let r_bytes = opt.estimate(right).total_bytes();
        let broadcast = if l_bytes <= r_bytes { BroadcastSide::Left } else { BroadcastSide::Right };
        let (lp, rp, dist) = match broadcast {
            BroadcastSide::Left => {
                let lb = if ld == Distribution::Replicated {
                    lp
                } else {
                    PhysicalPlan::Exchange {
                        id: self.id(),
                        input: Box::new(lp),
                        kind: ExchangeKind::Broadcast,
                    }
                };
                // The kept side must not be replicated or output duplicates.
                let (rk, dist) = if rd == Distribution::Replicated {
                    (self.gather(rp, Distribution::Replicated), Distribution::Single)
                } else {
                    (rp, Distribution::Arbitrary)
                };
                (lb, rk, dist)
            }
            BroadcastSide::Right => {
                let rb = if rd == Distribution::Replicated {
                    rp
                } else {
                    PhysicalPlan::Exchange {
                        id: self.id(),
                        input: Box::new(rp),
                        kind: ExchangeKind::Broadcast,
                    }
                };
                let (lk, dist) = if ld == Distribution::Replicated {
                    (self.gather(lp, Distribution::Replicated), Distribution::Single)
                } else {
                    (lp, Distribution::Arbitrary)
                };
                (lk, rb, dist)
            }
        };
        let plan = PhysicalPlan::NestedLoopJoin {
            id: self.id(),
            left: Box::new(lp),
            right: Box::new(rp),
            residual: residual.clone(),
            broadcast,
            schema,
        };
        Ok((plan, dist))
    }

    fn plan_aggregate(
        &mut self,
        input: &LogicalPlan,
        group_by: &[Expr],
        aggs: &[AggExpr],
        schema: &Schema,
    ) -> Result<(PhysicalPlan, Distribution)> {
        let (child, dist) = self.plan_dist(input)?;
        let in_schema = input.schema();

        // Replicated input: aggregate one replica, single phase.
        let (child, dist) = if dist == Distribution::Replicated {
            (self.gather(child, Distribution::Replicated), Distribution::Single)
        } else {
            (child, dist)
        };

        // Already grouped correctly (or single partition): one phase.
        if dist == Distribution::Single
            || (!group_by.is_empty() && dist == Distribution::Hash(group_by.to_vec()))
        {
            let out_dist = if dist == Distribution::Single {
                Distribution::Single
            } else {
                Distribution::Hash((0..group_by.len()).map(Expr::col).collect())
            };
            let plan = PhysicalPlan::HashAggregate {
                id: self.id(),
                input: Box::new(child),
                group_by: group_by.to_vec(),
                aggs: aggs.to_vec(),
                mode: AggMode::Complete,
                schema: schema.clone(),
            };
            return Ok((plan, out_dist));
        }

        // Two phases: partial → exchange → final.
        let partial_schema = self.partial_schema(&in_schema, group_by, aggs)?;
        let partial = PhysicalPlan::HashAggregate {
            id: self.id(),
            input: Box::new(child),
            group_by: group_by.to_vec(),
            aggs: aggs.to_vec(),
            mode: AggMode::Partial,
            schema: partial_schema,
        };

        let exchange = if group_by.is_empty() {
            PhysicalPlan::Exchange {
                id: self.id(),
                input: Box::new(partial),
                kind: ExchangeKind::Gather,
            }
        } else {
            // Partial output leads with the group-key columns.
            let keys: Vec<Expr> = (0..group_by.len()).map(Expr::col).collect();
            PhysicalPlan::Exchange {
                id: self.id(),
                input: Box::new(partial),
                kind: ExchangeKind::Hash(keys),
            }
        };

        let final_group: Vec<Expr> = (0..group_by.len()).map(Expr::col).collect();
        let out_dist = if group_by.is_empty() {
            Distribution::Single
        } else {
            Distribution::Hash(final_group.clone())
        };
        let plan = PhysicalPlan::HashAggregate {
            id: self.id(),
            input: Box::new(exchange),
            group_by: final_group,
            aggs: aggs.to_vec(),
            mode: AggMode::Final,
            schema: schema.clone(),
        };
        Ok((plan, out_dist))
    }

    /// Schema of a partial aggregate's output: group keys, then each
    /// aggregate's state columns.
    fn partial_schema(
        &self,
        in_schema: &Schema,
        group_by: &[Expr],
        aggs: &[AggExpr],
    ) -> Result<Schema> {
        let mut cols = Vec::new();
        for (i, g) in group_by.iter().enumerate() {
            cols.push(Column::new(format!("__g{i}"), g.infer_type(in_schema)?));
        }
        for (i, a) in aggs.iter().enumerate() {
            let input_type = match &a.arg {
                Some(e) => e.infer_type(in_schema)?,
                None => DataType::Integer,
            };
            for (j, t) in partial_state_types(a.func, input_type).iter().enumerate() {
                cols.push(Column::new(format!("__s{i}_{j}"), *t));
            }
        }
        Ok(Schema::new(cols))
    }

    fn hash_exchange(&mut self, input: PhysicalPlan, keys: Vec<Expr>) -> PhysicalPlan {
        PhysicalPlan::Exchange {
            id: self.id(),
            input: Box::new(input),
            kind: ExchangeKind::Hash(keys),
        }
    }

    /// Annotates a physical plan with the cost model's per-operator
    /// estimates: a map from operator id to estimated output size, built
    /// with the same statistics and selectivity assumptions the optimizer
    /// used. `EXPLAIN ANALYZE` joins this side-map against the executor's
    /// measured `OperatorStats` actuals to compute per-operator q-errors.
    pub fn estimates(&self, plan: &PhysicalPlan) -> std::collections::HashMap<usize, PlanEstimate> {
        let mut out = std::collections::HashMap::new();
        self.estimate_into(plan, &mut out);
        out
    }

    /// Recursive worker for [`PhysicalPlanner::estimates`]; returns the
    /// node's own estimate after recording all children.
    fn estimate_into(
        &self,
        plan: &PhysicalPlan,
        out: &mut std::collections::HashMap<usize, PlanEstimate>,
    ) -> PlanEstimate {
        use crate::cost::{equi_join_selectivity, predicate_selectivity};
        let est = match plan {
            PhysicalPlan::TableScan { table, schema, .. } => {
                let rows = self
                    .stats
                    .table_rows(table)
                    .map(|r| r as f64)
                    .unwrap_or(crate::optimizer::DEFAULT_TABLE_ROWS);
                PlanEstimate::new(rows.max(1.0), PlanEstimate::row_bytes_of(schema))
            }
            PhysicalPlan::Filter { input, predicate, .. } => {
                let e = self.estimate_into(input, out);
                let mut preds = Vec::new();
                predicate.clone().split_conjunction(&mut preds);
                let sel: f64 = preds
                    .iter()
                    .map(|p| predicate_selectivity(matches!(p, Expr::Cmp { op: CmpOp::Eq, .. })))
                    .product();
                PlanEstimate::new((e.rows * sel).max(1.0), e.row_bytes)
            }
            PhysicalPlan::Project { input, schema, .. } => {
                let e = self.estimate_into(input, out);
                PlanEstimate::new(e.rows, PlanEstimate::row_bytes_of(schema))
            }
            PhysicalPlan::HashJoin { left, right, left_keys, schema, .. } => {
                let l = self.estimate_into(left, out);
                let r = self.estimate_into(right, out);
                let sel: f64 = left_keys
                    .iter()
                    .map(|_| equi_join_selectivity(l.rows, r.rows))
                    .product();
                PlanEstimate::new(
                    (l.rows * r.rows * sel).max(1.0),
                    PlanEstimate::row_bytes_of(schema),
                )
            }
            PhysicalPlan::NestedLoopJoin { left, right, residual, schema, .. } => {
                let l = self.estimate_into(left, out);
                let r = self.estimate_into(right, out);
                let sel = match residual {
                    Some(Expr::Cmp { op: CmpOp::Eq, .. }) => equi_join_selectivity(l.rows, r.rows),
                    Some(_) => 1.0 / 3.0,
                    None => 1.0,
                };
                PlanEstimate::new(
                    (l.rows * r.rows * sel).max(1.0),
                    PlanEstimate::row_bytes_of(schema),
                )
            }
            PhysicalPlan::HashAggregate { input, group_by, mode, aggs, schema, .. } => {
                let e = self.estimate_into(input, out);
                let rows = match (mode, group_by.is_empty()) {
                    // Per-partition pre-aggregation can't shrink below the
                    // group count but we bound it by its input.
                    (AggMode::Partial, _) => e.rows,
                    (_, true) => 1.0,
                    (_, false) => e.rows.sqrt().max(1.0),
                };
                let sparse = aggs
                    .iter()
                    .filter(|a| a.func == AggFunc::MatrixFromEntries)
                    .count();
                let width = crate::cost::sparse_agg_width(
                    PlanEstimate::row_bytes_of(schema),
                    sparse,
                    e.rows,
                );
                PlanEstimate::new(rows, width)
            }
            PhysicalPlan::Exchange { input, .. }
            | PhysicalPlan::Sort { input, .. } => self.estimate_into(input, out),
            PhysicalPlan::Limit { input, n, .. } => {
                let e = self.estimate_into(input, out);
                PlanEstimate::new(e.rows.min(*n as f64), e.row_bytes)
            }
        };
        out.insert(plan.id(), est);
        est
    }
}

/// Build sides at or below this estimated size are broadcast instead of
/// hash-repartitioning both join inputs.
const BROADCAST_THRESHOLD_BYTES: f64 = 4.0 * 1024.0 * 1024.0;

/// Arity of a plan's output; helper for shifting right-side keys.
fn left_keys_base(left: &PhysicalPlan) -> usize {
    left.schema().arity()
}

/// Pushes a distribution property through a projection: keys survive when
/// each key expression appears verbatim as an output expression.
fn remap_distribution(dist: Distribution, exprs: &[Expr]) -> Distribution {
    match dist {
        Distribution::Hash(keys) => {
            let mut new_keys = Vec::with_capacity(keys.len());
            for k in &keys {
                match exprs.iter().position(|e| e == k) {
                    Some(j) => new_keys.push(Expr::col(j)),
                    None => return Distribution::Arbitrary,
                }
            }
            Distribution::Hash(new_keys)
        }
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lardb_storage::{Partitioning, Table};
    use std::collections::HashMap;

    fn catalog() -> Catalog {
        let c = Catalog::new();
        let mk = |name: &str, part: Partitioning| {
            Table::new(
                name,
                Schema::from_pairs(&[("id", DataType::Integer), ("v", DataType::Double)]),
                4,
                part,
            )
        };
        c.create_table(mk("rr", Partitioning::RoundRobin)).unwrap();
        c.create_table(mk("hashed", Partitioning::Hash(0))).unwrap();
        c.create_table(mk("rep", Partitioning::Replicated)).unwrap();
        c
    }

    fn scan(cat: &Catalog, name: &str) -> LogicalPlan {
        LogicalPlan::Scan {
            table: name.into(),
            schema: cat.table_schema(name).unwrap().with_qualifier(name),
        }
    }

    fn count_ops(p: &PhysicalPlan, pred: &dyn Fn(&PhysicalPlan) -> bool) -> usize {
        let mut n = usize::from(pred(p));
        for c in p.children() {
            n += count_ops(c, pred);
        }
        n
    }

    fn join_on_id(cat: &Catalog, l: &str, r: &str) -> LogicalPlan {
        LogicalPlan::Join {
            left: Box::new(scan(cat, l)),
            right: Box::new(scan(cat, r)),
            kind: JoinKind::Inner,
            equi: vec![(Expr::col(0), Expr::col(0))],
            residual: None,
        }
    }

    #[test]
    fn prepartitioned_side_skips_exchange() {
        let cat = catalog();
        let stats: HashMap<String, usize> = HashMap::new();
        let mut pp = PhysicalPlanner::new(&cat, &stats);
        // hashed ⋈ rr on id: only rr needs a shuffle (the §2.1 example).
        let plan = pp.plan(&join_on_id(&cat, "hashed", "rr")).unwrap();
        let exchanges = count_ops(&plan, &|p| matches!(p, PhysicalPlan::Exchange { .. }));
        assert_eq!(exchanges, 1, "{}", plan.display_tree());
    }

    #[test]
    fn unpartitioned_join_needs_two_exchanges() {
        let cat = catalog();
        let stats: HashMap<String, usize> = HashMap::new();
        let mut pp = PhysicalPlanner::new(&cat, &stats);
        let plan = pp.plan(&join_on_id(&cat, "rr", "rr")).unwrap();
        let exchanges = count_ops(&plan, &|p| matches!(p, PhysicalPlan::Exchange { .. }));
        assert_eq!(exchanges, 2);
    }

    #[test]
    fn replicated_side_is_broadcast_free() {
        let cat = catalog();
        let stats: HashMap<String, usize> = HashMap::new();
        let mut pp = PhysicalPlanner::new(&cat, &stats);
        let plan = pp.plan(&join_on_id(&cat, "rep", "hashed")).unwrap();
        let exchanges = count_ops(&plan, &|p| matches!(p, PhysicalPlan::Exchange { .. }));
        assert_eq!(exchanges, 0, "{}", plan.display_tree());
    }

    #[test]
    fn cross_join_broadcasts_one_side() {
        let cat = catalog();
        let mut stats = HashMap::new();
        stats.insert("rr".to_string(), 1000);
        let mut pp = PhysicalPlanner::new(&cat, &stats);
        let cross = LogicalPlan::Join {
            left: Box::new(scan(&cat, "rr")),
            right: Box::new(scan(&cat, "rr")),
            kind: JoinKind::Cross,
            equi: vec![],
            residual: None,
        };
        let plan = pp.plan(&cross).unwrap();
        let bc = count_ops(&plan, &|p| {
            matches!(
                p,
                PhysicalPlan::Exchange { kind: ExchangeKind::Broadcast, .. }
            )
        });
        assert_eq!(bc, 1);
        assert_eq!(
            count_ops(&plan, &|p| matches!(p, PhysicalPlan::NestedLoopJoin { .. })),
            1
        );
    }

    #[test]
    fn global_aggregate_uses_partial_gather_final() {
        let cat = catalog();
        let stats: HashMap<String, usize> = HashMap::new();
        let mut pp = PhysicalPlanner::new(&cat, &stats);
        let agg = LogicalPlan::aggregate(
            scan(&cat, "rr"),
            vec![],
            vec![AggExpr { func: AggFunc::Sum, arg: Some(Expr::col(1)), name: "s".into() }],
        )
        .unwrap();
        let plan = pp.plan(&agg).unwrap();
        let partials = count_ops(&plan, &|p| {
            matches!(p, PhysicalPlan::HashAggregate { mode: AggMode::Partial, .. })
        });
        let finals = count_ops(&plan, &|p| {
            matches!(p, PhysicalPlan::HashAggregate { mode: AggMode::Final, .. })
        });
        let gathers = count_ops(&plan, &|p| {
            matches!(p, PhysicalPlan::Exchange { kind: ExchangeKind::Gather, .. })
        });
        assert_eq!((partials, finals, gathers), (1, 1, 1), "{}", plan.display_tree());
    }

    #[test]
    fn grouped_aggregate_on_prepartitioned_input_is_single_phase() {
        let cat = catalog();
        let stats: HashMap<String, usize> = HashMap::new();
        let mut pp = PhysicalPlanner::new(&cat, &stats);
        let agg = LogicalPlan::aggregate(
            scan(&cat, "hashed"),
            vec![(Expr::col(0), "id".into())],
            vec![AggExpr { func: AggFunc::Count, arg: None, name: "c".into() }],
        )
        .unwrap();
        let plan = pp.plan(&agg).unwrap();
        let complete = count_ops(&plan, &|p| {
            matches!(p, PhysicalPlan::HashAggregate { mode: AggMode::Complete, .. })
        });
        assert_eq!(complete, 1, "{}", plan.display_tree());
        assert_eq!(
            count_ops(&plan, &|p| matches!(p, PhysicalPlan::Exchange { .. })),
            0
        );
    }

    #[test]
    fn tiny_side_is_broadcast_instead_of_double_shuffle() {
        let cat = catalog();
        let mut stats = HashMap::new();
        stats.insert("rr".to_string(), 1_000_000);
        stats.insert("tiny".to_string(), 10);
        cat.create_table(Table::new(
            "tiny",
            Schema::from_pairs(&[("id", DataType::Integer)]),
            4,
            Partitioning::RoundRobin,
        ))
        .unwrap();
        let mut pp = PhysicalPlanner::new(&cat, &stats);
        let join = LogicalPlan::Join {
            left: Box::new(scan(&cat, "tiny")),
            right: Box::new(scan(&cat, "rr")),
            kind: JoinKind::Inner,
            equi: vec![(Expr::col(0), Expr::col(0))],
            residual: None,
        };
        let plan = pp.plan(&join).unwrap();
        let broadcasts = count_ops(&plan, &|p| {
            matches!(p, PhysicalPlan::Exchange { kind: ExchangeKind::Broadcast, .. })
        });
        let hashes = count_ops(&plan, &|p| {
            matches!(p, PhysicalPlan::Exchange { kind: ExchangeKind::Hash(_), .. })
        });
        assert_eq!((broadcasts, hashes), (1, 0), "{}", plan.display_tree());
        // Still a hash join (build = broadcast side).
        assert_eq!(count_ops(&plan, &|p| matches!(p, PhysicalPlan::HashJoin { .. })), 1);
    }

    #[test]
    fn similar_sized_sides_still_double_shuffle() {
        let cat = catalog();
        let mut stats = HashMap::new();
        stats.insert("rr".to_string(), 1000);
        let mut pp = PhysicalPlanner::new(&cat, &stats);
        let plan = pp.plan(&join_on_id(&cat, "rr", "rr")).unwrap();
        let hashes = count_ops(&plan, &|p| {
            matches!(p, PhysicalPlan::Exchange { kind: ExchangeKind::Hash(_), .. })
        });
        assert_eq!(hashes, 2);
    }

    #[test]
    fn partial_state_layouts() {
        assert_eq!(partial_state_types(AggFunc::Sum, DataType::Double).len(), 1);
        assert_eq!(partial_state_types(AggFunc::Avg, DataType::Double).len(), 2);
        assert_eq!(
            partial_state_types(AggFunc::Vectorize, DataType::LabeledScalar).len(),
            2
        );
        assert_eq!(
            partial_state_types(AggFunc::RowMatrix, DataType::Vector(None))[0],
            DataType::Matrix(None, None)
        );
    }

    #[test]
    fn plan_gathered_appends_gather() {
        let cat = catalog();
        let stats: HashMap<String, usize> = HashMap::new();
        let mut pp = PhysicalPlanner::new(&cat, &stats);
        let plan = pp.plan_gathered(&scan(&cat, "rr")).unwrap();
        assert!(matches!(
            plan,
            PhysicalPlan::Exchange { kind: ExchangeKind::Gather, .. }
        ));
    }

    #[test]
    fn estimates_cover_every_operator() {
        let cat = catalog();
        let mut stats = HashMap::new();
        stats.insert("rr".to_string(), 400);
        let mut pp = PhysicalPlanner::new(&cat, &stats);
        let plan = pp.plan_gathered(&join_on_id(&cat, "rr", "rr")).unwrap();
        let est = pp.estimates(&plan);

        // Every node in the tree has an estimate under its id.
        fn ids(p: &PhysicalPlan, out: &mut Vec<usize>) {
            out.push(p.id());
            for c in p.children() {
                ids(c, out);
            }
        }
        let mut all = Vec::new();
        ids(&plan, &mut all);
        for id in &all {
            assert!(est.contains_key(id), "no estimate for operator {id}");
        }

        // Scans use catalog stats; the join applies the Selinger equi
        // selectivity: 400 * 400 / max(400, 400) = 400 rows.
        fn find<'p>(
            p: &'p PhysicalPlan,
            pred: &dyn Fn(&PhysicalPlan) -> bool,
        ) -> Option<&'p PhysicalPlan> {
            if pred(p) {
                return Some(p);
            }
            p.children().into_iter().find_map(|c| find(c, pred))
        }
        let scan_node =
            find(&plan, &|p| matches!(p, PhysicalPlan::TableScan { .. })).unwrap();
        assert_eq!(est[&scan_node.id()].rows, 400.0);
        let join_node = find(&plan, &|p| matches!(p, PhysicalPlan::HashJoin { .. })).unwrap();
        assert_eq!(est[&join_node.id()].rows, 400.0);
        // Exchanges pass their input's estimate through unchanged.
        let ex = find(&plan, &|p| {
            matches!(p, PhysicalPlan::Exchange { kind: ExchangeKind::Gather, .. })
        })
        .unwrap();
        assert_eq!(est[&ex.id()].rows, est[&join_node.id()].rows);
        assert!(est[&scan_node.id()].total_bytes() > 0.0);
    }
}
