//! The built-in function suite of §3.1–§3.3, with templated type
//! signatures (§4.2) and runtime evaluation.
//!
//! Each scalar built-in knows two things:
//!
//! 1. **Its templated signature** — [`Builtin::infer_type`] takes the
//!    (possibly dimension-annotated) argument types and *unifies* the
//!    signature's dimension parameters against them, exactly as §4.2
//!    describes: binding `a`/`b`/`c` to known sizes, failing at compile
//!    time when a parameter would bind to two different values, and
//!    leaving parameters unknown (runtime-checked) when the input size is
//!    unknown. The inferred output size is what the cost model prices.
//! 2. **Its runtime semantics** — [`Builtin::evaluate`] over [`Value`]s.
//!
//! Aggregates ([`AggFunc`]) follow the same pattern; their accumulators
//! live in `lardb-exec`, but result-type inference is here.

use lardb_la::{LabeledScalar, Matrix, Vector};
use lardb_storage::{DataType, Value};

use crate::error::{PlanError, Result};

/// Type information for one function argument at planning time: its data
/// type plus, when the argument is an integer literal, its value — needed
/// by constructors like `identity(10)` whose *output type* depends on an
/// argument *value*.
#[derive(Debug, Clone, Copy)]
pub struct ArgType {
    /// The argument's inferred type.
    pub dtype: DataType,
    /// The constant value, when statically known.
    pub const_int: Option<i64>,
}

impl ArgType {
    /// Plain (non-constant) argument.
    pub fn of(dtype: DataType) -> Self {
        ArgType { dtype, const_int: None }
    }

    /// Integer-literal argument.
    pub fn const_int(v: i64) -> Self {
        ArgType { dtype: DataType::Integer, const_int: Some(v) }
    }
}

/// The scalar built-in functions over `LABELED_SCALAR`, `VECTOR` and
/// `MATRIX`. The paper reports 22 built-ins; this implementation has 32
/// (the paper's suite plus `solve_ls`, `min_element`, `max_element`, a
/// few constructors its examples imply, and the sparse-representation
/// helpers `sparsify`, `densify`, `nnz` and `sparse_entry`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Builtin {
    /// `matrix_multiply(MATRIX[a][b], MATRIX[b][c]) -> MATRIX[a][c]`
    MatrixMultiply,
    /// `matrix_vector_multiply(MATRIX[a][b], VECTOR[b]) -> VECTOR[a]`
    MatrixVectorMultiply,
    /// `vector_matrix_multiply(VECTOR[a], MATRIX[a][b]) -> VECTOR[b]`
    VectorMatrixMultiply,
    /// `outer_product(VECTOR[a], VECTOR[b]) -> MATRIX[a][b]`
    OuterProduct,
    /// `inner_product(VECTOR[a], VECTOR[a]) -> DOUBLE`
    InnerProduct,
    /// `trans_matrix(MATRIX[a][b]) -> MATRIX[b][a]`
    TransMatrix,
    /// `matrix_inverse(MATRIX[a][a]) -> MATRIX[a][a]`
    MatrixInverse,
    /// `diag(MATRIX[a][a]) -> VECTOR[a]`
    Diag,
    /// `diag_matrix(VECTOR[a]) -> MATRIX[a][a]`
    DiagMatrix,
    /// `identity(n) -> MATRIX[n][n]`
    Identity,
    /// `zero_matrix(r, c) -> MATRIX[r][c]`
    ZeroMatrix,
    /// `zero_vector(n) -> VECTOR[n]`
    ZeroVector,
    /// `trace(MATRIX[a][a]) -> DOUBLE`
    Trace,
    /// `frobenius_norm(MATRIX[a][b]) -> DOUBLE`
    FrobeniusNorm,
    /// `norm2(VECTOR[a]) -> DOUBLE`
    Norm2,
    /// `sum_elements(MATRIX[a][b] | VECTOR[a]) -> DOUBLE`
    SumElements,
    /// `row_sums(MATRIX[a][b]) -> VECTOR[a]`
    RowSums,
    /// `col_sums(MATRIX[a][b]) -> VECTOR[b]`
    ColSums,
    /// `row_min(MATRIX[a][b]) -> VECTOR[a]`
    RowMin,
    /// `row_max(MATRIX[a][b]) -> VECTOR[a]`
    RowMax,
    /// `get_scalar(VECTOR[a], i) -> DOUBLE`
    GetScalar,
    /// `get_entry(MATRIX[a][b], i, j) -> DOUBLE`
    GetEntry,
    /// `label_scalar(DOUBLE, i) -> LABELED_SCALAR`
    LabelScalar,
    /// `label_vector(VECTOR[a], i) -> VECTOR[a]` (attaches the label)
    LabelVector,
    /// `solve(MATRIX[a][a], VECTOR[a]) -> VECTOR[a]`
    Solve,
    /// `solve_ls(MATRIX[a][b], VECTOR[a]) -> VECTOR[b]` — least squares via
    /// Householder QR (extension beyond the paper's list).
    SolveLs,
    /// `min_element(MATRIX[a][b] | VECTOR[a]) -> DOUBLE`
    MinElement,
    /// `max_element(MATRIX[a][b] | VECTOR[a]) -> DOUBLE`
    MaxElement,
    /// `sparsify(MATRIX[a][b]) -> MATRIX[a][b]` — force the CSR sparse
    /// representation (logically the identity function).
    Sparsify,
    /// `densify(MATRIX[a][b]) -> MATRIX[a][b]` — force the dense
    /// representation (logically the identity function).
    Densify,
    /// `nnz(MATRIX[a][b]) -> INTEGER` — number of stored/non-zero entries.
    Nnz,
    /// `sparse_entry(row, col, val) -> VECTOR[3]` — packs one COO
    /// coordinate into a 3-vector. Internal carrier for the single-argument
    /// `MATRIX_FROM_ENTRIES` aggregate; the binder synthesizes it, but it
    /// is also callable directly.
    SparseEntry,
}

/// All built-ins, for registry listings and docs.
pub const ALL_BUILTINS: &[Builtin] = &[
    Builtin::MatrixMultiply,
    Builtin::MatrixVectorMultiply,
    Builtin::VectorMatrixMultiply,
    Builtin::OuterProduct,
    Builtin::InnerProduct,
    Builtin::TransMatrix,
    Builtin::MatrixInverse,
    Builtin::Diag,
    Builtin::DiagMatrix,
    Builtin::Identity,
    Builtin::ZeroMatrix,
    Builtin::ZeroVector,
    Builtin::Trace,
    Builtin::FrobeniusNorm,
    Builtin::Norm2,
    Builtin::SumElements,
    Builtin::RowSums,
    Builtin::ColSums,
    Builtin::RowMin,
    Builtin::RowMax,
    Builtin::GetScalar,
    Builtin::GetEntry,
    Builtin::LabelScalar,
    Builtin::LabelVector,
    Builtin::Solve,
    Builtin::SolveLs,
    Builtin::MinElement,
    Builtin::MaxElement,
    Builtin::Sparsify,
    Builtin::Densify,
    Builtin::Nnz,
    Builtin::SparseEntry,
];

impl Builtin {
    /// SQL-visible name.
    pub fn name(&self) -> &'static str {
        match self {
            Builtin::MatrixMultiply => "matrix_multiply",
            Builtin::MatrixVectorMultiply => "matrix_vector_multiply",
            Builtin::VectorMatrixMultiply => "vector_matrix_multiply",
            Builtin::OuterProduct => "outer_product",
            Builtin::InnerProduct => "inner_product",
            Builtin::TransMatrix => "trans_matrix",
            Builtin::MatrixInverse => "matrix_inverse",
            Builtin::Diag => "diag",
            Builtin::DiagMatrix => "diag_matrix",
            Builtin::Identity => "identity",
            Builtin::ZeroMatrix => "zero_matrix",
            Builtin::ZeroVector => "zero_vector",
            Builtin::Trace => "trace",
            Builtin::FrobeniusNorm => "frobenius_norm",
            Builtin::Norm2 => "norm2",
            Builtin::SumElements => "sum_elements",
            Builtin::RowSums => "row_sums",
            Builtin::ColSums => "col_sums",
            Builtin::RowMin => "row_min",
            Builtin::RowMax => "row_max",
            Builtin::GetScalar => "get_scalar",
            Builtin::GetEntry => "get_entry",
            Builtin::LabelScalar => "label_scalar",
            Builtin::LabelVector => "label_vector",
            Builtin::Solve => "solve",
            Builtin::SolveLs => "solve_ls",
            Builtin::MinElement => "min_element",
            Builtin::MaxElement => "max_element",
            Builtin::Sparsify => "sparsify",
            Builtin::Densify => "densify",
            Builtin::Nnz => "nnz",
            Builtin::SparseEntry => "sparse_entry",
        }
    }

    /// Case-insensitive lookup by SQL name.
    pub fn from_name(name: &str) -> Option<Builtin> {
        let lower = name.to_ascii_lowercase();
        ALL_BUILTINS.iter().copied().find(|b| b.name() == lower)
    }

    /// Number of arguments the function takes.
    pub fn arity(&self) -> usize {
        match self {
            Builtin::TransMatrix
            | Builtin::MatrixInverse
            | Builtin::Diag
            | Builtin::DiagMatrix
            | Builtin::Identity
            | Builtin::ZeroVector
            | Builtin::Trace
            | Builtin::FrobeniusNorm
            | Builtin::Norm2
            | Builtin::SumElements
            | Builtin::RowSums
            | Builtin::ColSums
            | Builtin::RowMin
            | Builtin::RowMax
            | Builtin::MinElement
            | Builtin::MaxElement
            | Builtin::Sparsify
            | Builtin::Densify
            | Builtin::Nnz => 1,
            Builtin::GetEntry | Builtin::SparseEntry => 3,
            _ => 2,
        }
    }

    /// Templated-signature type inference (§4.2). Binds the signature's
    /// dimension parameters against the argument types, failing on
    /// impossible bindings and producing the exact output type when the
    /// inputs' sizes are known.
    pub fn infer_type(&self, args: &[ArgType]) -> Result<DataType> {
        if args.len() != self.arity() {
            return Err(PlanError::Type(format!(
                "{} takes {} argument(s), got {}",
                self.name(),
                self.arity(),
                args.len()
            )));
        }
        let t = |i: usize| args[i].dtype;
        match self {
            Builtin::MatrixMultiply => {
                let (a, b) = expect_matrix(self.name(), t(0))?;
                let (b2, c) = expect_matrix(self.name(), t(1))?;
                unify(self.name(), "b", b, b2)?;
                Ok(DataType::Matrix(a, c))
            }
            Builtin::MatrixVectorMultiply => {
                let (a, b) = expect_matrix(self.name(), t(0))?;
                let b2 = expect_vector(self.name(), t(1))?;
                unify(self.name(), "b", b, b2)?;
                Ok(DataType::Vector(a))
            }
            Builtin::VectorMatrixMultiply => {
                let a = expect_vector(self.name(), t(0))?;
                let (a2, b) = expect_matrix(self.name(), t(1))?;
                unify(self.name(), "a", a, a2)?;
                Ok(DataType::Vector(b))
            }
            Builtin::OuterProduct => {
                let a = expect_vector(self.name(), t(0))?;
                let b = expect_vector(self.name(), t(1))?;
                Ok(DataType::Matrix(a, b))
            }
            Builtin::InnerProduct => {
                let a = expect_vector(self.name(), t(0))?;
                let b = expect_vector(self.name(), t(1))?;
                unify(self.name(), "a", a, b)?;
                Ok(DataType::Double)
            }
            Builtin::TransMatrix => {
                let (a, b) = expect_matrix(self.name(), t(0))?;
                Ok(DataType::Matrix(b, a))
            }
            Builtin::MatrixInverse => {
                let (a, b) = expect_square(self.name(), t(0))?;
                Ok(DataType::Matrix(a.or(b), a.or(b)))
            }
            Builtin::Diag => {
                let (a, b) = expect_square(self.name(), t(0))?;
                Ok(DataType::Vector(a.or(b)))
            }
            Builtin::DiagMatrix => {
                let a = expect_vector(self.name(), t(0))?;
                Ok(DataType::Matrix(a, a))
            }
            Builtin::Identity => {
                expect_integer(self.name(), t(0))?;
                let n = args[0].const_int.map(|v| v as usize);
                Ok(DataType::Matrix(n, n))
            }
            Builtin::ZeroMatrix => {
                expect_integer(self.name(), t(0))?;
                expect_integer(self.name(), t(1))?;
                Ok(DataType::Matrix(
                    args[0].const_int.map(|v| v as usize),
                    args[1].const_int.map(|v| v as usize),
                ))
            }
            Builtin::ZeroVector => {
                expect_integer(self.name(), t(0))?;
                Ok(DataType::Vector(args[0].const_int.map(|v| v as usize)))
            }
            Builtin::Trace => {
                expect_square(self.name(), t(0))?;
                Ok(DataType::Double)
            }
            Builtin::FrobeniusNorm => {
                expect_matrix(self.name(), t(0))?;
                Ok(DataType::Double)
            }
            Builtin::Norm2 => {
                expect_vector(self.name(), t(0))?;
                Ok(DataType::Double)
            }
            Builtin::SumElements => match t(0) {
                DataType::Matrix(_, _) | DataType::Vector(_) => Ok(DataType::Double),
                other => Err(PlanError::Type(format!(
                    "sum_elements expects MATRIX or VECTOR, got {other}"
                ))),
            },
            Builtin::RowSums | Builtin::RowMin | Builtin::RowMax => {
                let (a, _) = expect_matrix(self.name(), t(0))?;
                Ok(DataType::Vector(a))
            }
            Builtin::ColSums => {
                let (_, b) = expect_matrix(self.name(), t(0))?;
                Ok(DataType::Vector(b))
            }
            Builtin::GetScalar => {
                expect_vector(self.name(), t(0))?;
                expect_integer(self.name(), t(1))?;
                Ok(DataType::Double)
            }
            Builtin::GetEntry => {
                expect_matrix(self.name(), t(0))?;
                expect_integer(self.name(), t(1))?;
                expect_integer(self.name(), t(2))?;
                Ok(DataType::Double)
            }
            Builtin::LabelScalar => {
                expect_numeric_scalar(self.name(), t(0))?;
                expect_integer(self.name(), t(1))?;
                Ok(DataType::LabeledScalar)
            }
            Builtin::LabelVector => {
                let a = expect_vector(self.name(), t(0))?;
                expect_integer(self.name(), t(1))?;
                Ok(DataType::Vector(a))
            }
            Builtin::Solve => {
                let (a, a2) = expect_square(self.name(), t(0))?;
                let b = expect_vector(self.name(), t(1))?;
                let n = unify(self.name(), "a", a.or(a2), b)?;
                Ok(DataType::Vector(n))
            }
            Builtin::SolveLs => {
                let (rows, cols) = expect_matrix(self.name(), t(0))?;
                let b = expect_vector(self.name(), t(1))?;
                unify(self.name(), "a", rows, b)?;
                Ok(DataType::Vector(cols))
            }
            Builtin::MinElement | Builtin::MaxElement => match t(0) {
                DataType::Matrix(_, _) | DataType::Vector(_) => Ok(DataType::Double),
                other => Err(PlanError::Type(format!(
                    "{} expects MATRIX or VECTOR, got {other}",
                    self.name()
                ))),
            },
            Builtin::Sparsify | Builtin::Densify => {
                let (a, b) = expect_matrix(self.name(), t(0))?;
                Ok(DataType::Matrix(a, b))
            }
            Builtin::Nnz => {
                expect_matrix(self.name(), t(0))?;
                Ok(DataType::Integer)
            }
            Builtin::SparseEntry => {
                expect_numeric_scalar(self.name(), t(0))?;
                expect_numeric_scalar(self.name(), t(1))?;
                expect_numeric_scalar(self.name(), t(2))?;
                Ok(DataType::Vector(Some(3)))
            }
        }
    }

    /// Runtime evaluation. NULL inputs yield NULL (SQL semantics). Size
    /// errors that the static checker could not rule out (unknown dims)
    /// surface here as runtime errors, per §3.1.
    pub fn evaluate(&self, args: &[Value]) -> Result<Value> {
        if args.iter().any(Value::is_null) {
            return Ok(Value::Null);
        }
        let bad = |i: usize| -> PlanError {
            PlanError::Type(format!(
                "{}: argument {} has unsupported runtime type {}",
                self.name(),
                i + 1,
                args[i].data_type()
            ))
        };
        // Dense view of a matrix argument in either representation. A
        // sparse tile reaching a builtin with no sparse kernel densifies
        // here, and the dispatch layer counts it so EXPLAIN ANALYZE can
        // show the fallback.
        let mat = |i: usize| -> Result<std::sync::Arc<Matrix>> {
            match &args[i] {
                Value::Matrix(m) => Ok(std::sync::Arc::clone(m)),
                Value::SparseMatrix(m) => {
                    lardb_la::dispatch::note_kernel(lardb_la::dispatch::Kernel::Densified);
                    Ok(std::sync::Arc::new(m.to_dense()))
                }
                _ => Err(bad(i)),
            }
        };
        let vec = |i: usize| args[i].as_vector().ok_or_else(|| bad(i));
        let int = |i: usize| args[i].as_integer().ok_or_else(|| bad(i));
        let dbl = |i: usize| args[i].as_double().ok_or_else(|| bad(i));
        use lardb_la::dispatch::{self, Kernel};

        Ok(match self {
            Builtin::MatrixMultiply => match (&args[0], &args[1]) {
                // Sparse × sparse: Gustavson SpGEMM; keep the product
                // sparse only while it is still worth it.
                (Value::SparseMatrix(a), Value::SparseMatrix(b)) => {
                    dispatch::note_kernel(Kernel::SpGemm);
                    let p = a.multiply_sparse(b)?;
                    if dispatch::keep_sparse(p.density()) {
                        Value::sparse_matrix(p)
                    } else {
                        Value::matrix(p.to_dense())
                    }
                }
                // Sparse × dense: row-wise skip-zero kernel, dense result.
                (Value::SparseMatrix(a), Value::Matrix(b)) => {
                    dispatch::note_kernel(Kernel::SpDense);
                    Value::matrix(a.multiply_dense(b)?)
                }
                // Dense × sparse and dense × dense go through the dense
                // GEMM (densifying the right side when needed).
                _ => {
                    let (a, b) = (mat(0)?, mat(1)?);
                    Value::matrix(a.multiply(&b)?)
                }
            },
            Builtin::MatrixVectorMultiply => match &args[0] {
                Value::SparseMatrix(a) => {
                    dispatch::note_kernel(Kernel::Spmv);
                    Value::vector(a.spmv(vec(1)?)?)
                }
                _ => Value::vector(mat(0)?.matrix_vector_multiply(vec(1)?)?),
            },
            Builtin::VectorMatrixMultiply => match &args[1] {
                // xᵀA = (Aᵀx)ᵀ; the CSR transpose is O(nnz + cols).
                Value::SparseMatrix(a) => {
                    dispatch::note_kernel(Kernel::Spmv);
                    Value::vector(a.transpose().spmv(vec(0)?)?)
                }
                _ => {
                    let m = mat(1)?;
                    Value::vector(vec(0)?.vector_matrix_multiply(&m)?)
                }
            },
            Builtin::OuterProduct => Value::matrix(vec(0)?.outer_product(vec(1)?)),
            Builtin::InnerProduct => Value::Double(vec(0)?.inner_product(vec(1)?)?),
            Builtin::TransMatrix => match &args[0] {
                Value::SparseMatrix(a) => Value::sparse_matrix(a.transpose()),
                _ => Value::matrix(mat(0)?.transpose()),
            },
            Builtin::MatrixInverse => Value::matrix(mat(0)?.inverse()?),
            Builtin::Diag => Value::vector(mat(0)?.diag()?),
            Builtin::DiagMatrix => Value::matrix(Matrix::from_diag(vec(0)?)),
            Builtin::Identity => Value::matrix(Matrix::identity(usize_arg(self, int(0)?)?)),
            Builtin::ZeroMatrix => Value::matrix(Matrix::zeros(
                usize_arg(self, int(0)?)?,
                usize_arg(self, int(1)?)?,
            )),
            Builtin::ZeroVector => Value::vector(Vector::zeros(usize_arg(self, int(0)?)?)),
            Builtin::Trace => Value::Double(mat(0)?.trace()?),
            Builtin::FrobeniusNorm => Value::Double(mat(0)?.frobenius_norm()),
            Builtin::Norm2 => Value::Double(vec(0)?.norm2()),
            Builtin::SumElements => match &args[0] {
                Value::Matrix(m) => Value::Double(m.sum_elements()),
                Value::SparseMatrix(m) => Value::Double(m.sum_elements()),
                Value::Vector(v) => Value::Double(v.sum_elements()),
                _ => return Err(bad(0)),
            },
            Builtin::RowSums => Value::vector(mat(0)?.row_sums()),
            Builtin::ColSums => Value::vector(mat(0)?.col_sums()),
            Builtin::RowMin => Value::vector(mat(0)?.row_mins()),
            Builtin::RowMax => Value::vector(mat(0)?.row_maxs()),
            Builtin::GetScalar => Value::Double(vec(0)?.get(usize_arg(self, int(1)?)?)?),
            Builtin::GetEntry => Value::Double(
                mat(0)?.get(usize_arg(self, int(1)?)?, usize_arg(self, int(2)?)?)?,
            ),
            Builtin::LabelScalar => {
                Value::LabeledScalar(LabeledScalar::new(dbl(0)?, int(1)?))
            }
            Builtin::LabelVector => Value::vector(vec(0)?.with_label(int(1)?)),
            Builtin::Solve => Value::vector(mat(0)?.solve(vec(1)?)?),
            Builtin::SolveLs => Value::vector(mat(0)?.solve_least_squares(vec(1)?)?),
            Builtin::MinElement => match &args[0] {
                Value::Matrix(m) => Value::Double(
                    m.as_slice().iter().copied().fold(f64::INFINITY, f64::min),
                ),
                Value::Vector(v) => Value::Double(v.min_element()),
                _ => return Err(bad(0)),
            },
            Builtin::MaxElement => match &args[0] {
                Value::Matrix(m) => Value::Double(
                    m.as_slice().iter().copied().fold(f64::NEG_INFINITY, f64::max),
                ),
                Value::Vector(v) => Value::Double(v.max_element()),
                _ => return Err(bad(0)),
            },
            Builtin::Sparsify => match &args[0] {
                Value::SparseMatrix(_) => args[0].clone(),
                Value::Matrix(m) => {
                    Value::sparse_matrix(lardb_la::SparseMatrix::from_dense(m))
                }
                _ => return Err(bad(0)),
            },
            // Explicit representation change requested by the query; not a
            // dispatch decision, so it is not counted as a densification.
            Builtin::Densify => match &args[0] {
                Value::SparseMatrix(m) => Value::matrix(m.to_dense()),
                Value::Matrix(_) => args[0].clone(),
                _ => return Err(bad(0)),
            },
            Builtin::Nnz => match &args[0] {
                Value::SparseMatrix(m) => Value::Integer(m.nnz() as i64),
                Value::Matrix(m) => Value::Integer(
                    m.as_slice().iter().filter(|&&x| x != 0.0).count() as i64,
                ),
                _ => return Err(bad(0)),
            },
            Builtin::SparseEntry => {
                Value::vector(Vector::from_slice(&[dbl(0)?, dbl(1)?, dbl(2)?]))
            }
        })
    }
}

fn usize_arg(b: &Builtin, v: i64) -> Result<usize> {
    usize::try_from(v).map_err(|_| {
        PlanError::Type(format!("{}: negative size/index argument {v}", b.name()))
    })
}

fn expect_matrix(
    func: &str,
    t: DataType,
) -> Result<(Option<usize>, Option<usize>)> {
    match t {
        DataType::Matrix(r, c) => Ok((r, c)),
        other => Err(PlanError::Type(format!("{func} expects MATRIX, got {other}"))),
    }
}

fn expect_square(func: &str, t: DataType) -> Result<(Option<usize>, Option<usize>)> {
    let (r, c) = expect_matrix(func, t)?;
    if let (Some(r), Some(c)) = (r, c) {
        if r != c {
            return Err(PlanError::Type(format!(
                "{func} expects a square matrix, got MATRIX[{r}][{c}]"
            )));
        }
    }
    Ok((r, c))
}

fn expect_vector(func: &str, t: DataType) -> Result<Option<usize>> {
    match t {
        DataType::Vector(n) => Ok(n),
        other => Err(PlanError::Type(format!("{func} expects VECTOR, got {other}"))),
    }
}

fn expect_integer(func: &str, t: DataType) -> Result<()> {
    match t {
        DataType::Integer => Ok(()),
        other => Err(PlanError::Type(format!("{func} expects INTEGER, got {other}"))),
    }
}

fn expect_numeric_scalar(func: &str, t: DataType) -> Result<()> {
    match t {
        DataType::Integer | DataType::Double | DataType::LabeledScalar => Ok(()),
        other => Err(PlanError::Type(format!("{func} expects a numeric scalar, got {other}"))),
    }
}

/// Unifies one dimension parameter across two occurrences, per §4.2: two
/// known values must agree ("a different value for b would cause a
/// compile-time error"); an unknown occurrence adopts the known one.
fn unify(
    func: &str,
    param: &str,
    a: Option<usize>,
    b: Option<usize>,
) -> Result<Option<usize>> {
    match (a, b) {
        (Some(x), Some(y)) if x != y => Err(PlanError::Type(format!(
            "{func}: dimension parameter '{param}' bound to both {x} and {y}"
        ))),
        (Some(x), _) => Ok(Some(x)),
        (_, y) => Ok(y),
    }
}

/// Public dimension unification used by element-wise arithmetic type
/// inference (`VECTOR[a] + VECTOR[a]` and friends).
pub fn unify_dims_public(
    op: &str,
    a: Option<usize>,
    b: Option<usize>,
) -> Result<Option<usize>> {
    match (a, b) {
        (Some(x), Some(y)) if x != y => Err(PlanError::Type(format!(
            "element-wise {op}: operand sizes {x} and {y} differ"
        ))),
        (Some(x), _) => Ok(Some(x)),
        (_, y) => Ok(y),
    }
}

/// SQL aggregate functions, including the three LA construction aggregates
/// of §3.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `SUM` — element-wise over vectors/matrices (§3.2).
    Sum,
    /// `COUNT`
    Count,
    /// `AVG`
    Avg,
    /// `MIN` — element-wise over vectors/matrices.
    Min,
    /// `MAX` — element-wise over vectors/matrices.
    Max,
    /// `VECTORIZE(LABELED_SCALAR) -> VECTOR` (§3.3)
    Vectorize,
    /// `ROWMATRIX(VECTOR) -> MATRIX` (§3.3)
    RowMatrix,
    /// `COLMATRIX(VECTOR) -> MATRIX` (§3.3)
    ColMatrix,
    /// `MATRIX_FROM_ENTRIES(row, col, val) -> MATRIX` — assembles a sparse
    /// matrix from COO coordinates, one entry per input row. Duplicate
    /// coordinates sum; negative or > `u32::MAX` coordinates are typed
    /// errors. The binder packs the three arguments into one
    /// `sparse_entry(row, col, val)` vector, so the planner-level aggregate
    /// stays single-argument like every other.
    MatrixFromEntries,
}

impl AggFunc {
    /// SQL-visible name.
    pub fn name(&self) -> &'static str {
        match self {
            AggFunc::Sum => "SUM",
            AggFunc::Count => "COUNT",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Vectorize => "VECTORIZE",
            AggFunc::RowMatrix => "ROWMATRIX",
            AggFunc::ColMatrix => "COLMATRIX",
            AggFunc::MatrixFromEntries => "MATRIX_FROM_ENTRIES",
        }
    }

    /// Case-insensitive lookup by SQL name.
    pub fn from_name(name: &str) -> Option<AggFunc> {
        match name.to_ascii_uppercase().as_str() {
            "SUM" => Some(AggFunc::Sum),
            "COUNT" => Some(AggFunc::Count),
            "AVG" => Some(AggFunc::Avg),
            "MIN" => Some(AggFunc::Min),
            "MAX" => Some(AggFunc::Max),
            "VECTORIZE" => Some(AggFunc::Vectorize),
            "ROWMATRIX" => Some(AggFunc::RowMatrix),
            "COLMATRIX" => Some(AggFunc::ColMatrix),
            "MATRIX_FROM_ENTRIES" => Some(AggFunc::MatrixFromEntries),
            _ => None,
        }
    }

    /// Result type of the aggregate over an input of type `input`.
    pub fn infer_type(&self, input: DataType) -> Result<DataType> {
        match self {
            AggFunc::Count => Ok(DataType::Integer),
            AggFunc::Sum | AggFunc::Min | AggFunc::Max => {
                if input.is_numeric() && input != DataType::LabeledScalar {
                    Ok(input)
                } else {
                    Err(PlanError::Type(format!(
                        "{} cannot aggregate values of type {input}",
                        self.name()
                    )))
                }
            }
            AggFunc::Avg => match input {
                DataType::Integer | DataType::Double => Ok(DataType::Double),
                DataType::Vector(n) => Ok(DataType::Vector(n)),
                DataType::Matrix(r, c) => Ok(DataType::Matrix(r, c)),
                other => Err(PlanError::Type(format!("AVG cannot aggregate {other}"))),
            },
            AggFunc::Vectorize => match input {
                DataType::LabeledScalar => Ok(DataType::Vector(None)),
                other => Err(PlanError::Type(format!(
                    "VECTORIZE expects LABELED_SCALAR, got {other}"
                ))),
            },
            AggFunc::RowMatrix | AggFunc::ColMatrix => match input {
                // The assembled size depends on the labels present, so it
                // is unknown statically.
                DataType::Vector(_) => Ok(DataType::Matrix(None, None)),
                other => Err(PlanError::Type(format!(
                    "{} expects VECTOR, got {other}",
                    self.name()
                ))),
            },
            AggFunc::MatrixFromEntries => match input {
                // Input is the packed sparse_entry(row, col, val) carrier.
                // The assembled size depends on the coordinates present,
                // so it is unknown statically.
                DataType::Vector(_) => Ok(DataType::Matrix(None, None)),
                other => Err(PlanError::Type(format!(
                    "MATRIX_FROM_ENTRIES expects (row, col, val), got {other}"
                ))),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(r: usize, c: usize) -> ArgType {
        ArgType::of(DataType::Matrix(Some(r), Some(c)))
    }

    fn v(n: usize) -> ArgType {
        ArgType::of(DataType::Vector(Some(n)))
    }

    #[test]
    fn all_builtins_roundtrip_names() {
        for b in ALL_BUILTINS {
            assert_eq!(Builtin::from_name(b.name()), Some(*b));
            assert_eq!(Builtin::from_name(&b.name().to_uppercase()), Some(*b));
        }
        assert_eq!(Builtin::from_name("nope"), None);
        assert_eq!(ALL_BUILTINS.len(), 32);
    }

    #[test]
    fn matrix_multiply_signature_binds_dims() {
        // the paper's §4.2 example: U MATRIX[1000][100] × V MATRIX[100][10000]
        let out = Builtin::MatrixMultiply.infer_type(&[m(1000, 100), m(100, 10000)]).unwrap();
        assert_eq!(out, DataType::Matrix(Some(1000), Some(10000)));
    }

    #[test]
    fn matrix_multiply_conflicting_binding_is_compile_error() {
        // "a different value for b would cause a compile-time error"
        let err = Builtin::MatrixMultiply.infer_type(&[m(10, 100), m(99, 5)]);
        assert!(matches!(err, Err(PlanError::Type(_))));
    }

    #[test]
    fn unknown_dims_flow_through() {
        let unk = ArgType::of(DataType::Matrix(Some(10), None));
        let out = Builtin::MatrixMultiply.infer_type(&[unk, m(100, 5)]).unwrap();
        assert_eq!(out, DataType::Matrix(Some(10), Some(5)));
    }

    #[test]
    fn matrix_vector_multiply_size_check() {
        // the paper's §3.1 example: MATRIX[10][10] × VECTOR[100] must not compile
        let err = Builtin::MatrixVectorMultiply.infer_type(&[m(10, 10), v(100)]);
        assert!(err.is_err());
        let ok = Builtin::MatrixVectorMultiply.infer_type(&[m(10, 10), v(10)]).unwrap();
        assert_eq!(ok, DataType::Vector(Some(10)));
    }

    #[test]
    fn diag_requires_square() {
        assert!(Builtin::Diag.infer_type(&[m(3, 4)]).is_err());
        assert_eq!(Builtin::Diag.infer_type(&[m(4, 4)]).unwrap(), DataType::Vector(Some(4)));
    }

    #[test]
    fn constructors_use_const_args() {
        let out = Builtin::Identity.infer_type(&[ArgType::const_int(10)]).unwrap();
        assert_eq!(out, DataType::Matrix(Some(10), Some(10)));
        // non-constant integer argument: output dims unknown
        let out = Builtin::Identity.infer_type(&[ArgType::of(DataType::Integer)]).unwrap();
        assert_eq!(out, DataType::Matrix(None, None));
        let out = Builtin::ZeroMatrix
            .infer_type(&[ArgType::const_int(2), ArgType::const_int(3)])
            .unwrap();
        assert_eq!(out, DataType::Matrix(Some(2), Some(3)));
    }

    #[test]
    fn arity_checked() {
        assert!(Builtin::Trace.infer_type(&[m(2, 2), m(2, 2)]).is_err());
    }

    #[test]
    fn evaluate_core_functions() {
        let a = Value::matrix(Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap());
        let x = Value::vector(Vector::from_slice(&[1.0, 1.0]));
        let mv = Builtin::MatrixVectorMultiply.evaluate(&[a.clone(), x.clone()]).unwrap();
        assert_eq!(mv.as_vector().unwrap().as_slice(), &[3.0, 7.0]);
        let ip = Builtin::InnerProduct.evaluate(&[x.clone(), x.clone()]).unwrap();
        assert_eq!(ip, Value::Double(2.0));
        let tr = Builtin::Trace.evaluate(&[a.clone()]).unwrap();
        assert_eq!(tr, Value::Double(5.0));
        let op = Builtin::OuterProduct.evaluate(&[x.clone(), x.clone()]).unwrap();
        assert_eq!(op.as_matrix().unwrap().shape(), (2, 2));
        let inv = Builtin::MatrixInverse.evaluate(&[a.clone()]).unwrap();
        let prod = Builtin::MatrixMultiply.evaluate(&[a.clone(), inv]).unwrap();
        assert!(prod.as_matrix().unwrap().approx_eq(&Matrix::identity(2), 1e-10));
    }

    #[test]
    fn evaluate_labels() {
        let ls = Builtin::LabelScalar
            .evaluate(&[Value::Double(3.5), Value::Integer(2)])
            .unwrap();
        assert_eq!(ls.as_labeled_scalar().unwrap(), LabeledScalar::new(3.5, 2));
        let lv = Builtin::LabelVector
            .evaluate(&[Value::vector(Vector::zeros(2)), Value::Integer(5)])
            .unwrap();
        assert_eq!(lv.as_vector().unwrap().label(), 5);
    }

    #[test]
    fn evaluate_null_propagates() {
        let out = Builtin::Trace.evaluate(&[Value::Null]).unwrap();
        assert!(out.is_null());
    }

    #[test]
    fn evaluate_runtime_dim_error() {
        // VECTOR[] columns defer checks to runtime (§3.1)
        let a = Value::matrix(Matrix::zeros(2, 2));
        let x = Value::vector(Vector::zeros(3));
        assert!(Builtin::MatrixVectorMultiply.evaluate(&[a, x]).is_err());
    }

    #[test]
    fn evaluate_constructors_and_accessors() {
        let id = Builtin::Identity.evaluate(&[Value::Integer(3)]).unwrap();
        assert_eq!(id.as_matrix().unwrap().trace().unwrap(), 3.0);
        assert!(Builtin::Identity.evaluate(&[Value::Integer(-1)]).is_err());
        let z = Builtin::ZeroVector.evaluate(&[Value::Integer(4)]).unwrap();
        assert_eq!(z.as_vector().unwrap().len(), 4);
        let gs = Builtin::GetScalar
            .evaluate(&[Value::vector(Vector::from_slice(&[7.0, 8.0])), Value::Integer(1)])
            .unwrap();
        assert_eq!(gs, Value::Double(8.0));
        let ge = Builtin::GetEntry
            .evaluate(&[
                Value::matrix(Matrix::identity(2)),
                Value::Integer(0),
                Value::Integer(1),
            ])
            .unwrap();
        assert_eq!(ge, Value::Double(0.0));
    }

    #[test]
    fn agg_type_inference() {
        assert_eq!(
            AggFunc::Sum.infer_type(DataType::Matrix(Some(2), Some(2))).unwrap(),
            DataType::Matrix(Some(2), Some(2))
        );
        assert_eq!(AggFunc::Count.infer_type(DataType::Varchar).unwrap(), DataType::Integer);
        assert_eq!(AggFunc::Avg.infer_type(DataType::Integer).unwrap(), DataType::Double);
        assert_eq!(
            AggFunc::Vectorize.infer_type(DataType::LabeledScalar).unwrap(),
            DataType::Vector(None)
        );
        assert!(AggFunc::Vectorize.infer_type(DataType::Double).is_err());
        assert_eq!(
            AggFunc::RowMatrix.infer_type(DataType::Vector(Some(5))).unwrap(),
            DataType::Matrix(None, None)
        );
        assert!(AggFunc::Sum.infer_type(DataType::Varchar).is_err());
        assert!(AggFunc::Sum.infer_type(DataType::LabeledScalar).is_err());
    }

    #[test]
    fn agg_names_roundtrip() {
        for f in [
            AggFunc::Sum,
            AggFunc::Count,
            AggFunc::Avg,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Vectorize,
            AggFunc::RowMatrix,
            AggFunc::ColMatrix,
            AggFunc::MatrixFromEntries,
        ] {
            assert_eq!(AggFunc::from_name(f.name()), Some(f));
        }
        assert_eq!(AggFunc::from_name("median"), None);
    }
}
