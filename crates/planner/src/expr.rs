//! The expression IR shared by the planner and the executor.

use std::collections::BTreeSet;
use std::fmt;

use lardb_storage::ops::ArithOp;
use lardb_storage::{DataType, Schema, Value};

use crate::error::{PlanError, Result};
use crate::functions::{ArgType, Builtin};

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
}

impl CmpOp {
    /// SQL symbol.
    pub fn symbol(&self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::NotEq => "<>",
            CmpOp::Lt => "<",
            CmpOp::LtEq => "<=",
            CmpOp::Gt => ">",
            CmpOp::GtEq => ">=",
        }
    }

    /// The operator with its operands swapped (`a < b` ⇔ `b > a`).
    pub fn flipped(&self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::NotEq => CmpOp::NotEq,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::LtEq => CmpOp::GtEq,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::GtEq => CmpOp::LtEq,
        }
    }
}

/// A scalar expression over an input row.
///
/// Column references are *positional*: the SQL binder resolves names to
/// positions, and the optimizer remaps positions as it reshapes the plan.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Input column at this position.
    Column(usize),
    /// A constant.
    Literal(Value),
    /// Overloaded arithmetic (§3.2).
    Arith {
        /// Operator.
        op: ArithOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Comparison producing BOOLEAN.
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Logical AND.
    And(Box<Expr>, Box<Expr>),
    /// Logical OR.
    Or(Box<Expr>, Box<Expr>),
    /// Logical NOT.
    Not(Box<Expr>),
    /// Unary minus.
    Negate(Box<Expr>),
    /// A call to one of the built-in LA functions (§3.1).
    Call {
        /// The function.
        func: Builtin,
        /// Argument expressions.
        args: Vec<Expr>,
    },
}

impl Expr {
    /// Column reference helper.
    pub fn col(i: usize) -> Expr {
        Expr::Column(i)
    }

    /// Literal helper.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// Binary arithmetic helper.
    pub fn arith(op: ArithOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Arith { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }
    }

    /// Comparison helper.
    pub fn cmp(op: CmpOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Cmp { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }
    }

    /// Builtin-call helper.
    pub fn call(func: Builtin, args: Vec<Expr>) -> Expr {
        Expr::Call { func, args }
    }

    /// Equality-comparison helper (the most common join predicate).
    pub fn eq(lhs: Expr, rhs: Expr) -> Expr {
        Expr::cmp(CmpOp::Eq, lhs, rhs)
    }

    /// Conjunction of a list of predicates; `None` for an empty list.
    pub fn conjunction(preds: Vec<Expr>) -> Option<Expr> {
        preds.into_iter().reduce(|a, b| Expr::And(Box::new(a), Box::new(b)))
    }

    /// Splits a predicate tree on top-level ANDs.
    pub fn split_conjunction(self, out: &mut Vec<Expr>) {
        match self {
            Expr::And(a, b) => {
                a.split_conjunction(out);
                b.split_conjunction(out);
            }
            other => out.push(other),
        }
    }

    /// Full type inference, including the §4.2 dimension propagation.
    pub fn infer_type(&self, input: &Schema) -> Result<DataType> {
        Ok(self.infer_arg(input)?.dtype)
    }

    /// Type inference that also tracks integer-constant values, so
    /// size-from-argument constructors (`identity(10)`) type precisely.
    pub fn infer_arg(&self, input: &Schema) -> Result<ArgType> {
        match self {
            Expr::Column(i) => {
                if *i >= input.arity() {
                    return Err(PlanError::Internal(format!(
                        "column #{i} out of range for schema of arity {}",
                        input.arity()
                    )));
                }
                Ok(ArgType::of(input.column(*i).dtype))
            }
            Expr::Literal(v) => Ok(ArgType {
                dtype: v.data_type(),
                const_int: v.as_integer(),
            }),
            Expr::Arith { op, lhs, rhs } => {
                let l = lhs.infer_arg(input)?;
                let r = rhs.infer_arg(input)?;
                let dtype = infer_arith_type(*op, l.dtype, r.dtype)?;
                // Constant-fold integer arithmetic for dimension inference.
                let const_int = match (l.const_int, r.const_int, dtype) {
                    (Some(a), Some(b), DataType::Integer) => match op {
                        ArithOp::Add => Some(a + b),
                        ArithOp::Sub => Some(a - b),
                        ArithOp::Mul => Some(a * b),
                        ArithOp::Div => (b != 0).then(|| a / b),
                    },
                    _ => None,
                };
                Ok(ArgType { dtype, const_int })
            }
            Expr::Cmp { lhs, rhs, .. } => {
                let l = lhs.infer_arg(input)?.dtype;
                let r = rhs.infer_arg(input)?.dtype;
                if l.is_linear_algebra() || r.is_linear_algebra() {
                    return Err(PlanError::Type(format!(
                        "comparison between {l} and {r} is not defined"
                    )));
                }
                Ok(ArgType::of(DataType::Boolean))
            }
            Expr::And(a, b) | Expr::Or(a, b) => {
                for (side, e) in [("left", a), ("right", b)] {
                    let t = e.infer_arg(input)?.dtype;
                    if t != DataType::Boolean {
                        return Err(PlanError::Type(format!(
                            "{side} operand of AND/OR must be BOOLEAN, got {t}"
                        )));
                    }
                }
                Ok(ArgType::of(DataType::Boolean))
            }
            Expr::Not(e) => {
                let t = e.infer_arg(input)?.dtype;
                if t != DataType::Boolean {
                    return Err(PlanError::Type(format!("NOT expects BOOLEAN, got {t}")));
                }
                Ok(ArgType::of(DataType::Boolean))
            }
            Expr::Negate(e) => {
                let a = e.infer_arg(input)?;
                if !a.dtype.is_numeric() {
                    return Err(PlanError::Type(format!("cannot negate {}", a.dtype)));
                }
                Ok(ArgType { dtype: a.dtype, const_int: a.const_int.map(|v| -v) })
            }
            Expr::Call { func, args } => {
                let arg_types = args
                    .iter()
                    .map(|a| a.infer_arg(input))
                    .collect::<Result<Vec<_>>>()?;
                Ok(ArgType::of(func.infer_type(&arg_types)?))
            }
        }
    }

    /// Collects the positions of all referenced input columns.
    pub fn collect_columns(&self, out: &mut BTreeSet<usize>) {
        match self {
            Expr::Column(i) => {
                out.insert(*i);
            }
            Expr::Literal(_) => {}
            Expr::Arith { lhs, rhs, .. } | Expr::Cmp { lhs, rhs, .. } => {
                lhs.collect_columns(out);
                rhs.collect_columns(out);
            }
            Expr::And(a, b) | Expr::Or(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Expr::Not(e) | Expr::Negate(e) => e.collect_columns(out),
            Expr::Call { args, .. } => {
                for a in args {
                    a.collect_columns(out);
                }
            }
        }
    }

    /// The set of referenced columns.
    pub fn columns(&self) -> BTreeSet<usize> {
        let mut s = BTreeSet::new();
        self.collect_columns(&mut s);
        s
    }

    /// Rewrites every column reference through `f`.
    pub fn remap_columns(&self, f: &impl Fn(usize) -> usize) -> Expr {
        match self {
            Expr::Column(i) => Expr::Column(f(*i)),
            Expr::Literal(v) => Expr::Literal(v.clone()),
            Expr::Arith { op, lhs, rhs } => Expr::Arith {
                op: *op,
                lhs: Box::new(lhs.remap_columns(f)),
                rhs: Box::new(rhs.remap_columns(f)),
            },
            Expr::Cmp { op, lhs, rhs } => Expr::Cmp {
                op: *op,
                lhs: Box::new(lhs.remap_columns(f)),
                rhs: Box::new(rhs.remap_columns(f)),
            },
            Expr::And(a, b) => {
                Expr::And(Box::new(a.remap_columns(f)), Box::new(b.remap_columns(f)))
            }
            Expr::Or(a, b) => {
                Expr::Or(Box::new(a.remap_columns(f)), Box::new(b.remap_columns(f)))
            }
            Expr::Not(e) => Expr::Not(Box::new(e.remap_columns(f))),
            Expr::Negate(e) => Expr::Negate(Box::new(e.remap_columns(f))),
            Expr::Call { func, args } => Expr::Call {
                func: *func,
                args: args.iter().map(|a| a.remap_columns(f)).collect(),
            },
        }
    }

    /// True for a bare column reference.
    pub fn is_column(&self) -> bool {
        matches!(self, Expr::Column(_))
    }

    /// If this is `col = col` (possibly flipped), the two positions.
    pub fn as_equi_join(&self) -> Option<(usize, usize)> {
        if let Expr::Cmp { op: CmpOp::Eq, lhs, rhs } = self {
            if let (Expr::Column(a), Expr::Column(b)) = (lhs.as_ref(), rhs.as_ref()) {
                return Some((*a, *b));
            }
        }
        None
    }

    /// Renders against a schema (for EXPLAIN), falling back to `#i` when the
    /// schema is absent.
    pub fn display(&self, schema: Option<&Schema>) -> String {
        match self {
            Expr::Column(i) => match schema {
                Some(s) if *i < s.arity() => s.column(*i).full_name(),
                _ => format!("#{i}"),
            },
            Expr::Literal(v) => v.to_string(),
            Expr::Arith { op, lhs, rhs } => {
                format!("({} {} {})", lhs.display(schema), op.symbol(), rhs.display(schema))
            }
            Expr::Cmp { op, lhs, rhs } => {
                format!("({} {} {})", lhs.display(schema), op.symbol(), rhs.display(schema))
            }
            Expr::And(a, b) => format!("({} AND {})", a.display(schema), b.display(schema)),
            Expr::Or(a, b) => format!("({} OR {})", a.display(schema), b.display(schema)),
            Expr::Not(e) => format!("(NOT {})", e.display(schema)),
            Expr::Negate(e) => format!("(-{})", e.display(schema)),
            Expr::Call { func, args } => {
                let args: Vec<String> = args.iter().map(|a| a.display(schema)).collect();
                format!("{}({})", func.name(), args.join(", "))
            }
        }
    }
}

/// Result type of overloaded arithmetic (§3.2), mirroring the runtime
/// overload matrix in `lardb_storage::ops::arith`.
fn infer_arith_type(op: ArithOp, l: DataType, r: DataType) -> Result<DataType> {
    use DataType::*;
    let scalar = |t: DataType| matches!(t, Integer | Double | LabeledScalar);
    Ok(match (l, r) {
        (Integer, Integer) => Integer,
        (Vector(a), Vector(b)) => {
            let n = crate::functions::unify_dims_public(op.symbol(), a, b)?;
            Vector(n)
        }
        (Matrix(r1, c1), Matrix(r2, c2)) => {
            let rr = crate::functions::unify_dims_public(op.symbol(), r1, r2)?;
            let cc = crate::functions::unify_dims_public(op.symbol(), c1, c2)?;
            Matrix(rr, cc)
        }
        (Vector(n), s) | (s, Vector(n)) if scalar(s) => Vector(n),
        (Matrix(rr, cc), s) | (s, Matrix(rr, cc)) if scalar(s) => Matrix(rr, cc),
        (a, b) if scalar(a) && scalar(b) => Double,
        (a, b) => {
            return Err(PlanError::Type(format!(
                "operator {} undefined between {a} and {b}",
                op.symbol()
            )))
        }
    })
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display(None))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("id", DataType::Integer),
            ("x", DataType::Vector(Some(10))),
            ("a", DataType::Matrix(Some(10), Some(10))),
            ("y", DataType::Double),
        ])
    }

    #[test]
    fn infer_columns_and_literals() {
        let s = schema();
        assert_eq!(Expr::col(1).infer_type(&s).unwrap(), DataType::Vector(Some(10)));
        assert_eq!(Expr::lit(1i64).infer_type(&s).unwrap(), DataType::Integer);
        assert!(Expr::col(9).infer_type(&s).is_err());
    }

    #[test]
    fn infer_vector_arith_with_dims() {
        let s = schema();
        // x - x : VECTOR[10]
        let e = Expr::arith(ArithOp::Sub, Expr::col(1), Expr::col(1));
        assert_eq!(e.infer_type(&s).unwrap(), DataType::Vector(Some(10)));
        // x * y (scalar broadcast): VECTOR[10] — the paper's X.x_i * y_i
        let e = Expr::arith(ArithOp::Mul, Expr::col(1), Expr::col(3));
        assert_eq!(e.infer_type(&s).unwrap(), DataType::Vector(Some(10)));
    }

    #[test]
    fn infer_call_propagates_dims() {
        let s = schema();
        // matrix_vector_multiply(a, x - x) : VECTOR[10]
        let e = Expr::call(
            Builtin::MatrixVectorMultiply,
            vec![Expr::col(2), Expr::arith(ArithOp::Sub, Expr::col(1), Expr::col(1))],
        );
        assert_eq!(e.infer_type(&s).unwrap(), DataType::Vector(Some(10)));
    }

    #[test]
    fn infer_rejects_la_comparison() {
        let s = schema();
        let e = Expr::eq(Expr::col(1), Expr::col(1));
        assert!(e.infer_type(&s).is_err());
    }

    #[test]
    fn infer_boolean_ops() {
        let s = schema();
        let p = Expr::eq(Expr::col(0), Expr::lit(3i64));
        let e = Expr::And(Box::new(p.clone()), Box::new(Expr::Not(Box::new(p.clone()))));
        assert_eq!(e.infer_type(&s).unwrap(), DataType::Boolean);
        let bad = Expr::And(Box::new(p), Box::new(Expr::col(0)));
        assert!(bad.infer_type(&s).is_err());
    }

    #[test]
    fn constant_folding_feeds_constructors() {
        let s = schema();
        // identity(2 * 5) : MATRIX[10][10]
        let e = Expr::call(
            Builtin::Identity,
            vec![Expr::arith(ArithOp::Mul, Expr::lit(2i64), Expr::lit(5i64))],
        );
        assert_eq!(e.infer_type(&s).unwrap(), DataType::Matrix(Some(10), Some(10)));
    }

    #[test]
    fn collect_and_remap_columns() {
        let e = Expr::arith(
            ArithOp::Add,
            Expr::col(0),
            Expr::call(Builtin::Norm2, vec![Expr::col(2)]),
        );
        assert_eq!(e.columns().into_iter().collect::<Vec<_>>(), vec![0, 2]);
        let shifted = e.remap_columns(&|i| i + 10);
        assert_eq!(shifted.columns().into_iter().collect::<Vec<_>>(), vec![10, 12]);
    }

    #[test]
    fn conjunction_roundtrip() {
        let p1 = Expr::eq(Expr::col(0), Expr::col(1));
        let p2 = Expr::cmp(CmpOp::Lt, Expr::col(2), Expr::lit(5i64));
        let c = Expr::conjunction(vec![p1.clone(), p2.clone()]).unwrap();
        let mut out = Vec::new();
        c.split_conjunction(&mut out);
        assert_eq!(out, vec![p1, p2]);
        assert!(Expr::conjunction(vec![]).is_none());
    }

    #[test]
    fn equi_join_detection() {
        assert_eq!(Expr::eq(Expr::col(0), Expr::col(3)).as_equi_join(), Some((0, 3)));
        assert_eq!(Expr::eq(Expr::col(0), Expr::lit(1i64)).as_equi_join(), None);
        assert_eq!(
            Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::col(3)).as_equi_join(),
            None
        );
    }

    #[test]
    fn display_with_schema() {
        let s = schema().with_qualifier("t");
        let e = Expr::call(Builtin::Norm2, vec![Expr::col(1)]);
        assert_eq!(e.display(Some(&s)), "norm2(t.x)");
        assert_eq!(e.to_string(), "norm2(#1)");
    }

    #[test]
    fn cmp_flip() {
        assert_eq!(CmpOp::Lt.flipped(), CmpOp::Gt);
        assert_eq!(CmpOp::Eq.flipped(), CmpOp::Eq);
    }
}
