//! Logical relational-algebra plans.

use lardb_storage::{Column, DataType, Schema};

use crate::error::{PlanError, Result};
use crate::expr::Expr;
use crate::functions::AggFunc;

/// Join kinds. The engine is inner-join only (the paper's workloads need
/// nothing else); `Cross` is an inner join with no predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// Inner join.
    Inner,
    /// Cartesian product.
    Cross,
}

/// One aggregate in an `Aggregate` node, e.g.
/// `SUM(outer_product(x.value, x.value)) AS g`.
#[derive(Debug, Clone, PartialEq)]
pub struct AggExpr {
    /// The aggregate function.
    pub func: AggFunc,
    /// The argument (`None` only for `COUNT(*)`).
    pub arg: Option<Expr>,
    /// Output column name.
    pub name: String,
}

/// A logical query plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Base-table scan.
    Scan {
        /// Catalog table name.
        table: String,
        /// The table schema, qualified with the FROM-clause alias.
        schema: Schema,
    },
    /// Row filter.
    Filter {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Boolean predicate over the input schema.
        predicate: Expr,
    },
    /// Projection / computation of new columns.
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// One expression per output column.
        exprs: Vec<Expr>,
        /// Output schema (names from SELECT aliases, types inferred).
        schema: Schema,
    },
    /// An unordered n-way join: the binder emits this for the FROM list,
    /// and the optimizer turns it into a [`LogicalPlan::Join`] tree.
    /// Predicates are expressed over the concatenation of all input
    /// schemas, in input order ("global" column positions).
    MultiJoin {
        /// The relations being joined.
        inputs: Vec<LogicalPlan>,
        /// Conjunctive predicates over the global column space.
        predicates: Vec<Expr>,
    },
    /// A concrete binary join.
    Join {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Kind.
        kind: JoinKind,
        /// Equi-join key pairs `(left expr, right expr)`, each expression
        /// local to its own side. Expressions (not just columns) are
        /// allowed: the paper's blocking query joins on
        /// `x.id/1000 = ind.mi`.
        equi: Vec<(Expr, Expr)>,
        /// Any residual (non-equi) predicate, over the concatenated output.
        residual: Option<Expr>,
    },
    /// Grouped or global aggregation.
    Aggregate {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Group-by expressions (empty for a global aggregate).
        group_by: Vec<Expr>,
        /// Aggregates to compute.
        aggs: Vec<AggExpr>,
        /// Output schema: group columns then aggregate columns.
        schema: Schema,
    },
    /// Sort.
    Sort {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Sort keys with ascending flags.
        keys: Vec<(Expr, bool)>,
    },
    /// Row-count limit.
    Limit {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Maximum number of rows.
        n: usize,
    },
}

impl LogicalPlan {
    /// The node's output schema.
    pub fn schema(&self) -> Schema {
        match self {
            LogicalPlan::Scan { schema, .. } => schema.clone(),
            LogicalPlan::Filter { input, .. } => input.schema(),
            LogicalPlan::Project { schema, .. } => schema.clone(),
            LogicalPlan::MultiJoin { inputs, .. } => {
                let mut s = Schema::default();
                for i in inputs {
                    s = s.concat(&i.schema());
                }
                s
            }
            LogicalPlan::Join { left, right, .. } => left.schema().concat(&right.schema()),
            LogicalPlan::Aggregate { schema, .. } => schema.clone(),
            LogicalPlan::Sort { input, .. } => input.schema(),
            LogicalPlan::Limit { input, .. } => input.schema(),
        }
    }

    /// Builds a `Project`, inferring output types (and therefore LA
    /// dimensions) from the expressions.
    pub fn project(input: LogicalPlan, exprs: Vec<(Expr, String)>) -> Result<LogicalPlan> {
        let in_schema = input.schema();
        let mut columns = Vec::with_capacity(exprs.len());
        let mut out_exprs = Vec::with_capacity(exprs.len());
        for (e, name) in exprs {
            let dtype = e.infer_type(&in_schema)?;
            // Plain column references keep their qualifier so later
            // resolution of `x1.value` in outer queries still works.
            let column = match &e {
                Expr::Column(i) => {
                    let c = in_schema.column(*i);
                    Column { qualifier: c.qualifier.clone(), name, dtype }
                }
                _ => Column { qualifier: None, name, dtype },
            };
            columns.push(column);
            out_exprs.push(e);
        }
        Ok(LogicalPlan::Project {
            input: Box::new(input),
            exprs: out_exprs,
            schema: Schema::new(columns),
        })
    }

    /// Builds an `Aggregate`, inferring the output schema.
    pub fn aggregate(
        input: LogicalPlan,
        group_by: Vec<(Expr, String)>,
        aggs: Vec<AggExpr>,
    ) -> Result<LogicalPlan> {
        let in_schema = input.schema();
        let mut columns = Vec::new();
        let mut group_exprs = Vec::new();
        for (e, name) in group_by {
            let dtype = e.infer_type(&in_schema)?;
            if dtype.is_linear_algebra() && !matches!(dtype, DataType::LabeledScalar) {
                return Err(PlanError::Type(format!(
                    "cannot GROUP BY a value of type {dtype}"
                )));
            }
            let column = match &e {
                Expr::Column(i) => {
                    let c = in_schema.column(*i);
                    Column { qualifier: c.qualifier.clone(), name, dtype }
                }
                _ => Column { qualifier: None, name, dtype },
            };
            columns.push(column);
            group_exprs.push(e);
        }
        for a in &aggs {
            let in_type = match &a.arg {
                Some(e) => e.infer_type(&in_schema)?,
                None => DataType::Integer, // COUNT(*)
            };
            let dtype = a.func.infer_type(in_type)?;
            columns.push(Column::new(a.name.clone(), dtype));
        }
        Ok(LogicalPlan::Aggregate {
            input: Box::new(input),
            group_by: group_exprs,
            aggs,
            schema: Schema::new(columns),
        })
    }

    /// Children of this node.
    pub fn children(&self) -> Vec<&LogicalPlan> {
        match self {
            LogicalPlan::Scan { .. } => vec![],
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. } => vec![input],
            LogicalPlan::MultiJoin { inputs, .. } => inputs.iter().collect(),
            LogicalPlan::Join { left, right, .. } => vec![left, right],
        }
    }

    /// Pretty-prints the plan as an indented tree (EXPLAIN).
    pub fn display_tree(&self) -> String {
        let mut out = String::new();
        self.fmt_tree(0, &mut out);
        out
    }

    fn fmt_tree(&self, indent: usize, out: &mut String) {
        let pad = "  ".repeat(indent);
        let schema = self.children().first().map(|c| c.schema());
        match self {
            LogicalPlan::Scan { table, schema } => {
                out.push_str(&format!("{pad}Scan: {table} {schema}\n"));
            }
            LogicalPlan::Filter { predicate, .. } => {
                out.push_str(&format!(
                    "{pad}Filter: {}\n",
                    predicate.display(schema.as_ref())
                ));
            }
            LogicalPlan::Project { exprs, schema: s, .. } => {
                let items: Vec<String> = exprs
                    .iter()
                    .zip(s.columns())
                    .map(|(e, c)| format!("{} AS {}", e.display(schema.as_ref()), c.name))
                    .collect();
                out.push_str(&format!("{pad}Project: {}\n", items.join(", ")));
            }
            LogicalPlan::MultiJoin { predicates, .. } => {
                let full = self.schema();
                let preds: Vec<String> =
                    predicates.iter().map(|p| p.display(Some(&full))).collect();
                out.push_str(&format!("{pad}MultiJoin: on {}\n", preds.join(" AND ")));
            }
            LogicalPlan::Join { kind, equi, residual, .. } => {
                let full = self.schema();
                let mut desc = match kind {
                    JoinKind::Inner => "Join".to_string(),
                    JoinKind::Cross => "CrossJoin".to_string(),
                };
                if !equi.is_empty() {
                    let keys: Vec<String> = equi
                        .iter()
                        .map(|(l, r)| format!("{}={}", l.display(None), r.display(None)))
                        .collect();
                    desc.push_str(&format!(" on {}", keys.join(", ")));
                }
                if let Some(r) = residual {
                    desc.push_str(&format!(" filter {}", r.display(Some(&full))));
                }
                out.push_str(&format!("{pad}{desc}\n"));
            }
            LogicalPlan::Aggregate { group_by, aggs, .. } => {
                let gb: Vec<String> =
                    group_by.iter().map(|g| g.display(schema.as_ref())).collect();
                let ags: Vec<String> = aggs
                    .iter()
                    .map(|a| {
                        let arg = a
                            .arg
                            .as_ref()
                            .map(|e| e.display(schema.as_ref()))
                            .unwrap_or_else(|| "*".into());
                        format!("{}({}) AS {}", a.func.name(), arg, a.name)
                    })
                    .collect();
                out.push_str(&format!(
                    "{pad}Aggregate: group=[{}] aggs=[{}]\n",
                    gb.join(", "),
                    ags.join(", ")
                ));
            }
            LogicalPlan::Sort { keys, .. } => {
                let ks: Vec<String> = keys
                    .iter()
                    .map(|(e, asc)| {
                        format!("{} {}", e.display(schema.as_ref()), if *asc { "ASC" } else { "DESC" })
                    })
                    .collect();
                out.push_str(&format!("{pad}Sort: {}\n", ks.join(", ")));
            }
            LogicalPlan::Limit { n, .. } => {
                out.push_str(&format!("{pad}Limit: {n}\n"));
            }
        }
        for c in self.children() {
            c.fmt_tree(indent + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lardb_storage::DataType;

    fn scan(name: &str, cols: &[(&str, DataType)]) -> LogicalPlan {
        LogicalPlan::Scan {
            table: name.to_string(),
            schema: Schema::from_pairs(cols).with_qualifier(name),
        }
    }

    #[test]
    fn project_infers_schema() {
        let s = scan("t", &[("id", DataType::Integer), ("v", DataType::Vector(Some(5)))]);
        let p = LogicalPlan::project(
            s,
            vec![
                (Expr::col(1), "vec".into()),
                (
                    Expr::call(crate::functions::Builtin::Norm2, vec![Expr::col(1)]),
                    "n".into(),
                ),
            ],
        )
        .unwrap();
        let schema = p.schema();
        assert_eq!(schema.column(0).dtype, DataType::Vector(Some(5)));
        assert_eq!(schema.column(0).name, "vec");
        // bare column keeps its qualifier
        assert_eq!(schema.column(0).qualifier.as_deref(), Some("t"));
        assert_eq!(schema.column(1).dtype, DataType::Double);
        assert_eq!(schema.column(1).qualifier, None);
    }

    #[test]
    fn aggregate_infers_schema() {
        let s = scan("t", &[("g", DataType::Integer), ("v", DataType::Vector(Some(3)))]);
        let a = LogicalPlan::aggregate(
            s,
            vec![(Expr::col(0), "g".into())],
            vec![AggExpr { func: AggFunc::Sum, arg: Some(Expr::col(1)), name: "s".into() }],
        )
        .unwrap();
        let schema = a.schema();
        assert_eq!(schema.arity(), 2);
        assert_eq!(schema.column(1).dtype, DataType::Vector(Some(3)));
    }

    #[test]
    fn aggregate_rejects_group_by_matrix() {
        let s = scan("t", &[("m", DataType::Matrix(Some(2), Some(2)))]);
        let err = LogicalPlan::aggregate(s, vec![(Expr::col(0), "m".into())], vec![]);
        assert!(err.is_err());
    }

    #[test]
    fn multijoin_schema_concatenates() {
        let a = scan("a", &[("x", DataType::Integer)]);
        let b = scan("b", &[("y", DataType::Integer)]);
        let mj = LogicalPlan::MultiJoin { inputs: vec![a, b], predicates: vec![] };
        assert_eq!(mj.schema().arity(), 2);
        assert_eq!(mj.schema().resolve_str("b.y").unwrap(), 1);
    }

    #[test]
    fn display_tree_smoke() {
        let s = scan("t", &[("id", DataType::Integer)]);
        let f = LogicalPlan::Filter {
            input: Box::new(s),
            predicate: Expr::eq(Expr::col(0), Expr::lit(1i64)),
        };
        let tree = f.display_tree();
        assert!(tree.contains("Filter: (t.id = 1)"));
        assert!(tree.contains("Scan: t"));
    }
}
