//! Planner errors.

use std::fmt;

use lardb_storage::StorageError;

/// Errors raised while type checking, planning or optimizing a query.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// A static type error, including the dimension mismatches the
    /// templated signatures of §4.2 detect at compile time.
    Type(String),
    /// The query shape is valid SQL but not supported by this engine.
    Unsupported(String),
    /// Catalog or schema resolution failure.
    Storage(StorageError),
    /// Internal invariant violation — a planner bug, surfaced loudly.
    Internal(String),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Type(m) => write!(f, "type error: {m}"),
            PlanError::Unsupported(m) => write!(f, "unsupported: {m}"),
            PlanError::Storage(e) => write!(f, "{e}"),
            PlanError::Internal(m) => write!(f, "internal planner error: {m}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<StorageError> for PlanError {
    fn from(e: StorageError) -> Self {
        PlanError::Storage(e)
    }
}

impl From<lardb_la::LaError> for PlanError {
    fn from(e: lardb_la::LaError) -> Self {
        PlanError::Storage(StorageError::La(e))
    }
}

/// Result alias for the planner.
pub type Result<T> = std::result::Result<T, PlanError>;
