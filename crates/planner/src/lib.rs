//! # lardb-planner — logical plans and the LA-aware cost-based optimizer
//!
//! This crate carries the paper's §4 contribution. It provides:
//!
//! * [`expr::Expr`] — the expression IR shared by planning and execution,
//!   with **dimension-inferring type checking**: every built-in linear
//!   algebra function carries a templated signature
//!   (`matrix_multiply(MATRIX[a][b], MATRIX[b][c]) -> MATRIX[a][c]`, §4.2)
//!   and the checker binds the parameters against catalog-declared sizes,
//!   rejecting mismatches at compile time and propagating exact output
//!   sizes to the optimizer.
//! * [`functions::Builtin`] / [`functions::AggFunc`] — the paper's built-in
//!   function suite (§3.1–§3.3) with both signature and runtime evaluation.
//! * [`logical::LogicalPlan`] — relational algebra with an n-ary
//!   [`logical::LogicalPlan::MultiJoin`] node the optimizer reorders.
//! * [`optimizer`] — predicate pushdown, DPsize join enumeration and the
//!   **early LA projection** rule that reproduces the paper's
//!   `(π(S × R)) ⋈ T` plan: a size-reducing function call is evaluated at
//!   the lowest join subtree covering its inputs, so 80 MB matrices never
//!   flow through the rest of the plan (§4.1).
//! * [`physical::PhysicalPlan`] — the executable operator tree, with
//!   exchange placement driven by partitioning properties.

pub mod cost;
pub mod error;
pub mod expr;
pub mod functions;
pub mod logical;
pub mod optimizer;
pub mod physical;

pub use cost::PlanEstimate;
pub use error::{PlanError, Result};
pub use expr::{CmpOp, Expr};
pub use functions::{AggFunc, Builtin};
pub use logical::{AggExpr, JoinKind, LogicalPlan};
pub use optimizer::{Optimizer, OptimizerConfig};
pub use physical::{ExchangeKind, PhysicalPlan};
