//! The LA-size-aware cost-based optimizer (§4).
//!
//! The optimizer's job, in the paper's words: with the templated signatures
//! of §4.2 binding exact sizes to every intermediate linear-algebra object,
//! a cost-based optimizer can discover plans like `(π(S × R)) ⋈ T` — where
//! an *early projection* evaluates `matrix_multiply(r_matrix, s_matrix)`
//! right after a cross product and shrinks 80 MB matrices to 8 KB results —
//! instead of the rule-based favourite `π((S ⋈ T) ⋈ R)` that drags 80 GB
//! through the plan (§4.1).
//!
//! Mechanics:
//!
//! 1. The binder emits an n-ary [`LogicalPlan::MultiJoin`]; this module
//!    classifies its predicates (single-input → pushed to the leaf;
//!    equality with separable sides → join edge; rest → residual), then
//!    runs a **DPsize enumeration over all subsets, cross products
//!    included** — cross products must be enumerable or the paper's best
//!    plan is unreachable.
//! 2. Every SELECT-list (or aggregate-argument) expression is a candidate
//!    for **early projection**: it is evaluated at the lowest subtree that
//!    covers its input columns, and the subtree's output width then counts
//!    the (usually much smaller) result instead of the inputs.
//! 3. Plan cost is the sum of intermediate result volumes
//!    (rows × row-bytes), with LA widths taken from dimension inference.
//!    [`OptimizerConfig::size_inference`] turns that knowledge off for the
//!    ablation benchmark, reproducing the blind optimizer of §4.1.

use std::collections::HashMap;

use lardb_storage::{Catalog, Schema};

use crate::cost::{equi_join_selectivity, predicate_selectivity, PlanEstimate};
use crate::error::{PlanError, Result};
use crate::expr::{CmpOp, Expr};
use crate::logical::{AggExpr, JoinKind, LogicalPlan};

/// Where the optimizer reads table cardinalities from. Implemented by the
/// real [`Catalog`]; tests and the §4.1 reproduction use a plain map so
/// they can describe hypothetical 80 MB-matrix tables without allocating
/// them.
pub trait StatsSource {
    /// Row count of a base table, if known.
    fn table_rows(&self, table: &str) -> Option<usize>;
}

impl StatsSource for Catalog {
    fn table_rows(&self, table: &str) -> Option<usize> {
        self.table_stats(table).ok().map(|s| s.num_rows)
    }
}

impl StatsSource for HashMap<String, usize> {
    fn table_rows(&self, table: &str) -> Option<usize> {
        self.get(&table.to_ascii_lowercase()).copied()
    }
}

/// Optimizer switches; each `false` is an ablation knob used by the
/// benchmark suite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptimizerConfig {
    /// Use inferred LA dimensions when pricing row widths (§4.2). When
    /// off, every column is priced at 8 bytes and the optimizer re-creates
    /// the paper's "bad plan" example.
    pub size_inference: bool,
    /// Evaluate size-reducing expressions at the lowest covering subtree
    /// (§4.1's early projection). When off, all computation happens at the
    /// plan root.
    pub early_projection: bool,
    /// Inputs above this count use a greedy join order instead of exact DP.
    pub max_dp_inputs: usize,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig { size_inference: true, early_projection: true, max_dp_inputs: 12 }
    }
}

/// The cost-based optimizer.
pub struct Optimizer<'a> {
    stats: &'a dyn StatsSource,
    config: OptimizerConfig,
}

/// Default row-count guess for tables with unknown statistics.
pub(crate) const DEFAULT_TABLE_ROWS: f64 = 1000.0;

impl<'a> Optimizer<'a> {
    /// Creates an optimizer over the given statistics source.
    pub fn new(stats: &'a dyn StatsSource, config: OptimizerConfig) -> Self {
        Optimizer { stats, config }
    }

    /// Optimizer with default configuration.
    pub fn with_defaults(stats: &'a dyn StatsSource) -> Self {
        Optimizer::new(stats, OptimizerConfig::default())
    }

    /// Rewrites a logical plan into its optimized form. All `MultiJoin`
    /// nodes are replaced by concrete join trees.
    pub fn optimize(&self, plan: LogicalPlan) -> Result<LogicalPlan> {
        match plan {
            LogicalPlan::Project { input, exprs, schema } => match *input {
                LogicalPlan::MultiJoin { inputs, predicates } => {
                    let (joined, remapped) =
                        self.plan_join_graph(inputs, predicates, exprs)?;
                    let names: Vec<(Expr, String)> = remapped
                        .into_iter()
                        .zip(schema.columns())
                        .map(|(e, c)| (e, c.name.clone()))
                        .collect();
                    LogicalPlan::project(joined, names)
                }
                other => {
                    let input = self.optimize(other)?;
                    Ok(LogicalPlan::Project { input: Box::new(input), exprs, schema })
                }
            },
            LogicalPlan::Aggregate { input, group_by, aggs, schema } => match *input {
                LogicalPlan::MultiJoin { inputs, predicates } => {
                    // Outputs fed to join planning: group keys first, then
                    // aggregate arguments.
                    let mut outputs = group_by.clone();
                    for a in &aggs {
                        if let Some(arg) = &a.arg {
                            outputs.push(arg.clone());
                        }
                    }
                    let (joined, remapped) =
                        self.plan_join_graph(inputs, predicates, outputs)?;
                    let new_group: Vec<Expr> = remapped[..group_by.len()].to_vec();
                    let mut it = remapped[group_by.len()..].iter();
                    let new_aggs: Vec<AggExpr> = aggs
                        .into_iter()
                        .map(|a| AggExpr {
                            func: a.func,
                            arg: a.arg.as_ref().map(|_| {
                                it.next().expect("arity checked above").clone()
                            }),
                            name: a.name,
                        })
                        .collect();
                    Ok(LogicalPlan::Aggregate {
                        input: Box::new(joined),
                        group_by: new_group,
                        aggs: new_aggs,
                        schema,
                    })
                }
                other => {
                    let input = self.optimize(other)?;
                    Ok(LogicalPlan::Aggregate {
                        input: Box::new(input),
                        group_by,
                        aggs,
                        schema,
                    })
                }
            },
            LogicalPlan::MultiJoin { inputs, predicates } => {
                // No projection context: preserve all columns in order.
                let full: Schema = {
                    let mut s = Schema::default();
                    for i in &inputs {
                        s = s.concat(&i.schema());
                    }
                    s
                };
                let outputs: Vec<Expr> = (0..full.arity()).map(Expr::col).collect();
                let (joined, remapped) = self.plan_join_graph(inputs, predicates, outputs)?;
                let names: Vec<(Expr, String)> = remapped
                    .into_iter()
                    .zip(full.columns())
                    .map(|(e, c)| (e, c.name.clone()))
                    .collect();
                LogicalPlan::project(joined, names)
            }
            LogicalPlan::Filter { input, predicate } => {
                let input = self.optimize(*input)?;
                // Merge adjacent filters for cleanliness.
                if let LogicalPlan::Filter { input: inner, predicate: p2 } = input {
                    Ok(LogicalPlan::Filter {
                        input: inner,
                        predicate: Expr::And(Box::new(p2), Box::new(predicate)),
                    })
                } else {
                    Ok(LogicalPlan::Filter { input: Box::new(input), predicate })
                }
            }
            LogicalPlan::Join { left, right, kind, equi, residual } => {
                Ok(LogicalPlan::Join {
                    left: Box::new(self.optimize(*left)?),
                    right: Box::new(self.optimize(*right)?),
                    kind,
                    equi,
                    residual,
                })
            }
            LogicalPlan::Sort { input, keys } => Ok(LogicalPlan::Sort {
                input: Box::new(self.optimize(*input)?),
                keys,
            }),
            LogicalPlan::Limit { input, n } => Ok(LogicalPlan::Limit {
                input: Box::new(self.optimize(*input)?),
                n,
            }),
            leaf @ LogicalPlan::Scan { .. } => Ok(leaf),
        }
    }

    /// Estimates the output size of a plan.
    pub fn estimate(&self, plan: &LogicalPlan) -> PlanEstimate {
        match plan {
            LogicalPlan::Scan { table, schema } => {
                let rows = self
                    .stats
                    .table_rows(table)
                    .map(|r| r as f64)
                    .unwrap_or(DEFAULT_TABLE_ROWS);
                PlanEstimate::new(rows.max(1.0), self.schema_width(schema))
            }
            LogicalPlan::Filter { input, predicate } => {
                let e = self.estimate(input);
                let mut preds = Vec::new();
                predicate.clone().split_conjunction(&mut preds);
                let sel: f64 = preds
                    .iter()
                    .map(|p| predicate_selectivity(matches!(p, Expr::Cmp { op: CmpOp::Eq, .. })))
                    .product();
                PlanEstimate::new((e.rows * sel).max(1.0), e.row_bytes)
            }
            LogicalPlan::Project { input, schema, .. } => {
                let e = self.estimate(input);
                PlanEstimate::new(e.rows, self.schema_width(schema))
            }
            LogicalPlan::MultiJoin { inputs, predicates } => {
                let mut rows = 1.0;
                let mut width = 0.0;
                for i in inputs {
                    let e = self.estimate(i);
                    rows *= e.rows;
                    width += e.row_bytes;
                }
                let sel: f64 = predicates.iter().map(|_| 0.01).product();
                PlanEstimate::new((rows * sel).max(1.0), width)
            }
            LogicalPlan::Join { left, right, kind, equi, .. } => {
                let l = self.estimate(left);
                let r = self.estimate(right);
                let sel = match kind {
                    JoinKind::Cross => 1.0,
                    JoinKind::Inner => equi
                        .iter()
                        .map(|_| equi_join_selectivity(l.rows, r.rows))
                        .product(),
                };
                PlanEstimate::new((l.rows * r.rows * sel).max(1.0), l.row_bytes + r.row_bytes)
            }
            LogicalPlan::Aggregate { input, group_by, aggs, schema } => {
                let e = self.estimate(input);
                let rows = if group_by.is_empty() { 1.0 } else { e.rows.sqrt().max(1.0) };
                let mut width = self.schema_width(schema);
                if self.config.size_inference {
                    let sparse = aggs
                        .iter()
                        .filter(|a| a.func == crate::AggFunc::MatrixFromEntries)
                        .count();
                    width = crate::cost::sparse_agg_width(width, sparse, e.rows);
                }
                PlanEstimate::new(rows, width)
            }
            LogicalPlan::Sort { input, .. } => self.estimate(input),
            LogicalPlan::Limit { input, n } => {
                let e = self.estimate(input);
                PlanEstimate::new(e.rows.min(*n as f64), e.row_bytes)
            }
        }
    }

    /// Row width of a schema under the current config: full LA-aware widths
    /// (§4.2), or 8 bytes per column for the blind ablation.
    fn schema_width(&self, schema: &Schema) -> f64 {
        if self.config.size_inference {
            schema.estimated_row_bytes() as f64
        } else {
            (schema.arity() * 8) as f64
        }
    }

    /// Plans an n-way join. `outputs` are the expressions the parent needs,
    /// over the concatenated ("global") schema of `inputs`. Returns the
    /// join tree and each output expression rewritten against the tree's
    /// output schema.
    fn plan_join_graph(
        &self,
        inputs: Vec<LogicalPlan>,
        predicates: Vec<Expr>,
        outputs: Vec<Expr>,
    ) -> Result<(LogicalPlan, Vec<Expr>)> {
        let inputs: Vec<LogicalPlan> =
            inputs.into_iter().map(|i| self.optimize(i)).collect::<Result<_>>()?;
        let n = inputs.len();
        if n == 0 {
            return Err(PlanError::Internal("MultiJoin with no inputs".into()));
        }
        if n > 63 {
            return Err(PlanError::Unsupported(format!("{n}-way join exceeds 63 inputs")));
        }

        let graph = JoinGraph::build(self, inputs, predicates, outputs)?;
        if graph.n == 1 {
            return graph.finish_single();
        }
        let full: u64 = (1u64 << graph.n) - 1;
        let splits = if graph.n <= self.config.max_dp_inputs {
            graph.dp_orders(full)
        } else {
            graph.greedy_orders()
        };
        graph.build_tree(full, &splits)
    }
}

/// One classified predicate of the join graph.
struct PredInfo {
    /// Global-space expression.
    expr: Expr,
    /// Bitmask of inputs referenced.
    cover: u64,
    /// Estimated selectivity.
    selectivity: f64,
    /// For equality predicates whose sides touch disjoint input sets:
    /// `(lhs, rhs, lhs_cover, rhs_cover)` — usable as hash-join keys.
    equi: Option<(Expr, Expr, u64, u64)>,
}

/// One parent-requested output expression.
struct OutInfo {
    /// Global-space expression.
    expr: Expr,
    /// Bitmask of inputs referenced.
    cover: u64,
    /// Estimated width of the computed value in bytes.
    width: f64,
    /// Whether early projection may evaluate it inside the tree. True only
    /// when the computation *shrinks* data: evaluating a size-exploding
    /// expression (an `outer_product` per row, say) early would carry its
    /// huge result through every join above instead of the small inputs.
    early: bool,
}

/// Slot identity while rebuilding the tree: either a global base column or
/// an early-computed output expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Slot {
    Base(usize),
    Out(usize),
}

type SlotMap = HashMap<Slot, usize>;

struct JoinGraph {
    n: usize,
    /// Leaf plans with single-input predicates already pushed into them.
    leaves: Vec<LogicalPlan>,
    /// Global column offset of each input.
    offsets: Vec<usize>,
    /// Concatenated schema of all inputs.
    global: Schema,
    /// Which input owns each global column.
    col_input: Vec<usize>,
    /// Priced width of each global column.
    col_width: Vec<f64>,
    /// Estimated rows of each leaf (after pushed filters).
    leaf_rows: Vec<f64>,
    /// Multi-input predicates.
    preds: Vec<PredInfo>,
    /// Parent outputs.
    outs: Vec<OutInfo>,
}

impl JoinGraph {
    fn build(
        opt: &Optimizer<'_>,
        inputs: Vec<LogicalPlan>,
        predicates: Vec<Expr>,
        outputs: Vec<Expr>,
    ) -> Result<Self> {
        let n = inputs.len();
        let mut offsets = Vec::with_capacity(n);
        let mut global = Schema::default();
        let mut col_input = Vec::new();
        for (i, input) in inputs.iter().enumerate() {
            offsets.push(global.arity());
            let s = input.schema();
            for _ in 0..s.arity() {
                col_input.push(i);
            }
            global = global.concat(&s);
        }
        let col_width: Vec<f64> = global
            .columns()
            .iter()
            .map(|c| {
                if opt.config.size_inference {
                    c.dtype.estimated_byte_width() as f64
                } else {
                    8.0
                }
            })
            .collect();

        let cover_of = |e: &Expr| -> u64 {
            let mut m = 0u64;
            for c in e.columns() {
                m |= 1u64 << col_input[c];
            }
            m
        };

        // Classify predicates; push single-input ones into their leaf.
        let mut pushed: Vec<Vec<Expr>> = vec![Vec::new(); n];
        let mut preds = Vec::new();
        let mut flat = Vec::new();
        for p in predicates {
            p.split_conjunction(&mut flat);
        }
        for p in flat {
            let cover = cover_of(&p);
            if cover.count_ones() <= 1 {
                let i = if cover == 0 { 0 } else { cover.trailing_zeros() as usize };
                pushed[i].push(p);
                continue;
            }
            let equi = match &p {
                Expr::Cmp { op: CmpOp::Eq, lhs, rhs } => {
                    let lc = cover_of(lhs);
                    let rc = cover_of(rhs);
                    if lc != 0 && rc != 0 && lc & rc == 0 {
                        Some((lhs.as_ref().clone(), rhs.as_ref().clone(), lc, rc))
                    } else {
                        None
                    }
                }
                _ => None,
            };
            preds.push(PredInfo { expr: p, cover, selectivity: 0.0, equi });
        }

        // Leaf plans + row estimates (pushed predicates applied).
        let mut leaves = Vec::with_capacity(n);
        let mut leaf_rows = Vec::with_capacity(n);
        for (i, input) in inputs.into_iter().enumerate() {
            let base_rows = opt.estimate(&input).rows;
            let off = offsets[i];
            let mut rows = base_rows;
            let plan = if pushed[i].is_empty() {
                input
            } else {
                for p in &pushed[i] {
                    rows *= predicate_selectivity(matches!(
                        p,
                        Expr::Cmp { op: CmpOp::Eq, .. }
                    ));
                }
                let local: Vec<Expr> = pushed[i]
                    .iter()
                    .map(|p| p.remap_columns(&|g| g - off))
                    .collect();
                LogicalPlan::Filter {
                    input: Box::new(input),
                    predicate: Expr::conjunction(local).expect("nonempty"),
                }
            };
            leaves.push(plan);
            leaf_rows.push(rows.max(1.0));
        }

        // Predicate selectivities need leaf rows.
        for p in &mut preds {
            let max_side = (0..n)
                .filter(|i| p.cover & (1u64 << i) != 0)
                .map(|i| leaf_rows[i])
                .fold(1.0f64, f64::max);
            p.selectivity = match &p.expr {
                Expr::Cmp { op: CmpOp::Eq, .. } => equi_join_selectivity(max_side, 1.0),
                Expr::Cmp { op: CmpOp::NotEq, .. } => 0.9,
                _ => 1.0 / 3.0,
            };
        }

        // Outputs: width via dimension inference over the global schema.
        let mut outs = Vec::with_capacity(outputs.len());
        for e in outputs {
            let cover = cover_of(&e);
            let width = {
                let dtype = e.infer_type(&global)?;
                if opt.config.size_inference {
                    dtype.estimated_byte_width() as f64
                } else {
                    8.0
                }
            };
            // Profitability: early evaluation must not inflate the rows it
            // travels in — compare the result's width with the base
            // columns it would replace.
            let consumed: f64 = e.columns().iter().map(|&c| col_width[c]).sum();
            let early = opt.config.early_projection
                && !e.is_column()
                && cover != 0
                && width <= consumed;
            outs.push(OutInfo { expr: e, cover, width, early });
        }

        Ok(JoinGraph {
            n,
            leaves,
            offsets,
            global,
            col_input,
            col_width,
            leaf_rows,
            preds,
            outs,
        })
    }

    /// Estimated rows of the join of subset `s`.
    fn rows(&self, s: u64) -> f64 {
        let mut rows: f64 = (0..self.n)
            .filter(|i| s & (1u64 << i) != 0)
            .map(|i| self.leaf_rows[i])
            .product();
        for p in &self.preds {
            if p.cover & s == p.cover {
                rows *= p.selectivity;
            }
        }
        rows.max(1.0)
    }

    /// Is base column `c` (global index) carried above subtree `s`?
    fn col_carried(&self, c: usize, s: u64) -> bool {
        // Needed by a predicate not yet fully applied inside `s`.
        for p in &self.preds {
            if p.cover & s != p.cover && p.expr.columns().contains(&c) {
                return true;
            }
        }
        // Needed by an output not (yet) computed inside `s`.
        for o in &self.outs {
            let computed = o.early && o.cover & s == o.cover;
            if !computed && o.expr.columns().contains(&c) {
                return true;
            }
        }
        false
    }

    /// Which outputs are computed somewhere within subtree `s`.
    fn outs_computed(&self, s: u64) -> Vec<usize> {
        self.outs
            .iter()
            .enumerate()
            .filter(|(_, o)| o.early && o.cover & s == o.cover)
            .map(|(k, _)| k)
            .collect()
    }

    /// Estimated per-row width of subtree `s`'s output.
    fn width(&self, s: u64) -> f64 {
        let mut w = 0.0;
        for c in 0..self.global.arity() {
            if s & (1u64 << self.col_input[c]) != 0 && self.col_carried(c, s) {
                w += self.col_width[c];
            }
        }
        for k in self.outs_computed(s) {
            w += self.outs[k].width;
        }
        w
    }

    fn vol(&self, s: u64) -> f64 {
        self.rows(s) * self.width(s).max(1.0)
    }

    /// Exact DPsize over all subsets (cross products included). Returns the
    /// chosen split for every non-singleton subset on the best plan.
    fn dp_orders(&self, full: u64) -> HashMap<u64, (u64, u64)> {
        let n = self.n;
        let mut cost: HashMap<u64, f64> = HashMap::new();
        let mut split: HashMap<u64, (u64, u64)> = HashMap::new();
        for i in 0..n {
            cost.insert(1u64 << i, 0.0);
        }
        // Enumerate subsets in increasing popcount.
        let mut subsets: Vec<u64> = (1..=full).filter(|s| s.count_ones() >= 2).collect();
        subsets.sort_by_key(|s| s.count_ones());
        for s in subsets {
            let mut best = f64::INFINITY;
            let mut best_split = (0u64, 0u64);
            // Enumerate proper submasks; canonical (lo half) only.
            let mut s1 = (s - 1) & s;
            while s1 != 0 {
                let s2 = s ^ s1;
                if s1 < s2 {
                    if let (Some(&c1), Some(&c2)) = (cost.get(&s1), cost.get(&s2)) {
                        let c = c1 + c2 + self.vol(s);
                        // Tiny bias against cross products breaks cost
                        // ties in favour of connected joins.
                        let c = if self.has_edge(s1, s2) { c } else { c * 1.000_001 };
                        if c < best {
                            best = c;
                            best_split = (s1, s2);
                        }
                    }
                }
                s1 = (s1 - 1) & s;
            }
            cost.insert(s, best);
            split.insert(s, best_split);
        }
        split
    }

    /// True when some equi predicate connects `s1` and `s2`.
    fn has_edge(&self, s1: u64, s2: u64) -> bool {
        self.preds.iter().any(|p| {
            if let Some((_, _, lc, rc)) = &p.equi {
                (lc & s1 == *lc && rc & s2 == *rc) || (lc & s2 == *lc && rc & s1 == *rc)
            } else {
                false
            }
        })
    }

    /// Greedy fallback for very wide joins: repeatedly merge the pair of
    /// components with the cheapest merged volume.
    fn greedy_orders(&self) -> HashMap<u64, (u64, u64)> {
        let mut split = HashMap::new();
        let mut components: Vec<u64> = (0..self.n).map(|i| 1u64 << i).collect();
        while components.len() > 1 {
            let mut best = f64::INFINITY;
            let mut pair = (0usize, 1usize);
            for a in 0..components.len() {
                for b in (a + 1)..components.len() {
                    let merged = components[a] | components[b];
                    let mut v = self.vol(merged);
                    if !self.has_edge(components[a], components[b]) {
                        v *= 1.000_001;
                    }
                    if v < best {
                        best = v;
                        pair = (a, b);
                    }
                }
            }
            let (a, b) = pair;
            let merged = components[a] | components[b];
            split.insert(merged, (components[a], components[b]));
            components.retain(|&c| c & merged == 0);
            components.push(merged);
        }
        split
    }

    /// Degenerate single-input "join".
    fn finish_single(mut self) -> Result<(LogicalPlan, Vec<Expr>)> {
        let plan = self.leaves.remove(0);
        let outs = self.outs.iter().map(|o| o.expr.clone()).collect();
        Ok((plan, outs))
    }

    /// Rebuilds the physical-ready logical tree for subset `full` using the
    /// chosen splits, then rewrites the parent's output expressions.
    fn build_tree(
        mut self,
        full: u64,
        splits: &HashMap<u64, (u64, u64)>,
    ) -> Result<(LogicalPlan, Vec<Expr>)> {
        // Take the leaves out so build_subtree can move them.
        let mut leaves: Vec<Option<LogicalPlan>> =
            self.leaves.drain(..).map(Some).collect();
        let (plan, map) = self.build_subtree(full, splits, &mut leaves)?;

        let final_schema = plan.schema();
        let mut final_exprs = Vec::with_capacity(self.outs.len());
        for (k, o) in self.outs.iter().enumerate() {
            if let Some(&pos) = map.get(&Slot::Out(k)) {
                final_exprs.push(Expr::Column(pos));
            } else {
                // Remap the expression's base columns through the map.
                let missing = std::cell::Cell::new(None);
                let e = o.expr.remap_columns(&|g| match map.get(&Slot::Base(g)) {
                    Some(&pos) => pos,
                    None => {
                        missing.set(Some(g));
                        0
                    }
                });
                if let Some(g) = missing.get() {
                    return Err(PlanError::Internal(format!(
                        "output column {g} was pruned from the join tree"
                    )));
                }
                // Sanity: expression must type-check against the new schema.
                e.infer_type(&final_schema)?;
                final_exprs.push(e);
            }
        }
        Ok((plan, final_exprs))
    }

    fn build_subtree(
        &self,
        s: u64,
        splits: &HashMap<u64, (u64, u64)>,
        leaves: &mut Vec<Option<LogicalPlan>>,
    ) -> Result<(LogicalPlan, SlotMap)> {
        if s.count_ones() == 1 {
            let i = s.trailing_zeros() as usize;
            let plan = leaves[i]
                .take()
                .ok_or_else(|| PlanError::Internal(format!("leaf {i} reused")))?;
            let arity = plan.schema().arity();
            let off = self.offsets[i];
            let mut map = SlotMap::new();
            for j in 0..arity {
                map.insert(Slot::Base(off + j), j);
            }
            return self.apply_projection(s, plan, map, /*children_computed=*/ &[]);
        }

        let &(s1, s2) = splits
            .get(&s)
            .ok_or_else(|| PlanError::Internal(format!("no split recorded for {s:b}")))?;
        let (left, lmap) = self.build_subtree(s1, splits, leaves)?;
        let (right, rmap) = self.build_subtree(s2, splits, leaves)?;
        let left_arity = left.schema().arity();

        // Combined child map: right positions shifted.
        let mut cmap = SlotMap::new();
        for (slot, pos) in &lmap {
            cmap.insert(*slot, *pos);
        }
        for (slot, pos) in &rmap {
            cmap.insert(*slot, *pos + left_arity);
        }

        // Predicates applied exactly here.
        let mut equi = Vec::new();
        let mut residual = Vec::new();
        for p in &self.preds {
            if p.cover & s != p.cover || p.cover & s1 == p.cover || p.cover & s2 == p.cover {
                continue;
            }
            if let Some((lhs, rhs, lc, rc)) = &p.equi {
                let (lhs, rhs) = if lc & s1 == *lc && rc & s2 == *rc {
                    (lhs, rhs)
                } else if lc & s2 == *lc && rc & s1 == *rc {
                    (rhs, lhs)
                } else {
                    // Sides straddle both children: fall back to residual.
                    residual.push(self.remap_global(&p.expr, &cmap)?);
                    continue;
                };
                let lk = self.remap_global(lhs, &lmap)?;
                let rk = self.remap_global(rhs, &rmap)?;
                equi.push((lk, rk));
            } else {
                residual.push(self.remap_global(&p.expr, &cmap)?);
            }
        }

        let kind = if equi.is_empty() { JoinKind::Cross } else { JoinKind::Inner };
        let join = LogicalPlan::Join {
            left: Box::new(left),
            right: Box::new(right),
            kind,
            equi,
            residual: Expr::conjunction(residual),
        };

        let children_computed: Vec<usize> = self
            .outs_computed(s1)
            .into_iter()
            .chain(self.outs_computed(s2))
            .collect();
        self.apply_projection(s, join, cmap, &children_computed)
    }

    /// Emits the early projection for subtree `s`: keeps carried base
    /// columns, passes through already-computed outputs, and evaluates
    /// outputs that became computable exactly at `s`.
    fn apply_projection(
        &self,
        s: u64,
        plan: LogicalPlan,
        map: SlotMap,
        children_computed: &[usize],
    ) -> Result<(LogicalPlan, SlotMap)> {
        let carried: Vec<usize> = (0..self.global.arity())
            .filter(|&c| {
                s & (1u64 << self.col_input[c]) != 0
                    && map.contains_key(&Slot::Base(c))
                    && self.col_carried(c, s)
            })
            .collect();
        let computed = self.outs_computed(s);

        // Nothing to compute and nothing to prune? Pass through unchanged.
        let base_slots_in_map =
            map.keys().filter(|k| matches!(k, Slot::Base(_))).count();
        if computed.len() == children_computed.len() && carried.len() == base_slots_in_map
        {
            return Ok((plan, map));
        }

        let mut exprs: Vec<(Expr, String)> = Vec::new();
        let mut new_map = SlotMap::new();
        for &c in &carried {
            let pos = map[&Slot::Base(c)];
            new_map.insert(Slot::Base(c), exprs.len());
            exprs.push((Expr::Column(pos), self.global.column(c).name.clone()));
        }
        for &k in &computed {
            new_map.insert(Slot::Out(k), exprs.len());
            let e = if children_computed.contains(&k) {
                Expr::Column(map[&Slot::Out(k)])
            } else {
                self.remap_global(&self.outs[k].expr, &map)?
            };
            exprs.push((e, format!("__out{k}")));
        }

        // A projection with no columns would be degenerate; keep one
        // carried column arbitrarily (can happen for COUNT(*)-style roots).
        if exprs.is_empty() {
            if let Some((slot, pos)) = map.iter().next() {
                new_map.insert(*slot, 0);
                exprs.push((Expr::Column(*pos), "__keep".into()));
            }
        }

        let projected = LogicalPlan::project(plan, exprs)?;
        Ok((projected, new_map))
    }

    /// Rewrites a global-space expression through a slot map.
    fn remap_global(&self, e: &Expr, map: &SlotMap) -> Result<Expr> {
        let missing = std::cell::Cell::new(None);
        let out = e.remap_columns(&|g| match map.get(&Slot::Base(g)) {
            Some(&pos) => pos,
            None => {
                missing.set(Some(g));
                0
            }
        });
        match missing.get() {
            Some(g) => Err(PlanError::Internal(format!(
                "column {g} not available while planning join"
            ))),
            None => Ok(out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functions::Builtin;
    use lardb_storage::DataType;

    fn scan(name: &str, cols: &[(&str, DataType)]) -> LogicalPlan {
        LogicalPlan::Scan {
            table: name.to_string(),
            schema: Schema::from_pairs(cols).with_qualifier(name),
        }
    }

    /// The §4.1 schema: R(r_rid, r_matrix[10][100000]), S(s_sid,
    /// s_matrix[100000][100]), T(t_rid, t_sid); |R|=|S|=100, |T|=1000.
    fn paper_catalog() -> (HashMap<String, usize>, LogicalPlan) {
        let mut stats = HashMap::new();
        stats.insert("r".to_string(), 100);
        stats.insert("s".to_string(), 100);
        stats.insert("t".to_string(), 1000);

        let r = scan(
            "R",
            &[
                ("r_rid", DataType::Integer),
                ("r_matrix", DataType::Matrix(Some(10), Some(100_000))),
            ],
        );
        let s = scan(
            "S",
            &[
                ("s_sid", DataType::Integer),
                ("s_matrix", DataType::Matrix(Some(100_000), Some(100))),
            ],
        );
        let t = scan("T", &[("t_rid", DataType::Integer), ("t_sid", DataType::Integer)]);

        // global columns: 0 r_rid, 1 r_matrix, 2 s_sid, 3 s_matrix,
        //                 4 t_rid, 5 t_sid
        let mj = LogicalPlan::MultiJoin {
            inputs: vec![r, s, t],
            predicates: vec![
                Expr::eq(Expr::col(0), Expr::col(4)),
                Expr::eq(Expr::col(2), Expr::col(5)),
            ],
        };
        let project = LogicalPlan::project(
            mj,
            vec![(
                Expr::call(Builtin::MatrixMultiply, vec![Expr::col(1), Expr::col(3)]),
                "prod".into(),
            )],
        )
        .unwrap();
        (stats, project)
    }

    /// Collects, in order, the tables of every Scan in the plan.
    fn scans(plan: &LogicalPlan, out: &mut Vec<String>) {
        if let LogicalPlan::Scan { table, .. } = plan {
            out.push(table.clone());
        }
        for c in plan.children() {
            scans(c, out);
        }
    }

    /// Finds whether some Join node directly joins {R,S} (in any order)
    /// below it, i.e. the paper's early cross product.
    fn has_rs_cross(plan: &LogicalPlan) -> bool {
        if let LogicalPlan::Join { left, right, .. } = plan {
            let mut l = Vec::new();
            let mut r = Vec::new();
            scans(left, &mut l);
            scans(right, &mut r);
            let mut both: Vec<String> = l.iter().chain(r.iter()).cloned().collect();
            both.sort();
            if both == vec!["R".to_string(), "S".to_string()] {
                return true;
            }
        }
        plan.children().iter().any(|c| has_rs_cross(c))
    }

    /// True when some Project below the top evaluates matrix_multiply.
    fn has_early_matmul(plan: &LogicalPlan, depth: usize) -> bool {
        if depth > 0 {
            if let LogicalPlan::Project { exprs, .. } = plan {
                if exprs.iter().any(contains_matmul) {
                    return true;
                }
            }
        }
        plan.children().iter().any(|c| has_early_matmul(c, depth + 1))
    }

    fn contains_matmul(e: &Expr) -> bool {
        match e {
            Expr::Call { func: Builtin::MatrixMultiply, .. } => true,
            Expr::Call { args, .. } => args.iter().any(contains_matmul),
            Expr::Arith { lhs, rhs, .. } | Expr::Cmp { lhs, rhs, .. } => {
                contains_matmul(lhs) || contains_matmul(rhs)
            }
            Expr::And(a, b) | Expr::Or(a, b) => contains_matmul(a) || contains_matmul(b),
            Expr::Not(x) | Expr::Negate(x) => contains_matmul(x),
            _ => false,
        }
    }

    #[test]
    fn paper_plan_chooses_early_cross_product() {
        let (stats, plan) = paper_catalog();
        let opt = Optimizer::with_defaults(&stats);
        let optimized = opt.optimize(plan).unwrap();
        assert!(
            has_rs_cross(&optimized),
            "expected (π(S × R)) ⋈ T shape, got:\n{}",
            optimized.display_tree()
        );
        assert!(
            has_early_matmul(&optimized, 0),
            "matrix_multiply should be projected early:\n{}",
            optimized.display_tree()
        );
    }

    #[test]
    fn blind_optimizer_avoids_cross_product() {
        let (stats, plan) = paper_catalog();
        let config = OptimizerConfig { size_inference: false, ..Default::default() };
        let opt = Optimizer::new(&stats, config);
        let optimized = opt.optimize(plan).unwrap();
        assert!(
            !has_rs_cross(&optimized),
            "blind optimizer should join through T:\n{}",
            optimized.display_tree()
        );
    }

    #[test]
    fn no_early_projection_keeps_matmul_at_root() {
        let (stats, plan) = paper_catalog();
        let config = OptimizerConfig { early_projection: false, ..Default::default() };
        let opt = Optimizer::new(&stats, config);
        let optimized = opt.optimize(plan).unwrap();
        assert!(!has_early_matmul(&optimized, 0));
        // Root project must still compute the multiply.
        if let LogicalPlan::Project { exprs, .. } = &optimized {
            assert!(exprs.iter().any(contains_matmul));
        } else {
            panic!("expected Project at root");
        }
    }

    #[test]
    fn two_way_equi_join_plans_as_inner() {
        let mut stats = HashMap::new();
        stats.insert("a".to_string(), 10);
        stats.insert("b".to_string(), 10);
        let a = scan("a", &[("x", DataType::Integer)]);
        let b = scan("b", &[("y", DataType::Integer)]);
        let mj = LogicalPlan::MultiJoin {
            inputs: vec![a, b],
            predicates: vec![Expr::eq(Expr::col(0), Expr::col(1))],
        };
        let plan = LogicalPlan::project(
            mj,
            vec![(Expr::col(0), "x".into()), (Expr::col(1), "y".into())],
        )
        .unwrap();
        let opt = Optimizer::with_defaults(&stats);
        let optimized = opt.optimize(plan).unwrap();
        fn find_join(p: &LogicalPlan) -> Option<(JoinKind, usize)> {
            if let LogicalPlan::Join { kind, equi, .. } = p {
                return Some((*kind, equi.len()));
            }
            p.children().iter().find_map(|c| find_join(c))
        }
        let (kind, nequi) = find_join(&optimized).expect("a join must exist");
        assert_eq!(kind, JoinKind::Inner);
        assert_eq!(nequi, 1);
    }

    #[test]
    fn single_table_pushdown() {
        let mut stats = HashMap::new();
        stats.insert("a".to_string(), 10);
        stats.insert("b".to_string(), 10);
        let a = scan("a", &[("x", DataType::Integer)]);
        let b = scan("b", &[("y", DataType::Integer)]);
        let mj = LogicalPlan::MultiJoin {
            inputs: vec![a, b],
            predicates: vec![
                Expr::eq(Expr::col(0), Expr::col(1)),
                Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::lit(5i64)),
            ],
        };
        let plan =
            LogicalPlan::project(mj, vec![(Expr::col(1), "y".into())]).unwrap();
        let opt = Optimizer::with_defaults(&stats);
        let optimized = opt.optimize(plan).unwrap();
        // The x < 5 filter must sit directly above the scan of `a`.
        fn filter_over_scan(p: &LogicalPlan) -> bool {
            if let LogicalPlan::Filter { input, .. } = p {
                if matches!(**input, LogicalPlan::Scan { .. }) {
                    return true;
                }
            }
            p.children().iter().any(|c| filter_over_scan(c))
        }
        assert!(filter_over_scan(&optimized), "{}", optimized.display_tree());
    }

    #[test]
    fn outputs_remap_correctly_after_reorder() {
        // Ensure output exprs that are bare columns survive join reordering
        // with correct positions (checked by type).
        let mut stats = HashMap::new();
        stats.insert("big".to_string(), 100000);
        stats.insert("small".to_string(), 10);
        let big = scan(
            "big",
            &[("k", DataType::Integer), ("v", DataType::Vector(Some(7)))],
        );
        let small = scan("small", &[("k2", DataType::Integer)]);
        let mj = LogicalPlan::MultiJoin {
            inputs: vec![big, small],
            predicates: vec![Expr::eq(Expr::col(0), Expr::col(2))],
        };
        let plan = LogicalPlan::project(
            mj,
            vec![(Expr::col(1), "v".into()), (Expr::col(2), "k2".into())],
        )
        .unwrap();
        let opt = Optimizer::with_defaults(&stats);
        let optimized = opt.optimize(plan).unwrap();
        let schema = optimized.schema();
        assert_eq!(schema.column(0).dtype, DataType::Vector(Some(7)));
        assert_eq!(schema.column(1).dtype, DataType::Integer);
    }

    #[test]
    fn greedy_fallback_still_produces_correct_plans() {
        // Force the greedy path with max_dp_inputs = 2 on the §4.1 query;
        // plan must still be buildable and type-correct.
        let (stats, plan) = paper_catalog();
        let config = OptimizerConfig { max_dp_inputs: 2, ..Default::default() };
        let opt = Optimizer::new(&stats, config);
        let optimized = opt.optimize(plan).unwrap();
        let schema = optimized.schema();
        assert_eq!(schema.arity(), 1);
        assert_eq!(
            schema.column(0).dtype,
            lardb_storage::DataType::Matrix(Some(10), Some(100))
        );
        // Greedy also prefers the small RS product here.
        assert!(has_rs_cross(&optimized), "{}", optimized.display_tree());
    }

    #[test]
    fn standalone_multijoin_preserves_all_columns() {
        let mut stats = HashMap::new();
        stats.insert("a".to_string(), 5);
        stats.insert("b".to_string(), 5);
        let a = scan("a", &[("x", DataType::Integer), ("v", DataType::Double)]);
        let b = scan("b", &[("y", DataType::Integer)]);
        let mj = LogicalPlan::MultiJoin {
            inputs: vec![a, b],
            predicates: vec![Expr::eq(Expr::col(0), Expr::col(2))],
        };
        let opt = Optimizer::with_defaults(&stats);
        let optimized = opt.optimize(mj).unwrap();
        let schema = optimized.schema();
        assert_eq!(schema.arity(), 3);
        assert_eq!(schema.column(1).name, "v");
    }

    #[test]
    fn non_equi_predicate_becomes_residual() {
        let mut stats = HashMap::new();
        stats.insert("a".to_string(), 10);
        stats.insert("b".to_string(), 10);
        let a = scan("a", &[("x", DataType::Integer)]);
        let b = scan("b", &[("y", DataType::Integer)]);
        let mj = LogicalPlan::MultiJoin {
            inputs: vec![a, b],
            predicates: vec![Expr::cmp(CmpOp::NotEq, Expr::col(0), Expr::col(1))],
        };
        let plan = LogicalPlan::project(mj, vec![(Expr::col(0), "x".into())]).unwrap();
        let opt = Optimizer::with_defaults(&stats);
        let optimized = opt.optimize(plan).unwrap();
        fn find_residual(p: &LogicalPlan) -> bool {
            if let LogicalPlan::Join { kind, residual, .. } = p {
                return *kind == JoinKind::Cross && residual.is_some();
            }
            p.children().iter().any(|c| find_residual(c))
        }
        assert!(find_residual(&optimized), "{}", optimized.display_tree());
    }

    #[test]
    fn expression_equi_join_detected() {
        // The paper's blocking predicate x.id/1000 = ind.mi is an
        // expression equi-join, not column = column.
        let mut stats = HashMap::new();
        stats.insert("x".to_string(), 1000);
        stats.insert("ind".to_string(), 10);
        use lardb_storage::ops::ArithOp;
        let x = scan("x", &[("id", DataType::Integer)]);
        let ind = scan("ind", &[("mi", DataType::Integer)]);
        let mj = LogicalPlan::MultiJoin {
            inputs: vec![x, ind],
            predicates: vec![Expr::eq(
                Expr::arith(ArithOp::Div, Expr::col(0), Expr::lit(1000i64)),
                Expr::col(1),
            )],
        };
        let plan = LogicalPlan::project(mj, vec![(Expr::col(1), "mi".into())]).unwrap();
        let opt = Optimizer::with_defaults(&stats);
        let optimized = opt.optimize(plan).unwrap();
        fn find_inner_join(p: &LogicalPlan) -> bool {
            if let LogicalPlan::Join { kind: JoinKind::Inner, equi, .. } = p {
                return equi.len() == 1;
            }
            p.children().iter().any(|c| find_inner_join(c))
        }
        assert!(find_inner_join(&optimized), "{}", optimized.display_tree());
    }

    #[test]
    fn size_exploding_expressions_are_not_projected_early() {
        // SUM(outer_product(x, x)) over a join: the outer product blows an
        // 8·d-byte vector into an 8·d²-byte matrix, so it must be computed
        // at the aggregation, never inside the join tree (a leaf-level
        // early projection here once materialized 20 000 × 8 MB matrices).
        let mut stats = HashMap::new();
        stats.insert("x".to_string(), 1000);
        stats.insert("y".to_string(), 1000);
        let x = scan(
            "x",
            &[("id", DataType::Integer), ("v", DataType::Vector(Some(1000)))],
        );
        let y = scan("y", &[("i", DataType::Integer), ("t", DataType::Double)]);
        let mj = LogicalPlan::MultiJoin {
            inputs: vec![x, y],
            predicates: vec![Expr::eq(Expr::col(0), Expr::col(2))],
        };
        let agg = LogicalPlan::aggregate(
            mj,
            vec![],
            vec![crate::logical::AggExpr {
                func: crate::functions::AggFunc::Sum,
                arg: Some(Expr::call(
                    Builtin::OuterProduct,
                    vec![Expr::col(1), Expr::col(1)],
                )),
                name: "g".into(),
            }],
        )
        .unwrap();
        let opt = Optimizer::with_defaults(&stats);
        let optimized = opt.optimize(agg).unwrap();
        // No Project below the Aggregate may contain outer_product.
        fn below_agg_has_outer(p: &LogicalPlan, under_agg: bool) -> bool {
            if under_agg {
                if let LogicalPlan::Project { exprs, .. } = p {
                    if exprs.iter().any(|e| {
                        matches!(e, Expr::Call { func: Builtin::OuterProduct, .. })
                    }) {
                        return true;
                    }
                }
            }
            let next = under_agg || matches!(p, LogicalPlan::Aggregate { .. });
            p.children().iter().any(|c| below_agg_has_outer(c, next))
        }
        assert!(
            !below_agg_has_outer(&optimized, false),
            "{}",
            optimized.display_tree()
        );
        // The aggregate argument itself still computes the outer product.
        fn agg_has_outer(p: &LogicalPlan) -> bool {
            if let LogicalPlan::Aggregate { aggs, .. } = p {
                return aggs.iter().any(|a| {
                    matches!(
                        a.arg,
                        Some(Expr::Call { func: Builtin::OuterProduct, .. })
                    )
                });
            }
            p.children().iter().any(|c| agg_has_outer(c))
        }
        assert!(agg_has_outer(&optimized), "{}", optimized.display_tree());
    }

    #[test]
    fn estimate_scans_and_joins() {
        let mut stats = HashMap::new();
        stats.insert("t".to_string(), 500);
        let opt = Optimizer::with_defaults(&stats);
        let t = scan("t", &[("id", DataType::Integer)]);
        let e = opt.estimate(&t);
        assert_eq!(e.rows, 500.0);
        assert_eq!(e.row_bytes, 8.0);
        let unknown = scan("zzz", &[("id", DataType::Integer)]);
        assert_eq!(opt.estimate(&unknown).rows, DEFAULT_TABLE_ROWS);
    }
}
