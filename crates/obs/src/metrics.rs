//! A process-wide metrics registry: counters, gauges, and histograms.
//!
//! The registry is deliberately tiny — a name → metric map behind a mutex,
//! with the hot-path updates (counter increments, histogram observations)
//! done on `AtomicU64`s so instrumented code never blocks on the registry
//! lock. Histograms use fixed power-of-two (log-scale) buckets, which is
//! enough resolution to tell a 10 µs enqueue stall from a 10 ms one
//! without any configuration.
//!
//! Use [`global()`] for the process-wide registry that `SHOW METRICS`
//! snapshots; separate [`MetricsRegistry`] instances are handy in tests.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of log-scale histogram buckets: bucket `i` counts observations in
/// `[2^(i-1), 2^i)` (bucket 0 is `[0, 1)`), with the last bucket open-ended.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments the counter by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (e.g. open channels).
#[derive(Debug, Default)]
pub struct Gauge {
    // Stored as the f64 bit pattern so updates stay lock-free.
    bits: AtomicU64,
}

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A histogram with [`HISTOGRAM_BUCKETS`] fixed power-of-two buckets.
///
/// Observations are unitless `u64`s; callers pick the unit (the executor
/// records enqueue-block *microseconds*, the database query *milliseconds*)
/// and encode it in the metric name.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, v: u64) {
        let idx = bucket_index(v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Upper bound (exclusive) of the smallest bucket holding the requested
    /// quantile, or 0 when the histogram is empty. `q` is in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(HISTOGRAM_BUCKETS - 1)
    }
}

/// Maps an observation to its log-scale bucket index.
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        // 1 lands in bucket 1 ([1,2)), 2..4 in bucket 2, etc.
        ((64 - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Exclusive upper bound of bucket `i` (saturating for the last bucket).
fn bucket_upper(i: usize) -> u64 {
    if i >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        1u64 << i
    }
}

/// The kind of a metric, carried on every [`MetricSample`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter.
    Counter,
    /// Point-in-time gauge.
    Gauge,
    /// Log-scale-bucket histogram (snapshotted as derived samples).
    Histogram,
}

impl MetricKind {
    /// Lowercase label used in `SHOW METRICS` output.
    pub fn label(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One row of a registry snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    /// Metric name; histograms emit derived names like `x.count`, `x.p99`.
    pub name: String,
    /// Kind of the metric the sample came from.
    pub kind: MetricKind,
    /// Sample value.
    pub value: f64,
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named collection of metrics.
///
/// Accessors are get-or-create: the first caller for a name decides the
/// kind; a later request for the same name with a different kind panics,
/// which surfaces instrumentation typos immediately.
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Returns (creating if needed) the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut m = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric {name} is not a counter"),
        }
    }

    /// Returns (creating if needed) the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut m = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric {name} is not a gauge"),
        }
    }

    /// Returns (creating if needed) the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut m = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::default())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric {name} is not a histogram"),
        }
    }

    /// Snapshots every metric as a flat, name-sorted sample list.
    ///
    /// Histograms expand into `<name>.count`, `<name>.sum`, `<name>.p50`,
    /// and `<name>.p99` derived samples.
    pub fn snapshot(&self) -> Vec<MetricSample> {
        let m = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = Vec::with_capacity(m.len());
        for (name, metric) in m.iter() {
            match metric {
                Metric::Counter(c) => out.push(MetricSample {
                    name: name.clone(),
                    kind: MetricKind::Counter,
                    value: c.get() as f64,
                }),
                Metric::Gauge(g) => out.push(MetricSample {
                    name: name.clone(),
                    kind: MetricKind::Gauge,
                    value: g.get(),
                }),
                Metric::Histogram(h) => {
                    // Suffixes listed alphabetically so the whole snapshot
                    // stays name-sorted.
                    let derived = [
                        ("count", h.count() as f64),
                        ("p50", h.quantile(0.50) as f64),
                        ("p90", h.quantile(0.90) as f64),
                        ("p99", h.quantile(0.99) as f64),
                        ("sum", h.sum() as f64),
                    ];
                    for (suffix, value) in derived {
                        out.push(MetricSample {
                            name: format!("{name}.{suffix}"),
                            kind: MetricKind::Histogram,
                            value,
                        });
                    }
                }
            }
        }
        out
    }

    /// Snapshots every metric as one columnar row per metric, name-sorted.
    ///
    /// Unlike [`snapshot`](Self::snapshot) (which flattens histograms into
    /// derived `name.suffix` samples for flat JSON exports), this keeps one
    /// row per histogram with its count / sum / percentiles as separate
    /// columns — the shape the `metrics` virtual table and `SHOW METRICS`
    /// expose.
    pub fn table_snapshot(&self) -> Vec<TableSample> {
        let m = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = Vec::with_capacity(m.len());
        for (name, metric) in m.iter() {
            out.push(match metric {
                Metric::Counter(c) => TableSample::scalar(name, MetricKind::Counter, c.get() as f64),
                Metric::Gauge(g) => TableSample::scalar(name, MetricKind::Gauge, g.get()),
                Metric::Histogram(h) => TableSample {
                    name: name.clone(),
                    kind: MetricKind::Histogram,
                    value: None,
                    count: Some(h.count() as f64),
                    sum: Some(h.sum() as f64),
                    p50: Some(h.quantile(0.50) as f64),
                    p90: Some(h.quantile(0.90) as f64),
                    p99: Some(h.quantile(0.99) as f64),
                },
            });
        }
        out
    }
}

/// One columnar row of a [`MetricsRegistry::table_snapshot`].
///
/// Counters and gauges fill `value`; histograms fill the count / sum /
/// percentile columns instead (their `value` is `None`).
#[derive(Debug, Clone, PartialEq)]
pub struct TableSample {
    /// Metric name (no derived suffixes — one row per metric).
    pub name: String,
    /// The metric's kind.
    pub kind: MetricKind,
    /// Counter or gauge value; `None` for histograms.
    pub value: Option<f64>,
    /// Histogram observation count.
    pub count: Option<f64>,
    /// Histogram observation sum.
    pub sum: Option<f64>,
    /// Histogram 50th-percentile bucket upper bound.
    pub p50: Option<f64>,
    /// Histogram 90th-percentile bucket upper bound.
    pub p90: Option<f64>,
    /// Histogram 99th-percentile bucket upper bound.
    pub p99: Option<f64>,
}

impl TableSample {
    fn scalar(name: &str, kind: MetricKind, value: f64) -> TableSample {
        TableSample {
            name: name.to_string(),
            kind,
            value: Some(value),
            count: None,
            sum: None,
            p50: None,
            p90: None,
            p99: None,
        }
    }
}

/// The process-wide registry, created on first use.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let r = MetricsRegistry::new();
        r.counter("q").add(3);
        r.counter("q").inc();
        r.gauge("g").set(2.5);
        assert_eq!(r.counter("q").get(), 4);
        assert_eq!(r.gauge("g").get(), 2.5);
    }

    #[test]
    fn histogram_buckets_are_log_scale() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_quantiles() {
        let r = MetricsRegistry::new();
        let h = r.histogram("lat");
        for v in [1u64, 1, 1, 1, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1004);
        assert_eq!(h.quantile(0.5), 2); // bucket [1,2)
        assert!(h.quantile(0.99) >= 1000);
        assert_eq!(r.histogram("empty").quantile(0.5), 0);
    }

    #[test]
    fn snapshot_expands_histograms() {
        let r = MetricsRegistry::new();
        r.counter("a").inc();
        r.histogram("h").observe(7);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["a", "h.count", "h.p50", "h.p90", "h.p99", "h.sum"]);
        assert_eq!(snap[0].kind, MetricKind::Counter);
        assert_eq!(snap[0].value, 1.0);
    }

    #[test]
    fn table_snapshot_keeps_one_row_per_metric() {
        let r = MetricsRegistry::new();
        r.counter("a").inc();
        r.gauge("g").set(1.5);
        for v in [1u64, 1, 1, 1000] {
            r.histogram("h").observe(v);
        }
        let rows = r.table_snapshot();
        let names: Vec<&str> = rows.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["a", "g", "h"], "one name-sorted row per metric");
        assert_eq!(rows[0].value, Some(1.0));
        assert_eq!(rows[0].p50, None, "counters have no percentiles");
        assert_eq!(rows[1].value, Some(1.5));
        let h = &rows[2];
        assert_eq!(h.kind, MetricKind::Histogram);
        assert_eq!(h.value, None, "histograms have no scalar value");
        assert_eq!(h.count, Some(4.0));
        assert_eq!(h.sum, Some(1003.0));
        assert_eq!(h.p50, Some(2.0));
        assert!(h.p90.unwrap() >= h.p50.unwrap());
        assert!(h.p99.unwrap() >= 1000.0);
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn kind_mismatch_panics() {
        let r = MetricsRegistry::new();
        r.gauge("x");
        r.counter("x");
    }

    #[test]
    fn global_registry_is_shared() {
        global().counter("obs.test.global").inc();
        assert!(global().counter("obs.test.global").get() >= 1);
    }
}
