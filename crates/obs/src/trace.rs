//! End-to-end query tracing: trace IDs, a flight recorder, and Chrome
//! trace-event export.
//!
//! Every query gets a [`TraceId`] minted at its entry point (the server's
//! session thread, or `Database::execute` when embedded). The id travels
//! with the query through admission wait, the parse→execute lifecycle,
//! down into per-morsel pool-worker events, across exchange channels as a
//! wire frame, and into spill read/write events — each layer appending
//! [`SpanEvent`]s to the shared [`ActiveTrace`].
//!
//! Two propagation mechanisms cover every layer without threading a
//! parameter through each call site:
//!
//! * an explicit handle (`Arc<ActiveTrace>`) carried by the structures
//!   that already carry the cancel token (the executor's `Cluster`), and
//! * a **thread-local current trace** ([`current`] / [`push_current`])
//!   set by whoever owns a thread for the duration of a query — the
//!   session thread, each pool worker inside a morsel, each exchange
//!   sender/receiver thread — so leaf code (spill files, the memory
//!   governor) can attribute events with no API change.
//!
//! Completed traces land in the process-wide [`FlightRecorder`]: a
//! bounded ring buffer (oldest evicted first) plus a live map of
//! in-flight traces that backs `SHOW QUERIES`. Traces export as Chrome
//! trace-event JSON (the `{"traceEvents": [...]}` format loadable in
//! Perfetto or `chrome://tracing`), with one `tid` per OS thread so the
//! viewer lays worker spans out in lanes.
//!
//! Tracing is cheap enough to leave on: a disabled or unsampled query
//! pays one atomic load and carries `None` everywhere. Per-trace event
//! storage is capped ([`MAX_EVENTS_PER_TRACE`]); overflow increments a
//! drop counter instead of growing without bound.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::json::{array, escape, ObjectWriter};

/// Most events one trace will retain; further events are counted as
/// dropped. Big enough for thousands of morsel spans, small enough that a
/// pathological query cannot OOM the recorder.
pub const MAX_EVENTS_PER_TRACE: usize = 8192;

/// Default completed-trace ring capacity (overridable via
/// `LARDB_TRACE_CAPACITY` or [`FlightRecorder::set_capacity`]).
pub const DEFAULT_RING_CAPACITY: usize = 256;

// ---------------------------------------------------------------- TraceId

/// A per-query trace identifier, nonzero, printed as 16 hex digits.
///
/// Ids are minted from a process-wide counter scrambled through
/// SplitMix64 so they look unique across restarts of the same test
/// binary without needing a clock or an RNG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

impl TraceId {
    fn mint() -> TraceId {
        static NEXT: AtomicU64 = AtomicU64::new(1);
        let seq = NEXT.fetch_add(1, Ordering::Relaxed);
        // SplitMix64 finalizer: bijective on u64, so distinct seqs give
        // distinct ids; 0 maps to 0 which seq≥1 never is... except that
        // the mix *can* produce 0 for some nonzero input, so guard it.
        let mut z = seq.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        TraceId(if z == 0 { 1 } else { z })
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

// ------------------------------------------------------------ thread ids

/// Small dense per-OS-thread integer used as the Chrome `tid`, plus a
/// registry of thread names so the exporter can emit `thread_name`
/// metadata events.
fn thread_names() -> &'static Mutex<BTreeMap<u64, String>> {
    static NAMES: OnceLock<Mutex<BTreeMap<u64, String>>> = OnceLock::new();
    NAMES.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// This thread's stable trace `tid` (assigned on first use, name
/// registered from `std::thread::current().name()`).
pub fn thread_tid() -> u64 {
    thread_local! {
        static TID: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
    }
    TID.with(|c| {
        let cached = c.get();
        if cached != 0 {
            return cached;
        }
        static NEXT_TID: AtomicU64 = AtomicU64::new(1);
        let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        c.set(tid);
        let name = std::thread::current()
            .name()
            .map(str::to_string)
            .unwrap_or_else(|| format!("thread-{tid}"));
        if let Ok(mut names) = thread_names().lock() {
            names.insert(tid, name);
        }
        tid
    })
}

// -------------------------------------------------------------- events

/// One completed span or instant inside a trace. Times are microseconds
/// relative to the trace's start.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Span name, e.g. `parse`, `morsel`, `exchange.recv`, `spill.write`.
    pub name: &'static str,
    /// Chrome trace category (`query`, `worker`, `exchange`, `spill`, …).
    pub cat: &'static str,
    /// Recording thread's [`thread_tid`].
    pub tid: u64,
    /// Start, microseconds since the trace began.
    pub ts_us: u64,
    /// Duration in microseconds (0 for instant events).
    pub dur_us: u64,
    /// Extra key/value detail shown in the viewer's args pane.
    pub args: Vec<(&'static str, String)>,
}

/// Query lifecycle state, surfaced by `SHOW QUERIES`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceState {
    /// Minted, waiting in the admission queue.
    Queued,
    /// Admitted and executing.
    Running,
    /// Finished (only seen on completed traces).
    Done,
}

impl TraceState {
    /// Lowercase label for introspection tables.
    pub fn name(self) -> &'static str {
        match self {
            TraceState::Queued => "queued",
            TraceState::Running => "running",
            TraceState::Done => "done",
        }
    }
}

const STATE_QUEUED: u8 = 0;
const STATE_RUNNING: u8 = 1;
const STATE_DONE: u8 = 2;

/// A query's in-flight trace: an append-only event log plus live
/// counters. Shared (`Arc`) between the session thread, pool workers,
/// exchange threads, and the flight recorder's active map.
#[derive(Debug)]
pub struct ActiveTrace {
    id: TraceId,
    sql: String,
    tenant: Mutex<String>,
    query_id: AtomicU64,
    state: AtomicU8,
    started: Instant,
    events: Mutex<Vec<SpanEvent>>,
    dropped: AtomicU64,
    rows: AtomicU64,
    queue_wait_us: AtomicU64,
    spill_bytes_written: AtomicU64,
    spill_bytes_read: AtomicU64,
    reserved_bytes: AtomicI64,
}

impl ActiveTrace {
    fn new(id: TraceId, sql: &str, tenant: &str) -> ActiveTrace {
        ActiveTrace {
            id,
            sql: sql.to_string(),
            tenant: Mutex::new(tenant.to_string()),
            query_id: AtomicU64::new(0),
            state: AtomicU8::new(STATE_QUEUED),
            started: Instant::now(),
            events: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
            rows: AtomicU64::new(0),
            queue_wait_us: AtomicU64::new(0),
            spill_bytes_written: AtomicU64::new(0),
            spill_bytes_read: AtomicU64::new(0),
            reserved_bytes: AtomicI64::new(0),
        }
    }

    /// The trace id.
    pub fn id(&self) -> TraceId {
        self.id
    }

    /// The SQL text this trace covers.
    pub fn sql(&self) -> &str {
        &self.sql
    }

    /// The tenant label (e.g. the server tenant, or `embedded`).
    pub fn tenant(&self) -> String {
        self.tenant.lock().map(|t| t.clone()).unwrap_or_default()
    }

    /// Re-labels the tenant (the embedded path mints before it knows).
    pub fn set_tenant(&self, tenant: &str) {
        if let Ok(mut t) = self.tenant.lock() {
            *t = tenant.to_string();
        }
    }

    /// The session-registry query id, 0 until assigned.
    pub fn query_id(&self) -> u64 {
        self.query_id.load(Ordering::Relaxed)
    }

    /// Associates the session registry's query id with this trace.
    pub fn set_query_id(&self, id: u64) {
        self.query_id.store(id, Ordering::Relaxed);
    }

    /// Current lifecycle state.
    pub fn state(&self) -> TraceState {
        match self.state.load(Ordering::Relaxed) {
            STATE_QUEUED => TraceState::Queued,
            STATE_RUNNING => TraceState::Running,
            _ => TraceState::Done,
        }
    }

    /// Marks the query admitted and running.
    pub fn set_running(&self) {
        self.state.store(STATE_RUNNING, Ordering::Relaxed);
    }

    /// Milliseconds since the trace was minted.
    pub fn elapsed_ms(&self) -> f64 {
        self.started.elapsed().as_secs_f64() * 1e3
    }

    /// Records time spent waiting in the admission queue.
    pub fn set_queue_wait_us(&self, us: u64) {
        self.queue_wait_us.store(us, Ordering::Relaxed);
    }

    /// Admission queue wait in milliseconds.
    pub fn queue_wait_ms(&self) -> f64 {
        self.queue_wait_us.load(Ordering::Relaxed) as f64 / 1e3
    }

    /// Adds produced rows to the live row counter.
    pub fn add_rows(&self, n: u64) {
        self.rows.fetch_add(n, Ordering::Relaxed);
    }

    /// Rows produced so far.
    pub fn rows(&self) -> u64 {
        self.rows.load(Ordering::Relaxed)
    }

    /// Credits spilled bytes (write side).
    pub fn add_spill_written(&self, bytes: u64) {
        self.spill_bytes_written.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Credits spilled bytes (read side).
    pub fn add_spill_read(&self, bytes: u64) {
        self.spill_bytes_read.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Total spill traffic (written + read) so far.
    pub fn spill_bytes(&self) -> u64 {
        self.spill_bytes_written.load(Ordering::Relaxed)
            + self.spill_bytes_read.load(Ordering::Relaxed)
    }

    /// Adjusts the live reserved-memory attribution (signed: reservations
    /// add, releases subtract — possibly from a different thread).
    pub fn add_reserved(&self, delta: i64) {
        self.reserved_bytes.fetch_add(delta, Ordering::Relaxed);
    }

    /// Bytes of governor memory currently attributed to this query.
    pub fn reserved_bytes(&self) -> i64 {
        self.reserved_bytes.load(Ordering::Relaxed)
    }

    /// Appends one completed event. `start` must come from the same clock
    /// (an `Instant` captured after the trace was minted).
    pub fn record(
        &self,
        name: &'static str,
        cat: &'static str,
        start: Instant,
        dur: std::time::Duration,
        args: Vec<(&'static str, String)>,
    ) {
        let ts_us = start
            .checked_duration_since(self.started)
            .unwrap_or_default()
            .as_micros() as u64;
        let ev = SpanEvent {
            name,
            cat,
            tid: thread_tid(),
            ts_us,
            dur_us: dur.as_micros() as u64,
            args,
        };
        if let Ok(mut events) = self.events.lock() {
            if events.len() < MAX_EVENTS_PER_TRACE {
                events.push(ev);
                return;
            }
        }
        self.dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Opens an RAII span recorded when the guard drops.
    pub fn span(self: &Arc<Self>, name: &'static str, cat: &'static str) -> TraceSpan {
        TraceSpan {
            trace: Arc::clone(self),
            name,
            cat,
            start: Instant::now(),
            args: Vec::new(),
        }
    }

    /// Snapshot of the events recorded so far.
    pub fn events(&self) -> Vec<SpanEvent> {
        self.events.lock().map(|e| e.clone()).unwrap_or_default()
    }
}

/// RAII span: records a [`SpanEvent`] on the owning trace when dropped.
#[derive(Debug)]
pub struct TraceSpan {
    trace: Arc<ActiveTrace>,
    name: &'static str,
    cat: &'static str,
    start: Instant,
    args: Vec<(&'static str, String)>,
}

impl TraceSpan {
    /// Attaches a key/value argument shown in the trace viewer.
    pub fn arg(mut self, key: &'static str, value: impl Into<String>) -> Self {
        self.args.push((key, value.into()));
        self
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        self.trace.record(
            self.name,
            self.cat,
            self.start,
            self.start.elapsed(),
            std::mem::take(&mut self.args),
        );
    }
}

// --------------------------------------------------- thread-local current

thread_local! {
    static CURRENT: std::cell::RefCell<Option<Arc<ActiveTrace>>> =
        const { std::cell::RefCell::new(None) };
}

/// The trace currently attributed to this thread, if any.
pub fn current() -> Option<Arc<ActiveTrace>> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Sets the thread's current trace for the guard's lifetime, restoring
/// the previous value on drop (spans nest correctly across re-entrant
/// executions, e.g. a virtual-table refresh inside a query).
pub fn push_current(trace: Option<Arc<ActiveTrace>>) -> CurrentGuard {
    let prev = CURRENT.with(|c| c.replace(trace));
    CurrentGuard { prev }
}

/// Restores the previously-current trace when dropped.
#[derive(Debug)]
pub struct CurrentGuard {
    prev: Option<Arc<ActiveTrace>>,
}

impl Drop for CurrentGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CURRENT.with(|c| *c.borrow_mut() = prev);
    }
}

// ------------------------------------------------------- completed traces

/// An immutable, finished trace held by the flight recorder's ring.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedTrace {
    /// The trace id.
    pub id: TraceId,
    /// The SQL text.
    pub sql: String,
    /// Tenant label.
    pub tenant: String,
    /// Session-registry query id (0 if never assigned).
    pub query_id: u64,
    /// End-to-end wall time, microseconds.
    pub dur_us: u64,
    /// Admission queue wait, microseconds.
    pub queue_wait_us: u64,
    /// Rows produced.
    pub rows: u64,
    /// Spill bytes written.
    pub spill_bytes_written: u64,
    /// Spill bytes read.
    pub spill_bytes_read: u64,
    /// Events dropped past [`MAX_EVENTS_PER_TRACE`].
    pub dropped_events: u64,
    /// Error message if the query failed.
    pub error: Option<String>,
    /// The recorded spans.
    pub events: Vec<SpanEvent>,
}

impl CompletedTrace {
    /// Serializes the trace as Chrome trace-event JSON — a single object
    /// with a `traceEvents` array of `ph:"X"` complete events plus
    /// `ph:"M"` thread-name metadata, loadable in Perfetto or
    /// `chrome://tracing`.
    pub fn to_chrome_json(&self) -> String {
        let pid = u64::from(std::process::id());
        let mut items: Vec<String> = Vec::with_capacity(self.events.len() + 8);

        // One umbrella event spanning the whole query on pseudo-tid 0.
        let mut top = ObjectWriter::new();
        top.string("name", "query")
            .string("cat", "query")
            .string("ph", "X")
            .integer("ts", 0)
            .integer("dur", self.dur_us)
            .integer("pid", pid)
            .integer("tid", 0);
        let mut top_args = ObjectWriter::new();
        top_args
            .string("sql", &self.sql)
            .string("trace_id", &self.id.to_string())
            .string("tenant", &self.tenant)
            .integer("query_id", self.query_id)
            .integer("rows", self.rows)
            .integer("queue_wait_us", self.queue_wait_us)
            .integer("spill_bytes_written", self.spill_bytes_written)
            .integer("spill_bytes_read", self.spill_bytes_read)
            .integer("dropped_events", self.dropped_events);
        if let Some(err) = &self.error {
            top_args.string("error", err);
        }
        let top_args = top_args.finish();
        items.push({
            let mut o = top;
            o.raw("args", &top_args);
            o.finish()
        });

        let mut tids_seen = std::collections::BTreeSet::new();
        tids_seen.insert(0u64);
        for ev in &self.events {
            let mut o = ObjectWriter::new();
            o.string("name", ev.name)
                .string("cat", ev.cat)
                .string("ph", "X")
                .integer("ts", ev.ts_us)
                .integer("dur", ev.dur_us)
                .integer("pid", pid)
                .integer("tid", ev.tid);
            if !ev.args.is_empty() {
                let mut a = ObjectWriter::new();
                for (k, v) in &ev.args {
                    a.string(k, v);
                }
                let a = a.finish();
                o.raw("args", &a);
            }
            items.push(o.finish());
            tids_seen.insert(ev.tid);
        }

        // Thread-name metadata so the viewer labels each lane.
        let names = thread_names().lock().map(|n| n.clone()).unwrap_or_default();
        for tid in tids_seen {
            let name = if tid == 0 {
                "query".to_string()
            } else {
                names.get(&tid).cloned().unwrap_or_else(|| format!("thread-{tid}"))
            };
            items.push(format!(
                "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": {pid}, \
                 \"tid\": {tid}, \"args\": {{\"name\": \"{}\"}}}}",
                escape(&name)
            ));
        }

        let mut doc = ObjectWriter::new();
        let events = array(items);
        doc.raw("traceEvents", &events)
            .string("displayTimeUnit", "ms");
        doc.finish()
    }

    /// Wall times of the named spans, for quick assertions.
    pub fn span_names(&self) -> Vec<&'static str> {
        self.events.iter().map(|e| e.name).collect()
    }

    /// Whether any recorded event has the given name.
    pub fn has_span(&self, name: &str) -> bool {
        self.events.iter().any(|e| e.name == name)
    }
}

// ---------------------------------------------------------- the recorder

/// The process-wide trace registry: in-flight traces (backing
/// `SHOW QUERIES`) plus a bounded ring of completed ones (backing
/// `EXPLAIN TRACE`, `\trace`, and `--trace-dir`).
#[derive(Debug)]
pub struct FlightRecorder {
    enabled: AtomicBool,
    sample_every: AtomicU64,
    seq: AtomicU64,
    capacity: AtomicUsize,
    active: Mutex<BTreeMap<u64, Arc<ActiveTrace>>>,
    completed: Mutex<VecDeque<Arc<CompletedTrace>>>,
}

impl FlightRecorder {
    fn new() -> FlightRecorder {
        let capacity = std::env::var("LARDB_TRACE_CAPACITY")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_RING_CAPACITY);
        FlightRecorder {
            enabled: AtomicBool::new(true),
            sample_every: AtomicU64::new(1),
            seq: AtomicU64::new(0),
            capacity: AtomicUsize::new(capacity),
            active: Mutex::new(BTreeMap::new()),
            completed: Mutex::new(VecDeque::new()),
        }
    }

    /// Turns tracing on/off process-wide.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether tracing is currently enabled.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Trace 1 of every `n` queries (`1` = every query, the default).
    /// `0` is treated as `1`.
    pub fn set_sample_every(&self, n: u64) {
        self.sample_every.store(n.max(1), Ordering::Relaxed);
    }

    /// Current sampling divisor.
    pub fn sample_every(&self) -> u64 {
        self.sample_every.load(Ordering::Relaxed)
    }

    /// Resizes the completed-trace ring, evicting oldest entries if the
    /// new capacity is smaller.
    pub fn set_capacity(&self, n: usize) {
        let n = n.max(1);
        self.capacity.store(n, Ordering::Relaxed);
        if let Ok(mut ring) = self.completed.lock() {
            while ring.len() > n {
                ring.pop_front();
            }
        }
    }

    /// Current ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity.load(Ordering::Relaxed)
    }

    /// Mints a trace for `sql` if tracing is enabled and this query is
    /// sampled; `None` otherwise (the query runs untraced).
    pub fn start(&self, sql: &str, tenant: &str) -> Option<Arc<ActiveTrace>> {
        if !self.enabled() {
            return None;
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        if !seq.is_multiple_of(self.sample_every()) {
            return None;
        }
        Some(self.start_forced(sql, tenant))
    }

    /// Mints a trace unconditionally (EXPLAIN TRACE, tests).
    pub fn start_forced(&self, sql: &str, tenant: &str) -> Arc<ActiveTrace> {
        let trace = Arc::new(ActiveTrace::new(TraceId::mint(), sql, tenant));
        if let Ok(mut active) = self.active.lock() {
            active.insert(trace.id().0, Arc::clone(&trace));
        }
        trace
    }

    /// Looks up an in-flight trace by raw id (exchange receivers resolve
    /// the wire-propagated id through this).
    pub fn lookup(&self, raw_id: u64) -> Option<Arc<ActiveTrace>> {
        self.active.lock().ok()?.get(&raw_id).cloned()
    }

    /// Snapshot of all in-flight traces, ordered by id.
    pub fn active_snapshot(&self) -> Vec<Arc<ActiveTrace>> {
        self.active
            .lock()
            .map(|a| a.values().cloned().collect())
            .unwrap_or_default()
    }

    /// Completes a trace: removes it from the active map, freezes its
    /// events, pushes it into the ring (evicting the oldest past
    /// capacity), and returns the frozen record.
    pub fn finish(&self, trace: &Arc<ActiveTrace>, error: Option<&str>) -> Arc<CompletedTrace> {
        trace.state.store(STATE_DONE, Ordering::Relaxed);
        if let Ok(mut active) = self.active.lock() {
            active.remove(&trace.id().0);
        }
        let done = Arc::new(CompletedTrace {
            id: trace.id(),
            sql: trace.sql.clone(),
            tenant: trace.tenant(),
            query_id: trace.query_id(),
            dur_us: trace.started.elapsed().as_micros() as u64,
            queue_wait_us: trace.queue_wait_us.load(Ordering::Relaxed),
            rows: trace.rows(),
            spill_bytes_written: trace.spill_bytes_written.load(Ordering::Relaxed),
            spill_bytes_read: trace.spill_bytes_read.load(Ordering::Relaxed),
            dropped_events: trace.dropped.load(Ordering::Relaxed),
            error: error.map(str::to_string),
            events: trace.events(),
        });
        if let Ok(mut ring) = self.completed.lock() {
            ring.push_back(Arc::clone(&done));
            let cap = self.capacity();
            while ring.len() > cap {
                ring.pop_front();
            }
        }
        done
    }

    /// Snapshot of the completed-trace ring, oldest first.
    pub fn completed_snapshot(&self) -> Vec<Arc<CompletedTrace>> {
        self.completed
            .lock()
            .map(|r| r.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// The most recently completed trace.
    pub fn last(&self) -> Option<Arc<CompletedTrace>> {
        self.completed.lock().ok()?.back().cloned()
    }

    /// Finds a completed trace by id.
    pub fn find(&self, id: TraceId) -> Option<Arc<CompletedTrace>> {
        self.completed
            .lock()
            .ok()?
            .iter()
            .rev()
            .find(|t| t.id == id)
            .cloned()
    }

    /// Number of completed traces currently retained.
    pub fn completed_len(&self) -> usize {
        self.completed.lock().map(|r| r.len()).unwrap_or(0)
    }
}

/// The process-wide flight recorder.
pub fn recorder() -> &'static FlightRecorder {
    static RECORDER: OnceLock<FlightRecorder> = OnceLock::new();
    RECORDER.get_or_init(FlightRecorder::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_unique_nonzero_hex() {
        let a = TraceId::mint();
        let b = TraceId::mint();
        assert_ne!(a, b);
        assert_ne!(a.0, 0);
        let s = a.to_string();
        assert_eq!(s.len(), 16);
        assert!(s.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn span_guard_records_event_with_args() {
        let t = recorder().start_forced("SELECT 1", "test");
        {
            let _s = t.span("parse", "query").arg("detail", "1 stmt");
        }
        let events = t.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "parse");
        assert_eq!(events[0].cat, "query");
        assert_eq!(events[0].args, vec![("detail", "1 stmt".to_string())]);
        recorder().finish(&t, None);
    }

    #[test]
    fn current_trace_nests_and_restores() {
        assert!(current().is_none());
        let t = recorder().start_forced("SELECT 1", "test");
        {
            let _g = push_current(Some(Arc::clone(&t)));
            assert_eq!(current().unwrap().id(), t.id());
            {
                let _inner = push_current(None);
                assert!(current().is_none());
            }
            assert_eq!(current().unwrap().id(), t.id());
        }
        assert!(current().is_none());
        recorder().finish(&t, None);
    }

    #[test]
    fn ring_buffer_bound_holds_under_churn() {
        let r = FlightRecorder::new();
        r.set_capacity(4);
        let mut ids = Vec::new();
        for i in 0..20 {
            let t = r.start_forced(&format!("SELECT {i}"), "churn");
            ids.push(t.id());
            r.finish(&t, None);
            assert!(r.completed_len() <= 4, "ring exceeded capacity");
        }
        // Newest 4 retained, oldest evicted.
        let kept: Vec<TraceId> = r.completed_snapshot().iter().map(|t| t.id).collect();
        assert_eq!(kept, ids[16..].to_vec());
        assert!(r.find(ids[0]).is_none());
        assert!(r.find(ids[19]).is_some());
    }

    #[test]
    fn sampling_disables_and_divides() {
        let r = FlightRecorder::new();
        r.set_enabled(false);
        assert!(r.start("SELECT 1", "t").is_none());
        r.set_enabled(true);
        r.set_sample_every(4);
        let traced = (0..16).filter(|_| r.start("SELECT 1", "t").is_some()).count();
        assert_eq!(traced, 4);
        r.set_sample_every(1);
        // Forced start ignores sampling entirely.
        r.set_enabled(false);
        let t = r.start_forced("SELECT 1", "t");
        r.finish(&t, None);
        assert!(r.find(t.id()).is_some());
    }

    #[test]
    fn lookup_resolves_only_in_flight_traces() {
        let r = FlightRecorder::new();
        let t = r.start_forced("SELECT 1", "t");
        assert!(r.lookup(t.id().0).is_some());
        r.finish(&t, None);
        assert!(r.lookup(t.id().0).is_none(), "finished trace left active map");
    }

    #[test]
    fn event_cap_counts_drops() {
        let t = Arc::new(ActiveTrace::new(TraceId::mint(), "q", "t"));
        let now = Instant::now();
        for _ in 0..(MAX_EVENTS_PER_TRACE + 10) {
            t.record("e", "c", now, std::time::Duration::ZERO, Vec::new());
        }
        assert_eq!(t.events().len(), MAX_EVENTS_PER_TRACE);
        assert_eq!(t.dropped.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn chrome_json_shape() {
        let t = recorder().start_forced("SELECT \"x\"", "acme");
        t.set_query_id(7);
        t.add_rows(3);
        {
            let _s = t.span("execute", "query");
        }
        let done = recorder().finish(&t, None);
        let json = done.to_chrome_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\": ["));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"ph\": \"M\""));
        assert!(json.contains("\"name\": \"execute\""));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains(&format!("\"trace_id\": \"{}\"", done.id)));
        assert!(json.contains("\"sql\": \"SELECT \\\"x\\\"\""));
        assert!(json.contains("\"rows\": 3"));
    }

    #[test]
    fn failed_queries_keep_their_error() {
        let r = FlightRecorder::new();
        let t = r.start_forced("SELECT nope", "t");
        let done = r.finish(&t, Some("unknown column nope"));
        assert_eq!(done.error.as_deref(), Some("unknown column nope"));
        assert!(done.to_chrome_json().contains("unknown column nope"));
    }
}
