//! Estimate-vs-actual query profiles.
//!
//! A [`QueryProfile`] joins the optimizer's cost-model estimates (rows,
//! bytes per operator) with the executor's measured actuals and the
//! lifecycle stage timings, yielding a per-operator *q-error* — the
//! standard plan-quality metric `max(est/actual, actual/est)`, ≥ 1, where
//! 1 means the estimate was exact. Profiles serialize to JSON (via the
//! crate's hand-rolled [`crate::json`] writer) for the bench harness's
//! `--profile-json` export.

use crate::json::{array, ObjectWriter};
use crate::span::{SpanRecord, Stage};

/// q-error of an estimate against an actual: `max(est/act, act/est)`.
///
/// Both sides are clamped to ≥ 1 before dividing so zero-row operators
/// (an empty filter result, say) produce a finite, comparable value
/// instead of a division by zero.
pub fn q_error(est: f64, actual: f64) -> f64 {
    let e = est.max(1.0);
    let a = actual.max(1.0);
    (e / a).max(a / e)
}

/// Wall-clock timing of one lifecycle stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageTiming {
    /// Stage name (`parse`, `bind`, `optimize`, `plan`, `execute`).
    pub stage: String,
    /// Duration in milliseconds.
    pub wall_ms: f64,
}

/// Estimate-vs-actual record for one physical operator.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatorProfile {
    /// Physical plan node id (stable within one plan).
    pub id: usize,
    /// Operator label, e.g. `HashJoin(t.j = tt.i)`.
    pub label: String,
    /// Optimizer-estimated output rows.
    pub est_rows: f64,
    /// Measured output rows.
    pub actual_rows: f64,
    /// Optimizer-estimated output bytes.
    pub est_bytes: f64,
    /// Measured (or estimated, in pointer-transport mode) output bytes.
    pub actual_bytes: f64,
    /// Measured operator wall time in milliseconds.
    pub wall_ms: f64,
}

impl OperatorProfile {
    /// q-error of the row estimate.
    pub fn q_error_rows(&self) -> f64 {
        q_error(self.est_rows, self.actual_rows)
    }

    /// q-error of the byte estimate.
    pub fn q_error_bytes(&self) -> f64 {
        q_error(self.est_bytes, self.actual_bytes)
    }

    fn to_json(&self) -> String {
        let mut o = ObjectWriter::new();
        o.integer("id", self.id as u64)
            .string("label", &self.label)
            .number("est_rows", self.est_rows)
            .number("actual_rows", self.actual_rows)
            .number("est_bytes", self.est_bytes)
            .number("actual_bytes", self.actual_bytes)
            .number("q_error_rows", self.q_error_rows())
            .number("q_error_bytes", self.q_error_bytes())
            .number("wall_ms", self.wall_ms);
        o.finish()
    }
}

/// The full observability record of one executed query (or, after
/// [`merge`](QueryProfile::merge), a batch of queries).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryProfile {
    /// The SQL text (or a descriptive label for merged profiles).
    pub query: String,
    /// Lifecycle stage timings, in pipeline order.
    pub stages: Vec<StageTiming>,
    /// Per-operator estimate-vs-actual records.
    pub operators: Vec<OperatorProfile>,
}

impl QueryProfile {
    /// An empty profile for `query`, pre-seeded with all five lifecycle
    /// stages at zero so exports always contain the complete pipeline.
    pub fn new(query: impl Into<String>) -> Self {
        QueryProfile {
            query: query.into(),
            stages: Stage::LIFECYCLE
                .iter()
                .map(|s| StageTiming {
                    stage: s.name().to_string(),
                    wall_ms: 0.0,
                })
                .collect(),
            operators: Vec::new(),
        }
    }

    /// Adds `wall_ms` to the named stage (creating it if absent — worker
    /// spans, say, are not part of the pre-seeded five).
    pub fn add_stage(&mut self, stage: &str, wall_ms: f64) {
        match self.stages.iter_mut().find(|s| s.stage == stage) {
            Some(s) => s.wall_ms += wall_ms,
            None => self.stages.push(StageTiming {
                stage: stage.to_string(),
                wall_ms,
            }),
        }
    }

    /// Folds a batch of finished spans into the stage timings.
    pub fn add_spans(&mut self, spans: &[SpanRecord]) {
        for span in spans {
            self.add_stage(span.stage.name(), span.wall_ms);
        }
    }

    /// Wall time of the named stage, if present.
    pub fn stage_ms(&self, stage: &str) -> Option<f64> {
        self.stages.iter().find(|s| s.stage == stage).map(|s| s.wall_ms)
    }

    /// Largest per-operator row q-error, or `None` with no operators.
    pub fn max_q_error_rows(&self) -> Option<f64> {
        self.operators
            .iter()
            .map(|o| o.q_error_rows())
            .fold(None, |m, q| Some(m.map_or(q, |m: f64| m.max(q))))
    }

    /// Accumulates another profile into this one: stage timings add up,
    /// operator records append. Used by the bench harness to build one
    /// profile per benchmark out of its constituent queries.
    pub fn merge(&mut self, other: &QueryProfile) {
        for s in &other.stages {
            self.add_stage(&s.stage, s.wall_ms);
        }
        self.operators.extend(other.operators.iter().cloned());
    }

    /// Serializes the profile to a JSON object string.
    pub fn to_json(&self) -> String {
        let stages = array(self.stages.iter().map(|s| {
            let mut o = ObjectWriter::new();
            o.string("stage", &s.stage).number("wall_ms", s.wall_ms);
            o.finish()
        }));
        let operators = array(self.operators.iter().map(|o| o.to_json()));
        let mut o = ObjectWriter::new();
        o.string("query", &self.query)
            .raw("stages", &stages)
            .raw("operators", &operators);
        o.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_error_basics() {
        assert_eq!(q_error(10.0, 10.0), 1.0);
        assert_eq!(q_error(100.0, 10.0), 10.0);
        assert_eq!(q_error(10.0, 100.0), 10.0);
        // Zero actuals are clamped, not divided by.
        assert_eq!(q_error(8.0, 0.0), 8.0);
        assert!(q_error(0.0, 0.0).is_finite());
    }

    #[test]
    fn new_profile_contains_all_lifecycle_stages() {
        let p = QueryProfile::new("SELECT 1");
        let stages: Vec<&str> = p.stages.iter().map(|s| s.stage.as_str()).collect();
        assert_eq!(stages, ["parse", "bind", "optimize", "plan", "execute"]);
    }

    #[test]
    fn stage_accumulation_and_merge() {
        let mut a = QueryProfile::new("a");
        a.add_stage("execute", 2.0);
        a.add_stage("worker", 1.0);
        let mut b = QueryProfile::new("b");
        b.add_stage("execute", 3.0);
        b.operators.push(OperatorProfile {
            id: 0,
            label: "TableScan(t)".into(),
            est_rows: 10.0,
            actual_rows: 20.0,
            est_bytes: 80.0,
            actual_bytes: 160.0,
            wall_ms: 0.5,
        });
        a.merge(&b);
        assert_eq!(a.stage_ms("execute"), Some(5.0));
        assert_eq!(a.stage_ms("worker"), Some(1.0));
        assert_eq!(a.operators.len(), 1);
        assert_eq!(a.max_q_error_rows(), Some(2.0));
    }

    #[test]
    fn json_shape() {
        let mut p = QueryProfile::new("SELECT \"x\"");
        p.operators.push(OperatorProfile {
            id: 3,
            label: "HashJoin".into(),
            est_rows: 1.0,
            actual_rows: 1.0,
            est_bytes: 8.0,
            actual_bytes: 8.0,
            wall_ms: 0.25,
        });
        let json = p.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"query\": \"SELECT \\\"x\\\"\""));
        assert!(json.contains("\"stage\": \"parse\""));
        assert!(json.contains("\"stage\": \"execute\""));
        assert!(json.contains("\"q_error_rows\": 1.000000"));
        assert!(json.contains("\"operators\": [{\"id\": 3"));
    }
}
