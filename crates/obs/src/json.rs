//! A minimal hand-rolled JSON writer.
//!
//! The workspace is offline and std-only (no serde), so the profile and
//! metrics exports build their JSON through this tiny helper instead.
//! Only what the exporters need: objects, arrays, strings, and numbers
//! that are always finite-or-null.

/// Escapes a string for use inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a finite `f64` as a JSON number; non-finite values (q-error of
/// a zero-row estimate, say) become `null` so the output always parses.
pub fn number(v: f64) -> String {
    if v.is_finite() {
        // Trim to a stable short form; f64 round-trips are overkill here.
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

/// Incremental writer for one JSON object: `{"k": v, …}`.
#[derive(Debug, Default)]
pub struct ObjectWriter {
    fields: Vec<String>,
}

impl ObjectWriter {
    /// An empty object.
    pub fn new() -> Self {
        ObjectWriter::default()
    }

    /// Adds a string field.
    pub fn string(&mut self, key: &str, value: &str) -> &mut Self {
        self.fields.push(format!("\"{}\": \"{}\"", escape(key), escape(value)));
        self
    }

    /// Adds a numeric field (`null` when non-finite).
    pub fn number(&mut self, key: &str, value: f64) -> &mut Self {
        self.fields.push(format!("\"{}\": {}", escape(key), number(value)));
        self
    }

    /// Adds an integer field.
    pub fn integer(&mut self, key: &str, value: u64) -> &mut Self {
        self.fields.push(format!("\"{}\": {value}", escape(key)));
        self
    }

    /// Adds a pre-rendered JSON value (object, array, …) verbatim.
    pub fn raw(&mut self, key: &str, value: &str) -> &mut Self {
        self.fields.push(format!("\"{}\": {value}", escape(key)));
        self
    }

    /// Finishes the object.
    pub fn finish(&self) -> String {
        format!("{{{}}}", self.fields.join(", "))
    }
}

/// Renders a sequence of pre-rendered JSON values as an array.
pub fn array(items: impl IntoIterator<Item = String>) -> String {
    let items: Vec<String> = items.into_iter().collect();
    format!("[{}]", items.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn escaping_every_control_char() {
        // All of U+0000..U+001F must come out escaped — either as a short
        // form (\n, \r, \t) or as \u00XX — never as a raw control byte.
        for c in (0u32..0x20).map(|u| char::from_u32(u).unwrap()) {
            let out = escape(&c.to_string());
            assert!(out.starts_with('\\'), "U+{:04X} not escaped: {out:?}", c as u32);
            assert!(
                out.chars().all(|o| (o as u32) >= 0x20),
                "U+{:04X} leaked a raw control char",
                c as u32
            );
        }
        assert_eq!(escape("\u{0}"), "\\u0000");
        assert_eq!(escape("\u{1f}"), "\\u001f");
    }

    #[test]
    fn escaping_quotes_and_backslash_runs() {
        assert_eq!(escape("\"\""), "\\\"\\\"");
        assert_eq!(escape("\\\\"), "\\\\\\\\");
        // A backslash before a quote must stay two independent escapes.
        assert_eq!(escape("\\\""), "\\\\\\\"");
        assert_eq!(escape("C:\\dir\\\"name\""), "C:\\\\dir\\\\\\\"name\\\"");
    }

    #[test]
    fn escaping_passes_non_ascii_through() {
        // Multi-byte UTF-8 (incl. astral-plane chars) needs no escaping;
        // the output is a UTF-8 JSON document, not an ASCII one.
        for s in ["héllo", "βeta", "☃", "𝄞 clef", "—", "日本語"] {
            assert_eq!(escape(s), s, "non-ASCII mangled");
        }
        // DEL (0x7F) is not a JSON control char; it passes through.
        assert_eq!(escape("\u{7f}"), "\u{7f}");
    }

    #[test]
    fn numbers() {
        assert_eq!(number(1.5), "1.500000");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }

    #[test]
    fn objects_and_arrays() {
        let mut o = ObjectWriter::new();
        o.string("name", "x").integer("n", 3).raw("xs", &array(["1".into(), "2".into()]));
        assert_eq!(o.finish(), "{\"name\": \"x\", \"n\": 3, \"xs\": [1, 2]}");
    }
}
