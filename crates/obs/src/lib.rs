//! # lardb-obs — observability primitives for lardb
//!
//! The paper's evaluation stands on two kinds of measurement: per-operation
//! runtime breakdowns (Figure 4 splits the Gram computation into join vs
//! aggregation time) and the cost model's byte-size estimates for every LA
//! intermediate (§4.1's 80 GB vs 80 MB plans). This crate provides the
//! instrumentation that keeps both honest, with zero external dependencies:
//!
//! * [`span`] — structured spans over the query lifecycle
//!   (parse → bind → optimize → plan → execute) via a [`TraceSink`]
//!   collector, cheap enough to leave always-on;
//! * [`metrics`] — a process-wide [`MetricsRegistry`] of counters, gauges
//!   and log-scale-bucket histograms, fed by the executor and the
//!   `lardb-net` transports and queryable through `SHOW METRICS`;
//! * [`profile`] — [`QueryProfile`], the estimate-vs-actual record joining
//!   optimizer cost-model estimates with executor actuals per operator
//!   (q-error), exported as hand-rolled JSON for the bench harness's
//!   `--profile-json` output;
//! * [`trace`] — end-to-end query traces: per-query [`TraceId`]s
//!   propagated through admission, lifecycle stages, pool workers,
//!   exchange wire frames and spill files, retained by a bounded
//!   [`FlightRecorder`] ring and exported as Chrome trace-event JSON.

pub mod json;
pub mod metrics;
pub mod profile;
pub mod span;
pub mod trace;

pub use metrics::{
    global, Counter, Gauge, Histogram, MetricKind, MetricSample, MetricsRegistry, TableSample,
};
pub use profile::{q_error, OperatorProfile, QueryProfile, StageTiming};
pub use span::{CollectingSink, SpanGuard, SpanRecord, Stage, TraceSink};
pub use trace::{
    recorder, ActiveTrace, CompletedTrace, FlightRecorder, SpanEvent, TraceId, TraceSpan,
};
