//! Structured spans over the query lifecycle.
//!
//! A query moves through five stages — parse, bind, optimize, plan,
//! execute — and a [`TraceSink`] collects one [`SpanRecord`] per stage
//! (plus any per-worker execution spans the executor chooses to emit).
//! Spans are RAII: open one with [`SpanGuard::enter`] and the record is
//! delivered to the sink on drop, so early returns and `?` propagation
//! are timed correctly for free.

use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The five query-lifecycle stages, plus worker-local execution spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// SQL text → AST.
    Parse,
    /// AST → bound logical plan.
    Bind,
    /// Logical rewrites + cost-based join ordering.
    Optimize,
    /// Logical → physical plan (partitioning, exchanges).
    Plan,
    /// Physical plan execution across the worker pool.
    Execute,
    /// A single worker's slice of the execute stage.
    Worker,
}

impl Stage {
    /// Stable lowercase name used in profiles and JSON exports.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Bind => "bind",
            Stage::Optimize => "optimize",
            Stage::Plan => "plan",
            Stage::Execute => "execute",
            Stage::Worker => "worker",
        }
    }

    /// The five top-level lifecycle stages, in pipeline order.
    pub const LIFECYCLE: [Stage; 5] = [
        Stage::Parse,
        Stage::Bind,
        Stage::Optimize,
        Stage::Plan,
        Stage::Execute,
    ];
}

/// One finished span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Which stage the span covers.
    pub stage: Stage,
    /// Free-form detail (e.g. `worker 3` or the statement kind).
    pub detail: String,
    /// Wall-clock duration in milliseconds.
    pub wall_ms: f64,
}

/// A destination for finished spans.
///
/// Implementations must be cheap and non-blocking-ish; spans are emitted
/// from the query hot path (albeit once per stage, not per row).
pub trait TraceSink: Send + Sync {
    /// Receives one finished span.
    fn record(&self, span: SpanRecord);
}

/// A [`TraceSink`] that buffers spans in memory, for tests and for the
/// profile builder in `core`.
#[derive(Debug, Default, Clone)]
pub struct CollectingSink {
    spans: Arc<Mutex<Vec<SpanRecord>>>,
}

impl CollectingSink {
    /// An empty sink.
    pub fn new() -> Self {
        CollectingSink::default()
    }

    /// Drains and returns all spans recorded so far.
    pub fn take(&self) -> Vec<SpanRecord> {
        std::mem::take(&mut *self.spans.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Clones the spans recorded so far without draining.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.spans.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }
}

impl TraceSink for CollectingSink {
    fn record(&self, span: SpanRecord) {
        self.spans.lock().unwrap_or_else(|e| e.into_inner()).push(span);
    }
}

/// RAII guard: times a stage and reports it to the sink on drop.
///
/// When the thread has a current end-to-end trace (see
/// [`crate::trace::current`]), the guard also mirrors the span into that
/// trace's flight-recorder event log, so lifecycle stages show up in
/// Chrome trace exports without any extra call-site plumbing.
pub struct SpanGuard<'a> {
    sink: &'a dyn TraceSink,
    stage: Stage,
    detail: String,
    started: Instant,
    _trace_span: Option<crate::trace::TraceSpan>,
}

impl<'a> SpanGuard<'a> {
    /// Opens a span; the clock starts now.
    pub fn enter(sink: &'a dyn TraceSink, stage: Stage, detail: impl Into<String>) -> Self {
        let detail = detail.into();
        let trace_span = crate::trace::current().map(|t| {
            let s = t.span(stage.name(), "query");
            if detail.is_empty() {
                s
            } else {
                s.arg("detail", detail.clone())
            }
        });
        SpanGuard {
            sink,
            stage,
            detail,
            started: Instant::now(),
            _trace_span: trace_span,
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.sink.record(SpanRecord {
            stage: self.stage,
            detail: std::mem::take(&mut self.detail),
            wall_ms: self.started.elapsed().as_secs_f64() * 1e3,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_records_on_drop() {
        let sink = CollectingSink::new();
        {
            let _g = SpanGuard::enter(&sink, Stage::Parse, "select");
        }
        let spans = sink.take();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].stage, Stage::Parse);
        assert_eq!(spans[0].detail, "select");
        assert!(spans[0].wall_ms >= 0.0);
        assert!(sink.take().is_empty());
    }

    #[test]
    fn guard_records_on_early_return() {
        fn inner(sink: &CollectingSink, fail: bool) -> Result<(), ()> {
            let _g = SpanGuard::enter(sink, Stage::Bind, "");
            if fail {
                return Err(());
            }
            Ok(())
        }
        let sink = CollectingSink::new();
        let _ = inner(&sink, true);
        assert_eq!(sink.spans().len(), 1);
    }

    #[test]
    fn lifecycle_order_and_names() {
        let names: Vec<&str> = Stage::LIFECYCLE.iter().map(|s| s.name()).collect();
        assert_eq!(names, ["parse", "bind", "optimize", "plan", "execute"]);
    }
}
