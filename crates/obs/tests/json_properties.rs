//! Property tests for the hand-rolled JSON writer.
//!
//! The Chrome-trace exporter and `--profile-json` both stand on
//! `lardb_obs::json`; a single bad escape would make every exported trace
//! unloadable. These tests round-trip the writer's output through a
//! minimal, strict JSON parser: everything the writer emits must parse,
//! and escaped strings must decode back to the original text.

use std::collections::BTreeMap;

use lardb_obs::json::{array, escape, number, ObjectWriter};
use proptest::collection::vec;
use proptest::prelude::*;

// ------------------------------------------------------ a minimal parser

/// The subset of JSON values the writer can produce.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(BTreeMap<String, Json>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse(text: &'a str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, String> {
        let b = self.peek().ok_or("unexpected end of input")?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        let got = self.bump()?;
        if got != b {
            return Err(format!("expected {:?}, got {:?}", b as char, got as char));
        }
        Ok(())
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek().ok_or("unexpected end of input")? {
            b'"' => Ok(Json::String(self.string()?)),
            b'{' => self.object(),
            b'[' => self.array(),
            b'n' => {
                for b in b"null" {
                    self.expect(*b)?;
                }
                Ok(Json::Null)
            }
            b'-' | b'0'..=b'9' => self.number(),
            b => Err(format!("unexpected byte {:?}", b as char)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            // Consume whole UTF-8 chars, not bytes, so multi-byte text
            // survives verbatim.
            let rest = std::str::from_utf8(&self.bytes[self.pos..])
                .map_err(|e| format!("invalid UTF-8: {e}"))?;
            let c = rest.chars().next().ok_or("unterminated string")?;
            self.pos += c.len_utf8();
            match c {
                '"' => return Ok(out),
                '\\' => {
                    let esc = self.bump()? as char;
                    match esc {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'b' => out.push('\u{8}'),
                        'f' => out.push('\u{c}'),
                        'u' => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let h = (self.bump()? as char)
                                    .to_digit(16)
                                    .ok_or("bad \\u escape digit")?;
                                code = code * 16 + h;
                            }
                            out.push(
                                char::from_u32(code)
                                    .ok_or("\\u escape is not a scalar value")?,
                            );
                        }
                        other => return Err(format!("bad escape \\{other}")),
                    }
                }
                c if (c as u32) < 0x20 => {
                    return Err(format!("raw control char U+{:04X} in string", c as u32))
                }
                c => out.push(c),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII");
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => return Ok(Json::Array(items)),
                b => return Err(format!("expected , or ] in array, got {:?}", b as char)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => return Ok(Json::Object(map)),
                b => return Err(format!("expected , or }} in object, got {:?}", b as char)),
            }
        }
    }
}

// -------------------------------------------------------------- fixtures

/// Strings over a palette that forces every escaping branch: quotes,
/// backslashes, all three short-form control chars, other control chars
/// (\u escapes), and multi-byte UTF-8 incl. an astral-plane char.
fn arb_string() -> impl Strategy<Value = String> {
    const PALETTE: &[char] = &[
        'a', 'Z', '9', ' ', '"', '\\', '\n', '\r', '\t', '\u{0}', '\u{1}', '\u{1f}', '\u{7f}',
        'é', 'β', '☃', '𝄞', '—',
    ];
    vec(0usize..PALETTE.len(), 0..24)
        .prop_map(|idx| idx.into_iter().map(|i| PALETTE[i]).collect())
}

fn arb_f64() -> impl Strategy<Value = f64> {
    (0usize..8, -1_000_000i64..1_000_000).prop_map(|(sel, n)| match sel {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => 0.0,
        4 => -0.5,
        _ => n as f64 / 128.0,
    })
}

proptest! {
    /// `escape` output, wrapped in quotes, parses back to the original.
    #[test]
    fn escaped_strings_roundtrip(s in arb_string()) {
        let doc = format!("\"{}\"", escape(&s));
        let parsed = Parser::parse(&doc)
            .map_err(proptest::test_runner::TestCaseError::fail)?;
        prop_assert_eq!(parsed, Json::String(s));
    }

    /// `number` always emits valid JSON: a finite numeric or `null`.
    #[test]
    fn numbers_always_parse(v in arb_f64()) {
        let doc = number(v);
        let parsed = Parser::parse(&doc)
            .map_err(proptest::test_runner::TestCaseError::fail)?;
        match parsed {
            Json::Null => prop_assert!(!v.is_finite(), "finite {v} became null"),
            Json::Number(back) => prop_assert!(
                (back - v).abs() <= 1e-6,
                "parsed {back} too far from {v}"
            ),
            other => return Err(proptest::test_runner::TestCaseError::fail(
                format!("number parsed as {other:?}"),
            )),
        }
    }

    /// A whole ObjectWriter document — string fields with hostile keys and
    /// values, numbers, integers, and a nested raw array — parses, and the
    /// string fields decode back to the original text.
    #[test]
    fn object_documents_roundtrip(
        pairs in vec((arb_string(), arb_string()), 0..6),
        n in arb_f64(),
        i in 0u64..u64::MAX,
    ) {
        let mut o = ObjectWriter::new();
        for (idx, (k, v)) in pairs.iter().enumerate() {
            // Writer joins duplicate keys as separate fields; keep keys
            // unique so the parsed map is comparable.
            o.string(&format!("{idx}:{k}"), v);
        }
        o.number("num", n).integer("int", i);
        let items = array(pairs.iter().map(|(_, v)| format!("\"{}\"", escape(v))));
        o.raw("list", &items);
        let doc = o.finish();

        let parsed = Parser::parse(&doc)
            .map_err(proptest::test_runner::TestCaseError::fail)?;
        let Json::Object(map) = parsed else {
            return Err(proptest::test_runner::TestCaseError::fail("not an object"));
        };
        for (idx, (k, v)) in pairs.iter().enumerate() {
            prop_assert_eq!(map.get(&format!("{idx}:{k}")), Some(&Json::String(v.clone())));
        }
        prop_assert!(map.contains_key("num"));
        prop_assert_eq!(map.get("int"), Some(&Json::Number(i as f64)));
        let Some(Json::Array(list)) = map.get("list") else {
            return Err(proptest::test_runner::TestCaseError::fail("list missing"));
        };
        prop_assert_eq!(list.len(), pairs.len());
    }
}

#[test]
fn parser_rejects_raw_control_chars() {
    // Sanity-check the checker itself: an unescaped newline inside a
    // string is invalid JSON and must be rejected, or the round-trip
    // property above would prove nothing.
    assert!(Parser::parse("\"a\nb\"").is_err());
    assert!(Parser::parse("\"a\\nb\"").is_ok());
}
