//! Property tests for the wire codec: `decode(encode(v))` is bit-exact
//! for every `Value` variant (NaN doubles, signed zeros, empty matrices,
//! extreme labels included), and truncated or corrupted frames return
//! errors — they never panic and never over-allocate.

use std::sync::Arc;

use lardb_la::{LabeledScalar, Matrix, Vector};
use lardb_net::codec::{
    checksum_update, decode_frame, decode_value, encode_fin_frame, encode_rows_frame,
    encode_schema_frame, encode_value, encoded_value_size, wire_eq, FinSummary, Frame,
    CHECKSUM_SEED,
};
use lardb_net::{ChannelTransport, NetError, Transport};
use lardb_storage::{Column, DataType, Row, Schema, Value};
use proptest::collection::vec;
use proptest::prelude::*;

/// Doubles over the full bit space, with the edge cases (NaN, ±0.0,
/// ±∞, subnormals) forced in often enough that every run sees them.
fn arb_f64() -> impl Strategy<Value = f64> {
    (0usize..12, i64::MIN..=i64::MAX).prop_map(|(sel, bits)| match sel {
        0 => f64::NAN,
        1 => -0.0,
        2 => 0.0,
        3 => f64::INFINITY,
        4 => f64::NEG_INFINITY,
        5 => f64::MIN_POSITIVE / 2.0, // subnormal
        _ => f64::from_bits(bits as u64),
    })
}

/// Strings from a palette that includes multi-byte UTF-8; empty often.
fn arb_string() -> impl Strategy<Value = String> {
    const PALETTE: &[char] = &['a', 'Z', '0', ' ', '_', 'é', 'β', '☃', '—', '\n'];
    vec(0usize..PALETTE.len(), 0..12)
        .prop_map(|idx| idx.into_iter().map(|i| PALETTE[i]).collect())
}

/// Any `Value` variant. Labels span the full `i64` range; vectors may be
/// empty; matrices may have zero rows, zero columns, or both.
fn arb_value() -> impl Strategy<Value = Value> {
    (
        0usize..8,
        i64::MIN..=i64::MAX,
        arb_f64(),
        vec(arb_f64(), 0..18),
        (0usize..4, 0usize..4),
        arb_string(),
    )
        .prop_map(|(variant, int, x, data, (r, c), s)| match variant {
            0 => Value::Null,
            1 => Value::Integer(int),
            2 => Value::Double(x),
            3 => Value::Boolean(int % 2 == 0),
            4 => Value::Varchar(Arc::from(s.as_str())),
            5 => Value::LabeledScalar(LabeledScalar::new(x, int)),
            6 => {
                let mut v = Vector::from_vec(data);
                v.set_label(int);
                Value::vector(v)
            }
            _ => {
                let m = Matrix::from_fn(r, c, |i, j| {
                    if data.is_empty() { x } else { data[(i * c + j) % data.len()] }
                });
                Value::matrix(m)
            }
        })
}

fn arb_dtype() -> impl Strategy<Value = DataType> {
    (0usize..7, proptest::option::of(0u32..2000), proptest::option::of(0u32..2000))
        .prop_map(|(sel, d1, d2)| match sel {
            0 => DataType::Integer,
            1 => DataType::Double,
            2 => DataType::Boolean,
            3 => DataType::Varchar,
            4 => DataType::LabeledScalar,
            5 => DataType::Vector(d1.map(|d| d as usize)),
            _ => DataType::Matrix(d1.map(|d| d as usize), d2.map(|d| d as usize)),
        })
}

fn arb_schema() -> impl Strategy<Value = Schema> {
    vec((arb_string(), proptest::option::of(arb_string()), arb_dtype()), 0..6)
        .prop_map(|cols| {
            Schema::new(
                cols.into_iter()
                    .map(|(name, qualifier, dtype)| Column { qualifier, name, dtype })
                    .collect(),
            )
        })
}

fn rows_wire_eq(a: &[Row], b: &[Row]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.arity() == y.arity()
                && x.values().iter().zip(y.values()).all(|(p, q)| wire_eq(p, q))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn value_roundtrips_bit_exactly(v in arb_value()) {
        let mut buf = Vec::new();
        encode_value(&v, &mut buf);
        prop_assert_eq!(buf.len(), encoded_value_size(&v));
        let back = decode_value(&buf).map_err(|e| {
            proptest::test_runner::TestCaseError::fail(format!("decode: {e}"))
        })?;
        prop_assert!(wire_eq(&v, &back), "{:?} != {:?}", v, back);
    }

    #[test]
    fn rows_frame_roundtrips(rows in vec(vec(arb_value(), 0..5), 0..5)) {
        let rows: Vec<Row> = rows.into_iter().map(Row::new).collect();
        let frame = encode_rows_frame(&rows);
        match decode_frame(&frame) {
            Ok(Frame::Rows(back)) => {
                prop_assert!(rows_wire_eq(&rows, &back));
            }
            other => prop_assert!(false, "expected rows frame, got {:?}", other),
        }
    }

    #[test]
    fn schema_frame_roundtrips(schema in arb_schema()) {
        let frame = encode_schema_frame(&schema);
        match decode_frame(&frame) {
            Ok(Frame::Schema(back)) => prop_assert_eq!(back, schema),
            other => prop_assert!(false, "expected schema frame, got {:?}", other),
        }
    }

    #[test]
    fn truncated_frames_error_never_panic(
        rows in vec(vec(arb_value(), 0..4), 1..4),
        cut_sel in 0usize..10_000,
    ) {
        let rows: Vec<Row> = rows.into_iter().map(Row::new).collect();
        let frame = encode_rows_frame(&rows);
        // Every proper prefix must fail to decode: the frame declares its
        // row count up front, so missing bytes are always detectable.
        let cut = cut_sel % frame.len();
        prop_assert!(
            decode_frame(&frame[..cut]).is_err(),
            "prefix of {} / {} bytes decoded", cut, frame.len()
        );
    }

    #[test]
    fn corrupted_frames_never_panic(
        rows in vec(vec(arb_value(), 0..4), 1..4),
        pos_sel in 0usize..10_000,
        flip in 1u8..=255,
    ) {
        let rows: Vec<Row> = rows.into_iter().map(Row::new).collect();
        let mut frame = encode_rows_frame(&rows);
        let pos = pos_sel % frame.len();
        frame[pos] ^= flip;
        // A flipped payload byte may still decode to a (different) valid
        // frame; the property is bounded, panic-free handling either way.
        let _ = decode_frame(&frame);
    }

    #[test]
    fn truncated_schema_frames_error(schema in arb_schema(), cut_sel in 0usize..10_000) {
        let frame = encode_schema_frame(&schema);
        let cut = cut_sel % frame.len();
        prop_assert!(decode_frame(&frame[..cut]).is_err());
    }

    #[test]
    fn fin_frames_roundtrip_and_reject_prefixes(
        frames in 0u64..=u64::MAX,
        rows in 0u64..=u64::MAX,
        checksum in 0u64..=u64::MAX,
        cut_sel in 0usize..10_000,
    ) {
        let fin = FinSummary { frames, rows, checksum };
        let frame = encode_fin_frame(&fin);
        match decode_frame(&frame) {
            Ok(Frame::Fin(back)) => prop_assert_eq!(back, fin),
            other => prop_assert!(false, "expected fin frame, got {:?}", other),
        }
        let cut = cut_sel % frame.len();
        prop_assert!(decode_frame(&frame[..cut]).is_err());
    }

    #[test]
    fn checksum_chunking_is_associative(
        bytes in vec(0u8..=255, 0..256),
        split_sel in 0usize..10_000,
    ) {
        // Senders checksum whole frames, receivers too — but the fold must
        // not depend on chunk boundaries, only on the byte stream.
        let whole = checksum_update(CHECKSUM_SEED, &bytes);
        let split = if bytes.is_empty() { 0 } else { split_sel % bytes.len() };
        let halves =
            checksum_update(checksum_update(CHECKSUM_SEED, &bytes[..split]), &bytes[split..]);
        prop_assert_eq!(whole, halves);
    }
}

/// The transport-level frame cap: a frame exactly at `max_frame_bytes`
/// passes, one byte over is rejected as `FrameTooLarge` before it is
/// buffered or shipped, and a zero-length frame moves cleanly through the
/// transport (decoding it then fails, but bounded and typed).
#[test]
fn frame_size_boundary_is_enforced() {
    let cap = 256usize;
    let transport =
        ChannelTransport { max_frame_bytes: cap, ..ChannelTransport::default() };
    let mesh = transport.mesh(2).unwrap();

    mesh.send(0, 1, vec![0xAB; cap]).unwrap();
    match mesh.send(0, 1, vec![0xAB; cap + 1]) {
        Err(NetError::FrameTooLarge { len, max }) => {
            assert_eq!((len, max), ((cap + 1) as u64, cap as u64));
        }
        other => panic!("expected FrameTooLarge, got {other:?}"),
    }
    mesh.send(0, 1, Vec::new()).unwrap();
    mesh.close(0).unwrap();
    mesh.close(1).unwrap();

    let (from, boundary) = mesh.recv(1).unwrap().unwrap();
    assert_eq!((from, boundary.len()), (0, cap));
    let (_, empty) = mesh.recv(1).unwrap().unwrap();
    assert!(empty.is_empty());
    assert!(decode_frame(&empty).is_err(), "zero-length frame must not decode");
    assert_eq!(mesh.recv(1).unwrap(), None);
}

#[test]
fn empty_and_garbage_buffers_error() {
    assert!(decode_frame(&[]).is_err());
    assert!(decode_value(&[]).is_err());
    assert!(decode_frame(&[0xFF; 64]).is_err());
    // A bogus huge length field must be rejected before allocating.
    let mut frame = encode_rows_frame(&[Row::new(vec![Value::Integer(1)])]);
    frame[3] = 0xFF;
    frame[4] = 0xFF;
    frame[5] = 0xFF;
    frame[6] = 0xFF;
    assert!(decode_frame(&frame).is_err());
}
