//! Worker-to-worker frame transports.
//!
//! A [`Transport`] builds a [`Mesh`] connecting `W` worker endpoints.
//! Senders push opaque frames (already codec-encoded) to a destination
//! endpoint; each destination drains its inbox until every sender has
//! ended its channel. Frame order is preserved **per (from, to) channel**
//! — exactly the guarantee a TCP stream gives — and nothing is promised
//! about cross-sender interleaving, so receivers that need determinism
//! bucket frames by sender (the exchange operators do).
//!
//! A channel can end two ways, and the distinction is load-bearing:
//! a **clean close** ([`Mesh::close`]) means the sender finished, while a
//! **failure** ([`Mesh::fail`], a mid-frame EOF, or a socket read error)
//! surfaces from [`Mesh::recv`] as [`NetError::Sender`]. Conflating the
//! two is how a dead worker silently truncates a query's answer — the
//! exact bug this layer exists to prevent.
//!
//! Two implementations:
//!
//! * [`ChannelTransport`] — crossbeam bounded channels, one inbox per
//!   destination. `send` blocks when the inbox is full: real backpressure,
//!   measurable as enqueue-block time. This is the default for
//!   `serialized` mode.
//! * [`TcpTransport`] — every (from, to) pair gets its own loopback TCP
//!   connection (`std::net`); frames travel length-prefixed through the
//!   kernel's socket buffers. Backpressure is the socket send buffer
//!   filling up. Connect/accept/handshake and per-frame reads are
//!   bounded by [`TcpTransport::timeout_ms`], and the attacker-controlled
//!   length prefix is capped by [`TcpTransport::max_frame_bytes`] before
//!   any allocation. This is the multi-process-shaped configuration:
//!   swapping the loopback address for a remote one is the only change a
//!   true multi-node deployment needs at this layer.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, Sender};

use crate::{NetError, Result, DEFAULT_MAX_FRAME_BYTES, DEFAULT_NET_TIMEOUT_MS};

/// Bumps the process-wide per-transport send counters
/// (`net.<transport>.frames_sent` / `net.<transport>.bytes_sent`).
fn meter_send(transport: &str, bytes: usize) {
    let registry = lardb_obs::global();
    registry.counter(&format!("net.{transport}.frames_sent")).inc();
    registry
        .counter(&format!("net.{transport}.bytes_sent"))
        .add(bytes as u64);
}

/// Builds meshes over `W` workers.
pub trait Transport: Send + Sync {
    /// Connects all `workers × workers` channels and returns the mesh.
    fn mesh(&self, workers: usize) -> Result<Box<dyn Mesh>>;

    /// Short name for stats / display.
    fn name(&self) -> &'static str;
}

/// A connected set of worker endpoints.
///
/// Contract: each endpoint index is driven by at most one sending thread
/// and one receiving thread at a time. `send` may block (backpressure).
/// After a sender calls [`Mesh::close`], its channels deliver no more
/// frames; once **all** senders have ended (closed *or* failed), `recv`
/// returns `Ok(None)`. A channel ended by [`Mesh::fail`] (or by a
/// transport-level read failure) surfaces once from `recv` as
/// [`NetError::Sender`] before counting toward end-of-stream.
pub trait Mesh: Send + Sync {
    /// Ships one frame from endpoint `from` to endpoint `to`, blocking
    /// while the destination's inbox (or socket buffer) is full.
    fn send(&self, from: usize, to: usize, frame: Vec<u8>) -> Result<()>;

    /// Declares endpoint `from` cleanly done sending (to every
    /// destination).
    fn close(&self, from: usize) -> Result<()>;

    /// Ends endpoint `from` **abnormally** (to every destination):
    /// receivers observe [`NetError::Sender`] instead of a clean close.
    /// Used when a sender dies mid-exchange so its partial stream can
    /// never be mistaken for a complete one.
    fn fail(&self, from: usize, reason: &str) -> Result<()>;

    /// Receives the next frame addressed to `to`, tagged with its sender.
    /// Returns `Ok(None)` when every sender has ended. Returns
    /// `Err(NetError::Sender)` exactly once per abnormally-ended channel;
    /// the caller may keep calling `recv` to drain the remaining senders.
    fn recv(&self, to: usize) -> Result<Option<(usize, Vec<u8>)>>;
}

/// How one sender's channel presents to a receiver's inbox.
enum SenderEvent {
    /// A payload frame.
    Frame(Vec<u8>),
    /// The sender finished cleanly.
    Closed,
    /// The sender's channel ended abnormally (mid-frame EOF, read error,
    /// injected kill).
    Errored(String),
}

/// `(sender, event)`.
type Msg = (usize, SenderEvent);

/// Shared inbox-draining logic: frames pass through, `Closed` counts
/// quietly toward end-of-stream, `Errored` counts too but surfaces once
/// as [`NetError::Sender`].
fn drain_inbox(
    rx: &Receiver<Msg>,
    eofs: &AtomicUsize,
    workers: usize,
    to: usize,
) -> Result<Option<(usize, Vec<u8>)>> {
    loop {
        if eofs.load(Ordering::Acquire) >= workers {
            return Ok(None);
        }
        let (from, event) = rx
            .recv()
            .map_err(|_| NetError::Transport(format!("inbox of worker {to} disconnected")))?;
        match event {
            SenderEvent::Frame(frame) => return Ok(Some((from, frame))),
            SenderEvent::Closed => {
                eofs.fetch_add(1, Ordering::AcqRel);
            }
            SenderEvent::Errored(reason) => {
                eofs.fetch_add(1, Ordering::AcqRel);
                return Err(NetError::Sender { from, reason });
            }
        }
    }
}

// --------------------------------------------------- in-process channels

/// Bounded-crossbeam-channel mesh: the in-process transport.
#[derive(Debug, Clone)]
pub struct ChannelTransport {
    /// Inbox capacity per destination, in frames. Small on purpose: a full
    /// inbox makes `send` block, which is the backpressure the per-channel
    /// enqueue-block meter observes.
    pub capacity: usize,
    /// Maximum accepted frame size in bytes (checked on send).
    pub max_frame_bytes: usize,
}

impl Default for ChannelTransport {
    fn default() -> Self {
        ChannelTransport { capacity: 32, max_frame_bytes: DEFAULT_MAX_FRAME_BYTES }
    }
}

struct ChannelMesh {
    txs: Vec<Sender<Msg>>,
    rxs: Vec<Receiver<Msg>>,
    /// Per-destination count of senders that have ended (closed or
    /// failed).
    eofs: Vec<AtomicUsize>,
    workers: usize,
    max_frame_bytes: usize,
}

impl Transport for ChannelTransport {
    fn mesh(&self, workers: usize) -> Result<Box<dyn Mesh>> {
        let mut txs = Vec::with_capacity(workers);
        let mut rxs = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = bounded(self.capacity.max(1));
            txs.push(tx);
            rxs.push(rx);
        }
        let eofs = (0..workers).map(|_| AtomicUsize::new(0)).collect();
        Ok(Box::new(ChannelMesh {
            txs,
            rxs,
            eofs,
            workers,
            max_frame_bytes: self.max_frame_bytes.max(1),
        }))
    }

    fn name(&self) -> &'static str {
        "channel"
    }
}

impl Mesh for ChannelMesh {
    fn send(&self, from: usize, to: usize, frame: Vec<u8>) -> Result<()> {
        if frame.len() > self.max_frame_bytes {
            return Err(NetError::FrameTooLarge {
                len: frame.len() as u64,
                max: self.max_frame_bytes as u64,
            });
        }
        meter_send("channel", frame.len());
        self.txs[to]
            .send((from, SenderEvent::Frame(frame)))
            .map_err(|_| NetError::Transport(format!("channel to worker {to} disconnected")))
    }

    fn close(&self, from: usize) -> Result<()> {
        for to in 0..self.workers {
            self.txs[to]
                .send((from, SenderEvent::Closed))
                .map_err(|_| NetError::Transport(format!("channel to worker {to} disconnected")))?;
        }
        Ok(())
    }

    fn fail(&self, from: usize, reason: &str) -> Result<()> {
        for to in 0..self.workers {
            // A destination that already went away can't observe the
            // failure anyway; don't let that mask the original error.
            let _ = self.txs[to].send((from, SenderEvent::Errored(reason.to_string())));
        }
        Ok(())
    }

    fn recv(&self, to: usize) -> Result<Option<(usize, Vec<u8>)>> {
        drain_inbox(&self.rxs[to], &self.eofs[to], self.workers, to)
    }
}

// -------------------------------------------------------- loopback TCP

/// Loopback-TCP mesh: every (from, to) pair is a real `std::net` socket.
#[derive(Debug, Clone)]
pub struct TcpTransport {
    /// Inbox capacity per destination, in frames (reader threads stop
    /// pulling off the socket when the inbox is full, so socket buffers —
    /// and then the sender — back up: end-to-end backpressure).
    pub capacity: usize,
    /// Deadline for connect/accept/handshake and per-frame reads, in
    /// milliseconds. A stalled peer fails with [`NetError::Timeout`]
    /// instead of hanging mesh construction or a receiver forever.
    pub timeout_ms: u64,
    /// Maximum accepted frame size in bytes, enforced on send and —
    /// before the frame buffer is allocated — on the length prefix read
    /// off the wire.
    pub max_frame_bytes: usize,
}

impl Default for TcpTransport {
    fn default() -> Self {
        TcpTransport {
            capacity: 32,
            timeout_ms: DEFAULT_NET_TIMEOUT_MS,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
        }
    }
}

struct TcpMesh {
    /// Outgoing streams, indexed `from * workers + to`.
    streams: Vec<Mutex<TcpStream>>,
    rxs: Vec<Receiver<Msg>>,
    eofs: Vec<AtomicUsize>,
    workers: usize,
    max_frame_bytes: usize,
}

fn io_err(context: &str, e: std::io::Error) -> NetError {
    if is_timeout(&e) {
        NetError::Timeout(format!("{context}: {e}"))
    } else {
        NetError::Transport(format!("{context}: {e}"))
    }
}

/// Both `WouldBlock` and `TimedOut` mean "read deadline expired" here
/// (platforms disagree on which a `set_read_timeout` expiry raises).
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Connects with a deadline and bounded exponential-backoff retries
/// (transient refusals happen while the peer's listener backlog churns).
fn connect_with_retry(
    addr: std::net::SocketAddr,
    timeout: Duration,
    context: &str,
) -> Result<TcpStream> {
    const ATTEMPTS: u32 = 4;
    let mut backoff = Duration::from_millis(10);
    let mut last = None;
    for attempt in 0..ATTEMPTS {
        match TcpStream::connect_timeout(&addr, timeout) {
            Ok(s) => return Ok(s),
            Err(e) => last = Some(e),
        }
        if attempt + 1 < ATTEMPTS {
            std::thread::sleep(backoff);
            backoff *= 2;
        }
    }
    let e = last.expect("at least one connect attempt ran");
    Err(io_err(&format!("{context} after {ATTEMPTS} attempts"), e))
}

/// Accepts one connection, polling a nonblocking listener to a deadline
/// so a peer that never connects can't hang mesh construction.
fn accept_with_deadline(
    listener: &TcpListener,
    deadline: Instant,
    to: usize,
) -> Result<TcpStream> {
    listener
        .set_nonblocking(true)
        .map_err(|e| io_err(&format!("accept on endpoint {to}"), e))?;
    loop {
        match listener.accept() {
            Ok((conn, _)) => {
                conn.set_nonblocking(false)
                    .map_err(|e| io_err(&format!("accept on endpoint {to}"), e))?;
                return Ok(conn);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(NetError::Timeout(format!(
                        "accept on endpoint {to}: no peer connected before the deadline"
                    )));
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) => return Err(io_err(&format!("accept on endpoint {to}"), e)),
        }
    }
}

impl Transport for TcpTransport {
    fn mesh(&self, workers: usize) -> Result<Box<dyn Mesh>> {
        let timeout = Duration::from_millis(self.timeout_ms.max(1));
        // One listener per destination endpoint.
        let mut listeners = Vec::with_capacity(workers);
        let mut addrs = Vec::with_capacity(workers);
        for to in 0..workers {
            let l = TcpListener::bind("127.0.0.1:0")
                .map_err(|e| io_err(&format!("bind endpoint {to}"), e))?;
            addrs.push(
                l.local_addr()
                    .map_err(|e| io_err(&format!("local_addr endpoint {to}"), e))?,
            );
            listeners.push(l);
        }
        // Connect the full mesh first (the kernel backlog holds them), then
        // accept. Each connection handshakes with its sender index.
        let mut streams = Vec::with_capacity(workers * workers);
        for from in 0..workers {
            for (to, addr) in addrs.iter().enumerate() {
                let mut s = connect_with_retry(*addr, timeout, &format!("connect {from}→{to}"))?;
                s.set_nodelay(true).ok();
                s.set_write_timeout(Some(timeout))
                    .map_err(|e| io_err(&format!("configure {from}→{to}"), e))?;
                s.write_all(&(from as u32).to_le_bytes())
                    .map_err(|e| io_err(&format!("handshake {from}→{to}"), e))?;
                streams.push(Mutex::new(s));
            }
        }
        // Accept and spawn one reader thread per incoming connection; each
        // pushes frames into the destination's bounded inbox.
        let max_frame_bytes = self.max_frame_bytes.max(1);
        let mut rxs = Vec::with_capacity(workers);
        for (to, listener) in listeners.into_iter().enumerate() {
            let (tx, rx) = bounded::<Msg>(self.capacity.max(1));
            let deadline = Instant::now() + timeout;
            for _ in 0..workers {
                let mut conn = accept_with_deadline(&listener, deadline, to)?;
                conn.set_read_timeout(Some(timeout))
                    .map_err(|e| io_err(&format!("configure endpoint {to}"), e))?;
                let mut hs = [0u8; 4];
                conn.read_exact(&mut hs)
                    .map_err(|e| io_err(&format!("handshake on endpoint {to}"), e))?;
                let from = u32::from_le_bytes(hs) as usize;
                if from >= workers {
                    return Err(NetError::Transport(format!(
                        "handshake on endpoint {to}: bogus sender index {from}"
                    )));
                }
                let tx = tx.clone();
                std::thread::Builder::new()
                    .name(format!("lardb-net-rx-{from}-{to}"))
                    .spawn(move || reader_loop(conn, from, tx, max_frame_bytes))
                    .map_err(|e| io_err("spawn reader", e))?;
            }
            rxs.push(rx);
        }
        let eofs = (0..workers).map(|_| AtomicUsize::new(0)).collect();
        Ok(Box::new(TcpMesh { streams, rxs, eofs, workers, max_frame_bytes }))
    }

    fn name(&self) -> &'static str {
        "tcp"
    }
}

/// What reading the 4-byte length prefix produced.
enum LenRead {
    /// EOF on a frame boundary: the sender closed cleanly.
    Closed,
    /// A complete prefix.
    Len(u32),
    /// Partial prefix, mid-stream EOF, or a read error — all abnormal.
    Error(String),
}

/// Reads the length prefix byte-at-a-boundary so a clean close (EOF with
/// zero prefix bytes read) is distinguishable from truncation (EOF after
/// a partial prefix) — `read_exact` alone erases that difference.
fn read_len_prefix(conn: &mut TcpStream) -> LenRead {
    let mut buf = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        match conn.read(&mut buf[got..]) {
            Ok(0) => {
                return if got == 0 {
                    LenRead::Closed
                } else {
                    LenRead::Error(format!(
                        "connection ended after {got} of 4 length-prefix bytes"
                    ))
                };
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => {
                return LenRead::Error(format!("read timeout waiting for a frame: {e}"));
            }
            Err(e) => return LenRead::Error(format!("read error: {e}")),
        }
    }
    LenRead::Len(u32::from_le_bytes(buf))
}

/// Drains one incoming connection: length-prefixed frames until the
/// channel ends. A clean EOF on a frame boundary reports `Closed`;
/// anything else — mid-frame EOF, read errors, timeouts, an oversized
/// length prefix — reports `Errored` so the receiver can flag truncation
/// instead of silently accepting a short stream.
fn reader_loop(mut conn: TcpStream, from: usize, tx: Sender<Msg>, max_frame_bytes: usize) {
    loop {
        let len = match read_len_prefix(&mut conn) {
            LenRead::Closed => {
                let _ = tx.send((from, SenderEvent::Closed));
                return;
            }
            LenRead::Error(reason) => {
                let _ = tx.send((from, SenderEvent::Errored(reason)));
                return;
            }
            LenRead::Len(len) => len as usize,
        };
        // Cap the attacker-controlled prefix BEFORE vec![0u8; len].
        if len > max_frame_bytes {
            let _ = tx.send((
                from,
                SenderEvent::Errored(format!(
                    "frame length {len} exceeds maximum {max_frame_bytes} bytes"
                )),
            ));
            return;
        }
        let mut frame = vec![0u8; len];
        if let Err(e) = conn.read_exact(&mut frame) {
            let _ = tx.send((from, SenderEvent::Errored(format!("mid-frame read: {e}"))));
            return;
        }
        if tx.send((from, SenderEvent::Frame(frame))).is_err() {
            return; // receiver went away; stop pulling
        }
    }
}

impl Mesh for TcpMesh {
    fn send(&self, from: usize, to: usize, frame: Vec<u8>) -> Result<()> {
        if frame.len() > self.max_frame_bytes {
            return Err(NetError::FrameTooLarge {
                len: frame.len() as u64,
                max: self.max_frame_bytes as u64,
            });
        }
        meter_send("tcp", frame.len());
        let mut s = self.streams[from * self.workers + to]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        s.write_all(&(frame.len() as u32).to_le_bytes())
            .and_then(|_| s.write_all(&frame))
            .map_err(|e| io_err(&format!("send {from}→{to}"), e))
    }

    fn close(&self, from: usize) -> Result<()> {
        for to in 0..self.workers {
            let s = self.streams[from * self.workers + to]
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            s.shutdown(std::net::Shutdown::Write)
                .map_err(|e| io_err(&format!("close {from}→{to}"), e))?;
        }
        Ok(())
    }

    fn fail(&self, from: usize, _reason: &str) -> Result<()> {
        // Write a length prefix with no payload behind it, then shut the
        // stream: every reader sees a mid-frame EOF, which is exactly how
        // a worker death looks on a real network.
        for to in 0..self.workers {
            let mut s = self.streams[from * self.workers + to]
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            let _ = s.write_all(&8u32.to_le_bytes());
            let _ = s.shutdown(std::net::Shutdown::Write);
        }
        Ok(())
    }

    fn recv(&self, to: usize) -> Result<Option<(usize, Vec<u8>)>> {
        drain_inbox(&self.rxs[to], &self.eofs[to], self.workers, to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shuffles distinct payloads through a full mesh and checks each
    /// endpoint sees every sender's frames, in per-channel order.
    fn exercise(transport: &dyn Transport, workers: usize, frames_per_channel: usize) {
        let mesh = transport.mesh(workers).unwrap();
        let mesh = mesh.as_ref();
        std::thread::scope(|s| {
            let receivers: Vec<_> = (0..workers)
                .map(|to| {
                    s.spawn(move || {
                        let mut got: Vec<Vec<Vec<u8>>> = vec![Vec::new(); workers];
                        while let Some((from, frame)) = mesh.recv(to).unwrap() {
                            got[from].push(frame);
                        }
                        got
                    })
                })
                .collect();
            for from in 0..workers {
                s.spawn(move || {
                    for seq in 0..frames_per_channel {
                        for to in 0..workers {
                            let payload = vec![from as u8, to as u8, seq as u8];
                            mesh.send(from, to, payload).unwrap();
                        }
                    }
                    mesh.close(from).unwrap();
                });
            }
            for (to, h) in receivers.into_iter().enumerate() {
                let got = h.join().unwrap();
                for (from, frames) in got.iter().enumerate() {
                    assert_eq!(frames.len(), frames_per_channel, "{from}→{to}");
                    for (seq, frame) in frames.iter().enumerate() {
                        assert_eq!(frame, &vec![from as u8, to as u8, seq as u8]);
                    }
                }
            }
        });
    }

    #[test]
    fn channel_mesh_delivers_in_order() {
        exercise(&ChannelTransport::default(), 4, 17);
    }

    #[test]
    fn channel_mesh_backpressure_does_not_deadlock() {
        // Capacity 1 forces senders to block constantly; concurrent
        // receivers must keep the system moving.
        exercise(&ChannelTransport { capacity: 1, ..ChannelTransport::default() }, 3, 50);
    }

    #[test]
    fn tcp_mesh_delivers_in_order() {
        exercise(&TcpTransport::default(), 3, 11);
    }

    #[test]
    fn tcp_mesh_single_worker() {
        exercise(&TcpTransport::default(), 1, 5);
    }

    #[test]
    fn empty_mesh_recv_terminates() {
        for t in [&ChannelTransport::default() as &dyn Transport, &TcpTransport::default()] {
            let mesh = t.mesh(2).unwrap();
            mesh.close(0).unwrap();
            mesh.close(1).unwrap();
            assert!(mesh.recv(0).unwrap().is_none());
            assert!(mesh.recv(1).unwrap().is_none());
        }
    }

    /// Drives `reader_loop` directly over a local socket pair.
    fn reader_harness(
        max_frame_bytes: usize,
    ) -> (TcpStream, Receiver<Msg>, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        let (tx, rx) = bounded::<Msg>(8);
        let h = std::thread::spawn(move || reader_loop(server, 0, tx, max_frame_bytes));
        (client, rx, h)
    }

    #[test]
    fn reader_clean_close_on_frame_boundary() {
        let (mut client, rx, h) = reader_harness(1024);
        client.write_all(&3u32.to_le_bytes()).unwrap();
        client.write_all(b"abc").unwrap();
        drop(client);
        assert!(matches!(rx.recv().unwrap(), (0, SenderEvent::Frame(f)) if f == b"abc"));
        assert!(matches!(rx.recv().unwrap(), (0, SenderEvent::Closed)));
        h.join().unwrap();
    }

    #[test]
    fn reader_midframe_eof_is_an_error_not_a_close() {
        // The original bug: a peer dying mid-frame looked like EOF.
        let (mut client, rx, h) = reader_harness(1024);
        client.write_all(&100u32.to_le_bytes()).unwrap();
        client.write_all(b"only a few bytes").unwrap();
        drop(client);
        assert!(matches!(rx.recv().unwrap(), (0, SenderEvent::Errored(_))));
        h.join().unwrap();
    }

    #[test]
    fn reader_partial_length_prefix_is_an_error() {
        let (mut client, rx, h) = reader_harness(1024);
        client.write_all(&[0x01, 0x02]).unwrap(); // 2 of 4 prefix bytes
        drop(client);
        match rx.recv().unwrap() {
            (0, SenderEvent::Errored(reason)) => {
                assert!(reason.contains("2 of 4"), "reason: {reason}")
            }
            other => panic!("expected Errored, got {:?}", discriminant_name(&other.1)),
        }
        h.join().unwrap();
    }

    #[test]
    fn reader_rejects_oversized_length_prefix() {
        // A hostile prefix must be refused before vec![0u8; len] runs.
        let (mut client, rx, h) = reader_harness(64);
        client.write_all(&65u32.to_le_bytes()).unwrap();
        client.write_all(&[0u8; 65]).unwrap();
        match rx.recv().unwrap() {
            (0, SenderEvent::Errored(reason)) => {
                assert!(reason.contains("exceeds maximum"), "reason: {reason}")
            }
            other => panic!("expected Errored, got {:?}", discriminant_name(&other.1)),
        }
        h.join().unwrap();
    }

    #[test]
    fn reader_accepts_boundary_and_zero_length_frames() {
        let (mut client, rx, h) = reader_harness(64);
        client.write_all(&64u32.to_le_bytes()).unwrap();
        client.write_all(&[7u8; 64]).unwrap(); // exactly max: allowed
        client.write_all(&0u32.to_le_bytes()).unwrap(); // empty frame
        drop(client);
        assert!(matches!(rx.recv().unwrap(), (0, SenderEvent::Frame(f)) if f.len() == 64));
        assert!(matches!(rx.recv().unwrap(), (0, SenderEvent::Frame(f)) if f.is_empty()));
        assert!(matches!(rx.recv().unwrap(), (0, SenderEvent::Closed)));
        h.join().unwrap();
    }

    fn discriminant_name(e: &SenderEvent) -> &'static str {
        match e {
            SenderEvent::Frame(_) => "Frame",
            SenderEvent::Closed => "Closed",
            SenderEvent::Errored(_) => "Errored",
        }
    }

    #[test]
    fn send_rejects_frames_over_max() {
        for t in [
            &ChannelTransport { max_frame_bytes: 64, ..ChannelTransport::default() }
                as &dyn Transport,
            &TcpTransport { max_frame_bytes: 64, ..TcpTransport::default() },
        ] {
            let mesh = t.mesh(2).unwrap();
            assert!(matches!(
                mesh.send(0, 1, vec![0u8; 65]),
                Err(NetError::FrameTooLarge { len: 65, max: 64 })
            ));
            mesh.send(0, 1, vec![0u8; 64]).unwrap(); // boundary: allowed
            mesh.send(0, 1, Vec::new()).unwrap(); // zero-length: allowed
            mesh.close(0).unwrap();
            mesh.close(1).unwrap();
            assert!(matches!(mesh.recv(1).unwrap(), Some((0, f)) if f.len() == 64));
            assert!(matches!(mesh.recv(1).unwrap(), Some((0, f)) if f.is_empty()));
            assert!(mesh.recv(1).unwrap().is_none());
        }
    }

    #[test]
    fn fail_surfaces_as_sender_error_then_eof() {
        for t in [&ChannelTransport::default() as &dyn Transport, &TcpTransport::default()] {
            let mesh = t.mesh(2).unwrap();
            mesh.send(0, 1, vec![1, 2, 3]).unwrap();
            mesh.fail(0, "injected death").unwrap();
            mesh.close(1).unwrap();
            assert!(matches!(mesh.recv(1).unwrap(), Some((0, f)) if f == [1, 2, 3]));
            assert!(matches!(
                mesh.recv(1),
                Err(NetError::Sender { from: 0, .. })
            ));
            // The failed channel still counts toward end-of-stream.
            assert!(mesh.recv(1).unwrap().is_none());
        }
    }

    #[test]
    fn accept_times_out_against_absent_peer() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let deadline = Instant::now() + Duration::from_millis(50);
        match accept_with_deadline(&listener, deadline, 0) {
            Err(NetError::Timeout(_)) => {}
            other => panic!("expected Timeout, got {other:?}"),
        }
    }

    #[test]
    fn handshake_times_out_against_stalled_peer() {
        // A peer that connects but never sends its handshake must not
        // hang the reader forever.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _stalled = TcpStream::connect(addr).unwrap();
        let (conn, _) = listener.accept().unwrap();
        conn.set_read_timeout(Some(Duration::from_millis(50))).unwrap();
        let mut conn = conn;
        let mut hs = [0u8; 4];
        let e = conn.read_exact(&mut hs).map_err(|e| io_err("handshake", e));
        assert!(matches!(e, Err(NetError::Timeout(_))), "got {e:?}");
    }
}
