//! Worker-to-worker frame transports.
//!
//! A [`Transport`] builds a [`Mesh`] connecting `W` worker endpoints.
//! Senders push opaque frames (already codec-encoded) to a destination
//! endpoint; each destination drains its inbox until every sender has
//! closed. Frame order is preserved **per (from, to) channel** — exactly
//! the guarantee a TCP stream gives — and nothing is promised about
//! cross-sender interleaving, so receivers that need determinism bucket
//! frames by sender (the exchange operators do).
//!
//! Two implementations:
//!
//! * [`ChannelTransport`] — crossbeam bounded channels, one inbox per
//!   destination. `send` blocks when the inbox is full: real backpressure,
//!   measurable as enqueue-block time. This is the default for
//!   `serialized` mode.
//! * [`TcpTransport`] — every (from, to) pair gets its own loopback TCP
//!   connection (`std::net`); frames travel length-prefixed through the
//!   kernel's socket buffers. Backpressure is the socket send buffer
//!   filling up. This is the multi-process-shaped configuration: swapping
//!   the loopback address for a remote one is the only change a true
//!   multi-node deployment needs at this layer.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crossbeam::channel::{bounded, Receiver, Sender};

use crate::{NetError, Result};

/// Bumps the process-wide per-transport send counters
/// (`net.<transport>.frames_sent` / `net.<transport>.bytes_sent`).
fn meter_send(transport: &str, bytes: usize) {
    let registry = lardb_obs::global();
    registry.counter(&format!("net.{transport}.frames_sent")).inc();
    registry
        .counter(&format!("net.{transport}.bytes_sent"))
        .add(bytes as u64);
}

/// Builds meshes over `W` workers.
pub trait Transport: Send + Sync {
    /// Connects all `workers × workers` channels and returns the mesh.
    fn mesh(&self, workers: usize) -> Result<Box<dyn Mesh>>;

    /// Short name for stats / display.
    fn name(&self) -> &'static str;
}

/// A connected set of worker endpoints.
///
/// Contract: each endpoint index is driven by at most one sending thread
/// and one receiving thread at a time. `send` may block (backpressure).
/// After a sender calls [`Mesh::close`], its channels deliver no more
/// frames; once **all** senders have closed, `recv` returns `Ok(None)`.
pub trait Mesh: Send + Sync {
    /// Ships one frame from endpoint `from` to endpoint `to`, blocking
    /// while the destination's inbox (or socket buffer) is full.
    fn send(&self, from: usize, to: usize, frame: Vec<u8>) -> Result<()>;

    /// Declares endpoint `from` done sending (to every destination).
    fn close(&self, from: usize) -> Result<()>;

    /// Receives the next frame addressed to `to`, tagged with its sender.
    /// Returns `Ok(None)` when every sender has closed.
    fn recv(&self, to: usize) -> Result<Option<(usize, Vec<u8>)>>;
}

/// `(sender, payload)`; `None` payload = that sender closed.
type Msg = (usize, Option<Vec<u8>>);

// --------------------------------------------------- in-process channels

/// Bounded-crossbeam-channel mesh: the in-process transport.
#[derive(Debug, Clone)]
pub struct ChannelTransport {
    /// Inbox capacity per destination, in frames. Small on purpose: a full
    /// inbox makes `send` block, which is the backpressure the per-channel
    /// enqueue-block meter observes.
    pub capacity: usize,
}

impl Default for ChannelTransport {
    fn default() -> Self {
        ChannelTransport { capacity: 32 }
    }
}

struct ChannelMesh {
    txs: Vec<Sender<Msg>>,
    rxs: Vec<Receiver<Msg>>,
    /// Per-destination count of senders that have closed.
    eofs: Vec<AtomicUsize>,
    workers: usize,
}

impl Transport for ChannelTransport {
    fn mesh(&self, workers: usize) -> Result<Box<dyn Mesh>> {
        let mut txs = Vec::with_capacity(workers);
        let mut rxs = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = bounded(self.capacity.max(1));
            txs.push(tx);
            rxs.push(rx);
        }
        let eofs = (0..workers).map(|_| AtomicUsize::new(0)).collect();
        Ok(Box::new(ChannelMesh { txs, rxs, eofs, workers }))
    }

    fn name(&self) -> &'static str {
        "channel"
    }
}

impl Mesh for ChannelMesh {
    fn send(&self, from: usize, to: usize, frame: Vec<u8>) -> Result<()> {
        meter_send("channel", frame.len());
        self.txs[to]
            .send((from, Some(frame)))
            .map_err(|_| NetError::Transport(format!("channel to worker {to} disconnected")))
    }

    fn close(&self, from: usize) -> Result<()> {
        for to in 0..self.workers {
            self.txs[to]
                .send((from, None))
                .map_err(|_| NetError::Transport(format!("channel to worker {to} disconnected")))?;
        }
        Ok(())
    }

    fn recv(&self, to: usize) -> Result<Option<(usize, Vec<u8>)>> {
        loop {
            if self.eofs[to].load(Ordering::Acquire) >= self.workers {
                return Ok(None);
            }
            let (from, payload) = self.rxs[to]
                .recv()
                .map_err(|_| NetError::Transport(format!("inbox of worker {to} disconnected")))?;
            match payload {
                Some(frame) => return Ok(Some((from, frame))),
                None => {
                    self.eofs[to].fetch_add(1, Ordering::AcqRel);
                }
            }
        }
    }
}

// -------------------------------------------------------- loopback TCP

/// Loopback-TCP mesh: every (from, to) pair is a real `std::net` socket.
#[derive(Debug, Clone)]
pub struct TcpTransport {
    /// Inbox capacity per destination, in frames (reader threads stop
    /// pulling off the socket when the inbox is full, so socket buffers —
    /// and then the sender — back up: end-to-end backpressure).
    pub capacity: usize,
}

impl Default for TcpTransport {
    fn default() -> Self {
        TcpTransport { capacity: 32 }
    }
}

struct TcpMesh {
    /// Outgoing streams, indexed `from * workers + to`.
    streams: Vec<Mutex<TcpStream>>,
    rxs: Vec<Receiver<Msg>>,
    eofs: Vec<AtomicUsize>,
    workers: usize,
}

fn io_err(context: &str, e: std::io::Error) -> NetError {
    NetError::Transport(format!("{context}: {e}"))
}

impl Transport for TcpTransport {
    fn mesh(&self, workers: usize) -> Result<Box<dyn Mesh>> {
        // One listener per destination endpoint.
        let mut listeners = Vec::with_capacity(workers);
        let mut ports = Vec::with_capacity(workers);
        for to in 0..workers {
            let l = TcpListener::bind("127.0.0.1:0")
                .map_err(|e| io_err(&format!("bind endpoint {to}"), e))?;
            ports.push(
                l.local_addr()
                    .map_err(|e| io_err(&format!("local_addr endpoint {to}"), e))?
                    .port(),
            );
            listeners.push(l);
        }
        // Connect the full mesh first (the kernel backlog holds them), then
        // accept. Each connection handshakes with its sender index.
        let mut streams = Vec::with_capacity(workers * workers);
        for from in 0..workers {
            for (to, port) in ports.iter().enumerate() {
                let mut s = TcpStream::connect(("127.0.0.1", *port))
                    .map_err(|e| io_err(&format!("connect {from}→{to}"), e))?;
                s.set_nodelay(true).ok();
                s.write_all(&(from as u32).to_le_bytes())
                    .map_err(|e| io_err(&format!("handshake {from}→{to}"), e))?;
                streams.push(Mutex::new(s));
            }
        }
        // Accept and spawn one reader thread per incoming connection; each
        // pushes frames into the destination's bounded inbox.
        let mut rxs = Vec::with_capacity(workers);
        for (to, listener) in listeners.into_iter().enumerate() {
            let (tx, rx) = bounded::<Msg>(self.capacity.max(1));
            for _ in 0..workers {
                let (mut conn, _) = listener
                    .accept()
                    .map_err(|e| io_err(&format!("accept on endpoint {to}"), e))?;
                let mut hs = [0u8; 4];
                conn.read_exact(&mut hs)
                    .map_err(|e| io_err(&format!("handshake on endpoint {to}"), e))?;
                let from = u32::from_le_bytes(hs) as usize;
                let tx = tx.clone();
                std::thread::Builder::new()
                    .name(format!("lardb-net-rx-{from}-{to}"))
                    .spawn(move || reader_loop(conn, from, tx))
                    .map_err(|e| io_err("spawn reader", e))?;
            }
            rxs.push(rx);
        }
        let eofs = (0..workers).map(|_| AtomicUsize::new(0)).collect();
        Ok(Box::new(TcpMesh { streams, rxs, eofs, workers }))
    }

    fn name(&self) -> &'static str {
        "tcp"
    }
}

/// Drains one incoming connection: length-prefixed frames until EOF.
fn reader_loop(mut conn: TcpStream, from: usize, tx: Sender<Msg>) {
    loop {
        let mut len_buf = [0u8; 4];
        match conn.read_exact(&mut len_buf) {
            Ok(()) => {}
            // Clean shutdown (or peer vanished): either way this sender is
            // done; receivers treat it as a close.
            Err(_) => {
                let _ = tx.send((from, None));
                return;
            }
        }
        let len = u32::from_le_bytes(len_buf) as usize;
        let mut frame = vec![0u8; len];
        if conn.read_exact(&mut frame).is_err() {
            let _ = tx.send((from, None));
            return;
        }
        if tx.send((from, Some(frame))).is_err() {
            return; // receiver went away; stop pulling
        }
    }
}

impl Mesh for TcpMesh {
    fn send(&self, from: usize, to: usize, frame: Vec<u8>) -> Result<()> {
        meter_send("tcp", frame.len());
        let mut s = self.streams[from * self.workers + to]
            .lock()
            .map_err(|_| NetError::Transport("stream lock poisoned".into()))?;
        s.write_all(&(frame.len() as u32).to_le_bytes())
            .and_then(|_| s.write_all(&frame))
            .map_err(|e| io_err(&format!("send {from}→{to}"), e))
    }

    fn close(&self, from: usize) -> Result<()> {
        for to in 0..self.workers {
            let s = self.streams[from * self.workers + to]
                .lock()
                .map_err(|_| NetError::Transport("stream lock poisoned".into()))?;
            s.shutdown(std::net::Shutdown::Write)
                .map_err(|e| io_err(&format!("close {from}→{to}"), e))?;
        }
        Ok(())
    }

    fn recv(&self, to: usize) -> Result<Option<(usize, Vec<u8>)>> {
        loop {
            if self.eofs[to].load(Ordering::Acquire) >= self.workers {
                return Ok(None);
            }
            let (from, payload) = self.rxs[to]
                .recv()
                .map_err(|_| NetError::Transport(format!("inbox of worker {to} disconnected")))?;
            match payload {
                Some(frame) => return Ok(Some((from, frame))),
                None => {
                    self.eofs[to].fetch_add(1, Ordering::AcqRel);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shuffles distinct payloads through a full mesh and checks each
    /// endpoint sees every sender's frames, in per-channel order.
    fn exercise(transport: &dyn Transport, workers: usize, frames_per_channel: usize) {
        let mesh = transport.mesh(workers).unwrap();
        let mesh = mesh.as_ref();
        std::thread::scope(|s| {
            let receivers: Vec<_> = (0..workers)
                .map(|to| {
                    s.spawn(move || {
                        let mut got: Vec<Vec<Vec<u8>>> = vec![Vec::new(); workers];
                        while let Some((from, frame)) = mesh.recv(to).unwrap() {
                            got[from].push(frame);
                        }
                        got
                    })
                })
                .collect();
            for from in 0..workers {
                s.spawn(move || {
                    for seq in 0..frames_per_channel {
                        for to in 0..workers {
                            let payload = vec![from as u8, to as u8, seq as u8];
                            mesh.send(from, to, payload).unwrap();
                        }
                    }
                    mesh.close(from).unwrap();
                });
            }
            for (to, h) in receivers.into_iter().enumerate() {
                let got = h.join().unwrap();
                for (from, frames) in got.iter().enumerate() {
                    assert_eq!(frames.len(), frames_per_channel, "{from}→{to}");
                    for (seq, frame) in frames.iter().enumerate() {
                        assert_eq!(frame, &vec![from as u8, to as u8, seq as u8]);
                    }
                }
            }
        });
    }

    #[test]
    fn channel_mesh_delivers_in_order() {
        exercise(&ChannelTransport::default(), 4, 17);
    }

    #[test]
    fn channel_mesh_backpressure_does_not_deadlock() {
        // Capacity 1 forces senders to block constantly; concurrent
        // receivers must keep the system moving.
        exercise(&ChannelTransport { capacity: 1 }, 3, 50);
    }

    #[test]
    fn tcp_mesh_delivers_in_order() {
        exercise(&TcpTransport::default(), 3, 11);
    }

    #[test]
    fn tcp_mesh_single_worker() {
        exercise(&TcpTransport::default(), 1, 5);
    }

    #[test]
    fn empty_mesh_recv_terminates() {
        for t in [&ChannelTransport::default() as &dyn Transport, &TcpTransport::default()] {
            let mesh = t.mesh(2).unwrap();
            mesh.close(0).unwrap();
            mesh.close(1).unwrap();
            assert!(mesh.recv(0).unwrap().is_none());
            assert!(mesh.recv(1).unwrap().is_none());
        }
    }
}
