//! Server control-protocol messages (`lardb serve`).
//!
//! The query server speaks the same wire discipline as exchange protocol
//! v2 — every message is one frame with the [`FRAME_MAGIC`] byte, the
//! [`WIRE_VERSION`], a kind byte, and a `u32` count — but uses its own
//! kind range (4–11) so the exchange decoder and the server decoder can
//! never mistake each other's traffic:
//!
//! | kind | message | direction | payload |
//! |-----:|---|---|---|
//! | 4 | `Hello`   | client → server | tenant + auth token strings |
//! | 5 | `Query`   | client → server | SQL text |
//! | 6 | `Prepare` | client → server | SQL text |
//! | 7 | `Execute` | client → server | `u64` statement id |
//! | 8 | `Kill`    | client → server | `u64` query id |
//! | 9 | `Close`   | client → server | — |
//! | 10 | `Ok`     | server → client | `u8` code + `u64` value + text |
//! | 11 | `Error`  | server → client | `u16` code + message |
//!
//! Query *results* are not a new format: the server streams the existing
//! data frames (kind 2 schema, kind 1 rows, kind 3 fin) and the client
//! verifies the fin summary exactly like an exchange receiver does, so a
//! truncated result is a detected error on the client, never a silently
//! short row set. [`decode_message`] therefore accepts the data kinds too
//! and wraps them as [`Message::Data`].
//!
//! Like the codec, decoding is *checked*: truncated or corrupt input
//! yields a [`CodecError`], never a panic.

use crate::codec::{self, CodecError, Frame, FRAME_MAGIC, WIRE_VERSION};

/// Result alias (codec errors).
pub type Result<T> = std::result::Result<T, CodecError>;

const KIND_HELLO: u8 = 4;
const KIND_QUERY: u8 = 5;
const KIND_PREPARE: u8 = 6;
const KIND_EXECUTE: u8 = 7;
const KIND_KILL: u8 = 8;
const KIND_CLOSE: u8 = 9;
const KIND_OK: u8 = 10;
const KIND_ERROR: u8 = 11;

/// `Ok` code: generic acknowledgement (handshake accepted, `value` is the
/// session id).
pub const OK_HELLO: u8 = 0;
/// `Ok` code: DDL completed (`Response::Done`).
pub const OK_DONE: u8 = 1;
/// `Ok` code: rows inserted; `value` is the count.
pub const OK_INSERTED: u8 = 2;
/// `Ok` code: textual payload (EXPLAIN output) in `text`.
pub const OK_TEXT: u8 = 3;
/// `Ok` code: statement prepared; `value` is the statement id.
pub const OK_PREPARED: u8 = 4;
/// `Ok` code: kill delivered; `value` is the query id.
pub const OK_KILLED: u8 = 5;
/// `Ok` code: session closing.
pub const OK_CLOSED: u8 = 6;

/// `Error` code: generic query failure (message carries the engine error).
pub const ERR_QUERY: u16 = 1;
/// `Error` code: admission control rejected the query — the server (or the
/// tenant's quota) is saturated. Typed so clients can distinguish
/// backpressure from failure.
pub const ERR_SATURATED: u16 = 2;
/// `Error` code: handshake rejected (bad auth token or tenant).
pub const ERR_AUTH: u16 = 3;
/// `Error` code: the query was killed (KILL statement or client
/// disconnect).
pub const ERR_KILLED: u16 = 4;
/// `Error` code: malformed protocol traffic.
pub const ERR_PROTOCOL: u16 = 5;

/// One server-protocol message: a control frame, or one of the existing
/// data frames wrapped as [`Message::Data`].
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Session handshake: tenant name + auth token (empty when the server
    /// runs open).
    Hello {
        /// Tenant this session bills its memory/CPU against.
        tenant: String,
        /// Shared-secret token; ignored by servers running open.
        auth: String,
    },
    /// Execute one SQL statement.
    Query {
        /// The statement text.
        sql: String,
    },
    /// Parse/bind a statement for later execution.
    Prepare {
        /// The statement text.
        sql: String,
    },
    /// Execute a previously prepared statement.
    Execute {
        /// Statement id from the `Ok(OK_PREPARED)` reply.
        stmt_id: u64,
    },
    /// Abort a running query by id (any session's).
    Kill {
        /// The query id, as shown by `SHOW SESSIONS`.
        query_id: u64,
    },
    /// Orderly session shutdown.
    Close,
    /// Success acknowledgement. `code` is one of the `OK_*` constants;
    /// `value` and `text` carry code-specific payload.
    Ok {
        /// One of the `OK_*` constants.
        code: u8,
        /// Code-specific numeric payload (session id, row count, …).
        value: u64,
        /// Code-specific text payload (EXPLAIN output, …).
        text: String,
    },
    /// Failure. `code` is one of the `ERR_*` constants.
    Error {
        /// One of the `ERR_*` constants.
        code: u16,
        /// Human-readable cause.
        message: String,
    },
    /// A result-stream data frame (schema / rows / fin), unchanged from
    /// the exchange wire format.
    Data(Frame),
}

fn header(kind: u8) -> Vec<u8> {
    let mut buf = Vec::with_capacity(32);
    buf.push(FRAME_MAGIC);
    buf.push(WIRE_VERSION);
    buf.push(kind);
    buf.extend_from_slice(&0u32.to_le_bytes());
    buf
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

/// Encodes one message as a self-contained frame. Data messages re-encode
/// through the exchange codec (identical bytes to an exchange frame).
pub fn encode_message(msg: &Message) -> Vec<u8> {
    match msg {
        Message::Hello { tenant, auth } => {
            let mut buf = header(KIND_HELLO);
            put_str(&mut buf, tenant);
            put_str(&mut buf, auth);
            buf
        }
        Message::Query { sql } => {
            let mut buf = header(KIND_QUERY);
            put_str(&mut buf, sql);
            buf
        }
        Message::Prepare { sql } => {
            let mut buf = header(KIND_PREPARE);
            put_str(&mut buf, sql);
            buf
        }
        Message::Execute { stmt_id } => {
            let mut buf = header(KIND_EXECUTE);
            buf.extend_from_slice(&stmt_id.to_le_bytes());
            buf
        }
        Message::Kill { query_id } => {
            let mut buf = header(KIND_KILL);
            buf.extend_from_slice(&query_id.to_le_bytes());
            buf
        }
        Message::Close => header(KIND_CLOSE),
        Message::Ok { code, value, text } => {
            let mut buf = header(KIND_OK);
            buf.push(*code);
            buf.extend_from_slice(&value.to_le_bytes());
            put_str(&mut buf, text);
            buf
        }
        Message::Error { code, message } => {
            let mut buf = header(KIND_ERROR);
            buf.extend_from_slice(&code.to_le_bytes());
            put_str(&mut buf, message);
            buf
        }
        Message::Data(frame) => match frame {
            Frame::Rows(rows) => codec::encode_rows_frame(rows),
            Frame::Schema(schema) => codec::encode_schema_frame(schema),
            Frame::Fin(fin) => codec::encode_fin_frame(fin),
            Frame::Trace(id) => codec::encode_trace_frame(*id),
        },
    }
}

/// A minimal checked reader for control payloads (the codec's reader is
/// private to it; control messages only need strings and fixed ints).
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8]> {
        let remaining = self.buf.len() - self.pos;
        if remaining < n {
            return Err(CodecError::Truncated { what, needed: n, available: remaining });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &'static str) -> Result<u16> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn str(&mut self, what: &'static str) -> Result<String> {
        let b = self.take(4, what)?;
        let len = u32::from_le_bytes([b[0], b[1], b[2], b[3]]) as usize;
        let remaining = self.buf.len() - self.pos;
        if len > remaining {
            return Err(CodecError::LengthOverflow {
                what,
                len: len as u64,
                available: remaining,
            });
        }
        let bytes = self.take(len, what)?;
        std::str::from_utf8(bytes)
            .map(str::to_string)
            .map_err(|_| CodecError::BadUtf8)
    }

    fn finish(self) -> Result<()> {
        let remaining = self.buf.len() - self.pos;
        if remaining > 0 {
            return Err(CodecError::TrailingBytes(remaining));
        }
        Ok(())
    }
}

/// Decodes one server-protocol message. Data-frame kinds (1–3) are
/// delegated to the exchange codec and wrapped as [`Message::Data`].
pub fn decode_message(buf: &[u8]) -> Result<Message> {
    if buf.len() < 3 {
        return Err(CodecError::Truncated {
            what: "message header",
            needed: 3,
            available: buf.len(),
        });
    }
    if buf[0] != FRAME_MAGIC {
        return Err(CodecError::BadMagic(buf[0]));
    }
    if buf[1] != WIRE_VERSION {
        return Err(CodecError::UnsupportedVersion(buf[1]));
    }
    let kind = buf[2];
    // Exchange data kinds (1–3) and the trace-context kind (12) decode
    // through the exchange codec.
    if (1..=3).contains(&kind) || kind == 12 {
        return codec::decode_frame(buf).map(Message::Data);
    }
    // Control frames: skip the header's unused u32 count.
    let mut c = Cursor { buf, pos: 3 };
    let count = c.take(4, "message count")?;
    if count != [0, 0, 0, 0] {
        return Err(CodecError::BadTag { what: "message count", tag: count[0] });
    }
    let msg = match kind {
        KIND_HELLO => Message::Hello {
            tenant: c.str("HELLO tenant")?,
            auth: c.str("HELLO auth")?,
        },
        KIND_QUERY => Message::Query { sql: c.str("QUERY sql")? },
        KIND_PREPARE => Message::Prepare { sql: c.str("PREPARE sql")? },
        KIND_EXECUTE => Message::Execute { stmt_id: c.u64("EXECUTE stmt id")? },
        KIND_KILL => Message::Kill { query_id: c.u64("KILL query id")? },
        KIND_CLOSE => Message::Close,
        KIND_OK => Message::Ok {
            code: c.u8("OK code")?,
            value: c.u64("OK value")?,
            text: c.str("OK text")?,
        },
        KIND_ERROR => Message::Error {
            code: c.u16("ERROR code")?,
            message: c.str("ERROR message")?,
        },
        tag => return Err(CodecError::BadTag { what: "message kind", tag }),
    };
    c.finish()?;
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lardb_storage::{Row, Value};

    fn samples() -> Vec<Message> {
        vec![
            Message::Hello { tenant: "acme".into(), auth: "s3cr3t".into() },
            Message::Hello { tenant: String::new(), auth: String::new() },
            Message::Query { sql: "SELECT 1 AS one".into() },
            Message::Prepare { sql: "SELECT * FROM t — ünïcode".into() },
            Message::Execute { stmt_id: u64::MAX },
            Message::Kill { query_id: 42 },
            Message::Close,
            Message::Ok { code: OK_INSERTED, value: 128, text: String::new() },
            Message::Ok { code: OK_TEXT, value: 0, text: "== Plan ==".into() },
            Message::Error { code: ERR_SATURATED, message: "queue full".into() },
            Message::Data(Frame::Rows(vec![Row::new(vec![Value::Integer(7)])])),
        ]
    }

    #[test]
    fn message_roundtrip_all_variants() {
        for m in samples() {
            let bytes = encode_message(&m);
            let back = decode_message(&bytes).unwrap();
            assert_eq!(m, back);
        }
    }

    #[test]
    fn truncation_always_errors() {
        for m in samples() {
            let bytes = encode_message(&m);
            for cut in 0..bytes.len() {
                assert!(
                    decode_message(&bytes[..cut]).is_err(),
                    "{m:?} decoded at cut {cut}"
                );
            }
        }
    }

    #[test]
    fn header_errors() {
        let bytes = encode_message(&Message::Close);
        let mut bad = bytes.clone();
        bad[0] = 0;
        assert!(matches!(decode_message(&bad), Err(CodecError::BadMagic(0))));
        let mut bad = bytes.clone();
        bad[1] = 99;
        assert!(matches!(decode_message(&bad), Err(CodecError::UnsupportedVersion(99))));
        let mut bad = bytes.clone();
        bad[2] = 200;
        assert!(matches!(
            decode_message(&bad),
            Err(CodecError::BadTag { what: "message kind", tag: 200 })
        ));
        let mut long = bytes;
        long.push(0xFF);
        assert!(matches!(decode_message(&long), Err(CodecError::TrailingBytes(1))));
    }

    #[test]
    fn hostile_string_length_rejected_before_allocation() {
        // A QUERY claiming a 4 GB SQL string in a tiny buffer must fail the
        // length check, not attempt the allocation.
        let mut buf = vec![FRAME_MAGIC, WIRE_VERSION, KIND_QUERY, 0, 0, 0, 0];
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&[0u8; 8]);
        assert!(matches!(
            decode_message(&buf),
            Err(CodecError::LengthOverflow { what: "QUERY sql", .. })
        ));
    }

    #[test]
    fn data_frames_pass_through_unchanged() {
        // The server protocol's data frames ARE exchange frames: the bytes
        // must be identical so fin checksums computed by either side agree.
        let rows = vec![Row::new(vec![Value::Integer(1), Value::varchar("x")])];
        let direct = codec::encode_rows_frame(&rows);
        let wrapped = encode_message(&Message::Data(Frame::Rows(rows)));
        assert_eq!(direct, wrapped);
    }

    #[test]
    fn nonzero_count_on_control_frame_rejected() {
        let mut buf = encode_message(&Message::Close);
        buf[3] = 1;
        assert!(matches!(
            decode_message(&buf),
            Err(CodecError::BadTag { what: "message count", .. })
        ));
    }
}
