//! # lardb-net — the message-passing exchange layer
//!
//! The paper's central claim (§2.1, §3.4) is that distributed matrix
//! arithmetic is plain distributed relational algebra over tiles. For that
//! claim to be *exercised* rather than simulated, data crossing a partition
//! boundary has to move as bytes through a real channel, not as `Arc`
//! pointers between threads. This crate provides the two pieces that make
//! the exchange operators honest:
//!
//! * [`codec`] — a hand-rolled, dependency-free binary wire format for
//!   [`Schema`](lardb_storage::Schema), [`Row`](lardb_storage::Row) and
//!   every [`Value`](lardb_storage::Value) variant (including
//!   `MATRIX[r][c]`, `VECTOR[n]` with its §3.3 label, and
//!   `LABELED_SCALAR`), with explicit little-endian framing, a version
//!   byte, and checked decode errors that never panic on corrupt input.
//! * [`transport`] — a [`Transport`] abstraction over
//!   worker-to-worker frame channels, with two implementations: an
//!   in-process bounded-channel mesh (crossbeam, with backpressure — the
//!   default for `serialized` mode) and a loopback-TCP mesh (`std::net`)
//!   that pushes every frame through real sockets for
//!   multi-process-shaped testing.
//!
//! The executor in `lardb-exec` picks a [`TransportMode`] per query:
//! `pointer` keeps the historical zero-copy exchange (bytes *estimated*),
//! while `serialized` and `tcp` encode every boundary-crossing batch
//! through the codec and meter **actual encoded bytes**.

pub mod codec;
pub mod fault;
pub mod msg;
pub mod transport;

pub use codec::{CodecError, FinSummary, Frame, FRAME_MAGIC, WIRE_VERSION};
pub use msg::{decode_message, encode_message, Message};
pub use fault::{FaultKind, FaultPlan, FaultyTransport};
pub use transport::{ChannelTransport, Mesh, TcpTransport, Transport};

/// How exchange operators move rows between workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportMode {
    /// Zero-copy: rows move as `Arc` pointers between threads and shuffle
    /// bytes are *estimated* from payload sizes (the original simulation).
    #[default]
    Pointer,
    /// Every batch crossing a partition boundary is encoded through the
    /// wire codec and sent over an in-process bounded channel; shuffle
    /// bytes are the actual encoded frame sizes.
    Serialized,
    /// Like `Serialized`, but frames travel through loopback TCP sockets —
    /// the multi-process-shaped configuration.
    Tcp,
}

impl TransportMode {
    /// All modes, in ablation order.
    pub const ALL: [TransportMode; 3] =
        [TransportMode::Pointer, TransportMode::Serialized, TransportMode::Tcp];

    /// Parses a mode name as used by CLI flags (`pointer`, `serialized`,
    /// `tcp`).
    pub fn parse(s: &str) -> Option<TransportMode> {
        match s.to_ascii_lowercase().as_str() {
            "pointer" => Some(TransportMode::Pointer),
            "serialized" | "channel" => Some(TransportMode::Serialized),
            "tcp" => Some(TransportMode::Tcp),
            _ => None,
        }
    }

    /// The CLI / display name.
    pub fn label(&self) -> &'static str {
        match self {
            TransportMode::Pointer => "pointer",
            TransportMode::Serialized => "serialized",
            TransportMode::Tcp => "tcp",
        }
    }

    /// True when exchanges move real encoded bytes (and therefore meter
    /// exact sizes rather than estimates).
    pub fn is_serialized(&self) -> bool {
        !matches!(self, TransportMode::Pointer)
    }
}

impl std::fmt::Display for TransportMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Default cap on a single frame's length prefix: 64 MiB. A corrupt or
/// hostile `u32` prefix must never drive `vec![0u8; len]` past this.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 64 * 1024 * 1024;

/// Default network operation timeout (connect / accept / handshake /
/// frame read), in milliseconds.
pub const DEFAULT_NET_TIMEOUT_MS: u64 = 30_000;

/// Network-layer knobs shared by every transport, plus the optional
/// fault-injection plan for chaos testing.
#[derive(Debug, Clone, PartialEq)]
pub struct NetConfig {
    /// Timeout for connect/accept/handshake and per-frame reads, in
    /// milliseconds. A stalled peer surfaces as [`NetError::Timeout`]
    /// instead of hanging the query forever.
    pub timeout_ms: u64,
    /// Maximum accepted frame size in bytes, enforced on both the send
    /// path and the receive path *before* the frame buffer is allocated.
    pub max_frame_bytes: usize,
    /// When set, serialized exchanges wrap their transport in a
    /// [`FaultyTransport`] driven by this deterministic schedule.
    pub faults: Option<FaultPlan>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            timeout_ms: DEFAULT_NET_TIMEOUT_MS,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            faults: None,
        }
    }
}

/// Errors raised by the codec or a transport.
#[derive(Debug, Clone, PartialEq)]
pub enum NetError {
    /// Malformed or truncated wire data.
    Codec(CodecError),
    /// A channel or socket failed (peer gone, bind/connect refused, …).
    Transport(String),
    /// A network operation exceeded its configured deadline.
    Timeout(String),
    /// A frame's length prefix exceeded the configured maximum.
    FrameTooLarge { len: u64, max: u64 },
    /// One sender's channel ended abnormally (mid-frame EOF, read error,
    /// injected kill) — distinct from a clean close, so the receiver can
    /// flag truncation instead of silently accepting short results.
    Sender { from: usize, reason: String },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Codec(e) => write!(f, "codec error: {e}"),
            NetError::Transport(m) => write!(f, "transport error: {m}"),
            NetError::Timeout(m) => write!(f, "network timeout: {m}"),
            NetError::FrameTooLarge { len, max } => {
                write!(f, "frame length {len} exceeds maximum {max} bytes")
            }
            NetError::Sender { from, reason } => {
                write!(f, "sender {from} failed: {reason}")
            }
        }
    }
}

impl std::error::Error for NetError {}

impl From<CodecError> for NetError {
    fn from(e: CodecError) -> Self {
        NetError::Codec(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, NetError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parse_roundtrip() {
        for m in TransportMode::ALL {
            assert_eq!(TransportMode::parse(m.label()), Some(m));
        }
        assert_eq!(TransportMode::parse("SERIALIZED"), Some(TransportMode::Serialized));
        assert_eq!(TransportMode::parse("bogus"), None);
        assert!(!TransportMode::Pointer.is_serialized());
        assert!(TransportMode::Tcp.is_serialized());
    }
}
