//! # lardb-net — the message-passing exchange layer
//!
//! The paper's central claim (§2.1, §3.4) is that distributed matrix
//! arithmetic is plain distributed relational algebra over tiles. For that
//! claim to be *exercised* rather than simulated, data crossing a partition
//! boundary has to move as bytes through a real channel, not as `Arc`
//! pointers between threads. This crate provides the two pieces that make
//! the exchange operators honest:
//!
//! * [`codec`] — a hand-rolled, dependency-free binary wire format for
//!   [`Schema`](lardb_storage::Schema), [`Row`](lardb_storage::Row) and
//!   every [`Value`](lardb_storage::Value) variant (including
//!   `MATRIX[r][c]`, `VECTOR[n]` with its §3.3 label, and
//!   `LABELED_SCALAR`), with explicit little-endian framing, a version
//!   byte, and checked decode errors that never panic on corrupt input.
//! * [`transport`] — a [`Transport`] abstraction over
//!   worker-to-worker frame channels, with two implementations: an
//!   in-process bounded-channel mesh (crossbeam, with backpressure — the
//!   default for `serialized` mode) and a loopback-TCP mesh (`std::net`)
//!   that pushes every frame through real sockets for
//!   multi-process-shaped testing.
//!
//! The executor in `lardb-exec` picks a [`TransportMode`] per query:
//! `pointer` keeps the historical zero-copy exchange (bytes *estimated*),
//! while `serialized` and `tcp` encode every boundary-crossing batch
//! through the codec and meter **actual encoded bytes**.

pub mod codec;
pub mod transport;

pub use codec::{CodecError, Frame, FRAME_MAGIC, WIRE_VERSION};
pub use transport::{ChannelTransport, Mesh, TcpTransport, Transport};

/// How exchange operators move rows between workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportMode {
    /// Zero-copy: rows move as `Arc` pointers between threads and shuffle
    /// bytes are *estimated* from payload sizes (the original simulation).
    #[default]
    Pointer,
    /// Every batch crossing a partition boundary is encoded through the
    /// wire codec and sent over an in-process bounded channel; shuffle
    /// bytes are the actual encoded frame sizes.
    Serialized,
    /// Like `Serialized`, but frames travel through loopback TCP sockets —
    /// the multi-process-shaped configuration.
    Tcp,
}

impl TransportMode {
    /// All modes, in ablation order.
    pub const ALL: [TransportMode; 3] =
        [TransportMode::Pointer, TransportMode::Serialized, TransportMode::Tcp];

    /// Parses a mode name as used by CLI flags (`pointer`, `serialized`,
    /// `tcp`).
    pub fn parse(s: &str) -> Option<TransportMode> {
        match s.to_ascii_lowercase().as_str() {
            "pointer" => Some(TransportMode::Pointer),
            "serialized" | "channel" => Some(TransportMode::Serialized),
            "tcp" => Some(TransportMode::Tcp),
            _ => None,
        }
    }

    /// The CLI / display name.
    pub fn label(&self) -> &'static str {
        match self {
            TransportMode::Pointer => "pointer",
            TransportMode::Serialized => "serialized",
            TransportMode::Tcp => "tcp",
        }
    }

    /// True when exchanges move real encoded bytes (and therefore meter
    /// exact sizes rather than estimates).
    pub fn is_serialized(&self) -> bool {
        !matches!(self, TransportMode::Pointer)
    }
}

impl std::fmt::Display for TransportMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Errors raised by the codec or a transport.
#[derive(Debug, Clone, PartialEq)]
pub enum NetError {
    /// Malformed or truncated wire data.
    Codec(CodecError),
    /// A channel or socket failed (peer gone, bind/connect refused, …).
    Transport(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Codec(e) => write!(f, "codec error: {e}"),
            NetError::Transport(m) => write!(f, "transport error: {m}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<CodecError> for NetError {
    fn from(e: CodecError) -> Self {
        NetError::Codec(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, NetError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parse_roundtrip() {
        for m in TransportMode::ALL {
            assert_eq!(TransportMode::parse(m.label()), Some(m));
        }
        assert_eq!(TransportMode::parse("SERIALIZED"), Some(TransportMode::Serialized));
        assert_eq!(TransportMode::parse("bogus"), None);
        assert!(!TransportMode::Pointer.is_serialized());
        assert!(TransportMode::Tcp.is_serialized());
    }
}
