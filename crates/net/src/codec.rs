//! The binary wire format.
//!
//! Everything is **little-endian** and length-prefixed; nothing is
//! self-delimiting by accident. A frame looks like:
//!
//! ```text
//! ┌──────┬─────────┬──────┬─────────────┬─────────────────────────┐
//! │ 0xA7 │ version │ kind │ u32 payload │ payload …               │
//! │ magic│  (0x01) │  u8  │   count     │ (rows or one schema)    │
//! └──────┴─────────┴──────┴─────────────┴─────────────────────────┘
//! ```
//!
//! * kind `1` (rows): `count` rows follow, each `u32 arity` + values.
//! * kind `2` (schema): `count` is the column count; columns follow.
//! * kind `3` (fin): `count` is 0; three `u64`s follow — the channel's
//!   frame count, row count, and running FNV-1a checksum over every
//!   preceding frame's bytes. Exchange protocol v2: every sender ends
//!   every channel with a fin frame, so a receiver can prove it saw the
//!   whole stream (a missing or mismatching fin = truncation, surfaced
//!   as an error, never as a silently short result).
//! * kind `12` (trace): `count` is 0; one `u64` follows — the sender's
//!   query trace id, shipped as the channel's first frame when
//!   end-to-end tracing is on (kinds 4–11 are the server control
//!   protocol's, see `msg.rs`). Counted in the fin summary like any
//!   other frame.
//!
//! Every value starts with a tag byte:
//!
//! | tag | variant | payload |
//! |----:|---|---|
//! | 0 | `Null` | — |
//! | 1 | `Integer` | `i64` |
//! | 2 | `Double` | `f64` bits |
//! | 3 | `Boolean` | `u8` (0/1) |
//! | 4 | `Varchar` | `u32 len` + UTF-8 bytes |
//! | 5 | `LabeledScalar` | `f64` value + `i64` label |
//! | 6 | `Vector` | `u32 len` + `i64` label + `len × f64` |
//! | 7 | `Matrix` | `u32 rows` + `u32 cols` + `rows·cols × f64` |
//! | 8 | `SparseMatrix` | `u32 rows` + `u32 cols` + `u32 nnz` + nnz × (varint Δrow + varint col/Δcol + `f64`) |
//!
//! Sparse tiles ship **only their nonzeros**: entries stream in row-major
//! order, the row index as a delta from the previous entry's row and the
//! column either absolute (first entry of a row) or as the gap from the
//! previous column minus one (columns are strictly increasing within a
//! row). Deltas are LEB128 varints, so a million-edge tile costs a few
//! bytes per edge instead of `8·n²`. Decoded CSR structure is re-validated
//! (monotone, in-bounds) before construction, so a corrupted frame is a
//! typed error — never a mis-shapen tile.
//!
//! Doubles travel as raw IEEE-754 bit patterns, so NaNs (any payload) and
//! signed zeros roundtrip exactly. Decoding is *checked*: truncated or
//! corrupted input yields a [`CodecError`], never a panic, and length
//! fields are validated against the remaining buffer before any
//! allocation (a corrupt 4 GB length cannot OOM the decoder).

use std::sync::Arc;

use lardb_la::{LabeledScalar, Matrix, SparseMatrix, Vector};
use lardb_storage::{Column, DataType, Row, Schema, Value};

/// First byte of every frame.
pub const FRAME_MAGIC: u8 = 0xA7;
/// Wire-format version this build speaks. Version 2 added the fin frame
/// (kind 3) that ends every exchange channel.
pub const WIRE_VERSION: u8 = 2;

const KIND_ROWS: u8 = 1;
const KIND_SCHEMA: u8 = 2;
const KIND_FIN: u8 = 3;
// Kinds 4–11 belong to the server control protocol (`msg.rs`).
const KIND_TRACE: u8 = 12;

/// FNV-1a 64-bit offset basis: the seed of a fresh channel checksum.
pub const CHECKSUM_SEED: u64 = 0xCBF2_9CE4_8422_2325;

/// Folds `bytes` into a running FNV-1a 64 checksum. Start from
/// [`CHECKSUM_SEED`]; feed every frame the channel ships, in order.
/// Dependency-free and byte-order-independent-input, which is all a
/// truncation/corruption tripwire needs (this is not a MAC).
pub fn checksum_update(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(0x0000_0100_0000_01B3);
    }
    state
}

const TAG_NULL: u8 = 0;
const TAG_INTEGER: u8 = 1;
const TAG_DOUBLE: u8 = 2;
const TAG_BOOLEAN: u8 = 3;
const TAG_VARCHAR: u8 = 4;
const TAG_LABELED: u8 = 5;
const TAG_VECTOR: u8 = 6;
const TAG_MATRIX: u8 = 7;
const TAG_SPARSE_MATRIX: u8 = 8;

const DT_INTEGER: u8 = 0;
const DT_DOUBLE: u8 = 1;
const DT_BOOLEAN: u8 = 2;
const DT_VARCHAR: u8 = 3;
const DT_LABELED: u8 = 4;
const DT_VECTOR: u8 = 5;
const DT_MATRIX: u8 = 6;

/// A decode failure. Field names say what was being read when the input
/// ran out or made no sense.
#[derive(Debug, Clone, PartialEq)]
pub enum CodecError {
    /// Input ended before `needed` more bytes of `what` could be read.
    Truncated { what: &'static str, needed: usize, available: usize },
    /// The first byte was not [`FRAME_MAGIC`].
    BadMagic(u8),
    /// A frame from a future (or garbage) wire version.
    UnsupportedVersion(u8),
    /// An unknown tag byte for `what`.
    BadTag { what: &'static str, tag: u8 },
    /// A `VARCHAR` or identifier payload was not valid UTF-8.
    BadUtf8,
    /// A length field implies more payload than the buffer holds.
    LengthOverflow { what: &'static str, len: u64, available: usize },
    /// Bytes were left over after the frame's declared contents.
    TrailingBytes(usize),
    /// A structurally invalid payload (e.g. a sparse tile whose decoded
    /// indices are out of bounds or non-monotone).
    Malformed { what: &'static str },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated { what, needed, available } => write!(
                f,
                "truncated input reading {what}: needed {needed} bytes, {available} available"
            ),
            CodecError::BadMagic(b) => write!(f, "bad frame magic byte 0x{b:02x}"),
            CodecError::UnsupportedVersion(v) => write!(f, "unsupported wire version {v}"),
            CodecError::BadTag { what, tag } => write!(f, "unknown {what} tag {tag}"),
            CodecError::BadUtf8 => write!(f, "string payload is not valid UTF-8"),
            CodecError::LengthOverflow { what, len, available } => write!(
                f,
                "{what} length {len} exceeds remaining buffer ({available} bytes)"
            ),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after frame"),
            CodecError::Malformed { what } => write!(f, "malformed {what} payload"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Result alias for codec operations.
pub type Result<T> = std::result::Result<T, CodecError>;

/// A decoded frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// A batch of rows — what exchanges ship.
    Rows(Vec<Row>),
    /// A schema — handshake / catalog shipment.
    Schema(Schema),
    /// End-of-channel summary (exchange protocol v2).
    Fin(FinSummary),
    /// Trace-context propagation: the sender's query trace id, shipped
    /// first on a channel when end-to-end tracing is active so the
    /// receiving side can attribute its work to the same trace. Counted
    /// and checksummed like any other pre-fin frame.
    Trace(u64),
}

/// What one sender shipped down one channel, carried by the fin frame
/// that ends the channel. A receiver recomputes all three independently;
/// any mismatch (or a missing fin) is a detected truncation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FinSummary {
    /// Frames shipped before the fin (schema + row frames).
    pub frames: u64,
    /// Total rows across those frames.
    pub rows: u64,
    /// Running FNV-1a 64 over every preceding frame's encoded bytes,
    /// seeded with [`CHECKSUM_SEED`].
    pub checksum: u64,
}

// ------------------------------------------------------------- encoding

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// LEB128 unsigned varint — used by the sparse-tile index deltas.
fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Encoded byte length of a LEB128 varint.
fn varint_len(v: u64) -> usize {
    (64 - v.max(1).leading_zeros() as usize).div_ceil(7)
}

/// Streams one sparse tile's entries as row-major deltas: Δrow varint,
/// then absolute column (new row) or `col − prev_col − 1` (same row),
/// then the raw value bits.
fn encode_sparse_entries(m: &SparseMatrix, buf: &mut Vec<u8>) {
    let mut prev_row = 0usize;
    let mut prev_col = 0usize;
    let mut first = true;
    for (r, c, v) in m.iter() {
        let drow = r - prev_row;
        put_varint(buf, drow as u64);
        if first || drow > 0 {
            put_varint(buf, c as u64);
        } else {
            put_varint(buf, (c - prev_col - 1) as u64);
        }
        put_f64(buf, v);
        prev_row = r;
        prev_col = c;
        first = false;
    }
}

/// Appends one value's wire form to `buf`.
pub fn encode_value(v: &Value, buf: &mut Vec<u8>) {
    match v {
        Value::Null => buf.push(TAG_NULL),
        Value::Integer(i) => {
            buf.push(TAG_INTEGER);
            put_i64(buf, *i);
        }
        Value::Double(d) => {
            buf.push(TAG_DOUBLE);
            put_f64(buf, *d);
        }
        Value::Boolean(b) => {
            buf.push(TAG_BOOLEAN);
            buf.push(u8::from(*b));
        }
        Value::Varchar(s) => {
            buf.push(TAG_VARCHAR);
            put_str(buf, s);
        }
        Value::LabeledScalar(s) => {
            buf.push(TAG_LABELED);
            put_f64(buf, s.value);
            put_i64(buf, s.label);
        }
        Value::Vector(vec) => {
            buf.push(TAG_VECTOR);
            put_u32(buf, vec.len() as u32);
            put_i64(buf, vec.label());
            buf.reserve(vec.len() * 8);
            for &x in vec.as_slice() {
                put_f64(buf, x);
            }
        }
        Value::Matrix(m) => {
            buf.push(TAG_MATRIX);
            put_u32(buf, m.rows() as u32);
            put_u32(buf, m.cols() as u32);
            buf.reserve(m.as_slice().len() * 8);
            for &x in m.as_slice() {
                put_f64(buf, x);
            }
        }
        Value::SparseMatrix(m) => {
            buf.push(TAG_SPARSE_MATRIX);
            put_u32(buf, m.rows() as u32);
            put_u32(buf, m.cols() as u32);
            put_u32(buf, m.nnz() as u32);
            buf.reserve(m.nnz() * 10);
            encode_sparse_entries(m, buf);
        }
    }
}

/// Appends one row (`u32` arity + values) to `buf`.
pub fn encode_row(row: &Row, buf: &mut Vec<u8>) {
    put_u32(buf, row.arity() as u32);
    for v in row.values() {
        encode_value(v, buf);
    }
}

fn encode_dtype(dt: &DataType, buf: &mut Vec<u8>) {
    let put_dim = |buf: &mut Vec<u8>, d: Option<usize>| match d {
        Some(n) => {
            buf.push(1);
            put_u32(buf, n as u32);
        }
        None => buf.push(0),
    };
    match dt {
        DataType::Integer => buf.push(DT_INTEGER),
        DataType::Double => buf.push(DT_DOUBLE),
        DataType::Boolean => buf.push(DT_BOOLEAN),
        DataType::Varchar => buf.push(DT_VARCHAR),
        DataType::LabeledScalar => buf.push(DT_LABELED),
        DataType::Vector(n) => {
            buf.push(DT_VECTOR);
            put_dim(buf, *n);
        }
        DataType::Matrix(r, c) => {
            buf.push(DT_MATRIX);
            put_dim(buf, *r);
            put_dim(buf, *c);
        }
    }
}

fn encode_column(c: &Column, buf: &mut Vec<u8>) {
    match &c.qualifier {
        Some(q) => {
            buf.push(1);
            put_str(buf, q);
        }
        None => buf.push(0),
    }
    put_str(buf, &c.name);
    encode_dtype(&c.dtype, buf);
}

fn frame_header(kind: u8, count: u32) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    buf.push(FRAME_MAGIC);
    buf.push(WIRE_VERSION);
    buf.push(kind);
    put_u32(&mut buf, count);
    buf
}

/// Encodes a batch of rows as one self-contained frame.
pub fn encode_rows_frame(rows: &[Row]) -> Vec<u8> {
    let mut buf = frame_header(KIND_ROWS, rows.len() as u32);
    for r in rows {
        encode_row(r, &mut buf);
    }
    buf
}

/// Encodes a schema as one self-contained frame.
pub fn encode_schema_frame(schema: &Schema) -> Vec<u8> {
    let mut buf = frame_header(KIND_SCHEMA, schema.arity() as u32);
    for c in schema.columns() {
        encode_column(c, &mut buf);
    }
    buf
}

/// Encodes an end-of-channel summary as one self-contained frame.
pub fn encode_fin_frame(fin: &FinSummary) -> Vec<u8> {
    let mut buf = frame_header(KIND_FIN, 0);
    buf.extend_from_slice(&fin.frames.to_le_bytes());
    buf.extend_from_slice(&fin.rows.to_le_bytes());
    buf.extend_from_slice(&fin.checksum.to_le_bytes());
    buf
}

/// Encodes a trace-context frame carrying the sender's trace id.
pub fn encode_trace_frame(trace_id: u64) -> Vec<u8> {
    let mut buf = frame_header(KIND_TRACE, 0);
    buf.extend_from_slice(&trace_id.to_le_bytes());
    buf
}

// ------------------------------------------------------------- decoding

/// A checked little-endian reader over a byte slice.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(CodecError::Truncated {
                what,
                needed: n,
                available: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &'static str) -> Result<u32> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn i64(&mut self, what: &'static str) -> Result<i64> {
        let b = self.take(8, what)?;
        Ok(i64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn f64(&mut self, what: &'static str) -> Result<f64> {
        let b = self.take(8, what)?;
        Ok(f64::from_bits(u64::from_le_bytes(b.try_into().expect("8 bytes"))))
    }

    /// Reads a `u32` count and verifies the remaining buffer can hold at
    /// least `count × min_elem_bytes` more bytes before any allocation.
    fn checked_count(&mut self, what: &'static str, min_elem_bytes: usize) -> Result<usize> {
        let n = self.u32(what)? as usize;
        let needed = n.saturating_mul(min_elem_bytes);
        if needed > self.remaining() {
            return Err(CodecError::LengthOverflow {
                what,
                len: n as u64,
                available: self.remaining(),
            });
        }
        Ok(n)
    }

    fn str(&mut self, what: &'static str) -> Result<&'a str> {
        let n = self.checked_count(what, 1)?;
        let bytes = self.take(n, what)?;
        std::str::from_utf8(bytes).map_err(|_| CodecError::BadUtf8)
    }

    /// Reads a LEB128 varint (≤ 10 bytes; overlong encodings rejected).
    fn varint(&mut self, what: &'static str) -> Result<u64> {
        let mut out = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.u8(what)?;
            if shift >= 64 || (shift == 63 && byte > 1) {
                return Err(CodecError::Malformed { what });
            }
            out |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(out);
            }
            shift += 7;
        }
    }

    fn f64_run(&mut self, n: usize, what: &'static str) -> Result<Vec<f64>> {
        let bytes = self.take(n * 8, what)?;
        let mut out = Vec::with_capacity(n);
        for chunk in bytes.chunks_exact(8) {
            out.push(f64::from_bits(u64::from_le_bytes(
                chunk.try_into().expect("8 bytes"),
            )));
        }
        Ok(out)
    }
}

fn decode_value_inner(r: &mut Reader<'_>) -> Result<Value> {
    let tag = r.u8("value tag")?;
    Ok(match tag {
        TAG_NULL => Value::Null,
        TAG_INTEGER => Value::Integer(r.i64("INTEGER")?),
        TAG_DOUBLE => Value::Double(r.f64("DOUBLE")?),
        TAG_BOOLEAN => Value::Boolean(r.u8("BOOLEAN")? != 0),
        TAG_VARCHAR => Value::Varchar(Arc::from(r.str("VARCHAR")?)),
        TAG_LABELED => {
            let value = r.f64("LABELED_SCALAR value")?;
            let label = r.i64("LABELED_SCALAR label")?;
            Value::LabeledScalar(LabeledScalar::new(value, label))
        }
        TAG_VECTOR => {
            let len = r.checked_count("VECTOR length", 8)?;
            let label = r.i64("VECTOR label")?;
            let data = r.f64_run(len, "VECTOR entries")?;
            let mut v = Vector::from_vec(data);
            v.set_label(label);
            Value::vector(v)
        }
        TAG_MATRIX => {
            let rows = r.checked_count("MATRIX rows", 0)?;
            let cols = r.checked_count("MATRIX cols", 0)?;
            let total = rows.saturating_mul(cols);
            if total.saturating_mul(8) > r.remaining() {
                return Err(CodecError::LengthOverflow {
                    what: "MATRIX entries",
                    len: total as u64,
                    available: r.remaining(),
                });
            }
            let data = r.f64_run(total, "MATRIX entries")?;
            let m = Matrix::from_vec(rows, cols, data)
                .expect("dimension check precedes construction");
            Value::matrix(m)
        }
        TAG_SPARSE_MATRIX => {
            let rows = r.checked_count("SPARSE_MATRIX rows", 0)?;
            let cols = r.checked_count("SPARSE_MATRIX cols", 0)?;
            // Each entry is ≥ 2 varint bytes + 8 value bytes.
            let nnz = r.checked_count("SPARSE_MATRIX nnz", 10)?;
            let mut indptr = vec![0usize; rows + 1];
            let mut indices = Vec::with_capacity(nnz);
            let mut values = Vec::with_capacity(nnz);
            let mut row = 0usize;
            let mut col = 0usize;
            for i in 0..nnz {
                let drow = r.varint("SPARSE_MATRIX row delta")? as usize;
                let dcol = r.varint("SPARSE_MATRIX col delta")? as usize;
                let new_row = i == 0 || drow > 0;
                row = row.checked_add(drow).ok_or(CodecError::Malformed {
                    what: "SPARSE_MATRIX row index",
                })?;
                col = if new_row { dcol } else { col + dcol + 1 };
                if row >= rows || col >= cols {
                    return Err(CodecError::Malformed { what: "SPARSE_MATRIX index" });
                }
                // indptr[row+1] counts row's entries; prefix-summed below.
                indptr[row + 1] += 1;
                indices.push(col as u32);
                values.push(r.f64("SPARSE_MATRIX value")?);
            }
            for i in 0..rows {
                indptr[i + 1] += indptr[i];
            }
            let m = SparseMatrix::from_csr(rows, cols, indptr, indices, values)
                .map_err(|_| CodecError::Malformed { what: "SPARSE_MATRIX structure" })?;
            Value::sparse_matrix(m)
        }
        tag => return Err(CodecError::BadTag { what: "value", tag }),
    })
}

fn decode_row_inner(r: &mut Reader<'_>) -> Result<Row> {
    // A value is at least 1 tag byte.
    let arity = r.checked_count("row arity", 1)?;
    let mut vals = Vec::with_capacity(arity);
    for _ in 0..arity {
        vals.push(decode_value_inner(r)?);
    }
    Ok(Row::new(vals))
}

fn decode_dtype(r: &mut Reader<'_>) -> Result<DataType> {
    let dim = |r: &mut Reader<'_>| -> Result<Option<usize>> {
        match r.u8("dimension flag")? {
            0 => Ok(None),
            _ => Ok(Some(r.u32("dimension")? as usize)),
        }
    };
    let tag = r.u8("data type tag")?;
    Ok(match tag {
        DT_INTEGER => DataType::Integer,
        DT_DOUBLE => DataType::Double,
        DT_BOOLEAN => DataType::Boolean,
        DT_VARCHAR => DataType::Varchar,
        DT_LABELED => DataType::LabeledScalar,
        DT_VECTOR => DataType::Vector(dim(r)?),
        DT_MATRIX => {
            let rows = dim(r)?;
            let cols = dim(r)?;
            DataType::Matrix(rows, cols)
        }
        tag => return Err(CodecError::BadTag { what: "data type", tag }),
    })
}

fn decode_column(r: &mut Reader<'_>) -> Result<Column> {
    let qualifier = match r.u8("qualifier flag")? {
        0 => None,
        _ => Some(r.str("qualifier")?.to_string()),
    };
    let name = r.str("column name")?.to_string();
    let dtype = decode_dtype(r)?;
    Ok(Column { qualifier, name, dtype })
}

/// Decodes one value from the start of `buf` (no frame header).
pub fn decode_value(buf: &[u8]) -> Result<Value> {
    let mut r = Reader::new(buf);
    let v = decode_value_inner(&mut r)?;
    if r.remaining() > 0 {
        return Err(CodecError::TrailingBytes(r.remaining()));
    }
    Ok(v)
}

/// Decodes one row from the start of `buf` (no frame header).
pub fn decode_row(buf: &[u8]) -> Result<Row> {
    let mut r = Reader::new(buf);
    let row = decode_row_inner(&mut r)?;
    if r.remaining() > 0 {
        return Err(CodecError::TrailingBytes(r.remaining()));
    }
    Ok(row)
}

/// Decodes a full frame (magic + version + kind + payload).
pub fn decode_frame(buf: &[u8]) -> Result<Frame> {
    let mut r = Reader::new(buf);
    let magic = r.u8("frame magic")?;
    if magic != FRAME_MAGIC {
        return Err(CodecError::BadMagic(magic));
    }
    let version = r.u8("wire version")?;
    if version != WIRE_VERSION {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let kind = r.u8("frame kind")?;
    let frame = match kind {
        KIND_ROWS => {
            // A row is at least 4 arity bytes.
            let n = r.checked_count("frame row count", 4)?;
            let mut rows = Vec::with_capacity(n);
            for _ in 0..n {
                rows.push(decode_row_inner(&mut r)?);
            }
            Frame::Rows(rows)
        }
        KIND_SCHEMA => {
            // A column is at least flag + name length + dtype tag.
            let n = r.checked_count("frame column count", 6)?;
            let mut cols = Vec::with_capacity(n);
            for _ in 0..n {
                cols.push(decode_column(&mut r)?);
            }
            Frame::Schema(Schema::new(cols))
        }
        KIND_FIN => {
            let count = r.u32("fin count")?;
            if count != 0 {
                return Err(CodecError::BadTag { what: "fin count", tag: count as u8 });
            }
            Frame::Fin(FinSummary {
                frames: r.u64("fin frame count")?,
                rows: r.u64("fin row count")?,
                checksum: r.u64("fin checksum")?,
            })
        }
        KIND_TRACE => {
            let count = r.u32("trace count")?;
            if count != 0 {
                return Err(CodecError::BadTag { what: "trace count", tag: count as u8 });
            }
            Frame::Trace(r.u64("trace id")?)
        }
        tag => return Err(CodecError::BadTag { what: "frame kind", tag }),
    };
    if r.remaining() > 0 {
        return Err(CodecError::TrailingBytes(r.remaining()));
    }
    Ok(frame)
}

/// Encoded size of one value, including its tag byte (what the serialized
/// byte meter charges per value before batching overheads).
pub fn encoded_value_size(v: &Value) -> usize {
    match v {
        Value::Null => 1,
        Value::Integer(_) | Value::Double(_) => 9,
        Value::Boolean(_) => 2,
        Value::Varchar(s) => 5 + s.len(),
        Value::LabeledScalar(_) => 17,
        Value::Vector(vec) => 13 + 8 * vec.len(),
        Value::Matrix(m) => 9 + 8 * m.as_slice().len(),
        Value::SparseMatrix(m) => {
            // Tag + three u32 headers + per-entry varint deltas + value.
            // Mirrors `encode_sparse_entries` exactly, so the serialized
            // byte meter charges nnz-proportional sizes.
            let mut size = 13;
            let mut prev_row = 0usize;
            let mut prev_col = 0usize;
            let mut first = true;
            for (r, c, _) in m.iter() {
                let drow = r - prev_row;
                size += varint_len(drow as u64);
                size += if first || drow > 0 {
                    varint_len(c as u64)
                } else {
                    varint_len((c - prev_col - 1) as u64)
                };
                size += 8;
                prev_row = r;
                prev_col = c;
                first = false;
            }
            size
        }
    }
}

/// Bit-exact value equality: like `PartialEq` but comparing doubles by
/// their IEEE-754 bit patterns, so `NaN == NaN` and `-0.0 != 0.0`. This is
/// the correct notion of "the wire preserved the value" (roundtrip
/// property tests use it).
pub fn wire_eq(a: &Value, b: &Value) -> bool {
    let bits_eq = |x: f64, y: f64| x.to_bits() == y.to_bits();
    match (a, b) {
        (Value::Null, Value::Null) => true,
        (Value::Integer(x), Value::Integer(y)) => x == y,
        (Value::Double(x), Value::Double(y)) => bits_eq(*x, *y),
        (Value::Boolean(x), Value::Boolean(y)) => x == y,
        (Value::Varchar(x), Value::Varchar(y)) => x == y,
        (Value::LabeledScalar(x), Value::LabeledScalar(y)) => {
            bits_eq(x.value, y.value) && x.label == y.label
        }
        (Value::Vector(x), Value::Vector(y)) => {
            x.label() == y.label()
                && x.len() == y.len()
                && x.as_slice().iter().zip(y.as_slice()).all(|(p, q)| bits_eq(*p, *q))
        }
        (Value::Matrix(x), Value::Matrix(y)) => {
            x.rows() == y.rows()
                && x.cols() == y.cols()
                && x.as_slice().iter().zip(y.as_slice()).all(|(p, q)| bits_eq(*p, *q))
        }
        // Structural, bit-exact: the wire must preserve the sparse
        // representation itself, not just its dense meaning.
        (Value::SparseMatrix(x), Value::SparseMatrix(y)) => {
            let (xp, xi, xv) = x.csr_parts();
            let (yp, yi, yv) = y.csr_parts();
            x.shape() == y.shape()
                && xp == yp
                && xi == yi
                && xv.iter().zip(yv).all(|(p, q)| bits_eq(*p, *q))
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_sparse() -> SparseMatrix {
        let mut b = lardb_la::CooBuilder::new();
        b.push(0, 0, 1.5).unwrap();
        b.push(0, 300, -2.25).unwrap();
        b.push(7, 3, f64::NAN).unwrap();
        b.push(7, 4, -0.0).unwrap();
        b.push(12, 511, 9.75).unwrap();
        b.build(13, 512).unwrap()
    }

    fn sample_values() -> Vec<Value> {
        let mut v = Vector::from_slice(&[1.5, -2.5, 0.0]);
        v.set_label(42);
        vec![
            Value::Null,
            Value::Integer(i64::MIN),
            Value::Integer(i64::MAX),
            Value::Double(std::f64::consts::PI),
            Value::Double(f64::NAN),
            Value::Double(-0.0),
            Value::Boolean(true),
            Value::Boolean(false),
            Value::varchar(""),
            Value::varchar("héllo wörld — tiles"),
            Value::LabeledScalar(LabeledScalar::new(f64::NEG_INFINITY, i64::MIN)),
            Value::Vector(Arc::new(v)),
            Value::vector(Vector::zeros(0)),
            Value::matrix(Matrix::zeros(0, 0)),
            Value::matrix(Matrix::from_fn(3, 2, |i, j| (i * 2 + j) as f64)),
            Value::sparse_matrix(sample_sparse()),
            Value::sparse_matrix(SparseMatrix::zeros(4, 9)),
            Value::sparse_matrix(SparseMatrix::zeros(0, 0)),
        ]
    }

    #[test]
    fn value_roundtrip_all_variants() {
        for v in sample_values() {
            let mut buf = Vec::new();
            encode_value(&v, &mut buf);
            assert_eq!(buf.len(), encoded_value_size(&v), "{v:?}");
            let back = decode_value(&buf).unwrap();
            assert!(wire_eq(&v, &back), "{v:?} != {back:?}");
        }
    }

    #[test]
    fn rows_frame_roundtrip() {
        let rows = vec![
            Row::new(sample_values()),
            Row::new(vec![]),
            Row::new(vec![Value::Integer(7)]),
        ];
        let frame = encode_rows_frame(&rows);
        match decode_frame(&frame).unwrap() {
            Frame::Rows(back) => {
                assert_eq!(back.len(), rows.len());
                for (a, b) in rows.iter().zip(&back) {
                    assert_eq!(a.arity(), b.arity());
                    for (x, y) in a.values().iter().zip(b.values()) {
                        assert!(wire_eq(x, y));
                    }
                }
            }
            other => panic!("wrong frame kind: {other:?}"),
        }
    }

    #[test]
    fn schema_frame_roundtrip() {
        let schema = Schema::new(vec![
            Column::new("id", DataType::Integer),
            Column::qualified("x1", "val", DataType::Vector(Some(10))),
            Column::new("m", DataType::Matrix(Some(3), None)),
            Column::new("s", DataType::LabeledScalar),
        ]);
        let frame = encode_schema_frame(&schema);
        assert_eq!(decode_frame(&frame).unwrap(), Frame::Schema(schema));
    }

    #[test]
    fn header_errors() {
        let frame = encode_rows_frame(&[Row::new(vec![Value::Integer(1)])]);
        let mut bad = frame.clone();
        bad[0] = 0x00;
        assert!(matches!(decode_frame(&bad), Err(CodecError::BadMagic(0))));
        let mut bad = frame.clone();
        bad[1] = 99;
        assert!(matches!(decode_frame(&bad), Err(CodecError::UnsupportedVersion(99))));
        let mut bad = frame.clone();
        bad[2] = 77;
        assert!(matches!(
            decode_frame(&bad),
            Err(CodecError::BadTag { what: "frame kind", .. })
        ));
        let mut long = frame;
        long.push(0xFF);
        assert!(matches!(decode_frame(&long), Err(CodecError::TrailingBytes(1))));
    }

    #[test]
    fn trace_frame_roundtrip() {
        for id in [0u64, 1, 0xDEAD_BEEF_0BAD_F00D, u64::MAX] {
            let frame = encode_trace_frame(id);
            assert_eq!(decode_frame(&frame).unwrap(), Frame::Trace(id));
            // Truncated trace frames must error, never decode short.
            for cut in 0..frame.len() {
                assert!(decode_frame(&frame[..cut]).is_err(), "cut at {cut} decoded");
            }
        }
        // A trace frame is checksummable like any other frame.
        let a = checksum_update(CHECKSUM_SEED, &encode_trace_frame(7));
        assert_ne!(a, CHECKSUM_SEED);
    }

    #[test]
    fn fin_frame_roundtrip() {
        let fin = FinSummary { frames: 17, rows: 4096, checksum: 0xDEAD_BEEF_0BAD_F00D };
        let frame = encode_fin_frame(&fin);
        assert_eq!(decode_frame(&frame).unwrap(), Frame::Fin(fin));
        // Truncated fins must error, never decode short.
        for cut in 0..frame.len() {
            assert!(decode_frame(&frame[..cut]).is_err(), "cut at {cut} decoded");
        }
    }

    #[test]
    fn checksum_is_order_sensitive_and_deterministic() {
        let a = checksum_update(CHECKSUM_SEED, b"frame one");
        let b = checksum_update(a, b"frame two");
        assert_eq!(
            b,
            checksum_update(checksum_update(CHECKSUM_SEED, b"frame one"), b"frame two")
        );
        let swapped = checksum_update(checksum_update(CHECKSUM_SEED, b"frame two"), b"frame one");
        assert_ne!(b, swapped, "checksum ignored frame order");
        assert_ne!(a, CHECKSUM_SEED);
        assert_eq!(checksum_update(CHECKSUM_SEED, b""), CHECKSUM_SEED);
    }

    #[test]
    fn truncation_always_errors() {
        let rows = vec![Row::new(sample_values())];
        let frame = encode_rows_frame(&rows);
        for cut in 0..frame.len() {
            assert!(decode_frame(&frame[..cut]).is_err(), "cut at {cut} decoded");
        }
    }

    #[test]
    fn sparse_tile_ships_nnz_not_dense_size() {
        // A 13×512 tile with 5 entries must encode in tens of bytes, not
        // the 8·13·512 ≈ 53 KB its dense form costs.
        let v = Value::sparse_matrix(sample_sparse());
        let mut buf = Vec::new();
        encode_value(&v, &mut buf);
        assert_eq!(buf.len(), encoded_value_size(&v));
        assert!(buf.len() < 100, "sparse tile encoded {} bytes", buf.len());
        let dense = Value::matrix(sample_sparse().to_dense());
        assert!(encoded_value_size(&dense) > 50_000);
        // Signed zero and NaN payloads roundtrip bit-exactly.
        let back = decode_value(&buf).unwrap();
        assert!(wire_eq(&v, &back));
    }

    #[test]
    fn sparse_hostile_inputs_are_typed_errors() {
        // nnz claiming more entries than the buffer can hold.
        let mut buf = vec![TAG_SPARSE_MATRIX];
        buf.extend_from_slice(&4u32.to_le_bytes()); // rows
        buf.extend_from_slice(&4u32.to_le_bytes()); // cols
        buf.extend_from_slice(&u32::MAX.to_le_bytes()); // nnz
        buf.extend_from_slice(&[0u8; 16]);
        assert!(matches!(
            decode_value(&buf),
            Err(CodecError::LengthOverflow { what: "SPARSE_MATRIX nnz", .. })
        ));

        // An entry whose decoded index lands outside the declared shape.
        let mut buf = vec![TAG_SPARSE_MATRIX];
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.push(9); // Δrow = 9 → row 9 of a 2-row tile
        buf.push(0);
        buf.extend_from_slice(&1.0f64.to_bits().to_le_bytes());
        assert!(matches!(
            decode_value(&buf),
            Err(CodecError::Malformed { what: "SPARSE_MATRIX index" })
        ));

        // Corrupting any single byte of a valid encoding must never
        // produce a *wrong* sparse tile silently: it either still decodes
        // to bit-identical values elsewhere (payload bytes of a value) or
        // errors. Structure bytes (deltas, counts) must error or change
        // the value — we assert no panic and no trailing acceptance.
        let v = Value::sparse_matrix(sample_sparse());
        let mut good = Vec::new();
        encode_value(&v, &mut good);
        for cut in 0..good.len() {
            assert!(decode_value(&good[..cut]).is_err(), "cut at {cut} decoded");
        }
    }

    #[test]
    fn hostile_lengths_rejected_before_allocation() {
        // A vector claiming u32::MAX entries in a 32-byte buffer must be
        // rejected by the length check, not die trying to allocate 32 GB.
        let mut buf = vec![TAG_VECTOR];
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&0i64.to_le_bytes());
        buf.extend_from_slice(&[0u8; 16]);
        assert!(matches!(
            decode_value(&buf),
            Err(CodecError::LengthOverflow { what: "VECTOR length", .. })
        ));
    }
}
