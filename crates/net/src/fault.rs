//! Deterministic fault injection for chaos testing the exchange layer.
//!
//! [`FaultyTransport`] wraps any [`Transport`] and perturbs its sends
//! according to a [`FaultPlan`]: a seeded, purely arithmetic schedule
//! (splitmix64 over `(seed, from, to, frame-sequence)`), so the same plan
//! replays the same faults on every run. The chaos suite relies on this
//! to assert that **every** fault either leaves the result untouched or
//! surfaces as a clean error — never a silently truncated answer.
//!
//! Injected faults model the partial failures a real cluster sees:
//!
//! * [`FaultKind::DropFrame`] — a frame vanishes in flight.
//! * [`FaultKind::TruncateFrame`] — a frame arrives cut in half.
//! * [`FaultKind::CorruptBytes`] — a few bytes flip in flight.
//! * [`FaultKind::DelaySend`] — a frame is late (must be harmless).
//! * [`FaultKind::KillSender`] — one worker dies after sending N frames;
//!   everything it would still send is lost and its endpoint ends
//!   abnormally rather than with a clean close.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use crate::transport::{Mesh, Transport};
use crate::Result;

/// What kind of fault a [`FaultPlan`] injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Silently discard selected frames.
    DropFrame,
    /// Deliver only the first half of selected frames.
    TruncateFrame,
    /// Flip a few bytes of selected frames.
    CorruptBytes,
    /// Delay selected frames by a few milliseconds (benign: results must
    /// still be exactly correct).
    DelaySend,
    /// One seeded victim worker stops sending after
    /// [`FaultPlan::kill_after`] frames and its endpoint fails instead of
    /// closing cleanly.
    KillSender,
}

impl FaultKind {
    /// All kinds, in chaos-suite order.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::DropFrame,
        FaultKind::TruncateFrame,
        FaultKind::CorruptBytes,
        FaultKind::DelaySend,
        FaultKind::KillSender,
    ];

    /// Parses a CLI spelling (`drop`, `truncate`, `corrupt`, `delay`,
    /// `kill`).
    pub fn parse(s: &str) -> Option<FaultKind> {
        match s.to_ascii_lowercase().as_str() {
            "drop" => Some(FaultKind::DropFrame),
            "truncate" => Some(FaultKind::TruncateFrame),
            "corrupt" => Some(FaultKind::CorruptBytes),
            "delay" => Some(FaultKind::DelaySend),
            "kill" => Some(FaultKind::KillSender),
            _ => None,
        }
    }

    /// The CLI / display name.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::DropFrame => "drop",
            FaultKind::TruncateFrame => "truncate",
            FaultKind::CorruptBytes => "corrupt",
            FaultKind::DelaySend => "delay",
            FaultKind::KillSender => "kill",
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A reproducible fault schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// The fault to inject.
    pub kind: FaultKind,
    /// Seed for the deterministic per-frame decision (and victim choice
    /// for [`FaultKind::KillSender`]).
    pub seed: u64,
    /// Probability a given frame is faulted, in parts per million
    /// (ignored by `KillSender`). Default 100 000 = 10%.
    pub rate_ppm: u32,
    /// For [`FaultKind::KillSender`]: frames the victim sends before
    /// dying. Default 3.
    pub kill_after: u64,
}

impl FaultPlan {
    /// A plan with the default rate (10%) and kill-after (3 frames).
    pub fn new(kind: FaultKind, seed: u64) -> Self {
        FaultPlan { kind, seed, rate_ppm: 100_000, kill_after: 3 }
    }
}

/// splitmix64: the standard 64-bit finalizer — cheap, stateless and
/// well-distributed, which is all a deterministic schedule needs.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn count_injected() {
    lardb_obs::global().counter("net.faults_injected").inc();
}

/// A [`Transport`] decorator that injects faults per a [`FaultPlan`].
pub struct FaultyTransport {
    inner: Box<dyn Transport>,
    plan: FaultPlan,
}

impl FaultyTransport {
    /// Wraps `inner`, perturbing its sends per `plan`.
    pub fn new(inner: Box<dyn Transport>, plan: FaultPlan) -> Self {
        FaultyTransport { inner, plan }
    }
}

impl Transport for FaultyTransport {
    fn mesh(&self, workers: usize) -> Result<Box<dyn Mesh>> {
        let inner = self.inner.mesh(workers)?;
        // Victim choice is part of the seeded schedule, not runtime state.
        let victim =
            (splitmix64(self.plan.seed ^ 0x0D1E_50FF_A117) % workers.max(1) as u64) as usize;
        Ok(Box::new(FaultyMesh {
            inner,
            plan: self.plan.clone(),
            victim,
            workers,
            sent: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            killed: (0..workers).map(|_| AtomicBool::new(false)).collect(),
            seq: (0..workers * workers).map(|_| AtomicU64::new(0)).collect(),
        }))
    }

    fn name(&self) -> &'static str {
        "faulty"
    }
}

struct FaultyMesh {
    inner: Box<dyn Mesh>,
    plan: FaultPlan,
    /// The one worker `KillSender` kills (seeded, fixed per mesh).
    victim: usize,
    workers: usize,
    /// Frames sent per endpoint (drives `kill_after`).
    sent: Vec<AtomicU64>,
    /// Endpoints that have dropped at least one frame to `KillSender` —
    /// their `close` becomes a `fail` so the death is never mistaken for
    /// a clean end-of-stream.
    killed: Vec<AtomicBool>,
    /// Per-(from, to) frame sequence numbers feeding the schedule.
    seq: Vec<AtomicU64>,
}

impl Mesh for FaultyMesh {
    fn send(&self, from: usize, to: usize, mut frame: Vec<u8>) -> Result<()> {
        let seq = self.seq[from * self.workers + to].fetch_add(1, Ordering::Relaxed);

        if self.plan.kind == FaultKind::KillSender {
            if from == self.victim {
                let total = self.sent[from].fetch_add(1, Ordering::Relaxed);
                if total >= self.plan.kill_after {
                    self.killed[from].store(true, Ordering::Release);
                    count_injected();
                    return Ok(()); // the dead worker's frame never leaves
                }
            }
            return self.inner.send(from, to, frame);
        }

        let channel = ((from as u64) << 40) | ((to as u64) << 20) | (seq & 0xF_FFFF);
        let h = splitmix64(self.plan.seed ^ splitmix64(channel));
        if (h % 1_000_000) as u32 >= self.plan.rate_ppm {
            return self.inner.send(from, to, frame);
        }
        count_injected();
        match self.plan.kind {
            FaultKind::DropFrame => Ok(()),
            FaultKind::TruncateFrame => {
                frame.truncate(frame.len() / 2);
                self.inner.send(from, to, frame)
            }
            FaultKind::CorruptBytes => {
                if !frame.is_empty() {
                    let len = frame.len() as u64;
                    for i in 0..3u64 {
                        let pos = (splitmix64(h ^ i) % len) as usize;
                        frame[pos] ^= 0x5A;
                    }
                }
                self.inner.send(from, to, frame)
            }
            FaultKind::DelaySend => {
                std::thread::sleep(Duration::from_millis(1 + h % 8));
                self.inner.send(from, to, frame)
            }
            FaultKind::KillSender => unreachable!("handled above"),
        }
    }

    fn close(&self, from: usize) -> Result<()> {
        if self.killed[from].load(Ordering::Acquire) {
            // A dead worker never closes cleanly; receivers must see an
            // abnormal end-of-channel, not EOF.
            return self.inner.fail(from, "endpoint killed by fault injection");
        }
        self.inner.close(from)
    }

    fn recv(&self, to: usize) -> Result<Option<(usize, Vec<u8>)>> {
        self.inner.recv(to)
    }

    fn fail(&self, from: usize, reason: &str) -> Result<()> {
        self.inner.fail(from, reason)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ChannelTransport, NetError};

    #[test]
    fn kind_parse_roundtrip() {
        for k in FaultKind::ALL {
            assert_eq!(FaultKind::parse(k.label()), Some(k));
        }
        assert_eq!(FaultKind::parse("KILL"), Some(FaultKind::KillSender));
        assert_eq!(FaultKind::parse("bogus"), None);
    }

    #[test]
    fn schedule_is_deterministic() {
        // Same seed ⇒ same faulted frame set, run after run.
        let faulted = |seed: u64| -> Vec<usize> {
            let t = FaultyTransport::new(
                Box::new(ChannelTransport::default()),
                FaultPlan { rate_ppm: 300_000, ..FaultPlan::new(FaultKind::DropFrame, seed) },
            );
            let mesh = t.mesh(2).unwrap();
            for i in 0..40 {
                mesh.send(0, 1, vec![i as u8]).unwrap();
            }
            mesh.close(0).unwrap();
            mesh.close(1).unwrap();
            let mut got = Vec::new();
            while let Some((_, frame)) = mesh.recv(1).unwrap() {
                got.push(frame[0] as usize);
            }
            got
        };
        let a = faulted(7);
        assert_eq!(a, faulted(7));
        assert!(a.len() < 40, "rate 30% dropped nothing out of 40 frames");
        assert_ne!(a, faulted(8), "different seeds picked identical drops");
    }

    #[test]
    fn killed_sender_fails_instead_of_closing() {
        let t = FaultyTransport::new(
            Box::new(ChannelTransport::default()),
            FaultPlan { kill_after: 2, ..FaultPlan::new(FaultKind::KillSender, 1) },
        );
        let workers = 2;
        let mesh = t.mesh(workers).unwrap();
        // Whoever the victim is, make both endpoints send past kill_after.
        for from in 0..workers {
            for i in 0..5u8 {
                mesh.send(from, 1 - from, vec![i]).unwrap();
            }
            mesh.close(from).unwrap();
        }
        let mut saw_sender_error = false;
        for to in 0..workers {
            loop {
                match mesh.recv(to) {
                    Ok(Some(_)) => {}
                    Ok(None) => break,
                    Err(NetError::Sender { .. }) => saw_sender_error = true,
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
        }
        assert!(saw_sender_error, "victim's death looked like a clean close");
    }
}
