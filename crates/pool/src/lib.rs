//! # lardb-pool — the persistent work-stealing worker pool
//!
//! Morsel-driven parallelism for the whole engine (see DESIGN.md
//! "Scheduling"). One [`WorkerPool`] owns a fixed set of long-lived OS
//! threads, each with its own task deque; idle workers steal from the
//! back of busy workers' deques. Callers submit work through
//! [`WorkerPool::scope`], which hands out a [`Scope`] that can spawn
//! closures borrowing from the caller's stack — the scope blocks until
//! every spawned task has finished, which is what makes the lifetime
//! erasure inside sound (the same trick the vendored crossbeam scope
//! uses).
//!
//! Two properties matter for the engine:
//!
//! * **Skew resistance.** A partition that hashes 10× the rows of its
//!   siblings is split into row-range morsels; once an idle worker runs
//!   dry it steals morsels from the loaded worker's deque instead of
//!   sitting out the stage — the §5 "100 blocks on 80 cores" imbalance
//!   stops serializing the plan.
//! * **No per-operator thread spawns.** Threads are created once per
//!   pool (once per process for [`global()`]), not once per partition
//!   per operator, so operator boundaries cost a queue push, not a
//!   `clone(2)`.
//!
//! Waiting threads *help*: while a scope has unfinished tasks, the
//! waiter pops and runs pool tasks itself rather than blocking, so a
//! task that opens a nested scope (e.g. a partition closure scheduling
//! GEMM cache-block morsels) can never deadlock the pool.
//!
//! The pool feeds `lardb-obs`: `pool.morsels` / `pool.steals` counters,
//! a `pool.queue_wait_us` histogram (push-to-pop latency), and
//! `pool.size` / `pool.utilization` gauges — all visible via
//! `SHOW METRICS`. Tasks also carry their spawner's active query trace:
//! a traced task records a `pool.wait` span (its own push-to-pop
//! latency, steal flag included) and runs with the trace installed as
//! the worker thread's current trace, so downstream spans attribute to
//! the right query no matter which thread stole the work.

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

use lardb_obs::{Counter, Gauge, Histogram};

/// Environment variable overriding the [`global()`] pool's worker count
/// (used by CI to run the suite against an oversubscribed pool).
pub const POOL_WORKERS_ENV: &str = "LARDB_POOL_WORKERS";

/// One queued unit of work, tagged with its submission time (for the
/// queue-wait histogram) and home queue (to tell steals from local pops).
/// Tasks carry the spawning thread's active query trace, so work that
/// hops threads stays attributed to its query.
struct Task {
    run: Box<dyn FnOnce() + Send>,
    pushed: Instant,
    home: usize,
    trace: Option<Arc<lardb_obs::ActiveTrace>>,
}

/// State shared between the pool handle and its worker threads.
struct Shared {
    /// One deque per worker. Owners pop the front; thieves pop the back.
    queues: Vec<Mutex<VecDeque<Task>>>,
    /// Coordination for sleeping workers and waiters.
    gate: Mutex<()>,
    cv: Condvar,
    /// Total tasks sitting in queues (checked under `gate` before
    /// sleeping, incremented before notify — prevents lost wakeups).
    queued: AtomicUsize,
    /// Tasks currently executing (drives the utilization gauge).
    active: AtomicUsize,
    shutdown: AtomicBool,
    /// Round-robin cursor for picking a home queue.
    next_home: AtomicUsize,
    // Cached metric handles so the hot path never takes the registry lock.
    morsels: Arc<Counter>,
    steals: Arc<Counter>,
    queue_wait_us: Arc<Histogram>,
    utilization: Arc<Gauge>,
}

impl Shared {
    /// Pushes a task onto its home queue and wakes a sleeper.
    fn push(&self, task: Task) {
        self.queues[task.home]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back(task);
        self.queued.fetch_add(1, Ordering::SeqCst);
        let _g = self.gate.lock().unwrap_or_else(|e| e.into_inner());
        self.cv.notify_all();
    }

    /// Takes a task, preferring `who`'s own queue (front), then stealing
    /// from the back of the others. Returns the task and whether it was
    /// stolen.
    fn take(&self, who: usize) -> Option<(Task, bool)> {
        let n = self.queues.len();
        for k in 0..n {
            let q = (who + k) % n;
            let task = {
                let mut queue =
                    self.queues[q].lock().unwrap_or_else(|e| e.into_inner());
                if k == 0 {
                    queue.pop_front()
                } else {
                    queue.pop_back()
                }
            };
            if let Some(task) = task {
                self.queued.fetch_sub(1, Ordering::SeqCst);
                let stolen = k != 0;
                return Some((task, stolen));
            }
        }
        None
    }

    /// Runs one task, maintaining the pool metrics. A traced task runs
    /// with its query's trace installed as this thread's current trace
    /// (so nested spans and spill events attribute correctly), and the
    /// push-to-pop latency is recorded as a `pool.wait` span — only the
    /// pool sees the enqueue point, so this can't be measured elsewhere.
    fn run_task(&self, task: Task, stolen: bool) {
        let waited = task.pushed.elapsed();
        self.queue_wait_us.observe(waited.as_micros() as u64);
        self.morsels.inc();
        if stolen {
            self.steals.inc();
        }
        let _cur = task
            .trace
            .as_ref()
            .map(|t| lardb_obs::trace::push_current(Some(Arc::clone(t))));
        if let Some(t) = &task.trace {
            t.record(
                "pool.wait",
                "pool",
                task.pushed,
                waited,
                vec![("stolen", stolen.to_string()), ("home", task.home.to_string())],
            );
        }
        let busy = self.active.fetch_add(1, Ordering::SeqCst) + 1;
        self.utilization.set(busy as f64 / self.queues.len() as f64);
        (task.run)();
        let busy = self.active.fetch_sub(1, Ordering::SeqCst) - 1;
        self.utilization.set(busy as f64 / self.queues.len() as f64);
    }

    /// Worker main loop: drain tasks, sleep when every queue is empty.
    fn worker_loop(&self, index: usize) {
        loop {
            if let Some((task, stolen)) = self.take(index) {
                self.run_task(task, stolen);
                continue;
            }
            let guard = self.gate.lock().unwrap_or_else(|e| e.into_inner());
            if self.shutdown.load(Ordering::SeqCst) {
                return;
            }
            if self.queued.load(Ordering::SeqCst) == 0 {
                // Wait releases `gate`, so a push's notify cannot be lost:
                // pushes bump `queued` first and notify under `gate`.
                drop(self.cv.wait(guard).unwrap_or_else(|e| e.into_inner()));
            }
        }
    }
}

/// Bookkeeping for one [`Scope`]'s spawned tasks.
#[derive(Default)]
struct Group {
    pending: AtomicUsize,
    panic: Mutex<Option<String>>,
}

impl Group {
    fn record_panic(&self, payload: &(dyn std::any::Any + Send)) {
        let msg = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "unknown panic payload".to_string()
        };
        let mut slot = self.panic.lock().unwrap_or_else(|e| e.into_inner());
        slot.get_or_insert(msg);
    }
}

/// A persistent pool of worker threads with per-worker work-stealing
/// deques. Dropping the pool shuts the threads down (pending tasks are
/// discarded, which is safe because every [`scope`](WorkerPool::scope)
/// blocks until its own tasks finish — a live scope keeps the pool
/// borrowed and therefore alive).
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool").field("workers", &self.workers()).finish()
    }
}

impl WorkerPool {
    /// A pool with `workers` threads (clamped to ≥ 1).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let registry = lardb_obs::global();
        registry.gauge("pool.size").set(workers as f64);
        let shared = Arc::new(Shared {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            gate: Mutex::new(()),
            cv: Condvar::new(),
            queued: AtomicUsize::new(0),
            active: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            next_home: AtomicUsize::new(0),
            morsels: registry.counter("pool.morsels"),
            steals: registry.counter("pool.steals"),
            queue_wait_us: registry.histogram("pool.queue_wait_us"),
            utilization: registry.gauge("pool.utilization"),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("lardb-pool-{i}"))
                    .spawn(move || shared.worker_loop(i))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.shared.queues.len()
    }

    /// Runs `f` with a [`Scope`] that can spawn tasks borrowing from the
    /// caller's stack frame, then blocks (helping to drain the pool)
    /// until every spawned task has completed.
    ///
    /// Returns `Err(message)` if any spawned task panicked (first panic
    /// wins); `f`'s own panic propagates after all tasks finish.
    pub fn scope<'env, F, R>(&self, f: F) -> Result<R, String>
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        let group = Arc::new(Group::default());
        let scope = Scope {
            pool: self,
            group: Arc::clone(&group),
            _env: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // Always drain before returning or unwinding: tasks may borrow
        // the caller's frame (soundness of the 'env erasure in spawn).
        self.wait(&group);
        let out = match result {
            Ok(r) => r,
            Err(payload) => resume_unwind(payload),
        };
        let panicked =
            group.panic.lock().unwrap_or_else(|e| e.into_inner()).take();
        match panicked {
            Some(msg) => Err(msg),
            None => Ok(out),
        }
    }

    /// Blocks until `group` completes, executing pool tasks while any
    /// are runnable (help-first waiting — this is what makes nested
    /// scopes deadlock-free even on a 1-worker pool).
    fn wait(&self, group: &Group) {
        let shared = &self.shared;
        while group.pending.load(Ordering::SeqCst) != 0 {
            if let Some((task, stolen)) = shared.take(0) {
                shared.run_task(task, stolen);
                continue;
            }
            let guard = shared.gate.lock().unwrap_or_else(|e| e.into_inner());
            if group.pending.load(Ordering::SeqCst) != 0
                && shared.queued.load(Ordering::SeqCst) == 0
            {
                drop(shared.cv.wait(guard).unwrap_or_else(|e| e.into_inner()));
            }
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let _g = self.shared.gate.lock().unwrap_or_else(|e| e.into_inner());
            self.shared.shutdown.store(true, Ordering::SeqCst);
            self.shared.cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Spawns tasks into a [`WorkerPool`] on behalf of one
/// [`WorkerPool::scope`] call. Tasks may borrow anything outliving the
/// scope (`'env`).
pub struct Scope<'pool, 'env> {
    pool: &'pool WorkerPool,
    group: Arc<Group>,
    // Invariant over 'env, mirroring std::thread::Scope.
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'_, 'env> {
    /// Queues `f` onto the pool. The enclosing scope will not return
    /// before `f` has run to completion.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        let shared = &self.pool.shared;
        let home = shared.next_home.fetch_add(1, Ordering::Relaxed)
            % shared.queues.len();
        self.group.pending.fetch_add(1, Ordering::SeqCst);
        let group = Arc::clone(&self.group);
        let shared_for_task = Arc::clone(shared);
        let body: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                group.record_panic(payload.as_ref());
            }
            let left = group.pending.fetch_sub(1, Ordering::SeqCst) - 1;
            if left == 0 {
                // Wake waiters parked on the gate (under the lock, so the
                // wakeup races neither the waiter's check nor its wait).
                let _g = shared_for_task
                    .gate
                    .lock()
                    .unwrap_or_else(|e| e.into_inner());
                shared_for_task.cv.notify_all();
            }
        });
        // Erase 'env. Sound because `scope` (and its panic path) block on
        // group completion before the borrowed frame can be left.
        let body: Box<dyn FnOnce() + Send + 'static> =
            unsafe { std::mem::transmute(body) };
        shared.push(Task {
            run: body,
            pushed: Instant::now(),
            home,
            trace: lardb_obs::trace::current(),
        });
    }
}

/// The process-wide pool, created on first use. Sized from
/// [`POOL_WORKERS_ENV`] when set, otherwise from
/// `std::thread::available_parallelism()`.
pub fn global() -> &'static WorkerPool {
    static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let workers = std::env::var(POOL_WORKERS_ENV)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(1, |n| n.get())
            });
        WorkerPool::new(workers)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicI64;

    #[test]
    fn scope_runs_all_tasks() {
        let pool = WorkerPool::new(4);
        let sum = AtomicI64::new(0);
        pool.scope(|s| {
            for i in 0..100i64 {
                let sum = &sum;
                s.spawn(move || {
                    sum.fetch_add(i, Ordering::SeqCst);
                });
            }
        })
        .unwrap();
        assert_eq!(sum.load(Ordering::SeqCst), (0..100).sum::<i64>());
    }

    #[test]
    fn scope_writes_into_disjoint_slots() {
        let pool = WorkerPool::new(3);
        let mut out = vec![0usize; 64];
        pool.scope(|s| {
            for (i, slot) in out.iter_mut().enumerate() {
                s.spawn(move || *slot = i * 2);
            }
        })
        .unwrap();
        assert!(out.iter().enumerate().all(|(i, &v)| v == i * 2));
    }

    #[test]
    fn task_panic_reported_not_fatal() {
        let pool = WorkerPool::new(2);
        let err = pool
            .scope(|s| {
                s.spawn(|| panic!("morsel exploded"));
                s.spawn(|| {});
            })
            .unwrap_err();
        assert!(err.contains("morsel exploded"), "{err}");
        // The pool survives and runs later scopes.
        assert!(pool.scope(|s| s.spawn(|| {})).is_ok());
    }

    #[test]
    fn nested_scopes_do_not_deadlock_on_one_worker() {
        let pool = WorkerPool::new(1);
        let total = AtomicI64::new(0);
        pool.scope(|outer| {
            for _ in 0..4 {
                outer.spawn(|| {
                    pool.scope(|inner| {
                        for _ in 0..8 {
                            inner.spawn(|| {
                                total.fetch_add(1, Ordering::SeqCst);
                            });
                        }
                    })
                    .unwrap();
                });
            }
        })
        .unwrap();
        assert_eq!(total.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn skewed_work_is_stolen() {
        // Many tiny tasks on a small pool: steals must occur (the
        // round-robin home assignment plus help-first waiting guarantee
        // cross-queue traffic).
        let before = lardb_obs::global().counter("pool.morsels").get();
        let pool = WorkerPool::new(4);
        let done = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..256 {
                s.spawn(|| {
                    done.fetch_add(1, Ordering::SeqCst);
                });
            }
        })
        .unwrap();
        assert_eq!(done.load(Ordering::SeqCst), 256);
        let after = lardb_obs::global().counter("pool.morsels").get();
        assert!(after >= before + 256, "morsel counter advanced");
    }

    #[test]
    fn sequential_scopes_reuse_threads() {
        let pool = WorkerPool::new(2);
        for round in 0..50 {
            let hits = AtomicUsize::new(0);
            pool.scope(|s| {
                for _ in 0..8 {
                    s.spawn(|| {
                        hits.fetch_add(1, Ordering::SeqCst);
                    });
                }
            })
            .unwrap();
            assert_eq!(hits.load(Ordering::SeqCst), 8, "round {round}");
        }
    }

    #[test]
    fn global_pool_is_shared_and_sized() {
        let p1 = global();
        let p2 = global();
        assert!(std::ptr::eq(p1, p2));
        assert!(p1.workers() >= 1);
    }

    #[test]
    fn scope_value_is_returned() {
        let pool = WorkerPool::new(2);
        let v = pool.scope(|_| 42).unwrap();
        assert_eq!(v, 42);
    }
}
