//! Dense `f64` vectors with the paper's implicit integer label.

use crate::error::{LaError, Result};
use crate::matrix::Matrix;
use crate::DEFAULT_LABEL;

/// A dense vector of `f64` entries.
///
/// Per the paper (§3.1) each element of a `VECTOR` is a double, there is no
/// row/column distinction (interpretation is up to each operation), and every
/// vector carries an implicit integer *label* (§3.3) used by the `ROWMATRIX`
/// and `COLMATRIX` aggregates to place the vector inside a matrix. A label
/// that was never set is [`DEFAULT_LABEL`] (−1).
#[derive(Debug, Clone, PartialEq)]
pub struct Vector {
    data: Vec<f64>,
    label: i64,
}

impl Vector {
    /// Creates a zero vector with `len` entries.
    pub fn zeros(len: usize) -> Self {
        Vector { data: vec![0.0; len], label: DEFAULT_LABEL }
    }

    /// Creates a vector of `len` ones.
    pub fn ones(len: usize) -> Self {
        Vector { data: vec![1.0; len], label: DEFAULT_LABEL }
    }

    /// Creates a vector with every entry set to `value`.
    pub fn filled(len: usize, value: f64) -> Self {
        Vector { data: vec![value; len], label: DEFAULT_LABEL }
    }

    /// Builds a vector from a slice.
    pub fn from_slice(values: &[f64]) -> Self {
        Vector { data: values.to_vec(), label: DEFAULT_LABEL }
    }

    /// Builds a vector by taking ownership of `values`.
    pub fn from_vec(values: Vec<f64>) -> Self {
        Vector { data: values, label: DEFAULT_LABEL }
    }

    /// Builds a vector from a generating function over indices.
    pub fn from_fn(len: usize, f: impl FnMut(usize) -> f64) -> Self {
        Vector { data: (0..len).map(f).collect(), label: DEFAULT_LABEL }
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the vector has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the entries.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the entries.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the vector and returns its backing storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// The vector's label (§3.3). Defaults to −1 when never set.
    #[inline]
    pub fn label(&self) -> i64 {
        self.label
    }

    /// Returns a copy of this vector carrying `label` — the kernel-level
    /// realization of the paper's `label_vector` built-in.
    pub fn with_label(&self, label: i64) -> Self {
        Vector { data: self.data.clone(), label }
    }

    /// Sets the label in place.
    pub fn set_label(&mut self, label: i64) {
        self.label = label;
    }

    /// Entry access with bounds checking — the `get_scalar` built-in.
    pub fn get(&self, i: usize) -> Result<f64> {
        self.data.get(i).copied().ok_or(LaError::OutOfBounds {
            op: "get_scalar",
            index: (i, 0),
            shape: (self.data.len(), 1),
        })
    }

    /// Sets entry `i`, with bounds checking.
    pub fn set(&mut self, i: usize, value: f64) -> Result<()> {
        let len = self.data.len();
        match self.data.get_mut(i) {
            Some(slot) => {
                *slot = value;
                Ok(())
            }
            None => {
                Err(LaError::OutOfBounds { op: "set_scalar", index: (i, 0), shape: (len, 1) })
            }
        }
    }

    fn check_same_len(&self, other: &Vector, op: &'static str) -> Result<()> {
        if self.len() != other.len() {
            return Err(LaError::DimMismatch {
                op,
                lhs: (self.len(), 1),
                rhs: (other.len(), 1),
            });
        }
        Ok(())
    }

    /// Element-wise addition (`+` in the SQL extension).
    pub fn add(&self, other: &Vector) -> Result<Vector> {
        self.check_same_len(other, "vector_add")?;
        Ok(self.zip_with(other, |a, b| a + b))
    }

    /// Element-wise subtraction.
    pub fn sub(&self, other: &Vector) -> Result<Vector> {
        self.check_same_len(other, "vector_sub")?;
        Ok(self.zip_with(other, |a, b| a - b))
    }

    /// Element-wise (Hadamard) multiplication.
    pub fn mul(&self, other: &Vector) -> Result<Vector> {
        self.check_same_len(other, "vector_mul")?;
        Ok(self.zip_with(other, |a, b| a * b))
    }

    /// Element-wise division.
    pub fn div(&self, other: &Vector) -> Result<Vector> {
        self.check_same_len(other, "vector_div")?;
        Ok(self.zip_with(other, |a, b| a / b))
    }

    fn zip_with(&self, other: &Vector, f: impl Fn(f64, f64) -> f64) -> Vector {
        let data =
            self.data.iter().zip(other.data.iter()).map(|(&a, &b)| f(a, b)).collect();
        Vector { data, label: self.label }
    }

    /// Applies `scalar OP entry` for every entry — scalar broadcasting as in
    /// §3.2 ("arithmetic between a scalar value and a ... VECTOR type
    /// performs the arithmetic operation between the scalar and every
    /// entry").
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Vector {
        Vector { data: self.data.iter().map(|&x| f(x)).collect(), label: self.label }
    }

    /// Adds `s` to every entry.
    pub fn scalar_add(&self, s: f64) -> Vector {
        self.map(|x| x + s)
    }

    /// Subtracts `s` from every entry.
    pub fn scalar_sub(&self, s: f64) -> Vector {
        self.map(|x| x - s)
    }

    /// Multiplies every entry by `s`.
    pub fn scalar_mul(&self, s: f64) -> Vector {
        self.map(|x| x * s)
    }

    /// Divides every entry by `s`.
    pub fn scalar_div(&self, s: f64) -> Vector {
        self.map(|x| x / s)
    }

    /// `self + alpha * other`, fused; the classic BLAS `axpy` used by the
    /// aggregation paths to avoid a temporary per added vector.
    pub fn axpy_in_place(&mut self, alpha: f64, other: &Vector) -> Result<()> {
        self.check_same_len(other, "axpy")?;
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// In-place element-wise addition; used by the `SUM` aggregate so the
    /// accumulator does not allocate per input row.
    pub fn add_in_place(&mut self, other: &Vector) -> Result<()> {
        self.check_same_len(other, "vector_sum")?;
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
        Ok(())
    }

    /// In-place element-wise minimum (the `MIN` aggregate over vectors).
    pub fn min_in_place(&mut self, other: &Vector) -> Result<()> {
        self.check_same_len(other, "vector_min")?;
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a = a.min(b);
        }
        Ok(())
    }

    /// In-place element-wise maximum (the `MAX` aggregate over vectors).
    pub fn max_in_place(&mut self, other: &Vector) -> Result<()> {
        self.check_same_len(other, "vector_max")?;
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a = a.max(b);
        }
        Ok(())
    }

    /// Dot product — the `inner_product` built-in.
    pub fn inner_product(&self, other: &Vector) -> Result<f64> {
        self.check_same_len(other, "inner_product")?;
        // Accumulate in four lanes so the compiler can keep independent
        // dependency chains in flight (see the perf-book guidance on
        // reduction loops).
        let mut acc = [0.0f64; 4];
        let chunks = self.data.chunks_exact(4).zip(other.data.chunks_exact(4));
        for (a, b) in chunks {
            acc[0] += a[0] * b[0];
            acc[1] += a[1] * b[1];
            acc[2] += a[2] * b[2];
            acc[3] += a[3] * b[3];
        }
        let rem = self.data.len() - self.data.len() % 4;
        let mut tail = 0.0;
        for i in rem..self.data.len() {
            tail += self.data[i] * other.data[i];
        }
        Ok(acc[0] + acc[1] + acc[2] + acc[3] + tail)
    }

    /// Outer product `self · otherᵀ` — the `outer_product` built-in.
    pub fn outer_product(&self, other: &Vector) -> Matrix {
        let mut m = Matrix::zeros(self.len(), other.len());
        for (i, &a) in self.data.iter().enumerate() {
            let row = m.row_mut(i);
            for (slot, &b) in row.iter_mut().zip(other.data.iter()) {
                *slot = a * b;
            }
        }
        m
    }

    /// Accumulates `self * otherᵀ` into an existing matrix; the hot path of
    /// the vector-based Gram-matrix aggregation (Figure 1).
    pub fn outer_product_into(&self, other: &Vector, out: &mut Matrix) -> Result<()> {
        if out.rows() != self.len() || out.cols() != other.len() {
            return Err(LaError::DimMismatch {
                op: "outer_product_into",
                lhs: (self.len(), other.len()),
                rhs: (out.rows(), out.cols()),
            });
        }
        for (i, &a) in self.data.iter().enumerate() {
            let row = out.row_mut(i);
            for (slot, &b) in row.iter_mut().zip(other.data.iter()) {
                *slot += a * b;
            }
        }
        Ok(())
    }

    /// Euclidean norm — the `norm2` built-in.
    pub fn norm2(&self) -> f64 {
        self.inner_product(self).expect("same vector").sqrt()
    }

    /// Sum of all entries.
    pub fn sum_elements(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Smallest entry; `NaN` entries are ignored. Returns `f64::INFINITY`
    /// for an empty vector.
    pub fn min_element(&self) -> f64 {
        self.data.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Largest entry; returns `f64::NEG_INFINITY` for an empty vector.
    pub fn max_element(&self) -> f64 {
        self.data.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Index of the smallest entry (first occurrence), or `None` if empty.
    pub fn argmin(&self) -> Option<usize> {
        self.data
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
    }

    /// Index of the largest entry (first occurrence), or `None` if empty.
    pub fn argmax(&self) -> Option<usize> {
        self.data
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
    }

    /// Row-vector × matrix — the `vector_matrix_multiply` built-in.
    pub fn vector_matrix_multiply(&self, m: &Matrix) -> Result<Vector> {
        if self.len() != m.rows() {
            return Err(LaError::DimMismatch {
                op: "vector_matrix_multiply",
                lhs: (1, self.len()),
                rhs: (m.rows(), m.cols()),
            });
        }
        let mut out = vec![0.0; m.cols()];
        for (i, &a) in self.data.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            let row = m.row(i);
            for (o, &v) in out.iter_mut().zip(row.iter()) {
                *o += a * v;
            }
        }
        Ok(Vector::from_vec(out))
    }

    /// Reinterprets the vector as a 1×n matrix (used when a programmer wants
    /// explicit row-vector semantics, §3.1).
    pub fn to_row_matrix(&self) -> Matrix {
        Matrix::from_vec(1, self.len(), self.data.clone()).expect("consistent shape")
    }

    /// Reinterprets the vector as an n×1 matrix.
    pub fn to_col_matrix(&self) -> Matrix {
        Matrix::from_vec(self.len(), 1, self.data.clone()).expect("consistent shape")
    }

    /// Approximate equality with absolute tolerance `tol`; test helper.
    pub fn approx_eq(&self, other: &Vector, tol: f64) -> bool {
        self.len() == other.len()
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Size in bytes of the payload; used by the planner's cost model and by
    /// the exchange operators' shuffle accounting.
    pub fn byte_size(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>() + std::mem::size_of::<i64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_ones_filled() {
        assert_eq!(Vector::zeros(3).as_slice(), &[0.0, 0.0, 0.0]);
        assert_eq!(Vector::ones(2).as_slice(), &[1.0, 1.0]);
        assert_eq!(Vector::filled(2, 7.0).as_slice(), &[7.0, 7.0]);
    }

    #[test]
    fn default_label_is_minus_one() {
        assert_eq!(Vector::zeros(4).label(), -1);
    }

    #[test]
    fn with_label_sets_label_and_preserves_data() {
        let v = Vector::from_slice(&[1.0, 2.0]).with_label(42);
        assert_eq!(v.label(), 42);
        assert_eq!(v.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn elementwise_ops() {
        let a = Vector::from_slice(&[1.0, 2.0, 3.0]);
        let b = Vector::from_slice(&[4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).unwrap().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[4.0, 10.0, 18.0]);
        assert_eq!(b.div(&a).unwrap().as_slice(), &[4.0, 2.5, 2.0]);
    }

    #[test]
    fn elementwise_dim_mismatch() {
        let a = Vector::zeros(3);
        let b = Vector::zeros(4);
        assert!(matches!(a.add(&b), Err(LaError::DimMismatch { .. })));
    }

    #[test]
    fn scalar_broadcast() {
        let a = Vector::from_slice(&[2.0, 4.0]);
        assert_eq!(a.scalar_add(1.0).as_slice(), &[3.0, 5.0]);
        assert_eq!(a.scalar_mul(0.5).as_slice(), &[1.0, 2.0]);
        assert_eq!(a.scalar_sub(2.0).as_slice(), &[0.0, 2.0]);
        assert_eq!(a.scalar_div(2.0).as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn inner_product_matches_naive() {
        // length not a multiple of 4 to exercise the tail loop
        let a = Vector::from_fn(11, |i| i as f64);
        let b = Vector::from_fn(11, |i| (i as f64) * 0.5);
        let naive: f64 = (0..11).map(|i| (i * i) as f64 * 0.5).sum();
        assert!((a.inner_product(&b).unwrap() - naive).abs() < 1e-12);
    }

    #[test]
    fn inner_product_dim_mismatch() {
        assert!(Vector::zeros(2).inner_product(&Vector::zeros(3)).is_err());
    }

    #[test]
    fn outer_product_shape_and_values() {
        let a = Vector::from_slice(&[1.0, 2.0]);
        let b = Vector::from_slice(&[3.0, 4.0, 5.0]);
        let m = a.outer_product(&b);
        assert_eq!((m.rows(), m.cols()), (2, 3));
        assert_eq!(m.row(1), &[6.0, 8.0, 10.0]);
    }

    #[test]
    fn outer_product_into_accumulates() {
        let a = Vector::from_slice(&[1.0, 2.0]);
        let mut acc = Matrix::zeros(2, 2);
        a.outer_product_into(&a, &mut acc).unwrap();
        a.outer_product_into(&a, &mut acc).unwrap();
        assert_eq!(acc.get(1, 1).unwrap(), 8.0);
    }

    #[test]
    fn min_max_arg() {
        let v = Vector::from_slice(&[3.0, -1.0, 7.0, 0.0]);
        assert_eq!(v.min_element(), -1.0);
        assert_eq!(v.max_element(), 7.0);
        assert_eq!(v.argmin(), Some(1));
        assert_eq!(v.argmax(), Some(2));
        assert_eq!(Vector::zeros(0).argmin(), None);
    }

    #[test]
    fn axpy_and_sum_in_place() {
        let mut acc = Vector::zeros(3);
        let v = Vector::from_slice(&[1.0, 2.0, 3.0]);
        acc.add_in_place(&v).unwrap();
        acc.axpy_in_place(2.0, &v).unwrap();
        assert_eq!(acc.as_slice(), &[3.0, 6.0, 9.0]);
    }

    #[test]
    fn min_max_in_place() {
        let mut lo = Vector::from_slice(&[1.0, 5.0]);
        let mut hi = Vector::from_slice(&[1.0, 5.0]);
        let v = Vector::from_slice(&[2.0, 2.0]);
        lo.min_in_place(&v).unwrap();
        hi.max_in_place(&v).unwrap();
        assert_eq!(lo.as_slice(), &[1.0, 2.0]);
        assert_eq!(hi.as_slice(), &[2.0, 5.0]);
    }

    #[test]
    fn get_set_bounds() {
        let mut v = Vector::zeros(2);
        v.set(1, 9.0).unwrap();
        assert_eq!(v.get(1).unwrap(), 9.0);
        assert!(v.get(2).is_err());
        assert!(v.set(5, 0.0).is_err());
    }

    #[test]
    fn vector_matrix_multiply_works() {
        let v = Vector::from_slice(&[1.0, 2.0]);
        let m = Matrix::from_rows(&[&[1.0, 0.0, 1.0], &[0.0, 1.0, 1.0]]).unwrap();
        let out = v.vector_matrix_multiply(&m).unwrap();
        assert_eq!(out.as_slice(), &[1.0, 2.0, 3.0]);
        assert!(Vector::zeros(3).vector_matrix_multiply(&m).is_err());
    }

    #[test]
    fn row_col_matrix_views() {
        let v = Vector::from_slice(&[1.0, 2.0, 3.0]);
        let r = v.to_row_matrix();
        let c = v.to_col_matrix();
        assert_eq!((r.rows(), r.cols()), (1, 3));
        assert_eq!((c.rows(), c.cols()), (3, 1));
        assert_eq!(c.get(2, 0).unwrap(), 3.0);
    }

    #[test]
    fn byte_size_counts_payload() {
        assert_eq!(Vector::zeros(10).byte_size(), 10 * 8 + 8);
    }

    #[test]
    fn norm2_of_three_four() {
        let v = Vector::from_slice(&[3.0, 4.0]);
        assert!((v.norm2() - 5.0).abs() < 1e-12);
    }
}
