//! # lardb-la — dense linear algebra kernel
//!
//! This crate is the BLAS/LAPACK stand-in for the lardb system, the Rust
//! reproduction of *Scalable Linear Algebra on a Relational Database System*
//! (Luo et al., ICDE 2017). It provides the value types that the paper adds
//! to the relational model — [`Vector`], [`Matrix`] and [`LabeledScalar`] —
//! together with every numeric routine the paper's 22 built-in functions
//! need:
//!
//! * cache-blocked dense GEMM ([`Matrix::multiply`]) and matrix–vector
//!   products,
//! * LU factorization with partial pivoting ([`lu::LuDecomposition`]) for
//!   `matrix_inverse` and `solve`,
//! * Cholesky factorization ([`chol::CholeskyDecomposition`]) for symmetric
//!   positive-definite systems (used by the least-squares workloads),
//! * element-wise arithmetic with scalar broadcasting, exactly matching the
//!   overloaded `+ - * /` semantics of the paper's SQL extension (§3.2),
//! * the label machinery of §3.3 (`label_scalar`, `label_vector`,
//!   `VECTORIZE`, `ROWMATRIX`, `COLMATRIX`) via [`LabeledScalar`], vector
//!   labels and the [`builder`] module.
//!
//! Everything is plain safe Rust over row-major `f64` storage; there are no
//! external numeric dependencies. Matrices in the engine are shared by
//! `Arc`, so all routines here take `&self` and return fresh values.
//!
//! ## Example
//!
//! ```
//! use lardb_la::{Matrix, Vector};
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
//! let x = Vector::from_slice(&[1.0, 1.0]);
//! let y = a.matrix_vector_multiply(&x).unwrap();
//! assert_eq!(y.as_slice(), &[3.0, 7.0]);
//!
//! let inv = a.inverse().unwrap();
//! let id = a.multiply(&inv).unwrap();
//! assert!((id.get(0, 0).unwrap() - 1.0).abs() < 1e-12);
//! ```

pub mod builder;
pub mod chol;
pub mod dispatch;
pub mod error;
pub mod gemm;
pub mod labeled;
pub mod lu;
pub mod matrix;
pub mod qr;
pub mod sparse;
pub mod vector;

pub use builder::{ColMatrixBuilder, RowMatrixBuilder, VectorizeBuilder};
pub use chol::CholeskyDecomposition;
pub use dispatch::{DispatchCounters, DispatchMode};
pub use error::{LaError, Result};
pub use labeled::LabeledScalar;
pub use lu::LuDecomposition;
pub use qr::QrDecomposition;
pub use matrix::Matrix;
pub use sparse::{CooBuilder, SparseMatrix};
pub use vector::Vector;

/// Default label carried by vectors whose label was never set explicitly.
///
/// The paper (§3.3): "if the label is never explicitly set for a particular
/// vector, then its value is −1 by default".
pub const DEFAULT_LABEL: i64 = -1;
