//! Error type for all linear-algebra routines.

use std::fmt;

/// Errors produced by the linear-algebra kernel.
///
/// Dimension errors correspond to the *runtime* errors the paper describes
/// for operations over `VECTOR[]`/`MATRIX[][]` values whose sizes were left
/// unspecified at table-creation time (§3.1); the SQL type checker catches
/// the statically-known cases before execution ever reaches this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaError {
    /// Two operands had incompatible shapes for the requested operation.
    DimMismatch {
        /// Human-readable name of the operation, e.g. `"matrix_multiply"`.
        op: &'static str,
        /// Shape of the left/first operand, `(rows, cols)`; vectors use
        /// `(len, 1)`.
        lhs: (usize, usize),
        /// Shape of the right/second operand.
        rhs: (usize, usize),
    },
    /// An operation requiring a square matrix was given a rectangular one.
    NotSquare {
        /// Operation name.
        op: &'static str,
        /// Offending shape.
        shape: (usize, usize),
    },
    /// The matrix was singular (or not positive definite, for Cholesky) to
    /// working precision.
    Singular {
        /// Operation name.
        op: &'static str,
    },
    /// An element access was out of bounds.
    OutOfBounds {
        /// Operation name.
        op: &'static str,
        /// The requested index.
        index: (usize, usize),
        /// The actual shape.
        shape: (usize, usize),
    },
    /// A constructor was given inconsistent data (e.g. ragged rows).
    InvalidConstruction {
        /// Explanation of what was inconsistent.
        reason: String,
    },
}

impl fmt::Display for LaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LaError::DimMismatch { op, lhs, rhs } => write!(
                f,
                "{op}: dimension mismatch between {}x{} and {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LaError::NotSquare { op, shape } => {
                write!(f, "{op}: requires a square matrix, got {}x{}", shape.0, shape.1)
            }
            LaError::Singular { op } => write!(f, "{op}: matrix is singular to working precision"),
            LaError::OutOfBounds { op, index, shape } => write!(
                f,
                "{op}: index ({}, {}) out of bounds for shape {}x{}",
                index.0, index.1, shape.0, shape.1
            ),
            LaError::InvalidConstruction { reason } => {
                write!(f, "invalid construction: {reason}")
            }
        }
    }
}

impl std::error::Error for LaError {}

/// Convenient result alias used throughout the kernel.
pub type Result<T> = std::result::Result<T, LaError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dim_mismatch() {
        let e = LaError::DimMismatch { op: "matrix_multiply", lhs: (10, 100), rhs: (10, 100) };
        let s = e.to_string();
        assert!(s.contains("matrix_multiply"));
        assert!(s.contains("10x100"));
    }

    #[test]
    fn display_singular() {
        let e = LaError::Singular { op: "matrix_inverse" };
        assert!(e.to_string().contains("singular"));
    }

    #[test]
    fn display_not_square() {
        let e = LaError::NotSquare { op: "diag", shape: (3, 4) };
        assert!(e.to_string().contains("3x4"));
    }

    #[test]
    fn display_out_of_bounds() {
        let e = LaError::OutOfBounds { op: "get_entry", index: (5, 0), shape: (2, 2) };
        assert!(e.to_string().contains("(5, 0)"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&LaError::Singular { op: "x" });
    }
}
