//! Dense row-major `f64` matrices.

use crate::error::{LaError, Result};
use crate::gemm;
use crate::vector::Vector;

/// A dense, row-major matrix of `f64` entries — the paper's `MATRIX` type.
///
/// All matrices are *local*: the paper's design deliberately keeps every
/// matrix small enough for one machine's RAM (§3.4); large matrices live in
/// the database as relations of tiles, and distributed arithmetic over tiles
/// is ordinary relational algebra.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates an all-zero `rows × cols` matrix (the `zero_matrix` built-in).
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix with every entry set to `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates the `n × n` identity matrix (the `identity` built-in).
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices; all rows must have equal length.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != c {
                return Err(LaError::InvalidConstruction {
                    reason: format!("row {i} has length {}, expected {c}", row.len()),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix { rows: r, cols: c, data })
    }

    /// Builds a matrix from a flat row-major buffer.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LaError::InvalidConstruction {
                reason: format!(
                    "buffer length {} does not match {rows}x{cols}",
                    data.len()
                ),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Builds a matrix from a generating function over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// True when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Read-only view of the flat row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the flat row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Row `i` as a slice. Panics if out of range (internal hot path; use
    /// [`Matrix::get`] for checked access).
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Checked element access — the `get_entry` built-in.
    pub fn get(&self, i: usize, j: usize) -> Result<f64> {
        if i >= self.rows || j >= self.cols {
            return Err(LaError::OutOfBounds {
                op: "get_entry",
                index: (i, j),
                shape: self.shape(),
            });
        }
        Ok(self.data[i * self.cols + j])
    }

    /// Checked element update.
    pub fn set(&mut self, i: usize, j: usize, value: f64) -> Result<()> {
        if i >= self.rows || j >= self.cols {
            return Err(LaError::OutOfBounds {
                op: "set_entry",
                index: (i, j),
                shape: self.shape(),
            });
        }
        self.data[i * self.cols + j] = value;
        Ok(())
    }

    /// Unchecked-by-construction access used by kernel inner loops.
    #[inline]
    pub(crate) fn at(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }

    /// Extracts row `i` as a [`Vector`] (used by the block-based SQL paths).
    pub fn row_vector(&self, i: usize) -> Result<Vector> {
        if i >= self.rows {
            return Err(LaError::OutOfBounds {
                op: "row_vector",
                index: (i, 0),
                shape: self.shape(),
            });
        }
        Ok(Vector::from_slice(self.row(i)))
    }

    /// Extracts column `j` as a [`Vector`].
    pub fn col_vector(&self, j: usize) -> Result<Vector> {
        if j >= self.cols {
            return Err(LaError::OutOfBounds {
                op: "col_vector",
                index: (0, j),
                shape: self.shape(),
            });
        }
        Ok(Vector::from_fn(self.rows, |i| self.at(i, j)))
    }

    /// Matrix transpose — the `trans_matrix` built-in. Blocked for cache
    /// friendliness on large matrices.
    pub fn transpose(&self) -> Matrix {
        const B: usize = 32;
        let mut out = Matrix::zeros(self.cols, self.rows);
        for ib in (0..self.rows).step_by(B) {
            for jb in (0..self.cols).step_by(B) {
                let imax = (ib + B).min(self.rows);
                let jmax = (jb + B).min(self.cols);
                for i in ib..imax {
                    for j in jb..jmax {
                        out.data[j * self.rows + i] = self.data[i * self.cols + j];
                    }
                }
            }
        }
        out
    }

    /// Matrix × matrix — the `matrix_multiply` built-in; cache-blocked GEMM.
    ///
    /// ```
    /// use lardb_la::Matrix;
    /// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
    /// let b = Matrix::identity(2);
    /// assert_eq!(a.multiply(&b).unwrap(), a);
    /// assert!(Matrix::zeros(2, 3).multiply(&Matrix::zeros(2, 3)).is_err());
    /// ```
    pub fn multiply(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(LaError::DimMismatch {
                op: "matrix_multiply",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        gemm::gemm_acc(self, other, &mut out);
        Ok(out)
    }

    /// Accumulates `self × other` into `out` (`out += self * other`); the hot
    /// path of distributed tile multiplication where many partial products
    /// are summed (§3.4).
    pub fn multiply_into(&self, other: &Matrix, out: &mut Matrix) -> Result<()> {
        if self.cols != other.rows {
            return Err(LaError::DimMismatch {
                op: "matrix_multiply",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        if out.rows != self.rows || out.cols != other.cols {
            return Err(LaError::DimMismatch {
                op: "matrix_multiply_into",
                lhs: (self.rows, other.cols),
                rhs: out.shape(),
            });
        }
        gemm::gemm_acc(self, other, out);
        Ok(())
    }

    /// `selfᵀ × self`, exploiting symmetry — used by Gram-matrix and
    /// least-squares kernels (computes only the upper triangle, mirrors it).
    pub fn gram(&self) -> Matrix {
        gemm::syrk_t(self)
    }

    /// Matrix × column-vector — the `matrix_vector_multiply` built-in.
    pub fn matrix_vector_multiply(&self, v: &Vector) -> Result<Vector> {
        if self.cols != v.len() {
            return Err(LaError::DimMismatch {
                op: "matrix_vector_multiply",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        let mut out = Vec::with_capacity(self.rows);
        for i in 0..self.rows {
            let row = self.row(i);
            let mut s = 0.0;
            for (a, b) in row.iter().zip(v.as_slice().iter()) {
                s += a * b;
            }
            out.push(s);
        }
        Ok(Vector::from_vec(out))
    }

    fn check_same_shape(&self, other: &Matrix, op: &'static str) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(LaError::DimMismatch { op, lhs: self.shape(), rhs: other.shape() });
        }
        Ok(())
    }

    fn zip_with(&self, other: &Matrix, f: impl Fn(f64, f64) -> f64) -> Matrix {
        let data =
            self.data.iter().zip(other.data.iter()).map(|(&a, &b)| f(a, b)).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Element-wise addition (`+` in the SQL extension).
    pub fn add(&self, other: &Matrix) -> Result<Matrix> {
        self.check_same_shape(other, "matrix_add")?;
        Ok(self.zip_with(other, |a, b| a + b))
    }

    /// Element-wise subtraction.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix> {
        self.check_same_shape(other, "matrix_sub")?;
        Ok(self.zip_with(other, |a, b| a - b))
    }

    /// Element-wise (Hadamard) product — `mat * mat` in §3.2.
    pub fn mul(&self, other: &Matrix) -> Result<Matrix> {
        self.check_same_shape(other, "matrix_mul")?;
        Ok(self.zip_with(other, |a, b| a * b))
    }

    /// Element-wise division.
    pub fn div(&self, other: &Matrix) -> Result<Matrix> {
        self.check_same_shape(other, "matrix_div")?;
        Ok(self.zip_with(other, |a, b| a / b))
    }

    /// In-place element-wise addition (the `SUM` aggregate accumulator).
    pub fn add_in_place(&mut self, other: &Matrix) -> Result<()> {
        self.check_same_shape(other, "matrix_sum")?;
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
        Ok(())
    }

    /// In-place element-wise minimum (the `MIN` aggregate).
    pub fn min_in_place(&mut self, other: &Matrix) -> Result<()> {
        self.check_same_shape(other, "matrix_min")?;
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a = a.min(b);
        }
        Ok(())
    }

    /// In-place element-wise maximum (the `MAX` aggregate).
    pub fn max_in_place(&mut self, other: &Matrix) -> Result<()> {
        self.check_same_shape(other, "matrix_max")?;
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a = a.max(b);
        }
        Ok(())
    }

    /// Applies `f` to every entry.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Adds `s` to every entry (scalar broadcast, §3.2).
    pub fn scalar_add(&self, s: f64) -> Matrix {
        self.map(|x| x + s)
    }

    /// Subtracts `s` from every entry.
    pub fn scalar_sub(&self, s: f64) -> Matrix {
        self.map(|x| x - s)
    }

    /// Multiplies every entry by `s`.
    pub fn scalar_mul(&self, s: f64) -> Matrix {
        self.map(|x| x * s)
    }

    /// Divides every entry by `s`.
    pub fn scalar_div(&self, s: f64) -> Matrix {
        self.map(|x| x / s)
    }

    /// Diagonal of a square matrix — the `diag` built-in, whose templated
    /// signature `diag(MATRIX[a][a]) -> VECTOR[a]` constrains the input to
    /// be square (§4.2).
    pub fn diag(&self) -> Result<Vector> {
        if !self.is_square() {
            return Err(LaError::NotSquare { op: "diag", shape: self.shape() });
        }
        Ok(Vector::from_fn(self.rows, |i| self.at(i, i)))
    }

    /// Builds a diagonal matrix from a vector — the `diag_matrix` built-in.
    pub fn from_diag(v: &Vector) -> Matrix {
        let n = v.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &x) in v.as_slice().iter().enumerate() {
            m.data[i * n + i] = x;
        }
        m
    }

    /// Trace of a square matrix.
    pub fn trace(&self) -> Result<f64> {
        if !self.is_square() {
            return Err(LaError::NotSquare { op: "trace", shape: self.shape() });
        }
        Ok((0..self.rows).map(|i| self.at(i, i)).sum())
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Sum of all entries.
    pub fn sum_elements(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Per-row sums — the `row_sums` built-in.
    pub fn row_sums(&self) -> Vector {
        Vector::from_fn(self.rows, |i| self.row(i).iter().sum())
    }

    /// Per-column sums — the `col_sums` built-in.
    pub fn col_sums(&self) -> Vector {
        let mut out = vec![0.0; self.cols];
        for i in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(i).iter()) {
                *o += v;
            }
        }
        Vector::from_vec(out)
    }

    /// Per-row minima (SystemML's `rowMins`, used by the distance workload).
    pub fn row_mins(&self) -> Vector {
        Vector::from_fn(self.rows, |i| {
            self.row(i).iter().copied().fold(f64::INFINITY, f64::min)
        })
    }

    /// Per-row maxima.
    pub fn row_maxs(&self) -> Vector {
        Vector::from_fn(self.rows, |i| {
            self.row(i).iter().copied().fold(f64::NEG_INFINITY, f64::max)
        })
    }

    /// Inverse via LU with partial pivoting — the `matrix_inverse` built-in.
    pub fn inverse(&self) -> Result<Matrix> {
        crate::lu::LuDecomposition::new(self)?.inverse()
    }

    /// Solves `self · x = b` — the `solve` built-in.
    pub fn solve(&self, b: &Vector) -> Result<Vector> {
        crate::lu::LuDecomposition::new(self)?.solve(b)
    }

    /// Determinant via LU.
    pub fn determinant(&self) -> Result<f64> {
        Ok(crate::lu::LuDecomposition::new(self)?.determinant())
    }

    /// Stacks matrices vertically; every input must have the same column
    /// count. Used by `ROWMATRIX`-style assembly and the tiled examples.
    pub fn vstack(parts: &[&Matrix]) -> Result<Matrix> {
        let cols = parts.first().map_or(0, |m| m.cols);
        let mut data = Vec::new();
        let mut rows = 0;
        for (i, m) in parts.iter().enumerate() {
            if m.cols != cols {
                return Err(LaError::InvalidConstruction {
                    reason: format!("vstack part {i} has {} cols, expected {cols}", m.cols),
                });
            }
            rows += m.rows;
            data.extend_from_slice(&m.data);
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Extracts the sub-matrix `[r0, r0+nrows) × [c0, c0+ncols)`.
    pub fn submatrix(&self, r0: usize, c0: usize, nrows: usize, ncols: usize) -> Result<Matrix> {
        if r0 + nrows > self.rows || c0 + ncols > self.cols {
            return Err(LaError::OutOfBounds {
                op: "submatrix",
                index: (r0 + nrows, c0 + ncols),
                shape: self.shape(),
            });
        }
        let mut data = Vec::with_capacity(nrows * ncols);
        for i in r0..r0 + nrows {
            data.extend_from_slice(&self.data[i * self.cols + c0..i * self.cols + c0 + ncols]);
        }
        Ok(Matrix { rows: nrows, cols: ncols, data })
    }

    /// Approximate equality with absolute tolerance `tol`; test helper.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Payload size in bytes — what the paper's optimizer estimates as
    /// `8 × rows × cols` (§4.1); used by the cost model and shuffle metering.
    pub fn byte_size(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m22() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap()
    }

    #[test]
    fn constructors() {
        assert_eq!(Matrix::zeros(2, 3).shape(), (2, 3));
        assert_eq!(Matrix::identity(3).trace().unwrap(), 3.0);
        assert_eq!(Matrix::filled(2, 2, 5.0).sum_elements(), 20.0);
        let f = Matrix::from_fn(2, 2, |i, j| (i * 10 + j) as f64);
        assert_eq!(f.get(1, 1).unwrap(), 11.0);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let r: &[&[f64]] = &[&[1.0, 2.0], &[3.0]];
        assert!(matches!(Matrix::from_rows(r), Err(LaError::InvalidConstruction { .. })));
    }

    #[test]
    fn from_vec_rejects_wrong_len() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn transpose_square_and_rect() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(2, 1).unwrap(), 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn transpose_large_blocked() {
        let m = Matrix::from_fn(70, 45, |i, j| (i * 45 + j) as f64);
        let t = m.transpose();
        for i in 0..70 {
            for j in 0..45 {
                assert_eq!(t.get(j, i).unwrap(), m.get(i, j).unwrap());
            }
        }
    }

    #[test]
    fn multiply_identity() {
        let m = m22();
        let id = Matrix::identity(2);
        assert_eq!(m.multiply(&id).unwrap(), m);
        assert_eq!(id.multiply(&m).unwrap(), m);
    }

    #[test]
    fn multiply_known_values() {
        let a = m22();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.multiply(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap());
    }

    #[test]
    fn multiply_dim_mismatch() {
        assert!(Matrix::zeros(2, 3).multiply(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn multiply_into_accumulates() {
        let a = Matrix::identity(2);
        let mut acc = Matrix::zeros(2, 2);
        a.multiply_into(&a, &mut acc).unwrap();
        a.multiply_into(&a, &mut acc).unwrap();
        assert_eq!(acc.get(0, 0).unwrap(), 2.0);
        let mut bad = Matrix::zeros(3, 3);
        assert!(a.multiply_into(&a, &mut bad).is_err());
    }

    #[test]
    fn matrix_vector_multiply_works() {
        let m = m22();
        let v = Vector::from_slice(&[1.0, 1.0]);
        assert_eq!(m.matrix_vector_multiply(&v).unwrap().as_slice(), &[3.0, 7.0]);
        assert!(m.matrix_vector_multiply(&Vector::zeros(3)).is_err());
    }

    #[test]
    fn elementwise_and_broadcast() {
        let a = m22();
        assert_eq!(a.add(&a).unwrap(), a.scalar_mul(2.0));
        assert_eq!(a.sub(&a).unwrap(), Matrix::zeros(2, 2));
        assert_eq!(a.mul(&a).unwrap().get(1, 1).unwrap(), 16.0);
        assert_eq!(a.div(&a).unwrap(), Matrix::filled(2, 2, 1.0));
        assert_eq!(a.scalar_add(1.0).get(0, 0).unwrap(), 2.0);
        assert_eq!(a.scalar_sub(1.0).get(0, 0).unwrap(), 0.0);
        assert_eq!(a.scalar_div(2.0).get(1, 1).unwrap(), 2.0);
    }

    #[test]
    fn elementwise_shape_mismatch() {
        assert!(m22().add(&Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn in_place_aggregate_ops() {
        let mut acc = Matrix::zeros(2, 2);
        acc.add_in_place(&m22()).unwrap();
        acc.add_in_place(&m22()).unwrap();
        assert_eq!(acc, m22().scalar_mul(2.0));
        let mut lo = m22();
        lo.min_in_place(&Matrix::filled(2, 2, 2.5)).unwrap();
        assert_eq!(lo.get(0, 0).unwrap(), 1.0);
        assert_eq!(lo.get(1, 1).unwrap(), 2.5);
        let mut hi = m22();
        hi.max_in_place(&Matrix::filled(2, 2, 2.5)).unwrap();
        assert_eq!(hi.get(0, 0).unwrap(), 2.5);
        assert_eq!(hi.get(1, 1).unwrap(), 4.0);
    }

    #[test]
    fn diag_roundtrip() {
        let v = Vector::from_slice(&[1.0, 2.0, 3.0]);
        let d = Matrix::from_diag(&v);
        assert_eq!(d.diag().unwrap(), v);
        assert_eq!(d.trace().unwrap(), 6.0);
        assert!(Matrix::zeros(2, 3).diag().is_err());
        assert!(Matrix::zeros(2, 3).trace().is_err());
    }

    #[test]
    fn row_col_reductions() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(m.row_sums().as_slice(), &[3.0, 7.0]);
        assert_eq!(m.col_sums().as_slice(), &[4.0, 6.0]);
        assert_eq!(m.row_mins().as_slice(), &[1.0, 3.0]);
        assert_eq!(m.row_maxs().as_slice(), &[2.0, 4.0]);
    }

    #[test]
    fn frobenius_norm_known() {
        let m = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn gram_matches_explicit_transpose_multiply() {
        let m = Matrix::from_fn(7, 5, |i, j| ((i * 5 + j) % 11) as f64 - 5.0);
        let g1 = m.gram();
        let g2 = m.transpose().multiply(&m).unwrap();
        assert!(g1.approx_eq(&g2, 1e-10));
    }

    #[test]
    fn row_col_vector_extraction() {
        let m = m22();
        assert_eq!(m.row_vector(1).unwrap().as_slice(), &[3.0, 4.0]);
        assert_eq!(m.col_vector(0).unwrap().as_slice(), &[1.0, 3.0]);
        assert!(m.row_vector(2).is_err());
        assert!(m.col_vector(2).is_err());
    }

    #[test]
    fn vstack_and_submatrix() {
        let a = m22();
        let s = Matrix::vstack(&[&a, &a]).unwrap();
        assert_eq!(s.shape(), (4, 2));
        assert_eq!(s.get(3, 1).unwrap(), 4.0);
        let sub = s.submatrix(2, 0, 2, 2).unwrap();
        assert_eq!(sub, a);
        assert!(s.submatrix(3, 0, 2, 2).is_err());
        assert!(Matrix::vstack(&[&a, &Matrix::zeros(1, 3)]).is_err());
    }

    #[test]
    fn get_set_bounds() {
        let mut m = Matrix::zeros(2, 2);
        m.set(0, 1, 9.0).unwrap();
        assert_eq!(m.get(0, 1).unwrap(), 9.0);
        assert!(m.get(2, 0).is_err());
        assert!(m.set(0, 2, 1.0).is_err());
    }

    #[test]
    fn byte_size_is_8rc() {
        // the paper's §4.1 estimate: 8 × 100000 × 100 bytes = 80 MB
        assert_eq!(Matrix::zeros(100, 50).byte_size(), 8 * 100 * 50);
    }
}
