//! The `LABELED_SCALAR` type of §3.3 — "essentially a DOUBLE with a label".

/// A double paired with an integer label, produced by the `label_scalar`
/// built-in and consumed by the `VECTORIZE` aggregate, which places each
/// value into a vector at the position indicated by its label.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LabeledScalar {
    /// The payload value.
    pub value: f64,
    /// The position label. `VECTORIZE` uses this as a (1-based or 0-based,
    /// see [`crate::builder::VectorizeBuilder`]) index into the result.
    pub label: i64,
}

impl LabeledScalar {
    /// Creates a labeled scalar — the `label_scalar(value, label)` built-in.
    pub fn new(value: f64, label: i64) -> Self {
        LabeledScalar { value, label }
    }
}

impl std::fmt::Display for LabeledScalar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@{}", self.value, self.label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_display() {
        let s = LabeledScalar::new(2.5, 7);
        assert_eq!(s.value, 2.5);
        assert_eq!(s.label, 7);
        assert_eq!(s.to_string(), "2.5@7");
    }
}
