//! Cholesky factorization for symmetric positive-definite systems.
//!
//! The least-squares workload (Figure 2) solves the normal equations
//! `(XᵀX)·β = Xᵀy`; `XᵀX` is symmetric positive (semi-)definite, so a
//! Cholesky solve is both faster and more numerically stable than a general
//! LU inverse. The SQL surface exposes this through the `solve` built-in,
//! which tries Cholesky first for symmetric inputs and falls back to LU.

use crate::error::{LaError, Result};
use crate::matrix::Matrix;
use crate::vector::Vector;

/// A lower-triangular Cholesky factor `L` with `A = L·Lᵀ`.
#[derive(Debug, Clone)]
pub struct CholeskyDecomposition {
    l: Matrix,
}

impl CholeskyDecomposition {
    /// Factorizes a symmetric positive-definite matrix. Fails with
    /// [`LaError::Singular`] when a diagonal pivot is not strictly positive
    /// (i.e. the matrix is not PD to working precision) and
    /// [`LaError::NotSquare`] for rectangular input. Symmetry is assumed —
    /// only the lower triangle of `a` is read.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LaError::NotSquare { op: "cholesky", shape: a.shape() });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut s = a.get(i, j).expect("validated shape");
                for k in 0..j {
                    s -= l.as_slice()[i * n + k] * l.as_slice()[j * n + k];
                }
                if i == j {
                    if s <= 0.0 || !s.is_finite() {
                        return Err(LaError::Singular { op: "cholesky" });
                    }
                    l.as_mut_slice()[i * n + j] = s.sqrt();
                } else {
                    l.as_mut_slice()[i * n + j] = s / l.as_slice()[j * n + j];
                }
            }
        }
        Ok(CholeskyDecomposition { l })
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// The lower-triangular factor.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A·x = b` via two triangular solves.
    pub fn solve(&self, b: &Vector) -> Result<Vector> {
        let n = self.dim();
        if b.len() != n {
            return Err(LaError::DimMismatch {
                op: "cholesky_solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        let l = self.l.as_slice();
        let mut x = b.as_slice().to_vec();
        // Forward: L·y = b.
        for i in 0..n {
            let mut s = x[i];
            for k in 0..i {
                s -= l[i * n + k] * x[k];
            }
            x[i] = s / l[i * n + i];
        }
        // Back: Lᵀ·x = y.
        for i in (0..n).rev() {
            let mut s = x[i];
            for k in (i + 1)..n {
                s -= l[k * n + i] * x[k];
            }
            x[i] = s / l[i * n + i];
        }
        Ok(Vector::from_vec(x))
    }

    /// Inverse of the original matrix (solve against identity columns).
    pub fn inverse(&self) -> Result<Matrix> {
        let n = self.dim();
        let mut out = Matrix::zeros(n, n);
        for j in 0..n {
            let mut e = Vector::zeros(n);
            e.set(j, 1.0).expect("in range");
            let col = self.solve(&e)?;
            for i in 0..n {
                out.set(i, j, col.get(i).expect("in range")).expect("in range");
            }
        }
        Ok(out)
    }

    /// log-determinant of the original matrix: `2·Σ log L[i][i]`. Stable for
    /// the large covariance matrices the distance workload builds.
    pub fn log_determinant(&self) -> f64 {
        let n = self.dim();
        2.0 * (0..n).map(|i| self.l.as_slice()[i * n + i].ln()).sum::<f64>()
    }
}

/// True when `a` is symmetric within absolute tolerance `tol`.
pub fn is_symmetric(a: &Matrix, tol: f64) -> bool {
    if !a.is_square() {
        return false;
    }
    let n = a.rows();
    for i in 0..n {
        for j in (i + 1)..n {
            if (a.as_slice()[i * n + j] - a.as_slice()[j * n + i]).abs() > tol {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd(n: usize) -> Matrix {
        // B·Bᵀ + n·I is SPD for any B.
        let b = Matrix::from_fn(n, n, |i, j| ((i * 7 + j * 3) % 5) as f64 - 2.0);
        let bbt = b.multiply(&b.transpose()).unwrap();
        bbt.add(&Matrix::identity(n).scalar_mul(n as f64)).unwrap()
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd(6);
        let c = CholeskyDecomposition::new(&a).unwrap();
        let l = c.factor();
        let back = l.multiply(&l.transpose()).unwrap();
        assert!(back.approx_eq(&a, 1e-9));
    }

    #[test]
    fn solve_matches_lu() {
        let a = spd(7);
        let b = Vector::from_fn(7, |i| i as f64 - 3.0);
        let x_chol = CholeskyDecomposition::new(&a).unwrap().solve(&b).unwrap();
        let x_lu = a.solve(&b).unwrap();
        assert!(x_chol.approx_eq(&x_lu, 1e-8));
    }

    #[test]
    fn inverse_matches_lu_inverse() {
        let a = spd(5);
        let inv_c = CholeskyDecomposition::new(&a).unwrap().inverse().unwrap();
        let inv_l = a.inverse().unwrap();
        assert!(inv_c.approx_eq(&inv_l, 1e-8));
    }

    #[test]
    fn non_pd_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap(); // eigenvalues 3, -1
        assert!(matches!(CholeskyDecomposition::new(&a), Err(LaError::Singular { .. })));
    }

    #[test]
    fn rectangular_rejected() {
        assert!(CholeskyDecomposition::new(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn log_determinant_matches_lu_determinant() {
        let a = spd(4);
        let ld = CholeskyDecomposition::new(&a).unwrap().log_determinant();
        let det = a.determinant().unwrap();
        assert!((ld - det.ln()).abs() < 1e-8);
    }

    #[test]
    fn symmetry_check() {
        assert!(is_symmetric(&spd(4), 1e-12));
        let asym = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert!(!is_symmetric(&asym, 1e-12));
        assert!(!is_symmetric(&Matrix::zeros(2, 3), 1e-12));
    }

    #[test]
    fn one_by_one_spd() {
        let a = Matrix::from_rows(&[&[4.0]]).unwrap();
        let c = CholeskyDecomposition::new(&a).unwrap();
        assert_eq!(c.factor().get(0, 0).unwrap(), 2.0);
        assert_eq!(c.solve(&Vector::from_slice(&[8.0])).unwrap().as_slice(), &[2.0]);
    }

    #[test]
    fn zero_matrix_rejected() {
        assert!(CholeskyDecomposition::new(&Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn solve_dim_mismatch() {
        let c = CholeskyDecomposition::new(&spd(3)).unwrap();
        assert!(c.solve(&Vector::zeros(4)).is_err());
    }
}
