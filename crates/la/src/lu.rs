//! LU factorization with partial pivoting — the engine's LAPACK stand-in for
//! `matrix_inverse`, `solve` and determinants.

// Index-based loops mirror the LAPACK-style reference formulation.
#![allow(clippy::needless_range_loop)]

use crate::error::{LaError, Result};
use crate::matrix::Matrix;
use crate::vector::Vector;

/// Pivot magnitudes below this (relative to the column scale) are treated as
/// exact zeros, i.e. the matrix is reported singular.
const SINGULARITY_EPS: f64 = 1e-13;

/// An LU factorization `P·A = L·U` of a square matrix, with partial
/// (row) pivoting.
///
/// The factorization is computed once and can then be reused for multiple
/// solves — exactly how the least-squares workload (Figure 2) inverts the
/// `XᵀX` normal matrix.
#[derive(Debug, Clone)]
pub struct LuDecomposition {
    /// Packed L (unit lower, below diagonal) and U (upper, incl. diagonal).
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
    /// +1.0 or −1.0 depending on the parity of the permutation.
    sign: f64,
}

impl LuDecomposition {
    /// Factorizes `a`. Fails with [`LaError::NotSquare`] for rectangular
    /// input and [`LaError::Singular`] when a pivot collapses.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LaError::NotSquare { op: "lu", shape: a.shape() });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;

        // Scale of the whole matrix, for a relative singularity test.
        let scale = lu.as_slice().iter().fold(0.0f64, |m, x| m.max(x.abs())).max(1.0);

        for col in 0..n {
            // Find the pivot row.
            let mut pivot_row = col;
            let mut pivot_val = lu.as_slice()[col * n + col].abs();
            for r in (col + 1)..n {
                let v = lu.as_slice()[r * n + col].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val <= SINGULARITY_EPS * scale {
                return Err(LaError::Singular { op: "lu" });
            }
            if pivot_row != col {
                swap_rows(&mut lu, col, pivot_row);
                perm.swap(col, pivot_row);
                sign = -sign;
            }
            let pivot = lu.as_slice()[col * n + col];
            // Eliminate below the pivot.
            for r in (col + 1)..n {
                let factor = lu.as_slice()[r * n + col] / pivot;
                lu.as_mut_slice()[r * n + col] = factor;
                if factor == 0.0 {
                    continue;
                }
                // Split the storage at row r so we can read the pivot row
                // while writing row r.
                let (upper, lower) = lu.as_mut_slice().split_at_mut(r * n);
                let pivot_row_slice = &upper[col * n + col + 1..(col + 1) * n];
                let target = &mut lower[col + 1..n];
                for (t, &p) in target.iter_mut().zip(pivot_row_slice.iter()) {
                    *t -= factor * p;
                }
            }
        }

        Ok(LuDecomposition { lu, perm, sign })
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A·x = b` for one right-hand side.
    pub fn solve(&self, b: &Vector) -> Result<Vector> {
        let n = self.dim();
        if b.len() != n {
            return Err(LaError::DimMismatch { op: "solve", lhs: (n, n), rhs: (b.len(), 1) });
        }
        // Apply permutation.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b.as_slice()[p]).collect();
        self.solve_in_place(&mut x);
        Ok(Vector::from_vec(x))
    }

    /// Solves `A·X = B` column-by-column.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LaError::DimMismatch {
                op: "solve_matrix",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        let cols = b.cols();
        let mut out = Matrix::zeros(n, cols);
        let mut work = vec![0.0; n];
        for j in 0..cols {
            for (i, &p) in self.perm.iter().enumerate() {
                work[i] = b.as_slice()[p * cols + j];
            }
            self.solve_in_place(&mut work);
            for i in 0..n {
                out.as_mut_slice()[i * cols + j] = work[i];
            }
        }
        Ok(out)
    }

    /// Forward + back substitution on a permuted RHS.
    fn solve_in_place(&self, x: &mut [f64]) {
        let n = self.dim();
        let lu = self.lu.as_slice();
        // Forward: L·y = Pb (L has unit diagonal).
        for i in 1..n {
            let mut s = x[i];
            for k in 0..i {
                s -= lu[i * n + k] * x[k];
            }
            x[i] = s;
        }
        // Back: U·x = y.
        for i in (0..n).rev() {
            let mut s = x[i];
            for k in (i + 1)..n {
                s -= lu[i * n + k] * x[k];
            }
            x[i] = s / lu[i * n + i];
        }
    }

    /// The matrix inverse, computed by solving against the identity.
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }

    /// Determinant: product of U's diagonal times the permutation sign.
    pub fn determinant(&self) -> f64 {
        let n = self.dim();
        let mut det = self.sign;
        for i in 0..n {
            det *= self.lu.as_slice()[i * n + i];
        }
        det
    }
}

fn swap_rows(m: &mut Matrix, a: usize, b: usize) {
    if a == b {
        return;
    }
    let n = m.cols();
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    let (first, second) = m.as_mut_slice().split_at_mut(hi * n);
    first[lo * n..(lo + 1) * n].swap_with_slice(&mut second[..n]);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn well_conditioned(n: usize) -> Matrix {
        // Diagonally dominant => nonsingular.
        Matrix::from_fn(n, n, |i, j| {
            if i == j {
                n as f64 + 1.0
            } else {
                1.0 / ((i + 2 * j + 1) as f64)
            }
        })
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = well_conditioned(6);
        let x_true = Vector::from_fn(6, |i| (i as f64) - 2.5);
        let b = a.matrix_vector_multiply(&x_true).unwrap();
        let x = a.solve(&b).unwrap();
        assert!(x.approx_eq(&x_true, 1e-10));
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = well_conditioned(8);
        let inv = a.inverse().unwrap();
        let id = a.multiply(&inv).unwrap();
        assert!(id.approx_eq(&Matrix::identity(8), 1e-9));
        let id2 = inv.multiply(&a).unwrap();
        assert!(id2.approx_eq(&Matrix::identity(8), 1e-9));
    }

    #[test]
    fn singular_matrix_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(LuDecomposition::new(&a), Err(LaError::Singular { .. })));
        assert!(a.inverse().is_err());
    }

    #[test]
    fn rectangular_rejected() {
        assert!(matches!(
            LuDecomposition::new(&Matrix::zeros(2, 3)),
            Err(LaError::NotSquare { .. })
        ));
    }

    #[test]
    fn determinant_known_values() {
        let a = Matrix::from_rows(&[&[3.0, 8.0], &[4.0, 6.0]]).unwrap();
        assert!((a.determinant().unwrap() - (-14.0)).abs() < 1e-10);
        assert!((Matrix::identity(5).determinant().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn determinant_sign_with_pivoting() {
        // Requires a row swap: leading zero.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        assert!((a.determinant().unwrap() - (-1.0)).abs() < 1e-12);
    }

    #[test]
    fn solve_matrix_multiple_rhs() {
        let a = well_conditioned(5);
        let b = Matrix::from_fn(5, 3, |i, j| (i + j) as f64);
        let x = LuDecomposition::new(&a).unwrap().solve_matrix(&b).unwrap();
        let back = a.multiply(&x).unwrap();
        assert!(back.approx_eq(&b, 1e-9));
    }

    #[test]
    fn solve_dim_mismatch() {
        let a = well_conditioned(4);
        let lu = LuDecomposition::new(&a).unwrap();
        assert!(lu.solve(&Vector::zeros(3)).is_err());
        assert!(lu.solve_matrix(&Matrix::zeros(3, 2)).is_err());
    }

    #[test]
    fn one_by_one() {
        let a = Matrix::from_rows(&[&[4.0]]).unwrap();
        assert_eq!(a.solve(&Vector::from_slice(&[8.0])).unwrap().as_slice(), &[2.0]);
        assert!((a.determinant().unwrap() - 4.0).abs() < 1e-12);
    }
}
