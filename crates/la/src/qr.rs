//! Householder QR factorization.
//!
//! An extension beyond the paper's built-in list: the least-squares
//! estimator `β̂ = (XᵀX)⁻¹Xᵀy` the paper computes through the normal
//! equations squares the condition number of `X`; QR solves the same
//! problem directly from `X` with much better numerical behaviour. The SQL
//! surface exposes it as `solve_ls(MATRIX[a][b], VECTOR[a]) -> VECTOR[b]`.

// Index-based loops mirror the LAPACK-style reference formulation.
#![allow(clippy::needless_range_loop)]

use crate::error::{LaError, Result};
use crate::matrix::Matrix;
use crate::vector::Vector;

/// A compact Householder QR factorization of an `m × n` matrix with
/// `m ≥ n`: `A = Q·R` with `Q` orthonormal (m × n, applied implicitly) and
/// `R` upper triangular (n × n).
#[derive(Debug, Clone)]
pub struct QrDecomposition {
    /// Householder vectors packed below the diagonal; `R` on and above it.
    qr: Matrix,
    /// The scalar factors of the Householder reflectors.
    tau: Vec<f64>,
}

impl QrDecomposition {
    /// Factorizes `a` (requires rows ≥ cols). Fails with
    /// [`LaError::Singular`] when a diagonal of `R` collapses (rank
    /// deficiency to working precision).
    pub fn new(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m < n {
            return Err(LaError::DimMismatch { op: "qr", lhs: (m, n), rhs: (n, n) });
        }
        let mut qr = a.clone();
        let mut tau = vec![0.0; n];
        for k in 0..n {
            // Householder reflector for column k, rows k..m.
            let mut norm2 = 0.0;
            for i in k..m {
                let v = qr.at(i, k);
                norm2 += v * v;
            }
            let norm = norm2.sqrt();
            if norm == 0.0 {
                return Err(LaError::Singular { op: "qr" });
            }
            let akk = qr.at(k, k);
            let alpha = if akk >= 0.0 { -norm } else { norm };
            // v = x - alpha·e1, normalized so v[0] = 1.
            let v0 = akk - alpha;
            tau[k] = -v0 / alpha;
            let inv_v0 = 1.0 / v0;
            for i in (k + 1)..m {
                let v = qr.at(i, k) * inv_v0;
                qr.set(i, k, v).expect("in range");
            }
            qr.set(k, k, alpha).expect("in range");
            // Apply the reflector to the remaining columns.
            for j in (k + 1)..n {
                let mut dot = qr.at(k, j);
                for i in (k + 1)..m {
                    dot += qr.at(i, k) * qr.at(i, j);
                }
                let t = tau[k] * dot;
                let new_kj = qr.at(k, j) - t;
                qr.set(k, j, new_kj).expect("in range");
                for i in (k + 1)..m {
                    let v = qr.at(i, j) - t * qr.at(i, k);
                    qr.set(i, j, v).expect("in range");
                }
            }
        }
        Ok(QrDecomposition { qr, tau })
    }

    /// Input shape.
    pub fn shape(&self) -> (usize, usize) {
        self.qr.shape()
    }

    /// The upper-triangular factor `R` (n × n).
    pub fn r(&self) -> Matrix {
        let n = self.qr.cols();
        Matrix::from_fn(n, n, |i, j| if j >= i { self.qr.at(i, j) } else { 0.0 })
    }

    /// Applies `Qᵀ` to a vector of length m (in place on a copy).
    fn qt_apply(&self, b: &Vector) -> Vec<f64> {
        let (m, n) = self.qr.shape();
        let mut x = b.as_slice().to_vec();
        for k in 0..n {
            let mut dot = x[k];
            for i in (k + 1)..m {
                dot += self.qr.at(i, k) * x[i];
            }
            let t = self.tau[k] * dot;
            x[k] -= t;
            for i in (k + 1)..m {
                x[i] -= t * self.qr.at(i, k);
            }
        }
        x
    }

    /// Least-squares solve: minimizes `‖A·x − b‖₂`.
    pub fn solve_ls(&self, b: &Vector) -> Result<Vector> {
        let (m, n) = self.qr.shape();
        if b.len() != m {
            return Err(LaError::DimMismatch { op: "solve_ls", lhs: (m, n), rhs: (b.len(), 1) });
        }
        let qtb = self.qt_apply(b);
        // Back-substitute R·x = (Qᵀb)[..n].
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = qtb[i];
            for j in (i + 1)..n {
                s -= self.qr.at(i, j) * x[j];
            }
            let d = self.qr.at(i, i);
            if d.abs() < 1e-13 {
                return Err(LaError::Singular { op: "solve_ls" });
            }
            x[i] = s / d;
        }
        Ok(Vector::from_vec(x))
    }
}

impl Matrix {
    /// Least-squares solve via Householder QR — the `solve_ls` built-in.
    pub fn solve_least_squares(&self, b: &Vector) -> Result<Vector> {
        QrDecomposition::new(self)?.solve_ls(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tall(m: usize, n: usize) -> Matrix {
        Matrix::from_fn(m, n, |i, j| ((i * 31 + j * 17) % 13) as f64 - 6.0 + if i == j { 10.0 } else { 0.0 })
    }

    #[test]
    fn r_is_upper_triangular_and_reconstructs_normal_matrix() {
        let a = tall(10, 4);
        let qr = QrDecomposition::new(&a).unwrap();
        let r = qr.r();
        for i in 0..4 {
            for j in 0..i {
                assert_eq!(r.get(i, j).unwrap(), 0.0);
            }
        }
        // RᵀR = AᵀA (since Q is orthonormal)
        let rtr = r.transpose().multiply(&r).unwrap();
        let ata = a.gram();
        assert!(rtr.approx_eq(&ata, 1e-8), "{rtr:?} vs {ata:?}");
    }

    #[test]
    fn exact_system_recovered() {
        let a = tall(6, 6);
        let x_true = Vector::from_fn(6, |i| (i as f64) - 2.0);
        let b = a.matrix_vector_multiply(&x_true).unwrap();
        let x = a.solve_least_squares(&b).unwrap();
        assert!(x.approx_eq(&x_true, 1e-9));
    }

    #[test]
    fn overdetermined_matches_normal_equations() {
        let a = tall(20, 5);
        let b = Vector::from_fn(20, |i| (i % 7) as f64 - 3.0);
        let x_qr = a.solve_least_squares(&b).unwrap();
        // Normal equations: (AᵀA)x = Aᵀb
        let ata = a.gram();
        let atb = b.vector_matrix_multiply(&a).unwrap();
        let x_ne = ata.solve(&atb).unwrap();
        assert!(x_qr.approx_eq(&x_ne, 1e-7));
    }

    #[test]
    fn wide_matrix_rejected() {
        assert!(QrDecomposition::new(&Matrix::zeros(3, 5)).is_err());
    }

    #[test]
    fn rank_deficient_detected() {
        // Two identical columns.
        let a = Matrix::from_fn(5, 2, |i, _| i as f64 + 1.0);
        assert!(a.solve_least_squares(&Vector::zeros(5)).is_err());
    }

    #[test]
    fn rhs_length_checked() {
        let a = tall(6, 3);
        let qr = QrDecomposition::new(&a).unwrap();
        assert!(qr.solve_ls(&Vector::zeros(5)).is_err());
    }
}
