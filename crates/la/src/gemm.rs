//! Cache-blocked dense matrix-multiplication kernels.
//!
//! The engine's `matrix_multiply` built-in bottoms out here. The kernel is a
//! straightforward i-k-j loop order (streaming through rows of both operands
//! so the inner loop is a unit-stride fused multiply-add over contiguous
//! memory) with an outer cache-blocking over `k` and `j`. This is not a
//! hand-tuned BLAS, but it is within a small factor of one for the sizes the
//! paper manipulates (tiles up to a few thousand on a side) and — crucially
//! for the reproduction — its cost *scales* exactly like the paper's GEMM
//! calls, so relative results are preserved.

use crate::matrix::Matrix;

/// Cache-block edge (in elements). 64×64 f64 tiles = 32 KiB per operand
/// block, comfortably inside L1+L2 on every machine we target.
const BLOCK: usize = 64;

/// `out += a × b`. Shapes must already be validated by the caller.
pub(crate) fn gemm_acc(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    let (m, k) = a.shape();
    let n = b.cols();
    debug_assert_eq!(b.rows(), k);
    debug_assert_eq!(out.shape(), (m, n));

    let a_data = a.as_slice();
    let b_data = b.as_slice();

    for kb in (0..k).step_by(BLOCK) {
        let kmax = (kb + BLOCK).min(k);
        for jb in (0..n).step_by(BLOCK) {
            let jmax = (jb + BLOCK).min(n);
            for i in 0..m {
                let a_row = &a_data[i * k..(i + 1) * k];
                let out_row = &mut out.as_mut_slice()[i * n + jb..i * n + jmax];
                for kk in kb..kmax {
                    let aik = a_row[kk];
                    if aik == 0.0 {
                        continue;
                    }
                    let b_row = &b_data[kk * n + jb..kk * n + jmax];
                    for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                        *o += aik * bv;
                    }
                }
            }
        }
    }
}

/// Symmetric rank-k update: computes `aᵀ × a`, touching only the upper
/// triangle and mirroring — about half the flops of a general GEMM. This is
/// the kernel behind Gram-matrix computation (Figure 1) and the normal
/// equations of least squares (Figure 2).
pub(crate) fn syrk_t(a: &Matrix) -> Matrix {
    let (m, n) = a.shape();
    let data = a.as_slice();
    let mut out = Matrix::zeros(n, n);
    // Accumulate row-by-row: aᵀa = Σ_i a_i a_iᵀ over rows a_i.
    for i in 0..m {
        let row = &data[i * n..(i + 1) * n];
        for p in 0..n {
            let v = row[p];
            if v == 0.0 {
                continue;
            }
            let out_row = &mut out.as_mut_slice()[p * n + p..(p + 1) * n];
            for (o, &w) in out_row.iter_mut().zip(row[p..].iter()) {
                *o += v * w;
            }
        }
    }
    // Mirror the strict upper triangle into the lower one.
    for p in 0..n {
        for q in (p + 1)..n {
            let v = out.as_slice()[p * n + q];
            out.as_mut_slice()[q * n + p] = v;
        }
    }
    out
}

/// Naive triple-loop reference multiply, kept for differential testing and
/// the blocking ablation bench.
pub fn gemm_naive(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k) = a.shape();
    let n = b.cols();
    assert_eq!(b.rows(), k, "gemm_naive shape mismatch");
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut s = 0.0;
            for kk in 0..k {
                s += a.as_slice()[i * k + kk] * b.as_slice()[kk * n + j];
            }
            out.as_mut_slice()[i * n + j] = s;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rngish(seed: u64, len: usize) -> Vec<f64> {
        // Small deterministic pseudo-random generator (xorshift) so the
        // kernel tests do not need the rand crate at build time.
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                ((x % 2000) as f64 - 1000.0) / 250.0
            })
            .collect()
    }

    #[test]
    fn blocked_matches_naive_various_shapes() {
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 7), (17, 9, 33), (70, 65, 80), (128, 64, 1)] {
            let a = Matrix::from_vec(m, k, rngish(42 + m as u64, m * k)).unwrap();
            let b = Matrix::from_vec(k, n, rngish(99 + n as u64, k * n)).unwrap();
            let fast = a.multiply(&b).unwrap();
            let slow = gemm_naive(&a, &b);
            assert!(fast.approx_eq(&slow, 1e-9), "mismatch at {m}x{k}x{n}");
        }
    }

    #[test]
    fn syrk_matches_naive() {
        for &(m, n) in &[(5, 3), (33, 17), (80, 70)] {
            let a = Matrix::from_vec(m, n, rngish(7 + m as u64, m * n)).unwrap();
            let fast = syrk_t(&a);
            let slow = gemm_naive(&a.transpose(), &a);
            assert!(fast.approx_eq(&slow, 1e-9), "mismatch at {m}x{n}");
        }
    }

    #[test]
    fn gemm_acc_accumulates_not_overwrites() {
        let a = Matrix::identity(4);
        let mut out = Matrix::filled(4, 4, 1.0);
        gemm_acc(&a, &a, &mut out);
        assert_eq!(out.get(0, 0).unwrap(), 2.0);
        assert_eq!(out.get(0, 1).unwrap(), 1.0);
    }

    #[test]
    fn zero_sized_operands() {
        let a = Matrix::zeros(0, 5);
        let b = Matrix::zeros(5, 0);
        let c = a.multiply(&b).unwrap();
        assert_eq!(c.shape(), (0, 0));
        let d = b.multiply(&a).unwrap();
        assert_eq!(d.shape(), (5, 5));
        assert_eq!(d.sum_elements(), 0.0);
    }
}
