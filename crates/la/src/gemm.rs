//! Cache-blocked dense matrix-multiplication kernels.
//!
//! The engine's `matrix_multiply` built-in bottoms out here. The kernel is a
//! straightforward i-k-j loop order (streaming through rows of both operands
//! so the inner loop is a unit-stride fused multiply-add over contiguous
//! memory) with an outer cache-blocking over `k` and `j`. This is not a
//! hand-tuned BLAS, but it is within a small factor of one for the sizes the
//! paper manipulates (tiles up to a few thousand on a side) and — crucially
//! for the reproduction — its cost *scales* exactly like the paper's GEMM
//! calls, so relative results are preserved.
//!
//! Two orthogonal dispatches sit in front of the inner loop:
//!
//! * **Density.** The historical kernel skipped `a[i][k] == 0.0` terms,
//!   which wins big on sparse tiles but costs a branch per FMA on dense
//!   ones. `gemm_acc` now samples the left operand and picks the
//!   branch-free dense loop ([`gemm_acc_dense`]) unless the tile looks
//!   sparse ([`gemm_acc_skipzero`]). Both are public for the kernel bench.
//! * **Parallelism.** Above a flop-count cutoff
//!   ([`set_parallel_flops`], default 2 M) the output is tiled into
//!   `(i-block, j-block)` cache blocks scheduled as morsels on the
//!   process-wide [`lardb_pool`] worker pool. Each morsel owns a disjoint
//!   block of `out` and runs the *full* `k` loop in the same block order
//!   as the sequential kernel, so per-element accumulation order — and
//!   therefore every output bit — is identical to a sequential run.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::matrix::Matrix;

/// Cache-block edge (in elements). 64×64 f64 tiles = 32 KiB per operand
/// block, comfortably inside L1+L2 on every machine we target.
const BLOCK: usize = 64;

/// Edge of one parallel morsel: a `PAR_BLOCK × PAR_BLOCK` block of `out`
/// (two cache blocks on a side, so each morsel amortizes scheduling over
/// several inner-kernel block iterations).
const PAR_BLOCK: usize = 2 * BLOCK;

/// Minimum multiply-add count (`m·n·k`) before [`gemm_acc`] fans the
/// output blocks out onto the worker pool. `0` disables parallel GEMM.
static PARALLEL_FLOPS: AtomicUsize = AtomicUsize::new(2_000_000);

/// Sets the flop-count cutoff above which GEMM/SYRK run pool-parallel
/// (`0` keeps every multiply inline). Returns the previous value.
pub fn set_parallel_flops(flops: usize) -> usize {
    PARALLEL_FLOPS.swap(flops, Ordering::Relaxed)
}

/// Current pool-parallel flop cutoff (see [`set_parallel_flops`]).
pub fn parallel_flops() -> usize {
    PARALLEL_FLOPS.load(Ordering::Relaxed)
}

/// Estimates the zero fraction of `data` from ≤ 1024 strided samples.
pub fn zero_fraction(data: &[f64]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let step = (data.len() / 1024).max(1);
    let mut seen = 0usize;
    let mut zeros = 0usize;
    let mut i = 0;
    while i < data.len() {
        seen += 1;
        if data[i] == 0.0 {
            zeros += 1;
        }
        i += step;
    }
    zeros as f64 / seen as f64
}

/// A raw pointer into `out` that can cross thread boundaries. Safety is
/// by construction: every parallel morsel writes a disjoint
/// `(i-block, j-block)` element set.
#[derive(Clone, Copy)]
struct OutPtr(*mut f64);
unsafe impl Send for OutPtr {}
unsafe impl Sync for OutPtr {}

/// The blocked inner kernel over one `[i0,i1) × [j0,j1)` block of `out`,
/// running the full `k` extent in the canonical `kb`-block order.
///
/// `skip_zero` selects the branchy sparse loop; monomorphized via const
/// generic so the dense path carries no per-FMA branch.
///
/// # Safety
/// `out` must point at an `m × n` row-major buffer; no other thread may
/// touch elements in `[i0,i1) × [j0,j1)` while this runs.
unsafe fn gemm_block<const SKIP_ZERO: bool>(
    a_data: &[f64],
    b_data: &[f64],
    out: OutPtr,
    k: usize,
    n: usize,
    (i0, i1): (usize, usize),
    (j0, j1): (usize, usize),
) {
    for kb in (0..k).step_by(BLOCK) {
        let kmax = (kb + BLOCK).min(k);
        for jb in (j0..j1).step_by(BLOCK) {
            let jmax = (jb + BLOCK).min(j1);
            for i in i0..i1 {
                let a_row = &a_data[i * k..(i + 1) * k];
                let out_row = std::slice::from_raw_parts_mut(
                    out.0.add(i * n + jb),
                    jmax - jb,
                );
                for kk in kb..kmax {
                    let aik = a_row[kk];
                    if SKIP_ZERO && aik == 0.0 {
                        continue;
                    }
                    let b_row = &b_data[kk * n + jb..kk * n + jmax];
                    for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                        *o += aik * bv;
                    }
                }
            }
        }
    }
}

/// Splits `0..len` into `PAR_BLOCK`-sized ranges.
fn par_ranges(len: usize) -> Vec<(usize, usize)> {
    (0..len).step_by(PAR_BLOCK).map(|lo| (lo, (lo + PAR_BLOCK).min(len))).collect()
}

/// `out += a × b`. Shapes must already be validated by the caller.
///
/// Dispatches on density (dense vs skip-zero inner loop) and size
/// (inline vs pool-parallel over output cache blocks); every path
/// produces bit-identical output.
pub(crate) fn gemm_acc(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    gemm_acc_pooled(lardb_pool::global(), a, b, out)
}

/// `gemm_acc` scheduled on a caller-supplied pool (tests use a
/// dedicated multi-worker pool so the parallel path is exercised even on
/// single-core machines).
pub fn gemm_acc_pooled(
    pool: &lardb_pool::WorkerPool,
    a: &Matrix,
    b: &Matrix,
    out: &mut Matrix,
) {
    let (m, k) = a.shape();
    let n = b.cols();
    debug_assert_eq!(b.rows(), k);
    debug_assert_eq!(out.shape(), (m, n));

    let skip_zero = crate::dispatch::choose_skip_zero(zero_fraction(a.as_slice()));
    let cutoff = parallel_flops();
    let flops = m.saturating_mul(n).saturating_mul(k);
    if cutoff > 0 && flops >= cutoff && pool.workers() > 1 && m * n > PAR_BLOCK {
        let a_data = a.as_slice();
        let b_data = b.as_slice();
        let ptr = OutPtr(out.as_mut_slice().as_mut_ptr());
        pool.scope(|s| {
            for ib in par_ranges(m) {
                for jb in par_ranges(n) {
                    s.spawn(move || unsafe {
                        // Disjoint (ib, jb) block of `out` per morsel.
                        if skip_zero {
                            gemm_block::<true>(a_data, b_data, ptr, k, n, ib, jb);
                        } else {
                            gemm_block::<false>(a_data, b_data, ptr, k, n, ib, jb);
                        }
                    });
                }
            }
        })
        .expect("gemm morsel panicked");
    } else {
        let a_data = a.as_slice();
        let b_data = b.as_slice();
        let ptr = OutPtr(out.as_mut_slice().as_mut_ptr());
        unsafe {
            if skip_zero {
                gemm_block::<true>(a_data, b_data, ptr, k, n, (0, m), (0, n));
            } else {
                gemm_block::<false>(a_data, b_data, ptr, k, n, (0, m), (0, n));
            }
        }
    }
}

/// `out += a × b` through the branch-free dense inner loop, sequentially.
/// Public for differential tests and the kernel bench.
pub fn gemm_acc_dense(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    let (m, k) = a.shape();
    let n = b.cols();
    assert_eq!(b.rows(), k, "gemm shape mismatch");
    assert_eq!(out.shape(), (m, n), "gemm output shape mismatch");
    let ptr = OutPtr(out.as_mut_slice().as_mut_ptr());
    unsafe { gemm_block::<false>(a.as_slice(), b.as_slice(), ptr, k, n, (0, m), (0, n)) }
}

/// `out += a × b` through the zero-skipping (branchy) inner loop,
/// sequentially. Wins when `a` is sparse; public for the kernel bench.
pub fn gemm_acc_skipzero(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    let (m, k) = a.shape();
    let n = b.cols();
    assert_eq!(b.rows(), k, "gemm shape mismatch");
    assert_eq!(out.shape(), (m, n), "gemm output shape mismatch");
    let ptr = OutPtr(out.as_mut_slice().as_mut_ptr());
    unsafe { gemm_block::<true>(a.as_slice(), b.as_slice(), ptr, k, n, (0, m), (0, n)) }
}

/// The SYRK inner kernel: accumulates `aᵀa` rows `[p0,p1)` of the upper
/// triangle into `out`, iterating input rows outermost (the canonical
/// order, so parallel row-blocks accumulate bit-identically).
///
/// # Safety
/// `out` must point at an `n × n` row-major buffer; no other thread may
/// touch rows `[p0,p1)` while this runs.
unsafe fn syrk_rows<const SKIP_ZERO: bool>(
    data: &[f64],
    out: OutPtr,
    m: usize,
    n: usize,
    (p0, p1): (usize, usize),
) {
    for i in 0..m {
        let row = &data[i * n..(i + 1) * n];
        for p in p0..p1 {
            let v = row[p];
            if SKIP_ZERO && v == 0.0 {
                continue;
            }
            let out_row =
                std::slice::from_raw_parts_mut(out.0.add(p * n + p), n - p);
            for (o, &w) in out_row.iter_mut().zip(row[p..].iter()) {
                *o += v * w;
            }
        }
    }
}

/// Symmetric rank-k update: computes `aᵀ × a`, touching only the upper
/// triangle and mirroring — about half the flops of a general GEMM. This is
/// the kernel behind Gram-matrix computation (Figure 1) and the normal
/// equations of least squares (Figure 2).
///
/// Large updates parallelize over output-row blocks on the worker pool;
/// the density dispatch mirrors [`gemm_acc`].
pub(crate) fn syrk_t(a: &Matrix) -> Matrix {
    syrk_t_pooled(lardb_pool::global(), a)
}

/// `syrk_t` scheduled on a caller-supplied pool.
pub fn syrk_t_pooled(pool: &lardb_pool::WorkerPool, a: &Matrix) -> Matrix {
    let (m, n) = a.shape();
    let data = a.as_slice();
    let mut out = Matrix::zeros(n, n);
    let skip_zero = crate::dispatch::choose_skip_zero(zero_fraction(data));
    let cutoff = parallel_flops();
    // ~half the multiplies of a full m×n×n GEMM.
    let flops = m.saturating_mul(n).saturating_mul(n) / 2;
    let ptr = OutPtr(out.as_mut_slice().as_mut_ptr());
    if cutoff > 0 && flops >= cutoff && pool.workers() > 1 && n > PAR_BLOCK {
        pool.scope(|s| {
            for pb in par_ranges(n) {
                s.spawn(move || unsafe {
                    // Disjoint output rows [pb.0, pb.1) per morsel.
                    if skip_zero {
                        syrk_rows::<true>(data, ptr, m, n, pb);
                    } else {
                        syrk_rows::<false>(data, ptr, m, n, pb);
                    }
                });
            }
        })
        .expect("syrk morsel panicked");
    } else {
        unsafe {
            if skip_zero {
                syrk_rows::<true>(data, ptr, m, n, (0, n));
            } else {
                syrk_rows::<false>(data, ptr, m, n, (0, n));
            }
        }
    }
    // Mirror the strict upper triangle into the lower one.
    for p in 0..n {
        for q in (p + 1)..n {
            let v = out.as_slice()[p * n + q];
            out.as_mut_slice()[q * n + p] = v;
        }
    }
    out
}

/// Naive triple-loop reference multiply, kept for differential testing and
/// the blocking ablation bench.
pub fn gemm_naive(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k) = a.shape();
    let n = b.cols();
    assert_eq!(b.rows(), k, "gemm_naive shape mismatch");
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut s = 0.0;
            for kk in 0..k {
                s += a.as_slice()[i * k + kk] * b.as_slice()[kk * n + j];
            }
            out.as_mut_slice()[i * n + j] = s;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rngish(seed: u64, len: usize) -> Vec<f64> {
        // Small deterministic pseudo-random generator (xorshift) so the
        // kernel tests do not need the rand crate at build time.
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                ((x % 2000) as f64 - 1000.0) / 250.0
            })
            .collect()
    }

    #[test]
    fn blocked_matches_naive_various_shapes() {
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 7), (17, 9, 33), (70, 65, 80), (128, 64, 1)] {
            let a = Matrix::from_vec(m, k, rngish(42 + m as u64, m * k)).unwrap();
            let b = Matrix::from_vec(k, n, rngish(99 + n as u64, k * n)).unwrap();
            let fast = a.multiply(&b).unwrap();
            let slow = gemm_naive(&a, &b);
            assert!(fast.approx_eq(&slow, 1e-9), "mismatch at {m}x{k}x{n}");
        }
    }

    #[test]
    fn syrk_matches_naive() {
        for &(m, n) in &[(5, 3), (33, 17), (80, 70)] {
            let a = Matrix::from_vec(m, n, rngish(7 + m as u64, m * n)).unwrap();
            let fast = syrk_t(&a);
            let slow = gemm_naive(&a.transpose(), &a);
            assert!(fast.approx_eq(&slow, 1e-9), "mismatch at {m}x{n}");
        }
    }

    #[test]
    fn gemm_acc_accumulates_not_overwrites() {
        let a = Matrix::identity(4);
        let mut out = Matrix::filled(4, 4, 1.0);
        gemm_acc(&a, &a, &mut out);
        assert_eq!(out.get(0, 0).unwrap(), 2.0);
        assert_eq!(out.get(0, 1).unwrap(), 1.0);
    }

    #[test]
    fn zero_sized_operands() {
        let a = Matrix::zeros(0, 5);
        let b = Matrix::zeros(5, 0);
        let c = a.multiply(&b).unwrap();
        assert_eq!(c.shape(), (0, 0));
        let d = b.multiply(&a).unwrap();
        assert_eq!(d.shape(), (5, 5));
        assert_eq!(d.sum_elements(), 0.0);
    }

    #[test]
    fn dense_and_skipzero_loops_agree() {
        for &(m, k, n) in &[(7, 11, 5), (64, 64, 64), (130, 70, 129)] {
            let a = Matrix::from_vec(m, k, rngish(3 + k as u64, m * k)).unwrap();
            let b = Matrix::from_vec(k, n, rngish(5 + n as u64, k * n)).unwrap();
            let mut dense = Matrix::zeros(m, n);
            let mut branchy = Matrix::zeros(m, n);
            gemm_acc_dense(&a, &b, &mut dense);
            gemm_acc_skipzero(&a, &b, &mut branchy);
            // Identical loop order ⇒ bitwise-equal accumulation.
            assert_eq!(dense.as_slice(), branchy.as_slice(), "at {m}x{k}x{n}");
        }
    }

    #[test]
    fn sparse_input_dispatch_is_correct() {
        // ~70% zeros: gemm_acc takes the skip-zero path; result must
        // still match the naive reference exactly.
        let m = 40;
        let data: Vec<f64> =
            rngish(11, m * m).iter().map(|&v| if v < 1.0 { 0.0 } else { v }).collect();
        let a = Matrix::from_vec(m, m, data).unwrap();
        let b = Matrix::from_vec(m, m, rngish(13, m * m)).unwrap();
        let fast = a.multiply(&b).unwrap();
        assert!(fast.approx_eq(&gemm_naive(&a, &b), 1e-9));
    }

    #[test]
    fn parallel_gemm_is_bitwise_identical_to_inline() {
        let (m, k, n) = (300, 150, 280);
        let a = Matrix::from_vec(m, k, rngish(21, m * k)).unwrap();
        let b = Matrix::from_vec(k, n, rngish(22, k * n)).unwrap();
        let mut inline_out = Matrix::zeros(m, n);
        gemm_acc_dense(&a, &b, &mut inline_out);
        // A dedicated multi-worker pool + tiny cutoff forces the morsel
        // path even on single-core machines. The flop count here is far
        // above the default cutoff, so the global setting is irrelevant.
        let pool = lardb_pool::WorkerPool::new(4);
        let mut par_out = Matrix::zeros(m, n);
        gemm_acc_pooled(&pool, &a, &b, &mut par_out);
        // Same per-element accumulation order ⇒ identical bits.
        assert_eq!(inline_out.as_slice(), par_out.as_slice());
    }

    #[test]
    fn parallel_syrk_is_bitwise_identical_to_inline() {
        let (m, n) = (200, 260);
        let a = Matrix::from_vec(m, n, rngish(31, m * n)).unwrap();
        let inline_pool = lardb_pool::WorkerPool::new(1);
        let inline_out = syrk_t_pooled(&inline_pool, &a);
        let pool = lardb_pool::WorkerPool::new(4);
        let par_out = syrk_t_pooled(&pool, &a);
        assert_eq!(inline_out.as_slice(), par_out.as_slice());
    }

    #[test]
    fn zero_fraction_sampling() {
        assert_eq!(zero_fraction(&[]), 0.0);
        assert_eq!(zero_fraction(&[1.0, 2.0]), 0.0);
        assert_eq!(zero_fraction(&[0.0; 8]), 1.0);
        let half: Vec<f64> =
            (0..100).map(|i| if i % 2 == 0 { 0.0 } else { 1.0 }).collect();
        let f = zero_fraction(&half);
        assert!((f - 0.5).abs() < 0.1, "sampled {f}");
    }
}
