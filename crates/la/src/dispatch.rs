//! Density-adaptive kernel dispatch.
//!
//! PR 3 hardcoded one density heuristic inside `gemm.rs`: sample the left
//! operand and take the skip-zero loop past 25% zeros. This module
//! generalizes that into an engine-wide dispatch layer with three
//! process-wide knobs (mirroring [`crate::gemm::set_parallel_flops`]):
//!
//! * a [`DispatchMode`] — `dense` forces the branch-free dense loops and
//!   densifies sparse tiles at kernel entry, `sparse` forces skip-zero /
//!   sparse kernels, `adaptive` (default) picks per tile pair from the
//!   sampled density;
//! * a *sparse threshold* — the zero fraction above which adaptive
//!   dispatch prefers skip-zero/sparse kernels (default 0.25, the PR 3
//!   cutoff);
//! * monotone per-kind choice counters, snapshotted by the database layer
//!   around each query to surface per-query kernel choices in
//!   EXPLAIN ANALYZE and `la.dispatch.*` metrics in SHOW METRICS.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// Which kernel family multiplies get routed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchMode {
    /// Always the branch-free dense loops; sparse tiles densify first.
    Dense,
    /// Always skip-zero / sparse kernels.
    Sparse,
    /// Pick per tile pair from sampled density (the default).
    Adaptive,
}

impl DispatchMode {
    /// Parses the CLI/env spelling (`dense` / `sparse` / `adaptive`).
    pub fn parse(s: &str) -> Option<DispatchMode> {
        match s.to_ascii_lowercase().as_str() {
            "dense" => Some(DispatchMode::Dense),
            "sparse" => Some(DispatchMode::Sparse),
            "adaptive" => Some(DispatchMode::Adaptive),
            _ => None,
        }
    }

    /// The canonical spelling.
    pub fn name(&self) -> &'static str {
        match self {
            DispatchMode::Dense => "dense",
            DispatchMode::Sparse => "sparse",
            DispatchMode::Adaptive => "adaptive",
        }
    }
}

const MODE_DENSE: u8 = 0;
const MODE_SPARSE: u8 = 1;
const MODE_ADAPTIVE: u8 = 2;

static MODE: AtomicU8 = AtomicU8::new(MODE_ADAPTIVE);

/// Default zero-fraction cutoff — the PR 3 `SPARSE_CUTOFF`.
pub const DEFAULT_SPARSE_THRESHOLD: f64 = 0.25;

// `0.25f64.to_bits()`; spelled as a literal because `to_bits` is not
// usable in a `static` initializer on this toolchain.
static SPARSE_THRESHOLD_BITS: AtomicU64 = AtomicU64::new(0x3FD0000000000000);

/// Sets the process-wide dispatch mode; returns the previous one.
pub fn set_dispatch_mode(mode: DispatchMode) -> DispatchMode {
    let raw = match mode {
        DispatchMode::Dense => MODE_DENSE,
        DispatchMode::Sparse => MODE_SPARSE,
        DispatchMode::Adaptive => MODE_ADAPTIVE,
    };
    match MODE.swap(raw, Ordering::Relaxed) {
        MODE_DENSE => DispatchMode::Dense,
        MODE_SPARSE => DispatchMode::Sparse,
        _ => DispatchMode::Adaptive,
    }
}

/// Current process-wide dispatch mode.
pub fn dispatch_mode() -> DispatchMode {
    match MODE.load(Ordering::Relaxed) {
        MODE_DENSE => DispatchMode::Dense,
        MODE_SPARSE => DispatchMode::Sparse,
        _ => DispatchMode::Adaptive,
    }
}

/// Sets the adaptive zero-fraction cutoff (clamped to `[0, 1]`); returns
/// the previous value.
pub fn set_sparse_threshold(threshold: f64) -> f64 {
    let t = threshold.clamp(0.0, 1.0);
    f64::from_bits(SPARSE_THRESHOLD_BITS.swap(t.to_bits(), Ordering::Relaxed))
}

/// Current adaptive zero-fraction cutoff.
pub fn sparse_threshold() -> f64 {
    f64::from_bits(SPARSE_THRESHOLD_BITS.load(Ordering::Relaxed))
}

/// Resolves one density-dispatch decision for a dense tile whose sampled
/// zero fraction is `zero_fraction`: `true` means take the skip-zero loop.
/// Also bumps the matching choice counter.
pub fn choose_skip_zero(zero_fraction: f64) -> bool {
    let skip = match dispatch_mode() {
        DispatchMode::Dense => false,
        DispatchMode::Sparse => true,
        DispatchMode::Adaptive => zero_fraction > sparse_threshold(),
    };
    if skip {
        COUNTERS.skipzero.fetch_add(1, Ordering::Relaxed);
    } else {
        COUNTERS.dense.fetch_add(1, Ordering::Relaxed);
    }
    skip
}

/// Whether a *sparse-typed* tile of the given stored density should stay
/// on sparse kernels (`true`) or densify first (`false`). Sparse tiles
/// stay sparse except under forced-dense mode or when adaptive dispatch
/// sees a tile dense enough that the branch-free loop wins
/// (`density > 1 - threshold`, the mirror image of the skip-zero rule).
pub fn keep_sparse(density: f64) -> bool {
    match dispatch_mode() {
        DispatchMode::Dense => false,
        DispatchMode::Sparse => true,
        DispatchMode::Adaptive => density <= 1.0 - sparse_threshold(),
    }
}

/// The kernel families whose choices are counted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Sparse × dense-vector product.
    Spmv,
    /// Sparse × dense matrix product.
    SpDense,
    /// Sparse × sparse product.
    SpGemm,
    /// Sparse Gram (SYRK).
    SpSyrk,
    /// A sparse tile was densified before a dense kernel ran.
    Densified,
}

/// Records that a sparse kernel (or a densification) ran.
pub fn note_kernel(kernel: Kernel) {
    let c = match kernel {
        Kernel::Spmv => &COUNTERS.spmv,
        Kernel::SpDense => &COUNTERS.sp_dense,
        Kernel::SpGemm => &COUNTERS.spgemm,
        Kernel::SpSyrk => &COUNTERS.sp_syrk,
        Kernel::Densified => &COUNTERS.densified,
    };
    c.fetch_add(1, Ordering::Relaxed);
}

struct Counters {
    dense: AtomicU64,
    skipzero: AtomicU64,
    spmv: AtomicU64,
    sp_dense: AtomicU64,
    spgemm: AtomicU64,
    sp_syrk: AtomicU64,
    densified: AtomicU64,
}

static COUNTERS: Counters = Counters {
    dense: AtomicU64::new(0),
    skipzero: AtomicU64::new(0),
    spmv: AtomicU64::new(0),
    sp_dense: AtomicU64::new(0),
    spgemm: AtomicU64::new(0),
    sp_syrk: AtomicU64::new(0),
    densified: AtomicU64::new(0),
};

/// A monotone snapshot of every dispatch-choice counter. Subtract two
/// snapshots to get the choices made in between (per-query attribution in
/// EXPLAIN ANALYZE; concurrent queries overlap, which the display notes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DispatchCounters {
    /// Branch-free dense GEMM/SYRK inner-loop choices.
    pub dense: u64,
    /// Skip-zero (branchy) inner-loop choices.
    pub skipzero: u64,
    /// SpMV kernel runs.
    pub spmv: u64,
    /// Sparse × dense GEMM runs.
    pub sp_dense: u64,
    /// SpGEMM runs.
    pub spgemm: u64,
    /// Sparse SYRK runs.
    pub sp_syrk: u64,
    /// Sparse tiles densified before a dense kernel.
    pub densified: u64,
}

impl DispatchCounters {
    /// Total sparse-kernel runs.
    pub fn sparse_total(&self) -> u64 {
        self.spmv + self.sp_dense + self.spgemm + self.sp_syrk
    }

    /// Elementwise saturating difference (`self - earlier`).
    pub fn since(&self, earlier: &DispatchCounters) -> DispatchCounters {
        DispatchCounters {
            dense: self.dense.saturating_sub(earlier.dense),
            skipzero: self.skipzero.saturating_sub(earlier.skipzero),
            spmv: self.spmv.saturating_sub(earlier.spmv),
            sp_dense: self.sp_dense.saturating_sub(earlier.sp_dense),
            spgemm: self.spgemm.saturating_sub(earlier.spgemm),
            sp_syrk: self.sp_syrk.saturating_sub(earlier.sp_syrk),
            densified: self.densified.saturating_sub(earlier.densified),
        }
    }

    /// Elementwise sum (merging multi-statement workload stats).
    pub fn plus(&self, other: &DispatchCounters) -> DispatchCounters {
        DispatchCounters {
            dense: self.dense + other.dense,
            skipzero: self.skipzero + other.skipzero,
            spmv: self.spmv + other.spmv,
            sp_dense: self.sp_dense + other.sp_dense,
            spgemm: self.spgemm + other.spgemm,
            sp_syrk: self.sp_syrk + other.sp_syrk,
            densified: self.densified + other.densified,
        }
    }

    /// True when any kernel choice was recorded.
    pub fn any(&self) -> bool {
        *self != DispatchCounters::default()
    }
}

/// Snapshots the process-wide dispatch counters.
pub fn dispatch_counters() -> DispatchCounters {
    DispatchCounters {
        dense: COUNTERS.dense.load(Ordering::Relaxed),
        skipzero: COUNTERS.skipzero.load(Ordering::Relaxed),
        spmv: COUNTERS.spmv.load(Ordering::Relaxed),
        sp_dense: COUNTERS.sp_dense.load(Ordering::Relaxed),
        spgemm: COUNTERS.spgemm.load(Ordering::Relaxed),
        sp_syrk: COUNTERS.sp_syrk.load(Ordering::Relaxed),
        densified: COUNTERS.densified.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parse_roundtrip() {
        for m in [DispatchMode::Dense, DispatchMode::Sparse, DispatchMode::Adaptive] {
            assert_eq!(DispatchMode::parse(m.name()), Some(m));
        }
        assert_eq!(DispatchMode::parse("ADAPTIVE"), Some(DispatchMode::Adaptive));
        assert_eq!(DispatchMode::parse("banana"), None);
    }

    #[test]
    fn forced_modes_override_density() {
        // Serialize against other tests touching the global mode.
        let prev = set_dispatch_mode(DispatchMode::Dense);
        assert!(!choose_skip_zero(1.0));
        assert!(!keep_sparse(0.0001));
        set_dispatch_mode(DispatchMode::Sparse);
        assert!(choose_skip_zero(0.0));
        assert!(keep_sparse(0.9999));
        set_dispatch_mode(DispatchMode::Adaptive);
        assert!(choose_skip_zero(0.9));
        assert!(!choose_skip_zero(0.1));
        assert!(keep_sparse(0.01));
        assert!(!keep_sparse(0.9));
        set_dispatch_mode(prev);
    }

    #[test]
    fn threshold_clamps_and_swaps() {
        let prev = set_sparse_threshold(0.5);
        assert_eq!(sparse_threshold(), 0.5);
        set_sparse_threshold(7.0);
        assert_eq!(sparse_threshold(), 1.0);
        set_sparse_threshold(prev);
    }

    #[test]
    fn counters_are_monotone_and_diffable() {
        let before = dispatch_counters();
        note_kernel(Kernel::Spmv);
        note_kernel(Kernel::SpGemm);
        note_kernel(Kernel::Densified);
        let delta = dispatch_counters().since(&before);
        assert!(delta.spmv >= 1);
        assert!(delta.spgemm >= 1);
        assert!(delta.densified >= 1);
        assert!(delta.sparse_total() >= 2);
    }
}
